#!/usr/bin/env python3
"""Benchmark: iterative SPF engines vs the recursive oracle, plus Algorithm 2.

Three benchmark families, tracking the perf trajectory of the distance core:

* **left/right** — the keyroot single-path functions ``Δ_L``/``Δ_R`` against
  the recursive engine on the PR-1 workloads (recorded in ``BENCH_spf.json``);
* **heavy / full RTED** — the inner-path program ``Δ_A`` (chain × boundary
  grid) and the full iterative RTED pipeline against the recursive engine on
  300-node heavy-strategy workloads of several shapes (deep, branchy, zigzag,
  mixed) plus a deep-path workload (recorded in ``BENCH_rted.json``);
* **algorithm2** — the flat-array / vectorized Algorithm 2 against the legacy
  object-matrix implementation on 1000-node trees (also in
  ``BENCH_rted.json``).

Run with::

    PYTHONPATH=src python benchmarks/bench_spf.py            # full baselines
    PYTHONPATH=src python benchmarks/bench_spf.py --quick    # CI smoke (<1 min)

The committed JSON files are the baselines recorded on the machine that
introduced each layer; regenerate to compare.  In ``--quick`` mode the
workloads shrink, nothing is written unless ``--output``/``--output-rted``
are given explicitly, and the process exits non-zero if the SPF engine is
slower than the recursive engine anywhere — the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.algorithms import (
    RTED,
    DecompositionEngine,
    HeavyFStrategy,
    LeftFStrategy,
    RightFStrategy,
    StrategyExecutor,
    optimal_strategy,
    optimal_strategy_objects,
    spf_H,
    spf_L,
    spf_R,
)
from repro.algorithms.spf import numpy_available
from repro.datasets import random_tree
from repro.datasets.shapes import (
    left_branch_tree,
    make_shape,
    right_branch_tree,
    zigzag_tree,
)
from repro.trees import Node, Tree

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_spf.json"
DEFAULT_OUTPUT_RTED = Path(__file__).parent / "BENCH_rted.json"


def _path_tree(depth: int, label: object = "a") -> Tree:
    node = Node(label)
    for _ in range(depth):
        node = Node(label, [node])
    return Tree(node)


def _time(fn: Callable[[], object], repeats: int) -> tuple:
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# --------------------------------------------------------------------------- #
# Left/right keyroot workloads (PR 1 baseline, BENCH_spf.json)
# --------------------------------------------------------------------------- #
def _lr_workloads(quick: bool) -> List[Dict]:
    n = 81 if quick else 301
    r = 80 if quick else 300
    deep = 300 if quick else 1500
    return [
        {
            "name": f"left-branch-{n}",
            "trees": (left_branch_tree(n), left_branch_tree(n - 2, label="b")),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
        {
            "name": f"right-branch-{n}",
            "trees": (right_branch_tree(n), right_branch_tree(n - 2, label="b")),
            "strategy": RightFStrategy,
            "spf": spf_R,
        },
        {
            "name": f"random-{r}",
            "trees": (random_tree(r, rng=20110713), random_tree(r, rng=20110714)),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
        {
            "name": f"deep-path-{deep}-x-random-200",
            "trees": (_path_tree(deep), random_tree(200, rng=42)),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
    ]


def run_lr_benchmark(quick: bool, spf_repeats: int = 3) -> Dict:
    results = []
    for workload in _lr_workloads(quick):
        tree_f, tree_g = workload["trees"]
        strategy_cls = workload["strategy"]
        spf = workload["spf"]
        entry: Dict = {"workload": workload["name"], "n_f": tree_f.n, "n_g": tree_g.n}

        recursive_time, recursive_distance = _time(
            lambda: DecompositionEngine(tree_f, tree_g, strategy_cls()).distance(), repeats=1
        )
        entry["recursive_seconds"] = recursive_time

        python_time, python_distance = _time(
            lambda: spf(tree_f, tree_g, use_numpy=False), repeats=spf_repeats
        )
        entry["spf_python_seconds"] = python_time
        entry["spf_python_speedup"] = recursive_time / python_time
        assert abs(python_distance - recursive_distance) < 1e-9, workload["name"]

        if numpy_available():
            numpy_time, numpy_distance = _time(
                lambda: spf(tree_f, tree_g, use_numpy=True), repeats=spf_repeats
            )
            entry["spf_numpy_seconds"] = numpy_time
            entry["spf_numpy_speedup"] = recursive_time / numpy_time
            assert abs(numpy_distance - recursive_distance) < 1e-9, workload["name"]

        entry["distance"] = float(recursive_distance)
        results.append(entry)
        _print_lr_entry(entry)

    return {
        "benchmark": "bench_spf",
        "description": "recursive decomposition engine vs iterative SPF kernels",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy_available": numpy_available(),
        "results": results,
    }


def _print_lr_entry(entry: Dict) -> None:
    line = (
        f"{entry['workload']:28s} recursive={entry['recursive_seconds']:8.3f}s  "
        f"spf-python={entry['spf_python_seconds']:7.3f}s "
        f"({entry['spf_python_speedup']:6.1f}x)"
    )
    if "spf_numpy_seconds" in entry:
        line += (
            f"  spf-numpy={entry['spf_numpy_seconds']:7.3f}s "
            f"({entry['spf_numpy_speedup']:6.1f}x)"
        )
    print(line)


# --------------------------------------------------------------------------- #
# Heavy-path and full-RTED workloads (BENCH_rted.json)
# --------------------------------------------------------------------------- #
def _heavy_workloads(quick: bool) -> List[Dict]:
    if quick:
        return [
            {"name": "heavy-random-80", "trees": (random_tree(80, rng=1), random_tree(80, rng=2))},
            {"name": "heavy-zigzag-81", "trees": (zigzag_tree(81), zigzag_tree(79, label="b"))},
            {"name": "heavy-mixed-81", "trees": (make_shape("mixed", 81), make_shape("mixed", 81, label="b"))},
        ]
    return [
        {
            "name": "heavy-random-300",
            "trees": (random_tree(300, rng=20110713), random_tree(300, rng=20110714)),
        },
        {
            "name": "heavy-zigzag-301",
            "trees": (zigzag_tree(301), zigzag_tree(299, label="b")),
        },
        {
            "name": "heavy-mixed-301",
            "trees": (make_shape("mixed", 301), make_shape("mixed", 301, label="b")),
        },
        {
            "name": "heavy-deep-path-1500-x-random-200",
            "trees": (_path_tree(1500), random_tree(200, rng=42)),
        },
    ]


def _rted_workloads(quick: bool) -> List[Dict]:
    if quick:
        return [
            {"name": "rted-random-80", "trees": (random_tree(80, rng=5), random_tree(80, rng=6))},
        ]
    return [
        {
            "name": "rted-random-300",
            "trees": (random_tree(300, rng=5), random_tree(300, rng=6)),
        },
        {
            "name": "rted-mixed-301",
            "trees": (make_shape("mixed", 301), make_shape("mixed", 301, label="b")),
        },
        {
            "name": "rted-zigzag-301",
            "trees": (zigzag_tree(301), zigzag_tree(299, label="b")),
        },
    ]


def _alg2_workloads(quick: bool) -> List[Dict]:
    if quick:
        return [
            {"name": "alg2-random-200", "trees": (random_tree(200, rng=9), random_tree(200, rng=10))},
        ]
    return [
        {
            "name": "alg2-random-1000",
            "trees": (random_tree(1000, rng=11), random_tree(1000, rng=12)),
        },
        {
            "name": "alg2-full-binary-1023",
            "trees": (make_shape("full-binary", 1023), make_shape("full-binary", 1023, label="b")),
        },
        {
            "name": "alg2-mixed-1001",
            "trees": (make_shape("mixed", 1001), make_shape("mixed", 1001, label="b")),
        },
    ]


def run_rted_benchmark(quick: bool, spf_repeats: int = 2) -> Dict:
    heavy_entries = []
    for workload in _heavy_workloads(quick):
        tree_f, tree_g = workload["trees"]
        entry: Dict = {"workload": workload["name"], "n_f": tree_f.n, "n_g": tree_g.n}

        recursive_time, recursive_distance = _time(
            lambda: DecompositionEngine(tree_f, tree_g, HeavyFStrategy()).distance(), repeats=1
        )
        entry["recursive_seconds"] = recursive_time

        spf_time, spf_distance = _time(
            lambda: spf_H(tree_f, tree_g), repeats=spf_repeats
        )
        entry["spf_seconds"] = spf_time
        entry["speedup"] = recursive_time / spf_time
        entry["distance"] = float(recursive_distance)
        assert abs(spf_distance - recursive_distance) < 1e-9, workload["name"]
        heavy_entries.append(entry)
        print(
            f"{entry['workload']:36s} recursive={recursive_time:8.3f}s  "
            f"spf={spf_time:7.3f}s ({entry['speedup']:6.1f}x)"
        )

    rted_entries = []
    for workload in _rted_workloads(quick):
        tree_f, tree_g = workload["trees"]
        entry = {"workload": workload["name"], "n_f": tree_f.n, "n_g": tree_g.n}
        strategy = optimal_strategy(tree_f, tree_g).strategy

        recursive_time, recursive_distance = _time(
            lambda: DecompositionEngine(tree_f, tree_g, strategy).distance(), repeats=1
        )
        spf_time, spf_distance = _time(
            lambda: StrategyExecutor(tree_f, tree_g, strategy).distance(), repeats=spf_repeats
        )
        entry["recursive_seconds"] = recursive_time
        entry["spf_seconds"] = spf_time
        entry["speedup"] = recursive_time / spf_time
        entry["distance"] = float(recursive_distance)
        assert abs(spf_distance - recursive_distance) < 1e-9, workload["name"]
        rted_entries.append(entry)
        print(
            f"{entry['workload']:36s} recursive={recursive_time:8.3f}s  "
            f"spf={spf_time:7.3f}s ({entry['speedup']:6.1f}x)"
        )

    alg2_entries = []
    # Warm both implementations once (NumPy lazy state, allocator) so the
    # best-of timings below compare steady-state costs.
    warm_f, warm_g = random_tree(60, rng=0), random_tree(60, rng=1)
    optimal_strategy(warm_f, warm_g)
    optimal_strategy_objects(warm_f, warm_g)
    alg2_repeats = max(3, spf_repeats)
    for workload in _alg2_workloads(quick):
        tree_f, tree_g = workload["trees"]
        entry = {"workload": workload["name"], "n_f": tree_f.n, "n_g": tree_g.n}
        object_time, object_result = _time(
            lambda: optimal_strategy_objects(tree_f, tree_g), repeats=alg2_repeats
        )
        flat_time, flat_result = _time(
            lambda: optimal_strategy(tree_f, tree_g), repeats=alg2_repeats
        )
        assert flat_result.cost == object_result.cost, workload["name"]
        entry["object_seconds"] = object_time
        entry["flat_seconds"] = flat_time
        entry["speedup"] = object_time / flat_time
        entry["optimal_cost"] = int(flat_result.cost)
        alg2_entries.append(entry)
        print(
            f"{entry['workload']:36s} object   ={object_time:8.3f}s  "
            f"flat={flat_time:7.3f}s ({entry['speedup']:6.1f}x)"
        )

    return {
        "benchmark": "bench_rted",
        "description": (
            "iterative heavy-path SPF + full RTED pipeline vs the recursive "
            "oracle, and flat-array Algorithm 2 vs the object-matrix version"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy_available": numpy_available(),
        "heavy": heavy_entries,
        "rted": rted_entries,
        "algorithm2": alg2_entries,
        "heavy_median_speedup": statistics.median(e["speedup"] for e in heavy_entries),
        "rted_median_speedup": statistics.median(e["speedup"] for e in rted_entries),
        "algorithm2_median_speedup": statistics.median(e["speedup"] for e in alg2_entries),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None, help="BENCH_spf.json path")
    parser.add_argument(
        "--output-rted", type=Path, default=None, help="BENCH_rted.json path"
    )
    parser.add_argument("--repeats", type=int, default=3, help="repetitions per SPF timing")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads, no files written by default; non-zero exit if the "
        "spf engine is slower than the recursive engine anywhere (CI smoke)",
    )
    parser.add_argument(
        "--skip-lr", action="store_true", help="skip the left/right keyroot family"
    )
    args = parser.parse_args()

    lr_report: Optional[Dict] = None
    if not args.skip_lr:
        lr_report = run_lr_benchmark(args.quick, spf_repeats=args.repeats)
    rted_report = run_rted_benchmark(args.quick, spf_repeats=max(2, args.repeats - 1))

    print()
    print(f"heavy-path median speedup:  {rted_report['heavy_median_speedup']:.1f}x (target >= 5x)")
    print(f"full-RTED median speedup:   {rted_report['rted_median_speedup']:.1f}x")
    print(
        f"Algorithm 2 median speedup: {rted_report['algorithm2_median_speedup']:.1f}x "
        f"(target >= 3x on the full workloads)"
    )

    if not args.quick or args.output is not None:
        output = args.output or DEFAULT_OUTPUT
        if lr_report is not None:
            output.write_text(json.dumps(lr_report, indent=2) + "\n", encoding="utf-8")
            print(f"wrote {output}")
    if not args.quick or args.output_rted is not None:
        output_rted = args.output_rted or DEFAULT_OUTPUT_RTED
        output_rted.write_text(json.dumps(rted_report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {output_rted}")

    if args.quick:
        slowest = min(
            [e["speedup"] for e in rted_report["heavy"]]
            + [e["speedup"] for e in rted_report["rted"]]
            + ([
                min(e["spf_numpy_speedup"], e["spf_python_speedup"])
                if "spf_numpy_speedup" in e
                else e["spf_python_speedup"]
                for e in lr_report["results"]
            ] if lr_report is not None else [])
        )
        if slowest < 1.0:
            print(f"FAIL: spf engine slower than the recursive engine ({slowest:.2f}x)")
            return 1
        print(f"smoke OK: minimum spf speedup {slowest:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
