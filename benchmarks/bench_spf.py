#!/usr/bin/env python3
"""Benchmark: recursive decomposition engine vs iterative SPF vs NumPy SPF.

Compares the three execution backends of the left/right single-path phases on
the workloads the acceptance criteria care about (300-node left/right-path
trees) plus a random and a deep-path workload:

* ``recursive`` — :class:`repro.algorithms.forest_engine.DecompositionEngine`
  with the corresponding fixed strategy (the seed implementation);
* ``spf-python`` — the iterative single-path function, pure-Python kernel;
* ``spf-numpy`` — the same with the vectorized row kernel.

Run with::

    PYTHONPATH=src python benchmarks/bench_spf.py

which prints a table and records the measurements in
``benchmarks/BENCH_spf.json`` (the committed file is the baseline recorded on
the machine that introduced the SPF layer; regenerate to compare).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.algorithms import DecompositionEngine, LeftFStrategy, RightFStrategy
from repro.algorithms.spf import numpy_available, spf_L, spf_R
from repro.datasets import random_tree
from repro.datasets.shapes import left_branch_tree, right_branch_tree
from repro.trees import Node, Tree

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_spf.json"


def _path_tree(depth: int, label: object = "a") -> Tree:
    node = Node(label)
    for _ in range(depth):
        node = Node(label, [node])
    return Tree(node)


def _workloads() -> List[Dict]:
    return [
        {
            "name": "left-branch-301",
            "trees": (left_branch_tree(301), left_branch_tree(299, label="b")),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
        {
            "name": "right-branch-301",
            "trees": (right_branch_tree(301), right_branch_tree(299, label="b")),
            "strategy": RightFStrategy,
            "spf": spf_R,
        },
        {
            "name": "random-300",
            "trees": (random_tree(300, rng=20110713), random_tree(300, rng=20110714)),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
        {
            "name": "deep-path-1500-x-random-200",
            "trees": (_path_tree(1500), random_tree(200, rng=42)),
            "strategy": LeftFStrategy,
            "spf": spf_L,
        },
    ]


def _time(fn: Callable[[], float], repeats: int) -> tuple:
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_benchmark(spf_repeats: int = 3) -> Dict:
    results = []
    for workload in _workloads():
        tree_f, tree_g = workload["trees"]
        strategy_cls = workload["strategy"]
        spf = workload["spf"]
        entry: Dict = {
            "workload": workload["name"],
            "n_f": tree_f.n,
            "n_g": tree_g.n,
        }

        # The recursive engine is orders of magnitude slower on some of these
        # workloads; a single run is representative enough for a baseline.
        recursive_time, recursive_distance = _time(
            lambda: DecompositionEngine(tree_f, tree_g, strategy_cls()).distance(), repeats=1
        )
        entry["recursive_seconds"] = recursive_time

        python_time, python_distance = _time(
            lambda: spf(tree_f, tree_g, use_numpy=False), repeats=spf_repeats
        )
        entry["spf_python_seconds"] = python_time
        entry["spf_python_speedup"] = recursive_time / python_time
        assert abs(python_distance - recursive_distance) < 1e-9, workload["name"]

        if numpy_available():
            numpy_time, numpy_distance = _time(
                lambda: spf(tree_f, tree_g, use_numpy=True), repeats=spf_repeats
            )
            entry["spf_numpy_seconds"] = numpy_time
            entry["spf_numpy_speedup"] = recursive_time / numpy_time
            assert abs(numpy_distance - recursive_distance) < 1e-9, workload["name"]

        entry["distance"] = float(recursive_distance)
        results.append(entry)
        _print_entry(entry)

    return {
        "benchmark": "bench_spf",
        "description": "recursive decomposition engine vs iterative SPF kernels",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy_available": numpy_available(),
        "results": results,
    }


def _print_entry(entry: Dict) -> None:
    line = (
        f"{entry['workload']:28s} recursive={entry['recursive_seconds']:8.3f}s  "
        f"spf-python={entry['spf_python_seconds']:7.3f}s "
        f"({entry['spf_python_speedup']:6.1f}x)"
    )
    if "spf_numpy_seconds" in entry:
        line += (
            f"  spf-numpy={entry['spf_numpy_seconds']:7.3f}s "
            f"({entry['spf_numpy_speedup']:6.1f}x)"
        )
    print(line)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--repeats", type=int, default=3, help="repetitions per SPF timing")
    args = parser.parse_args()

    report = run_benchmark(spf_repeats=args.repeats)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")

    slowest = min(
        entry["spf_python_speedup"]
        for entry in report["results"]
        if "branch" in entry["workload"]
    )
    print(f"minimum SPF speedup on 300-node branch workloads: {slowest:.1f}x (target: >= 3x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
