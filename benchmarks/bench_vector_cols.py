#!/usr/bin/env python3
"""Micro-benchmark: tune ``MIN_VECTOR_COLS`` (NumPy row-kernel crossover).

The left/right single-path kernel sweeps each keyroot-pair table row with a
handful of ``O(cols)`` NumPy operations whose fixed dispatch overhead only
pays off for wide tables; regions narrower than
:data:`repro.algorithms.spf_numpy.MIN_VECTOR_COLS` run through the scalar
fallback kernel instead.  This benchmark sweeps candidate crossover values
over the shape families whose region-width distributions differ the most —

* ``random`` (branchy: almost all regions narrow),
* ``full-binary`` (mixed widths),
* ``left-branch`` / ``zigzag`` (few keyroots, wide spine regions),

timing full spf-engine distances per (family, size, candidate), and prints
the total per candidate.  The committed default in ``spf_numpy.py`` is the
winner on the reference container (see the rationale in ``DESIGN.md``); on
other hardware run this benchmark and export ``RTED_MIN_VECTOR_COLS``.

Run with::

    PYTHONPATH=src python benchmarks/bench_vector_cols.py [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.algorithms import spf_numpy
from repro.algorithms.spf import spf_L
from repro.datasets import random_tree
from repro.datasets.shapes import make_shape

CANDIDATES = [4, 8, 12, 16, 24, 32, 48, 64]

#: (family, size) workloads; two independently seeded trees per workload.
WORKLOADS = [
    ("random", 40),
    ("random", 150),
    ("full-binary", 63),
    ("full-binary", 255),
    ("left-branch", 60),
    ("left-branch", 200),
    ("zigzag", 60),
    ("zigzag", 200),
]


def _pair(family: str, size: int):
    if family == "random":
        return random_tree(size, rng=size), random_tree(size, rng=size + 1)
    return make_shape(family, size), make_shape(family, size)


def run_sweep(repeats: int) -> Dict:
    pairs = {workload: _pair(*workload) for workload in WORKLOADS}
    default = spf_numpy.MIN_VECTOR_COLS
    results: List[Dict] = []
    try:
        for candidate in CANDIDATES:
            spf_numpy.MIN_VECTOR_COLS = candidate
            per_workload = {}
            total = 0.0
            for workload, (tree_f, tree_g) in pairs.items():
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    spf_L(tree_f, tree_g)
                    best = min(best, time.perf_counter() - start)
                per_workload["{}-{}".format(*workload)] = best
                total += best
            results.append(
                {"min_vector_cols": candidate, "total_seconds": total, "workloads": per_workload}
            )
            print(f"MIN_VECTOR_COLS={candidate:>3}: total {total * 1e3:8.2f} ms", flush=True)
    finally:
        spf_numpy.MIN_VECTOR_COLS = default
    winner = min(results, key=lambda entry: entry["total_seconds"])
    print(f"best: MIN_VECTOR_COLS={winner['min_vector_cols']}")
    return {"benchmark": "MIN_VECTOR_COLS crossover sweep", "repeats": repeats, "entries": results,
            "best": winner["min_vector_cols"], "committed_default": default}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5, help="best-of-N timing per cell")
    parser.add_argument("--output", type=Path, default=None, help="optional JSON report path")
    args = parser.parse_args(argv)
    report = run_sweep(args.repeats)
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
