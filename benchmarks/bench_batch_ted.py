#!/usr/bin/env python3
"""Benchmark: amortized batch TED — workspace + interning vs per-call contexts.

Three measurement families, all with distances asserted identical between
the two modes (the workspace layer is bit-exact by contract):

* **small-batch** — 1000 pairs over clustered corpora of small trees
  (12 and 48 nodes, the sizes a join cascade feeds the exact verifier by the
  thousands), per-pair wall-clock measured individually for ``rted`` (the
  default verifier) and ``zhang-l``; the reported figure is the *median
  per-pair speedup* of workspace mode over fresh per-call contexts.
* **one-vs-many** — a single query tree against a 1000-tree corpus, the
  other workload whose per-tree setup a workspace amortizes across every
  pair.
* **join-verify** — the ``bench_join_scale.py`` workload (clustered self
  join, τ = 3, cascade on) run through ``batch_similarity_join`` with the
  workspace on vs off; the figure is the verify-stage speedup.

A fractional-cost small-batch entry is included for honest reporting: there
the unit-cost small-pair kernel does not apply and the gain comes from
cache/interning amortization alone.

Run with::

    PYTHONPATH=src python benchmarks/bench_batch_ted.py           # full, writes BENCH_batch.json
    PYTHONPATH=src python benchmarks/bench_batch_ted.py --quick   # CI smoke gate

In ``--quick`` mode nothing is written unless ``--output`` is given and the
process exits non-zero unless the small-batch ``rted`` median speedup is
≥ 2.5x and the join verify-stage speedup is ≥ 1.2x (conservative CI gates;
the committed full-mode ``BENCH_batch.json`` records the reference numbers,
≥ 5x and ≥ 1.5x on the baseline container).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.algorithms import TedWorkspace, make_algorithm
from repro.costs import WeightedCostModel
from repro.datasets import clustered_corpus, random_tree
from repro.join import TreeCorpus, batch_self_join

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_batch.json"

JOIN_THRESHOLD = 3.0


def _pair_times(
    trees, pairs, algorithm: str, workspace: Optional[TedWorkspace], cost_model=None
) -> Tuple[List[float], List[float]]:
    """Per-pair wall-clock times and distances for one mode."""
    if workspace is not None:
        algo = make_algorithm(algorithm, workspace=workspace)
    else:
        algo = make_algorithm(algorithm)
    times: List[float] = []
    distances: List[float] = []
    for i, j in pairs:
        start = time.perf_counter()
        result = algo.compute(trees[i], trees[j], cost_model=cost_model)
        times.append(time.perf_counter() - start)
        distances.append(result.distance)
    return times, distances


def run_pair_batch(
    name: str,
    trees,
    pairs,
    algorithm: str,
    cost_model=None,
) -> Dict:
    """One workload entry: fresh-context vs workspace mode over `pairs`."""
    corpus = TreeCorpus(trees)
    # Warm-up pass (first-touch JIT-free, but numpy/alloc caches settle).
    _pair_times(corpus.trees, pairs[:20], algorithm, None, cost_model)
    off_times, off_distances = _pair_times(corpus.trees, pairs, algorithm, None, cost_model)
    workspace = TedWorkspace(cost_model, interner=corpus.interner())
    _pair_times(corpus.trees, pairs[:20], algorithm, workspace, cost_model)
    on_times, on_distances = _pair_times(corpus.trees, pairs, algorithm, workspace, cost_model)
    assert off_distances == on_distances, f"{name}: workspace changed distances"

    entry = {
        "workload": name,
        "algorithm": algorithm,
        "cost_model": "unit" if cost_model is None else repr(cost_model),
        "pairs": len(pairs),
        "per_pair_us_fresh_median": median(off_times) * 1e6,
        "per_pair_us_workspace_median": median(on_times) * 1e6,
        "total_s_fresh": sum(off_times),
        "total_s_workspace": sum(on_times),
        "median_per_pair_speedup": median(off_times) / median(on_times),
        "workspace_stats": workspace.stats.as_dict(),
    }
    print(
        f"{name:<28} {algorithm:<8} median {entry['per_pair_us_fresh_median']:8.0f}us"
        f" -> {entry['per_pair_us_workspace_median']:7.0f}us"
        f"  speedup {entry['median_per_pair_speedup']:5.1f}x",
        flush=True,
    )
    return entry


def run_join_verify(num_trees: int, early_accept: bool) -> Dict:
    """The bench_join_scale workload, verify stage with workspace on vs off.

    With ``early_accept=False`` every cascade survivor runs exact TED — the
    isolated verify-stage measurement (the default-cascade variant verifies
    only the few pairs the upper bound cannot settle, so its verify time is
    tiny and noisy; it is reported for completeness, not gated on).
    """
    trees = clustered_corpus(
        num_clusters=max(1, num_trees // 10),
        cluster_size=10,
        tree_size=12,
        num_edits=2,
        rng=20110713,
    )
    results = {}
    for mode in (False, True):
        result = batch_self_join(
            trees, JOIN_THRESHOLD, algorithm="zhang-l", workspace=mode,
            early_accept=early_accept,
        )
        results[mode] = result
    assert results[False].matches == results[True].matches, "join results diverged"
    off, on = results[False].stats, results[True].stats
    name = "join-verify" + ("" if early_accept else " (full verification)")
    entry = {
        "workload": name,
        "num_trees": len(trees),
        "threshold": JOIN_THRESHOLD,
        "algorithm": "zhang-l",
        "early_accept": early_accept,
        "exact_pairs_verified": on.exact_computed,
        "verify_s_fresh": off.verify_time,
        "verify_s_workspace": on.verify_time,
        "verify_stage_speedup": off.verify_time / on.verify_time,
        "total_s_fresh": off.total_time,
        "total_s_workspace": on.total_time,
    }
    print(
        f"{name:<28} n={len(trees):<6} verify {off.verify_time:6.2f}s"
        f" -> {on.verify_time:5.2f}s  speedup {entry['verify_stage_speedup']:5.1f}x"
        f"  ({on.exact_computed} exact pairs)",
        flush=True,
    )
    return entry


def build_pairs(trees, count: int, seed: int = 41) -> List[Tuple[int, int]]:
    """Candidate-like pair list: all intra-cluster pairs first, then wraps."""
    import random as _random

    rng = _random.Random(seed)
    n = len(trees)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    rng.shuffle(pairs)
    while len(pairs) < count:
        pairs.append((rng.randrange(n), rng.randrange(n)))
    return pairs[:count]


def run_benchmark(pair_count: int, join_trees: int) -> Dict:
    entries: List[Dict] = []

    small = clustered_corpus(
        num_clusters=10, cluster_size=10, tree_size=12, num_edits=2, rng=1
    )
    medium = clustered_corpus(
        num_clusters=8, cluster_size=8, tree_size=48, num_edits=3, rng=2
    )
    pairs_small = build_pairs(small, pair_count)
    pairs_medium = build_pairs(medium, min(pair_count, 400))

    entries.append(run_pair_batch("small-batch (12 nodes)", small, pairs_small, "rted"))
    entries.append(run_pair_batch("small-batch (12 nodes)", small, pairs_small, "zhang-l"))
    entries.append(run_pair_batch("small-batch (48 nodes)", medium, pairs_medium, "rted"))
    entries.append(
        run_pair_batch(
            "small-batch fractional",
            small,
            pairs_small[: min(pair_count, 400)],
            "rted",
            cost_model=WeightedCostModel(1.3, 0.7, 1.9),
        )
    )

    query = random_tree(48, rng=99)
    corpus = [query] + list(
        clustered_corpus(num_clusters=10, cluster_size=10, tree_size=32, num_edits=3, rng=5)
    )
    one_vs_many = [(0, j) for j in range(1, min(len(corpus), pair_count + 1))]
    entries.append(run_pair_batch("one-vs-many (32 nodes)", corpus, one_vs_many, "rted"))

    entries.append(run_join_verify(join_trees, early_accept=False))
    entries.append(run_join_verify(join_trees, early_accept=True))

    # The headline is the acceptance workload: the 1000-pair batch at the
    # size the join cascade actually feeds the exact verifier (12 nodes,
    # bench_join_scale's TREE_SIZE), with the default verifier.  The other
    # entries (48-node, fractional, one-vs-many) are reported alongside.
    headline = next(
        e for e in entries
        if e["workload"] == "small-batch (12 nodes)" and e["algorithm"] == "rted"
    )
    return {
        "benchmark": "amortized batch TED (workspace + interning vs per-call contexts)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
        "headline_median_per_pair_speedup": headline["median_per_pair_speedup"],
        "join_verify_speedup": next(
            e["verify_stage_speedup"]
            for e in entries
            if e["workload"] == "join-verify (full verification)"
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument("--pairs", type=int, default=1000, help="pairs per small-batch workload")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        report = run_benchmark(pair_count=200, join_trees=150)
        batch_gate = report["headline_median_per_pair_speedup"]
        join_gate = report["join_verify_speedup"]
        print(
            f"quick gates: small-batch rted median speedup {batch_gate:.1f}x (≥2.5x), "
            f"join verify speedup {join_gate:.1f}x (≥1.2x)"
        )
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        return 0 if batch_gate >= 2.5 and join_gate >= 1.2 else 1

    report = run_benchmark(pair_count=args.pairs, join_trees=1000)
    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
