#!/usr/bin/env python3
"""Benchmark: τ-bounded exact verification vs unbounded verification.

Three measurement families, all with match sets asserted identical between
bounded and unbounded runs (bounded verification is exact below the cutoff
by contract):

* **join-verify (PR 3 corpus)** — the ``bench_join_scale.py`` 2k-tree
  clustered self-join (τ = 3, cascade on, ``early_accept=False`` so every
  survivor runs exact TED), verify stage bounded vs unbounded.  On this
  corpus the cascade is highly selective, so most survivors are true
  matches and the gain comes from the τ-band restricting every pair's DP.
* **join-verify (borderline clusters)** — clusters as wide as the
  threshold (``num_edits ≈ τ``), the regime where the bound cascade cannot
  decide and the verifier does the real work: most survivors are
  non-matches whose computation the bounded kernels cut short
  (``JoinStats.aborted_early``).
* **pair-level** — single-pair ``compute(cutoff=τ)`` vs ``compute()`` at
  64 and 128 nodes for distant pairs (abort fires) and near pairs (τ-band
  only), for ``zhang-l`` and ``rted``.

Run with::

    PYTHONPATH=src python benchmarks/bench_bounded.py           # full, writes BENCH_bounded.json
    PYTHONPATH=src python benchmarks/bench_bounded.py --quick   # CI smoke gate

In ``--quick`` mode nothing is written unless ``--output`` is given and the
process exits non-zero unless the borderline join verify-stage speedup is
≥ 1.15x and the distant-pair zhang-l speedup at 128 nodes is ≥ 1.5x
(conservative CI gates; the committed full-mode ``BENCH_bounded.json``
records the reference numbers).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import make_algorithm
from repro.datasets import clustered_corpus, perturb_tree, random_tree
from repro.join import batch_self_join

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_bounded.json"

#: The bench_join_scale.py workload parameters (the PR 3 acceptance corpus).
PR3_THRESHOLD = 3.0
PR3_TREE_SIZE = 12
PR3_CLUSTER_SIZE = 10


def run_join_verify(
    name: str,
    trees,
    threshold: float,
    algorithm: str = "zhang-l",
    repeats: int = 3,
) -> Dict:
    """Verify-stage wall clock, bounded vs unbounded (best of ``repeats``)."""
    results = {}
    times = {True: [], False: []}
    for _ in range(repeats):
        for bounded in (False, True):
            result = batch_self_join(
                trees,
                threshold,
                algorithm=algorithm,
                early_accept=False,
                bounded_verify=bounded,
            )
            times[bounded].append(result.stats.verify_time)
            results[bounded] = result
    assert results[False].matches == results[True].matches, (
        f"{name}: bounded verification changed the match set"
    )
    off, on = min(times[False]), min(times[True])
    stats = results[True].stats
    entry = {
        "workload": name,
        "num_trees": len(trees),
        "threshold": threshold,
        "algorithm": algorithm,
        "exact_pairs_verified": stats.exact_computed,
        "exact_matched": stats.exact_matched,
        "aborted_early": stats.aborted_early,
        "verify_s_unbounded": off,
        "verify_s_bounded": on,
        "verify_stage_speedup": off / on,
    }
    print(
        f"{name:<34} n={len(trees):<5} verify {off:7.3f}s -> {on:7.3f}s"
        f"  speedup {entry['verify_stage_speedup']:5.2f}x"
        f"  ({stats.exact_computed} verified, {stats.aborted_early} aborted)",
        flush=True,
    )
    return entry


def run_pair_level(size: int, algorithm: str, reps: int) -> List[Dict]:
    """Distant-pair (abort fires) and near-pair (band only) single-pair runs."""
    entries = []
    algo = make_algorithm(algorithm)
    distant = (random_tree(size, rng=1), random_tree(size, rng=2))
    near_base = random_tree(size, rng=3)
    near = (near_base, perturb_tree(near_base, 3, rng=4))
    for kind, (f, g) in (("distant", distant), ("near", near)):
        exact = algo.compute(f, g).distance
        cutoff = 8.0
        start = time.perf_counter()
        for _ in range(reps):
            algo.compute(f, g)
        full = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            result = algo.compute(f, g, cutoff=cutoff)
        bounded = (time.perf_counter() - start) / reps
        assert result.bounded == (exact >= cutoff)
        entry = {
            "workload": f"pair-level {kind}",
            "algorithm": algorithm,
            "size": size,
            "cutoff": cutoff,
            "distance": exact,
            "bounded": exact >= cutoff,
            "per_pair_ms_unbounded": full * 1e3,
            "per_pair_ms_bounded": bounded * 1e3,
            "speedup": full / bounded,
        }
        print(
            f"pair-level {kind:<8} {algorithm:<8} n={size:<4} d={exact:<6g}"
            f" {full * 1e3:8.2f}ms -> {bounded * 1e3:8.2f}ms"
            f"  speedup {entry['speedup']:5.2f}x",
            flush=True,
        )
        entries.append(entry)
    return entries


def borderline_corpus(num_trees: int, tree_size: int, seed: int = 42):
    """Clusters as wide as the join threshold: the verifier-bound regime."""
    return clustered_corpus(
        num_clusters=max(1, num_trees // 10),
        cluster_size=10,
        tree_size=tree_size,
        num_edits=5,
        rng=seed,
    )


def run_benchmark(pr3_trees: int, borderline_trees: int, pair_reps: int) -> Dict:
    entries: List[Dict] = []

    pr3 = clustered_corpus(
        num_clusters=max(1, pr3_trees // PR3_CLUSTER_SIZE),
        cluster_size=PR3_CLUSTER_SIZE,
        tree_size=PR3_TREE_SIZE,
        num_edits=2,
        rng=20110713,
    )
    entries.append(
        run_join_verify("join-verify (PR3 clustered)", pr3, PR3_THRESHOLD)
    )

    entries.append(
        run_join_verify(
            "join-verify (borderline clusters)",
            borderline_corpus(borderline_trees, tree_size=32),
            5.0,
        )
    )

    for size in (64, 128):
        for algorithm in ("zhang-l", "rted"):
            entries.extend(run_pair_level(size, algorithm, pair_reps))

    borderline = next(
        e for e in entries if e["workload"] == "join-verify (borderline clusters)"
    )
    distant_128 = next(
        e
        for e in entries
        if e["workload"] == "pair-level distant"
        and e["algorithm"] == "zhang-l"
        and e["size"] == 128
    )
    return {
        "benchmark": "τ-bounded exact verification vs unbounded verification",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
        "borderline_verify_speedup": borderline["verify_stage_speedup"],
        "pr3_verify_speedup": next(
            e for e in entries if e["workload"] == "join-verify (PR3 clustered)"
        )["verify_stage_speedup"],
        "pair_distant_zhang_128_speedup": distant_128["speedup"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        report = run_benchmark(pr3_trees=300, borderline_trees=200, pair_reps=3)
        join_gate = report["borderline_verify_speedup"]
        pair_gate = report["pair_distant_zhang_128_speedup"]
        print(
            f"quick gates: borderline verify speedup {join_gate:.2f}x (≥1.15x), "
            f"distant-pair zhang-l@128 speedup {pair_gate:.2f}x (≥1.5x)"
        )
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        return 0 if join_gate >= 1.15 and pair_gate >= 1.5 else 1

    report = run_benchmark(pr3_trees=2000, borderline_trees=1000, pair_reps=10)
    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
