"""Benchmark harness for Figure 9 — runtime per algorithm and tree shape.

These benchmarks time the actual distance computations of Zhang-L, Demaine-H
and RTED on identical-tree pairs of the FB, ZZ and MX shapes, which is exactly
what Figure 9 plots (at reduced tree sizes; the pure-Python kernels are a
constant factor slower than the paper's Java implementation).
"""

import pytest

from repro.algorithms import make_algorithm
from repro.datasets import make_shape

SIZE = 49
SHAPES = ["full-binary", "zigzag", "mixed"]
ALGORITHMS = ["zhang-l", "demaine-h", "rted"]


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_runtime(benchmark, shape, algorithm):
    tree = make_shape(shape, SIZE)
    algo = make_algorithm(algorithm)

    def run():
        return algo.compute(tree, tree)

    result = benchmark(run)
    assert result.distance == 0.0
    benchmark.extra_info["shape"] = shape
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["tree_size"] = tree.n
    benchmark.extra_info["subproblems"] = result.subproblems


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_runtime_cross_shape_pair(benchmark, algorithm):
    """A harder pair of *different* shapes (LB vs RB), where fixed strategies degrade."""
    tree_f = make_shape("left-branch", SIZE)
    tree_g = make_shape("right-branch", SIZE, label="b")
    algo = make_algorithm(algorithm)
    result = benchmark(algo.compute, tree_f, tree_g)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["subproblems"] = result.subproblems
