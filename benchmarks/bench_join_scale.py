#!/usr/bin/env python3
"""Benchmark: the corpus-indexed batch join at scale — cascade on vs off.

Self joins over clustered corpora of 2k (up to 10k with ``--trees``)
generated trees spanning the shape families of the Table 1 workload
(random, left/right branch, full binary, zigzag, mixed), at a selective
threshold where matches live (mostly) inside clusters.  Three measurement
families:

* **cascade off** — every pair runs exact TED (the pre-batch-subsystem
  behaviour); measured at the 2k acceptance size (it is quadratic wall-clock,
  larger sizes are extrapolated in the report);
* **cascade on** — inverted-index candidate generation + the sound filter
  cascade + upper-bound early accept, exact TED only for the undecided rest;
* **worker counts** — the cascade-on verification fan-out at 1 and 2
  processes (informational on single-core runners).

Run with::

    PYTHONPATH=src python benchmarks/bench_join_scale.py            # full, writes BENCH_join.json
    PYTHONPATH=src python benchmarks/bench_join_scale.py --quick    # CI smoke (<1 min)

The committed ``BENCH_join.json`` is the baseline recorded on the machine
that introduced the batch subsystem; per-stage filter counts are embedded in
every entry.  In ``--quick`` mode nothing is written unless ``--output`` is
given and the process exits non-zero if the cascade-on join is less than 3x
faster than cascade-off — the CI regression gate for the filter pipeline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datasets import clustered_corpus
from repro.join import batch_self_join

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_join.json"

#: Selective threshold: clusters are ≤ ``num_edits`` = 2 edits wide, so τ = 3
#: matches within clusters and (almost) never across them.
THRESHOLD = 3.0
TREE_SIZE = 12
CLUSTER_SIZE = 10


def build_corpus(num_trees: int, seed: int = 20110713):
    return clustered_corpus(
        num_clusters=max(1, num_trees // CLUSTER_SIZE),
        cluster_size=CLUSTER_SIZE,
        tree_size=TREE_SIZE,
        num_edits=2,
        rng=seed,
    )


def run_join(trees, algorithm: str, cascade: bool, workers: int):
    start = time.perf_counter()
    result = batch_self_join(
        trees,
        THRESHOLD,
        algorithm=algorithm,
        use_cascade=cascade,
        workers=workers,
    )
    elapsed = time.perf_counter() - start
    entry = {
        "num_trees": len(trees),
        "threshold": THRESHOLD,
        "algorithm": algorithm,
        "cascade": cascade,
        "workers": workers,
        "seconds": elapsed,
        "matches": len(result.matches),
        "stats": result.stats.as_dict(),
    }
    return entry, result.match_set


def run_benchmark(
    algorithm: str, sizes: List[int], off_sizes: List[int], workers: List[int]
) -> Dict:
    entries: List[Dict] = []
    match_sets: Dict[int, set] = {}

    for num_trees in sizes:
        trees = build_corpus(num_trees)
        for worker_count in workers:
            entry, match_set = run_join(trees, algorithm, cascade=True, workers=worker_count)
            entries.append(entry)
            match_sets[num_trees] = match_set
            print(
                f"cascade=on  n={num_trees:>6} workers={worker_count} "
                f"{entry['seconds']:8.2f}s  matches={entry['matches']}",
                flush=True,
            )
        if num_trees in off_sizes:
            entry, match_set = run_join(trees, algorithm, cascade=False, workers=1)
            entries.append(entry)
            print(
                f"cascade=off n={num_trees:>6} workers=1 "
                f"{entry['seconds']:8.2f}s  matches={entry['matches']}",
                flush=True,
            )
            assert match_set == match_sets[num_trees], (
                "cascade on/off must produce identical match sets"
            )

    # Speedups at sizes where both variants ran (same worker count = 1).
    speedups = {}
    for num_trees in off_sizes:
        on_time = min(
            e["seconds"]
            for e in entries
            if e["num_trees"] == num_trees and e["cascade"] and e["workers"] == 1
        )
        off_time = min(
            e["seconds"] for e in entries if e["num_trees"] == num_trees and not e["cascade"]
        )
        speedups[str(num_trees)] = off_time / on_time
        print(f"speedup at n={num_trees}: {off_time / on_time:.1f}x", flush=True)

    return {
        "benchmark": "batch similarity self-join (cascade on/off)",
        "threshold": THRESHOLD,
        "tree_size": TREE_SIZE,
        "cluster_size": CLUSTER_SIZE,
        "shape_families": [
            "random", "left-branch", "right-branch", "full-binary", "zigzag", "mixed",
        ],
        "algorithm": algorithm,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
        "speedup_cascade_on_vs_off": speedups,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument(
        "--trees",
        type=int,
        default=2000,
        help="largest cascade-on corpus size (cascade-off always runs at the "
        "acceptance size of 2000, or the corpus size if smaller)",
    )
    parser.add_argument(
        "--algorithm",
        default="zhang-l",
        help="exact verifier (zhang-l keeps the quadratic cascade-off "
        "baseline tractable on small trees; the cascade itself is "
        "algorithm-independent)",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        sizes = [300]
        off_sizes = [300]
        workers = [1]
    else:
        sizes = sorted({500, 1000, min(args.trees, 2000), args.trees})
        off_sizes = [min(args.trees, 2000)]
        workers = [1, 2]

    report = run_benchmark(args.algorithm, sizes, off_sizes, workers)

    if args.quick:
        gate = min(report["speedup_cascade_on_vs_off"].values())
        print(f"quick gate: cascade speedup {gate:.1f}x (required ≥ 3x)")
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        return 0 if gate >= 3.0 else 1

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
