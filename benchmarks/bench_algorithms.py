"""Micro-benchmarks of the core building blocks.

Not tied to a specific figure: these track the performance of the individual
components (tree indexing, Algorithm 2, the distance kernels, the bounds and
the serializers) so that regressions are visible independently of the
experiment harnesses.
"""

import pytest

from repro.algorithms import (
    RTED,
    ZhangShashaTED,
    compute_edit_mapping,
    optimal_strategy,
)
from repro.bounds import (
    binary_branch_lower_bound,
    pq_gram_distance,
    top_down_upper_bound,
    traversal_string_lower_bound,
)
from repro.datasets import random_tree
from repro.io import parse_bracket, to_bracket
from repro.trees import Tree

_TREE_A = random_tree(120, rng=1)
_TREE_B = random_tree(120, rng=2)
_SMALL_A = random_tree(40, rng=3)
_SMALL_B = random_tree(40, rng=4)


def test_bench_tree_indexing(benchmark):
    node = _TREE_A.to_node()
    tree = benchmark(Tree, node)
    assert tree.n == _TREE_A.n


def test_bench_optimal_strategy(benchmark):
    result = benchmark(optimal_strategy, _TREE_A, _TREE_B)
    benchmark.extra_info["optimal_cost"] = result.cost


def test_bench_zhang_shasha_distance(benchmark):
    distance = benchmark(ZhangShashaTED().distance, _TREE_A, _TREE_B)
    benchmark.extra_info["distance"] = distance


def test_bench_rted_distance(benchmark):
    distance = benchmark(RTED().distance, _SMALL_A, _SMALL_B)
    benchmark.extra_info["distance"] = distance


def test_bench_edit_mapping(benchmark):
    mapping = benchmark(compute_edit_mapping, _SMALL_A, _SMALL_B)
    benchmark.extra_info["cost"] = mapping.cost


@pytest.mark.parametrize(
    "bound",
    [traversal_string_lower_bound, binary_branch_lower_bound, pq_gram_distance, top_down_upper_bound],
    ids=lambda fn: fn.__name__,
)
def test_bench_bounds(benchmark, bound):
    value = benchmark(bound, _TREE_A, _TREE_B)
    benchmark.extra_info["value"] = float(value)


def test_bench_bracket_round_trip(benchmark):
    text = to_bracket(_TREE_A)

    def round_trip():
        return to_bracket(parse_bracket(text))

    assert benchmark(round_trip) == text
