"""Benchmarks for the strategy ablations (A1 / A2 in DESIGN.md).

A1 compares the optimal cost achievable within restricted strategy spaces;
A2 compares the baseline ``O(n^3)`` strategy computation with Algorithm 2.
"""

import pytest

from repro.algorithms import PathChoice, SIDE_F, SIDE_G, optimal_strategy
from repro.counting import optimal_cost_restricted
from repro.datasets import make_shape
from repro.trees import HEAVY, LEFT, RIGHT

SIZE = 80
SPACES = {
    "lr-only": (PathChoice(SIDE_F, LEFT), PathChoice(SIDE_F, RIGHT)),
    "heavy-only": (PathChoice(SIDE_F, HEAVY), PathChoice(SIDE_G, HEAVY)),
    "full-lrh": (
        PathChoice(SIDE_F, HEAVY),
        PathChoice(SIDE_G, HEAVY),
        PathChoice(SIDE_F, LEFT),
        PathChoice(SIDE_G, LEFT),
        PathChoice(SIDE_F, RIGHT),
        PathChoice(SIDE_G, RIGHT),
    ),
}


@pytest.mark.parametrize("space", sorted(SPACES))
def test_ablation_strategy_space(benchmark, space):
    tree = make_shape("mixed", SIZE)
    cost = benchmark(optimal_cost_restricted, tree, tree, SPACES[space])
    benchmark.extra_info["space"] = space
    benchmark.extra_info["optimal_cost"] = cost


def test_ablation_baseline_strategy_computation(benchmark):
    """The O(n^3) baseline of Section 6.1 (direct cost-formula evaluation)."""
    tree = make_shape("mixed", SIZE)
    cost = benchmark(optimal_cost_restricted, tree, tree, SPACES["full-lrh"])
    benchmark.extra_info["optimal_cost"] = cost


def test_ablation_algorithm2_strategy_computation(benchmark):
    """Algorithm 2 (O(n^2)); must return the same cost as the baseline, faster."""
    tree = make_shape("mixed", SIZE)
    result = benchmark(optimal_strategy, tree, tree)
    benchmark.extra_info["optimal_cost"] = result.cost
