#!/usr/bin/env python3
"""Benchmark: live-corpus mutation — incremental maintenance vs full rebuild.

Two acceptance gates from the live-corpora PR:

* **incremental add ≥ 5x** — appending a small batch to a 10k-tree corpus
  whose inverted index is already built (``add_trees`` + the epoch-keyed
  dense view refresh) must be at least 5x faster than rebuilding a fresh
  :class:`~repro.join.corpus.TreeCorpus` over the same final tree set and
  re-deriving its index from scratch.  Incremental cost is proportional to
  the batch, rebuild cost to the corpus — the ratio is what makes a
  mutation-heavy serving workload viable.
* **epoch-keyed cache hit < 100 µs** — a hit in the service's per-corpus
  :class:`~repro.service.server.PairResultCache` (key: epoch × tree ids ×
  algorithm × cost model × cutoff) must average under 100 µs; the cache
  only pays if a hit is negligible next to even the smallest TED.

Also reported (not gated): removal + compaction cost, and the epoch-keyed
``pack()`` cache hit time.

Run with::

    PYTHONPATH=src python benchmarks/bench_live_corpus.py          # full, writes BENCH_live_corpus.json
    PYTHONPATH=src python benchmarks/bench_live_corpus.py --quick  # CI gate (<1 min)
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datasets import random_tree
from repro.join import TreeCorpus
from repro.service.server import PairResultCache

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_live_corpus.json"

SEED = 20110713
ADD_BATCH = 100


def make_trees(count: int, seed: int = SEED) -> List:
    rng = random.Random(seed)
    return [
        random_tree(rng.randint(6, 12), rng=seed * 10 + i) for i in range(count)
    ]


def bench_incremental_add(corpus_size: int) -> Dict:
    """Incremental ``add_trees`` vs from-scratch rebuild at one corpus size."""
    trees = make_trees(corpus_size + ADD_BATCH)
    base, batch = trees[:corpus_size], trees[corpus_size:]

    corpus = TreeCorpus(base)
    corpus.branch_index()  # the steady-state serving corpus: index built

    start = time.perf_counter()
    corpus.add_trees(batch)
    corpus.branch_index()  # epoch-keyed view refresh, part of the add cost
    incremental_seconds = time.perf_counter() - start
    assert len(corpus) == corpus_size + ADD_BATCH

    start = time.perf_counter()
    rebuilt = TreeCorpus(list(trees))
    rebuilt.branch_index()
    rebuild_seconds = time.perf_counter() - start
    assert rebuilt.branch_index() == corpus.branch_index()

    # Removal is tombstoning plus (past the dead-entry threshold) an in-place
    # posting compaction — reported so regressions in either show up here.
    start = time.perf_counter()
    corpus.remove_trees(list(range(ADD_BATCH)))
    corpus.branch_index()
    removal_seconds = time.perf_counter() - start

    return {
        "corpus_size": corpus_size,
        "add_batch": ADD_BATCH,
        "incremental_add_seconds": incremental_seconds,
        "full_rebuild_seconds": rebuild_seconds,
        "incremental_speedup": rebuild_seconds / max(incremental_seconds, 1e-9),
        "removal_seconds": removal_seconds,
        "compactions": corpus.compactions,
    }


def bench_cache_hit(iterations: int = 2000) -> Dict:
    """Average latency of an epoch-keyed pair-cache hit (and a pack-cache hit)."""
    cache = PairResultCache(capacity=1024)
    keys = [(0, i, i + 1, "rted", "unit", None) for i in range(64)]
    body = {"algorithm": "rted", "distance": 3.0, "subproblems": 123}
    for key in keys:
        cache.put(key, body)
    start = time.perf_counter()
    for i in range(iterations):
        hit = cache.get(keys[i % len(keys)])
        assert hit is not None
    pair_hit_seconds = (time.perf_counter() - start) / iterations

    corpus = TreeCorpus(make_trees(200))
    pack_hit_seconds = None
    if corpus.pack() is not None:  # numpy present
        start = time.perf_counter()
        for _ in range(iterations):
            corpus.pack()
        pack_hit_seconds = (time.perf_counter() - start) / iterations

    return {
        "iterations": iterations,
        "pair_cache_hit_us": pair_hit_seconds * 1e6,
        "pack_cache_hit_us": (
            pack_hit_seconds * 1e6 if pack_hit_seconds is not None else None
        ),
        "pair_cache_hits_counted": cache.hits,
    }


def check_gates(entries: List[Dict], cache: Dict) -> List[str]:
    failures = []
    gated = [e for e in entries if e["corpus_size"] >= 10_000]
    for entry in gated:
        if entry["incremental_speedup"] < 5.0:
            failures.append(
                f"incremental add only {entry['incremental_speedup']:.1f}x vs "
                f"full rebuild at n={entry['corpus_size']} (need >= 5x)"
            )
    if cache["pair_cache_hit_us"] >= 100.0:
        failures.append(
            f"epoch-keyed pair-cache hit averaged {cache['pair_cache_hit_us']:.1f}us "
            "(need < 100us)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI gate run")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    sizes = [10_000] if args.quick else [1_000, 10_000, 30_000]
    entries = []
    for corpus_size in sizes:
        entry = bench_incremental_add(corpus_size)
        entries.append(entry)
        print(
            f"n={corpus_size:>6} add({ADD_BATCH})={entry['incremental_add_seconds'] * 1000:8.1f}ms "
            f"rebuild={entry['full_rebuild_seconds'] * 1000:8.1f}ms "
            f"speedup={entry['incremental_speedup']:6.1f}x "
            f"remove={entry['removal_seconds'] * 1000:7.1f}ms",
            flush=True,
        )
    cache = bench_cache_hit()
    pack_hit_us = cache["pack_cache_hit_us"]
    pack_text = f"{pack_hit_us:.2f}us" if pack_hit_us is not None else "n/a"
    print(
        f"pair-cache hit={cache['pair_cache_hit_us']:.2f}us "
        f"pack-cache hit={pack_text}",
        flush=True,
    )

    failures = check_gates(entries, cache)
    report = {
        "benchmark": "live corpora: incremental index maintenance and epoch-keyed caching",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
        "cache": cache,
        "gates": {
            "incremental_add_5x_at_10k": not any("incremental" in f for f in failures),
            "pair_cache_hit_under_100us": not any("pair-cache" in f for f in failures),
        },
    }

    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)

    if args.quick:
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        print("quick gates:", "FAIL" if failures else "ok")
        return 1 if failures else 0

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
