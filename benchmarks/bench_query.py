#!/usr/bin/env python3
"""Benchmark: one-vs-corpus retrieval (kNN) at scale — metric index vs brute force.

Corpus-size growth curves for :class:`repro.join.QueryEngine` over two
workload families:

* **synthetic** — clustered corpora mixing tree sizes 6–18 (size spread is
  what gives the VP-tree's triangle bounds their discrimination), clusters
  ≤ 1 edit wide;
* **treebank** — `treebank_like_tree` corpora with sizes drawn from 6–20,
  natural (skewed) label distribution.

Per corpus size the benchmark builds the engine (VP-tree included), then
answers perturbed-corpus-tree kNN queries three ways:

* **indexed** — best-first VP-tree search with the shrinking τ-bounded
  refiner (`exact_computed` is the *examined pairs* count, the number a
  sublinear index is judged by);
* **scan** — the sound linear-scan fallback (cascade bounds only);
* **brute** — `batch_distances` over every `(query, corpus[j])` pair: no
  index, no cascade, no cutoff.  The reference cost.

Run with::

    PYTHONPATH=src python benchmarks/bench_query.py            # full, writes BENCH_query.json
    PYTHONPATH=src python benchmarks/bench_query.py --quick    # CI smoke (<1 min)

The committed ``BENCH_query.json`` is the baseline recorded on the machine
that introduced the retrieval core.  Both modes enforce the retrieval-core
acceptance invariants on the synthetic curve — the examined-pairs ratio
``exact_computed / corpus_size`` must *strictly decrease* as the corpus
grows, and indexed kNN must beat brute force in wall-clock at the largest
size — and exit non-zero when either fails; in ``--quick`` mode (the CI
gate) nothing is written unless ``--output`` is given.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datasets import clustered_corpus, perturb_tree, treebank_like_tree
from repro.join import QueryEngine, TreeCorpus, batch_distances

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_query.json"

K = 5
CLUSTER_SIZE = 10
#: Mixed tree sizes: the size spread both feeds the cascade's cheapest bound
#: and spreads the corpus distance distribution, which is what lets
#: vantage-point partitions discriminate (a fixed-size corpus concentrates
#: all cross-cluster distances into a narrow band and defeats any metric
#: index; real collections are size-diverse).
SYNTHETIC_SIZES = [6, 9, 12, 15, 18]
SEED = 20110713


def synthetic_corpus(num_trees: int, seed: int = SEED) -> List:
    trees: List = []
    clusters = max(1, num_trees // CLUSTER_SIZE)
    share, extra = divmod(clusters, len(SYNTHETIC_SIZES))
    for i, tree_size in enumerate(SYNTHETIC_SIZES):
        count = share + (1 if i < extra else 0)
        if count:
            trees.extend(
                clustered_corpus(
                    num_clusters=count,
                    cluster_size=CLUSTER_SIZE,
                    tree_size=tree_size,
                    num_edits=1,
                    rng=random.Random(seed * 1000 + i),
                )
            )
    random.Random(seed).shuffle(trees)
    return trees[:num_trees]


def treebank_corpus(num_trees: int, seed: int = SEED) -> List:
    rng = random.Random(seed + 1)
    return [
        treebank_like_tree(rng=rng, target_size=rng.randint(6, 20))
        for _ in range(num_trees)
    ]


def make_queries(trees: List, count: int, seed: int = SEED) -> List:
    """Near-duplicate queries: perturbed copies of random corpus trees."""
    rng = random.Random(seed + 2)
    queries = []
    for _ in range(count):
        base = trees[rng.randrange(len(trees))]
        labels = sorted({base.labels[i] for i in range(base.n)})
        queries.append(perturb_tree(base, rng.randint(0, 2), alphabet=labels, rng=rng))
    return queries


def brute_force_knn(corpus: TreeCorpus, query, k: int):
    """Reference ranking: every pair exact, no index/cascade/cutoff."""
    query_corpus = TreeCorpus([query], interner=corpus.interner())
    entries = batch_distances(
        query_corpus, corpus, [(0, j) for j in range(len(corpus))]
    )
    ranking = sorted((distance, j) for _, j, distance, *_ in entries)
    return [(j, d) for d, j in ranking[:k]]


def run_family(
    family: str, sizes: List[int], num_queries: int, brute_queries: int
) -> List[Dict]:
    entries: List[Dict] = []
    for num_trees in sizes:
        trees = (
            synthetic_corpus(num_trees) if family == "synthetic" else treebank_corpus(num_trees)
        )
        corpus = TreeCorpus(trees)
        queries = make_queries(trees, num_queries)

        engine = QueryEngine(corpus)
        start = time.perf_counter()
        engine.metric_index()
        build_seconds = time.perf_counter() - start

        knn_seconds = examined = pruned = 0.0
        indexed_results = []
        for query in queries:
            start = time.perf_counter()
            result = engine.knn(query, K)
            knn_seconds += time.perf_counter() - start
            examined += result.stats.exact_computed
            pruned += result.stats.vp_pruned_subtrees
            indexed_results.append(result.matches)

        scan_engine = QueryEngine(corpus, use_metric_index=False)
        scan_seconds = scan_examined = 0.0
        for query in queries:
            start = time.perf_counter()
            result = scan_engine.knn(query, K)
            scan_seconds += time.perf_counter() - start
            scan_examined += result.stats.exact_computed

        brute_seconds = 0.0
        for query, indexed in zip(queries[:brute_queries], indexed_results):
            start = time.perf_counter()
            reference = brute_force_knn(corpus, query, K)
            brute_seconds += time.perf_counter() - start
            assert indexed == reference, (
                f"indexed kNN diverged from brute force at n={num_trees}"
            )

        entry = {
            "family": family,
            "corpus_size": num_trees,
            "k": K,
            "queries": num_queries,
            "build_seconds": build_seconds,
            "knn_seconds_avg": knn_seconds / num_queries,
            "scan_seconds_avg": scan_seconds / num_queries,
            "brute_seconds_avg": brute_seconds / brute_queries,
            "examined_avg": examined / num_queries,
            "examined_ratio": examined / num_queries / num_trees,
            "scan_examined_avg": scan_examined / num_queries,
            "vp_pruned_avg": pruned / num_queries,
            "speedup_vs_brute": (brute_seconds / brute_queries)
            / (knn_seconds / num_queries),
        }
        entries.append(entry)
        print(
            f"{family:>9} n={num_trees:>6} build={build_seconds:7.1f}s "
            f"knn={entry['knn_seconds_avg'] * 1000:8.1f}ms "
            f"brute={entry['brute_seconds_avg'] * 1000:8.1f}ms "
            f"examined={entry['examined_avg']:8.0f} "
            f"ratio={entry['examined_ratio']:.4f} "
            f"speedup={entry['speedup_vs_brute']:.1f}x",
            flush=True,
        )
    return entries


def check_invariants(entries: List[Dict]) -> List[str]:
    """The retrieval-core acceptance gates, on the synthetic growth curve."""
    failures = []
    curve = [e for e in entries if e["family"] == "synthetic"]
    ratios = [e["examined_ratio"] for e in curve]
    if not all(a > b for a, b in zip(ratios, ratios[1:])):
        failures.append(f"examined ratio not strictly decreasing: {ratios}")
    largest = curve[-1]
    if largest["speedup_vs_brute"] <= 1.0:
        failures.append(
            f"no kNN speedup vs brute force at n={largest['corpus_size']}: "
            f"{largest['speedup_vs_brute']:.2f}x"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.quick:
        synthetic_sizes = [500, 2000]
        treebank_sizes = [500]
        num_queries, brute_queries = 5, 2
    else:
        synthetic_sizes = [1000, 10000, 100000]
        treebank_sizes = [1000, 10000]
        num_queries, brute_queries = 10, 3

    entries = run_family("synthetic", synthetic_sizes, num_queries, brute_queries)
    entries += run_family("treebank", treebank_sizes, num_queries, brute_queries)

    failures = check_invariants(entries)
    report = {
        "benchmark": "one-vs-corpus kNN: metric index vs linear scan vs brute force",
        "k": K,
        "cluster_size": CLUSTER_SIZE,
        "synthetic_tree_sizes": SYNTHETIC_SIZES,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": entries,
        "gates": {
            "examined_ratio_strictly_decreasing": not any(
                "ratio" in f for f in failures
            ),
            "speedup_vs_brute_at_largest": not any("speedup" in f for f in failures),
        },
    }

    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)

    if args.quick:
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        print("quick gates:", "FAIL" if failures else "ok")
        return 1 if failures else 0

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
