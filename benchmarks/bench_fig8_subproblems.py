"""Benchmark harness for Figure 8 — relevant-subproblem counts per shape.

Each benchmark counts the relevant subproblems of one algorithm on an
identical-tree pair of one shape (the quantity plotted in Figure 8).  The
benchmark *value* is the time to evaluate the cost formula; the subproblem
counts themselves are attached to ``benchmark.extra_info`` so that the
figure's series can be read directly from the benchmark output
(``pytest benchmarks/ --benchmark-only -q``).

Sizes default to 200 nodes per tree; the full paper sweep (20–2000) can be
reproduced with ``repro.experiments.run_fig8(sizes=range(400, 2001, 400))``.
"""

import pytest

from repro.counting import count_subproblems_fast
from repro.datasets import make_shape, random_tree
from repro.experiments import run_fig8

SIZE = 200
SHAPES = ["left-branch", "right-branch", "full-binary", "zigzag", "mixed", "random"]
ALGORITHMS = ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]


def _tree(shape: str):
    if shape == "random":
        return random_tree(SIZE, rng=42)
    return make_shape(shape, SIZE)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_subproblem_count(benchmark, shape, algorithm):
    tree = _tree(shape)
    count = benchmark(count_subproblems_fast, algorithm, tree, tree)
    benchmark.extra_info["shape"] = shape
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["tree_size"] = tree.n
    benchmark.extra_info["subproblems"] = count


def test_fig8_full_sweep_small(benchmark):
    """One-shot mini sweep across all shapes (sizes 20-120) — the full figure."""
    result = benchmark.pedantic(
        run_fig8, kwargs={"sizes": [20, 70, 120]}, iterations=1, rounds=1
    )
    benchmark.extra_info["points"] = sum(len(points) for points in result.points.values())
