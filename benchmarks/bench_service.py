#!/usr/bin/env python3
"""Benchmark: the serving layer — deadline overhead, latency, load shedding.

Three measurements back the PR's serving-layer claims:

* **deadline-check overhead** — the amortized ``Deadline.tick`` machinery
  must cost < 1–2% of kernel time on armed-but-never-firing runs (the
  adaptive interval doubles until actual clock reads land roughly once per
  ``TARGET_RESOLUTION``); measured as armed-vs-plain wall clock on a
  mid-size pair, plus the interval the adaptation settled on.  This is the
  measurement justifying the check interval: the gate fails if overhead
  exceeds 5% (noise margin over the ~1% target).
* **latency percentiles under concurrency** — p50/p95/p99 of ``/distance``
  round trips at increasing client concurrency against an in-process
  service (admission queue sized to admit everything).
* **shed rate under overload** — a burst far beyond the admission bound
  against a one-slot service: the gate asserts overload produces fast 503
  shedding (bounded queue), not queue growth, and that every response —
  served or shed — returns promptly.

Run with::

    PYTHONPATH=src python benchmarks/bench_service.py            # full, writes BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI smoke gate

In ``--quick`` mode nothing is written unless ``--output`` is given.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional

import urllib.error
import urllib.request

from repro.api import compute
from repro.datasets import random_tree
from repro.io import to_bracket
from repro.join import TreeCorpus
from repro.runtime import Deadline, TARGET_RESOLUTION
from repro.service import RtedService, ServiceConfig

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_service.json"

#: CI gate on the armed-run overhead: comfortably above the ~1% design
#: target, comfortably below anything that would signal a broken interval.
OVERHEAD_GATE = 0.05


# --------------------------------------------------------------------------- #
# Deadline-check overhead (pure library, no HTTP)
# --------------------------------------------------------------------------- #
def measure_overhead(quick: bool) -> Dict:
    f, g = random_tree(260, rng=11), random_tree(250, rng=12)
    reps = 4 if quick else 9
    compute(f, g)  # warm caches before timing

    deadline = Deadline(3600.0)
    plain_times: List[float] = []
    armed_times: List[float] = []
    # Interleave the two variants so clock drift and background load hit
    # both equally; min-of-reps then cancels the noise floor.
    for _ in range(reps):
        start = time.perf_counter()
        compute(f, g)
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        compute(f, g, deadline=deadline)
        armed_times.append(time.perf_counter() - start)
    plain, armed = min(plain_times), min(armed_times)
    return {
        "pair_nodes": [f.n, g.n],
        "plain_seconds": plain,
        "armed_seconds": armed,
        "overhead_fraction": armed / plain - 1.0,
        "settled_tick_interval": deadline.interval,
        "target_resolution_seconds": TARGET_RESOLUTION,
    }


# --------------------------------------------------------------------------- #
# HTTP helpers
# --------------------------------------------------------------------------- #
def _post(base: str, path: str, body: dict, timeout: float = 60.0):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST"
    )
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = response.status
            response.read()
    except urllib.error.HTTPError as error:
        status = error.code
        error.read()
    return status, time.perf_counter() - start


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    return {
        "p50_ms": pct(0.50) * 1000,
        "p95_ms": pct(0.95) * 1000,
        "p99_ms": pct(0.99) * 1000,
        "mean_ms": statistics.fmean(ordered) * 1000,
    }


# --------------------------------------------------------------------------- #
# Latency under concurrency + shedding under overload
# --------------------------------------------------------------------------- #
async def bench_latency(quick: bool) -> List[Dict]:
    corpus = TreeCorpus([random_tree(16, rng=i) for i in range(20)])
    service = RtedService(
        {"default": corpus},
        ServiceConfig(port=0, max_inflight=4, max_queue=1024),
    )
    await service.start()
    base = f"http://127.0.0.1:{service.port}"
    tree_a = to_bracket(random_tree(24, rng=1))
    tree_b = to_bracket(random_tree(24, rng=2))
    body = {"tree_a": tree_a, "tree_b": tree_b}
    loop = asyncio.get_running_loop()
    pool = ThreadPoolExecutor(max_workers=32)
    entries = []
    try:
        total = 40 if quick else 200
        for concurrency in [1, 4, 8]:
            gate = asyncio.Semaphore(concurrency)

            async def one():
                async with gate:
                    return await loop.run_in_executor(
                        pool, partial(_post, base, "/distance", body)
                    )

            start = time.perf_counter()
            outcomes = await asyncio.gather(*(one() for _ in range(total)))
            wall = time.perf_counter() - start
            latencies = [seconds for status, seconds in outcomes if status == 200]
            entry = {
                "concurrency": concurrency,
                "requests": total,
                "served": len(latencies),
                "throughput_rps": total / wall,
                **_percentiles(latencies),
            }
            entries.append(entry)
            print(
                f"concurrency={concurrency} p50={entry['p50_ms']:6.1f}ms "
                f"p95={entry['p95_ms']:6.1f}ms p99={entry['p99_ms']:6.1f}ms "
                f"rps={entry['throughput_rps']:6.1f}",
                flush=True,
            )
    finally:
        await service.drain()
        pool.shutdown(wait=False)
    return entries


async def bench_shedding(quick: bool) -> Dict:
    corpus = TreeCorpus([random_tree(16, rng=i) for i in range(10)])
    service = RtedService(
        {"default": corpus},
        ServiceConfig(port=0, max_inflight=1, max_queue=2, retry_after=1.0),
    )
    await service.start()
    base = f"http://127.0.0.1:{service.port}"
    # Each admitted request takes real work; the burst arrives all at once.
    tree_a = to_bracket(random_tree(120, rng=7))
    tree_b = to_bracket(random_tree(120, rng=8))
    body = {"tree_a": tree_a, "tree_b": tree_b, "deadline": 5.0}
    loop = asyncio.get_running_loop()
    burst = 12 if quick else 40
    pool = ThreadPoolExecutor(max_workers=burst)
    try:
        start = time.perf_counter()
        outcomes = await asyncio.gather(
            *(
                loop.run_in_executor(pool, partial(_post, base, "/distance", body))
                for _ in range(burst)
            )
        )
        wall = time.perf_counter() - start
    finally:
        await service.drain()
        pool.shutdown(wait=False)
    shed = sum(1 for status, _ in outcomes if status == 503)
    served = sum(1 for status, _ in outcomes if status == 200)
    slowest = max(seconds for _, seconds in outcomes)
    entry = {
        "burst": burst,
        "served": served,
        "shed": shed,
        "shed_rate": shed / burst,
        "burst_wall_seconds": wall,
        "slowest_response_seconds": slowest,
    }
    print(
        f"overload burst={burst} served={served} shed={shed} "
        f"({entry['shed_rate']:.0%}) slowest={slowest:.2f}s",
        flush=True,
    )
    return entry


# --------------------------------------------------------------------------- #
def check_gates(overhead: Dict, shedding: Dict) -> List[str]:
    failures = []
    if overhead["overhead_fraction"] > OVERHEAD_GATE:
        failures.append(
            f"deadline-check overhead {overhead['overhead_fraction']:.1%} "
            f"exceeds the {OVERHEAD_GATE:.0%} gate"
        )
    if shedding["shed"] == 0:
        failures.append("overload burst produced no shedding (unbounded queue?)")
    if shedding["served"] == 0:
        failures.append("overload burst served nothing (admission gate stuck)")
    if shedding["slowest_response_seconds"] > 30.0:
        failures.append(
            f"a response took {shedding['slowest_response_seconds']:.1f}s under "
            "overload — shedding is not keeping responses fast"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    overhead = measure_overhead(args.quick)
    print(
        f"deadline overhead: {overhead['overhead_fraction']:+.2%} "
        f"(interval settled at {overhead['settled_tick_interval']} ticks)",
        flush=True,
    )
    latency = asyncio.run(bench_latency(args.quick))
    shedding = asyncio.run(bench_shedding(args.quick))

    failures = check_gates(overhead, shedding)
    report = {
        "benchmark": "serving layer: deadline overhead, latency percentiles, load shedding",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "deadline_overhead": overhead,
        "latency": latency,
        "shedding": shedding,
        "gates": {
            "overhead_below_gate": not any("overhead" in f for f in failures),
            "overload_sheds": shedding["shed"] > 0,
            "overload_still_serves": shedding["served"] > 0,
        },
    }

    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)

    if args.quick:
        if args.output is not None:
            args.output.write_text(json.dumps(report, indent=2) + "\n")
        print("quick gates:", "FAIL" if failures else "ok")
        return 1 if failures else 0

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
