"""Benchmark harness for Table 2 — RTED vs. competitors on TreeFam-like trees.

Benchmarks the subproblem counting over size-partitioned phylogenies and
attaches the resulting best/worst-competitor ratio matrices to
``extra_info`` (the two sub-tables of Table 2).
"""

from repro.experiments import run_table2


def test_table2_ratio_matrices(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs={
            "num_trees": 24,
            "boundaries": (80, 160),
            "size_range": (30, 260),
            "sample_size": 3,
            "seed": 42,
        },
        iterations=1,
        rounds=1,
    )
    benchmark.extra_info["partitions"] = result.partition_labels
    benchmark.extra_info["ratio_to_best"] = [
        [round(value, 3) for value in row] for row in result.matrix("best")
    ]
    benchmark.extra_info["ratio_to_worst"] = [
        [round(value, 3) for value in row] for row in result.matrix("worst")
    ]
    # RTED never computes more subproblems than the best competitor.
    for cell in result.cells.values():
        assert cell.ratio_to_best <= 1.0 + 1e-9
