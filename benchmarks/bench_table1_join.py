"""Benchmark harness for Table 1 — similarity self-join over mixed-shape trees.

One benchmark per algorithm; each runs the full self join over the
{LB, RB, FB, ZZ, Random} workload and reports the total number of relevant
subproblems in ``extra_info`` (the second column of Table 1).
"""

import itertools

import pytest

from repro.algorithms import make_algorithm
from repro.counting import count_subproblems_fast
from repro.datasets import join_workload

NODE_COUNT = 32
THRESHOLD = NODE_COUNT / 2
ALGORITHMS = ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]

_WORKLOAD = join_workload(NODE_COUNT, rng=42)
_PAIRS = list(itertools.combinations(range(len(_WORKLOAD)), 2))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table1_join_runtime(benchmark, algorithm):
    algo = make_algorithm(algorithm)

    def join():
        matches = 0
        subproblems = 0
        for i, j in _PAIRS:
            result = algo.compute(_WORKLOAD[i], _WORKLOAD[j])
            subproblems += result.subproblems
            if result.distance < THRESHOLD:
                matches += 1
        return matches, subproblems

    matches, subproblems = benchmark(join)
    cost_formula = sum(
        count_subproblems_fast(algorithm, _WORKLOAD[i], _WORKLOAD[j]) for i, j in _PAIRS
    )
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["matches"] = matches
    benchmark.extra_info["subproblems_evaluated"] = subproblems
    benchmark.extra_info["subproblems_cost_formula"] = cost_formula


def test_table1_join_with_lower_bound_filter(benchmark):
    """Extension: the same join with the cheap lower-bound filter enabled."""
    from repro.join import similarity_self_join

    result = benchmark(
        similarity_self_join,
        _WORKLOAD,
        THRESHOLD,
        "rted",
        None,
        True,
    )
    benchmark.extra_info["pairs_filtered"] = result.pairs_filtered
    benchmark.extra_info["matches"] = len(result.matches)
