"""Benchmark harness for Figure 10 — overhead of the strategy computation.

Two groups of benchmarks: the strategy computation alone (Algorithm 2) and the
full RTED run, on TreeBank-like, SwissProt-like, and random trees.  The ratio
of the two medians is the "strategy share" the figure reports; it must shrink
as trees grow.
"""

import pytest

from repro.algorithms import RTED, optimal_strategy
from repro.datasets import random_tree, swissprot_like_tree, treebank_like_tree

DATASET_BUILDERS = {
    "treebank": lambda size: treebank_like_tree(rng=1, target_size=size),
    "swissprot": lambda size: swissprot_like_tree(rng=2, target_size=size),
    "random": lambda size: random_tree(size, rng=3),
}

SIZES = [40, 80]


@pytest.mark.parametrize("dataset", sorted(DATASET_BUILDERS))
@pytest.mark.parametrize("size", SIZES)
def test_fig10_strategy_computation_only(benchmark, dataset, size):
    tree = DATASET_BUILDERS[dataset](size)
    result = benchmark(optimal_strategy, tree, tree)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["tree_size"] = tree.n
    benchmark.extra_info["optimal_cost"] = result.cost


@pytest.mark.parametrize("dataset", sorted(DATASET_BUILDERS))
@pytest.mark.parametrize("size", SIZES)
def test_fig10_full_rted(benchmark, dataset, size):
    tree = DATASET_BUILDERS[dataset](size)
    algorithm = RTED()
    result = benchmark(algorithm.compute, tree, tree)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["tree_size"] = tree.n
    benchmark.extra_info["strategy_share"] = (
        result.strategy_time / result.total_time if result.total_time else 0.0
    )
