#!/usr/bin/env python3
"""Benchmark + acceptance gate: supervised execution under injected faults.

Measures what fault tolerance *costs* — the supervised executor's overhead
on a clean run — and what recovery *buys*: a multiprocessing similarity
join that completes despite a 20% worker crash rate, bit-identical to the
fault-free serial run.  Three scenarios over the 2k-tree clustered join
corpus (the ``bench_join_scale.py`` workload):

* **serial** — the fault-free ``workers=1`` reference run (the oracle the
  other scenarios are compared against, match for match).
* **mp-clean** — ``workers=2`` under the supervisor with no faults: the
  supervision overhead over the old bare pool is the poll loop only.
* **mp-crash** — ``workers=2`` with ``worker_crash:0.2`` injected: one in
  five chunk attempts kills its worker mid-chunk; the supervisor retries
  and/or degrades until every pair is verified.

Run with::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py          # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --quick  # CI gate

The process exits non-zero unless (the ISSUE 7 acceptance criteria):

* the crash-injected match set equals the serial match set exactly,
* ``JoinStats.retried_chunks > 0`` under injection (faults really fired),
* no orphaned ``rted_pack_*`` shared-memory block remains afterwards.

``--quick`` shrinks the corpus (CI runners give the pool 2 slow cores);
the full mode uses the complete 2k-tree corpus.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.datasets import clustered_corpus
from repro.join import batch_self_join
from repro.join import faults
from repro.join.shared import SHM_PREFIX, _SHM_DIR

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_fault_tolerance.json"

THRESHOLD = 3.0
CHUNK_SIZE = 64
CRASH_SPEC = "worker_crash:0.2"
CRASH_SEED = 7


def _orphaned_blocks() -> list:
    if not os.path.isdir(_SHM_DIR):
        return []
    mine = f"{SHM_PREFIX}{os.getpid()}_"
    return [entry for entry in os.listdir(_SHM_DIR) if entry.startswith(mine)]


def _run_join(trees, workers: int, plan) -> tuple:
    with faults.use_plan(plan):
        started = time.perf_counter()
        result = batch_self_join(
            trees, THRESHOLD, workers=workers, chunk_size=CHUNK_SIZE,
            early_accept=False,
        )
        elapsed = time.perf_counter() - started
    return result, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small corpus CI gate")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    num_clusters = 20 if args.quick else 200  # x10 trees per cluster
    trees = clustered_corpus(
        num_clusters=num_clusters, cluster_size=10, tree_size=12, rng=42
    )
    print(f"corpus: {len(trees)} trees, threshold {THRESHOLD:g}")

    serial, serial_time = _run_join(trees, workers=1, plan=None)
    print(f"serial            {serial_time:8.2f}s   matches={len(serial.matches)}")

    mp_clean, clean_time = _run_join(trees, workers=2, plan=None)
    print(
        f"mp-clean          {clean_time:8.2f}s   matches={len(mp_clean.matches)} "
        f"retried={mp_clean.stats.retried_chunks}"
    )

    crash_plan = faults.FaultPlan.parse(CRASH_SPEC, seed=CRASH_SEED)
    mp_crash, crash_time = _run_join(trees, workers=2, plan=crash_plan)
    stats = mp_crash.stats
    print(
        f"mp-crash (20%)    {crash_time:8.2f}s   matches={len(mp_crash.matches)} "
        f"retried={stats.retried_chunks} failed_workers={stats.failed_workers} "
        f"degraded_to={stats.degraded_to or '-'} poisoned={stats.poisoned_pairs}"
    )

    orphans = _orphaned_blocks()
    failures = []
    if mp_clean.matches != serial.matches:
        failures.append("clean mp match list differs from serial")
    if mp_crash.matches != serial.matches:
        failures.append("crash-injected match list differs from serial")
    if stats.retried_chunks <= 0:
        failures.append("no chunk retries recorded under 20% crash injection")
    if stats.poisoned_pairs:
        failures.append(f"{stats.poisoned_pairs} pairs poisoned (crashes must be retryable)")
    if orphans:
        failures.append(f"orphaned shared-memory blocks left behind: {orphans}")

    payload = {
        "benchmark": "fault_tolerance",
        "python": platform.python_version(),
        "quick": args.quick,
        "corpus_trees": len(trees),
        "threshold": THRESHOLD,
        "crash_spec": CRASH_SPEC,
        "serial_seconds": round(serial_time, 3),
        "mp_clean_seconds": round(clean_time, 3),
        "mp_crash_seconds": round(crash_time, 3),
        "matches": len(serial.matches),
        "crash_retried_chunks": stats.retried_chunks,
        "crash_failed_workers": stats.failed_workers,
        "crash_degraded_to": stats.degraded_to,
        "crash_recovery_overhead": round(crash_time / max(clean_time, 1e-9), 2),
    }
    output = args.output or (None if args.quick else DEFAULT_OUTPUT)
    if output is not None:
        output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: crash-injected join bit-identical to serial, retries recorded, no shm orphans")
    return 0


if __name__ == "__main__":
    sys.exit(main())
