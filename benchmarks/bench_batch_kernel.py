#!/usr/bin/env python3
"""Benchmark: the struct-of-arrays batch kernel and the compiled backend.

Measures the per-pair cost of small unit-cost TED through three kernels —
always asserting bit-identical results between them first:

* **scalar** — PR 4's per-pair fast path (``TedWorkspace.compute_small``),
  the ~130 µs/pair baseline recorded by ``bench_batch_ted.py``;
* **numpy** — the lockstep SoA batch kernel
  (:func:`repro.algorithms.batch_kernel.run_batch`), one vectorized row
  update per DP step across all lanes;
* **native** — the compiled backend
  (:func:`repro.algorithms.native.native_batch`, Numba or a
  runtime-compiled C library), one library call per batch.

Measurement families:

* **headline** — the 1000-pair 12-node clustered ``rted`` batch of
  ``bench_batch_ted.py`` (the ROADMAP target: ≤ 10 µs/pair, ≥ 10x over the
  PR 4 scalar baseline), unbounded and τ-bounded (cutoff 3);
* **size classes** — the speedup curve at 8/16/32/64-node trees;
* **cutoff sweep** (``--sweep``) — per-pair cost of the small-pair fast
  path vs the full spf executor across tree sizes, the experiment behind
  the ``RTED_SMALL_PAIR_CUTOFF`` default of 64.

Run with::

    PYTHONPATH=src python benchmarks/bench_batch_kernel.py           # full, writes BENCH_batch.json
    PYTHONPATH=src python benchmarks/bench_batch_kernel.py --sweep   # full + cutoff sweep
    PYTHONPATH=src python benchmarks/bench_batch_kernel.py --quick   # CI smoke gate

In ``--quick`` mode nothing is written unless ``--output`` is given, and the
process exits non-zero unless every kernel is bit-identical to the scalar
reference and the batch kernels do not regress it (plus, when a compiled
provider is present, native stays ≤ 25 µs/pair on the reduced headline —
conservative CI gates; the committed full-mode ``BENCH_batch.json`` records
the reference numbers, ≈ 3 µs/pair native on the baseline container).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

from repro.algorithms import TedWorkspace, make_algorithm
from repro.algorithms.base import CutoffExceeded
from repro.algorithms.batch_kernel import build_corpus_pack, run_batch
from repro.algorithms.native import native_available, native_batch, native_provider
from repro.datasets import clustered_corpus

DEFAULT_OUTPUT = Path(__file__).parent / "BENCH_batch.json"

#: PR 4's scalar small-pair baseline on the headline workload (the
#: ``per_pair_us_workspace_median`` of the previous ``BENCH_batch.json``).
PR4_BASELINE_US = 129.86

HEADLINE_CUTOFF = 3.0


def make_workload(tree_size: int, pairs: int, rng: int = 1):
    """The clustered verify-stage workload of ``bench_batch_ted.py``."""
    trees = clustered_corpus(
        num_clusters=10, cluster_size=10, tree_size=tree_size, num_edits=2, rng=rng
    )
    all_pairs = [
        (i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))
    ]
    random.Random(41).shuffle(all_pairs)
    return trees, all_pairs[:pairs]


def scalar_run(workspace, trees, pairs, cutoff):
    """(total_seconds, results) for the per-pair scalar kernel."""
    compute_small = workspace.compute_small
    out: List[Tuple] = []
    start = time.perf_counter()
    for i, j in pairs:
        try:
            value, cells = compute_small(trees[i], trees[j], cutoff=cutoff)
            out.append((value, cells, False))
        except CutoffExceeded as exceeded:
            out.append((exceeded.lower_bound, exceeded.subproblems, True))
    return time.perf_counter() - start, out


def batch_run(kernel, pack, fi, gi, cutoff):
    """(total_seconds, results) for one whole-batch kernel call."""
    start = time.perf_counter()
    out = kernel(pack, pack, fi, gi, cutoff=cutoff)
    elapsed = time.perf_counter() - start
    if out is None:
        return None, None
    values, cells, aborted = out
    results = [
        (float(values[p]), int(cells[p]), bool(aborted[p]))
        for p in range(len(fi))
    ]
    return elapsed, results


def measure_kernels(trees, pairs, cutoff, repeats: int) -> Dict:
    """Median per-pair µs for every kernel on one workload, identity-checked.

    In bounded mode pairs failing the ``|n − m| ≥ τ`` pre-check are excluded
    (the chunk driver answers them without touching any kernel), so every
    kernel runs the same lane set.
    """
    workspace = TedWorkspace()
    if cutoff is not None:
        pairs = [
            (i, j) for i, j in pairs if abs(trees[i].n - trees[j].n) < cutoff
        ]
    pack = build_corpus_pack(trees, workspace.interner, workspace.small_pair_cutoff)
    # Only kernel-eligible lanes are comparable across kernels (perturbation
    # can push a few trees past the size cutoff; those pairs take the
    # per-pair executor in production and are excluded here).
    before = len(pairs)
    pairs = [(i, j) for i, j in pairs if pack.eligible[i] and pack.eligible[j]]
    if len(pairs) != before:
        print(f"  (dropped {before - len(pairs)} kernel-ineligible pairs)")
    fi = [i for i, _ in pairs]
    gi = [j for _, j in pairs]
    for tree in trees:  # warm the per-tree caches out of the timed region
        workspace._small_arrays(tree)

    times: Dict[str, List[float]] = {"scalar": [], "numpy": [], "native": []}
    reference = None
    for _ in range(repeats):
        elapsed, results = scalar_run(workspace, trees, pairs, cutoff)
        times["scalar"].append(elapsed)
        if reference is None:
            reference = results
        assert results == reference

        elapsed, results = batch_run(run_batch, pack, fi, gi, cutoff)
        assert results == reference, "numpy batch kernel diverged from scalar"
        times["numpy"].append(elapsed)

        if native_available():
            elapsed, results = batch_run(native_batch, pack, fi, gi, cutoff)
            assert results is not None
            assert results == reference, "native kernel diverged from scalar"
            times["native"].append(elapsed)

    n = max(1, len(pairs))
    entry: Dict = {"pairs": len(pairs), "cutoff": cutoff, "per_pair_us": {}}
    for kernel, samples in times.items():
        if samples:
            entry["per_pair_us"][kernel] = median(samples) / n * 1e6
    scalar_us = entry["per_pair_us"]["scalar"]
    entry["speedup_vs_scalar"] = {
        kernel: scalar_us / us
        for kernel, us in entry["per_pair_us"].items()
        if kernel != "scalar"
    }
    return entry


def run_headline(pairs: int, repeats: int) -> Dict:
    trees, pair_list = make_workload(12, pairs)
    unbounded = measure_kernels(trees, pair_list, None, repeats)
    bounded = measure_kernels(trees, pair_list, HEADLINE_CUTOFF, repeats)
    best = min(
        unbounded["per_pair_us"].get("native", float("inf")),
        unbounded["per_pair_us"]["numpy"],
    )
    return {
        "workload": f"clustered 12-node corpus, {pairs} pairs, rted verify stage, unit costs",
        "pr4_scalar_baseline_us": PR4_BASELINE_US,
        "unbounded": unbounded,
        "bounded": bounded,
        "best_batch_per_pair_us": best,
        "speedup_vs_pr4_baseline": PR4_BASELINE_US / best,
    }


def run_size_classes(repeats: int, quick: bool) -> List[Dict]:
    entries = []
    for size in (8, 16, 32, 64):
        pairs = 200 if quick else (1000 if size <= 16 else 400)
        trees, pair_list = make_workload(size, pairs, rng=size)
        entry = measure_kernels(trees, pair_list, None, repeats)
        entry["tree_size"] = size
        entries.append(entry)
    return entries


def run_cutoff_sweep(repeats: int) -> Dict:
    """Small-pair fast path vs the spf executor across tree sizes.

    ``small_pair_cutoff`` decides which pairs take the flat keyroot program
    instead of the full strategy-driven executor; the crossover of the two
    curves is the evidence behind the default (64, overridable via
    ``RTED_SMALL_PAIR_CUTOFF``).
    """
    rows = []
    for size in (16, 32, 48, 64, 80, 96):
        trees, pair_list = make_workload(size, 60, rng=size)
        per_path = {}
        for path, cutoff_setting in (("small_pair", 128), ("spf_executor", 0)):
            algo = make_algorithm(
                "rted", workspace=TedWorkspace(small_pair_cutoff=cutoff_setting)
            )
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                for i, j in pair_list:
                    algo.compute(trees[i], trees[j])
                samples.append(time.perf_counter() - start)
            per_path[path] = median(samples) / len(pair_list) * 1e6
        rows.append({"tree_size": size, "per_pair_us": per_path})
    return {
        "workloads": rows,
        "chosen_default": 64,
        "note": "small-pair fast path per-pair cost vs the spf executor; "
        "the flat program wins at every size but its edge narrows (~5x at "
        "16 nodes, ~1.2x at 96) while its reusable buffers grow "
        "quadratically with the cutoff — 64 keeps the decisive wins and "
        "leaves strategy selection to the executor where it starts to "
        "matter",
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke gate")
    parser.add_argument("--sweep", action="store_true", help="include the cutoff sweep")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    pairs = 200 if args.quick else 1000
    repeats = 3 if args.quick else 7

    provider = native_provider()
    print(f"native provider: {provider or 'none (pure NumPy fallback)'}")

    headline = run_headline(pairs, repeats)
    up = headline["unbounded"]["per_pair_us"]
    print(
        f"headline 12-node x{pairs}: scalar {up['scalar']:.1f} us/pair, "
        f"numpy {up['numpy']:.1f} us/pair"
        + (f", native {up['native']:.2f} us/pair" if "native" in up else "")
    )
    print(
        f"best batch kernel: {headline['best_batch_per_pair_us']:.2f} us/pair "
        f"({headline['speedup_vs_pr4_baseline']:.1f}x vs PR 4 baseline "
        f"{PR4_BASELINE_US} us/pair)"
    )

    size_classes = run_size_classes(repeats, args.quick)
    for entry in size_classes:
        speed = ", ".join(
            f"{kernel} {us:.1f}" for kernel, us in entry["per_pair_us"].items()
        )
        print(f"size {entry['tree_size']:>2}: {speed} us/pair")

    report = {
        "benchmark": "batch-vectorized small-pair TED (SoA batch kernel + compiled backend)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "native_provider": provider,
        "pr4_scalar_baseline_us": PR4_BASELINE_US,
        "headline": headline,
        "size_classes": size_classes,
    }
    if args.sweep:
        report["cutoff_sweep"] = run_cutoff_sweep(repeats)
        for row in report["cutoff_sweep"]["workloads"]:
            per = row["per_pair_us"]
            print(
                f"sweep size {row['tree_size']:>2}: small-pair "
                f"{per['small_pair']:.0f} us vs spf {per['spf_executor']:.0f} us"
            )

    if args.quick:
        failures = []
        best = headline["best_batch_per_pair_us"]
        if provider is not None:
            # Compiled leg: the ROADMAP target with generous CI headroom.
            if up.get("native", 0.0) > 25.0:
                failures.append(f"native kernel too slow: {up['native']:.1f} us/pair")
            if best > up["scalar"]:
                failures.append(
                    f"batch kernel regressed the scalar path "
                    f"({best:.1f} vs {up['scalar']:.1f} us/pair)"
                )
        elif up["numpy"] > 2.0 * up["scalar"]:
            # Fallback leg: the lockstep kernel only breaks even at small
            # sizes, so gate it as a sanity bound, not a speedup.
            failures.append(
                f"numpy lockstep kernel unexpectedly slow "
                f"({up['numpy']:.1f} vs scalar {up['scalar']:.1f} us/pair)"
            )
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            return 1
        print("quick gates passed (identity asserted on every run)")
        if args.output is None:
            return 0

    output = args.output or DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
