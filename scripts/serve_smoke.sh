#!/usr/bin/env bash
# End-to-end smoke test for the HTTP serving layer (`rted serve`).
#
# Exercises the full acceptance scenario from a shell, the way an operator
# would: start the server on an ephemeral port, hit every endpoint family,
# prove that an over-deadline request comes back as a fast 504 (not a hang),
# then SIGTERM the server and assert a clean drain — exit code 0 and no
# orphaned shared-memory blocks.  Every step is timeout-wrapped so a
# regression fails fast instead of stalling CI.
#
# Usage: PYTHONPATH=src scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# A small corpus plus a large adversarial pair for the deadline probe.
python - "$workdir" <<'EOF'
import sys
from pathlib import Path
from repro.datasets import random_tree
from repro.io import to_bracket

workdir = Path(sys.argv[1])
with open(workdir / "corpus.txt", "w") as fh:
    for i in range(24):
        fh.write(to_bracket(random_tree(20, rng=i)) + "\n")
big_a = to_bracket(random_tree(900, rng=5))
big_b = to_bracket(random_tree(880, rng=6))
(workdir / "big.json").write_text(
    '{"tree_a": "%s", "tree_b": "%s", "deadline": 0.1}' % (big_a, big_b)
)
EOF

# Start the server on an ephemeral port; the readiness line on stderr
# carries the bound port.
python -m repro.cli serve "@$workdir/corpus.txt" --port 0 \
    2> "$workdir/server.log" &
server_pid=$!

port=""
for _ in $(seq 100); do
    port=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$workdir/server.log")
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died during startup: $(cat "$workdir/server.log")"
    sleep 0.1
done
[ -n "$port" ] || fail "server never reported its port"
base="http://127.0.0.1:$port"
echo "serve_smoke: server up on $base"

# Liveness + readiness.
timeout 10 curl -sf "$base/healthz" | grep -q '"alive"' || fail "/healthz"
timeout 10 curl -sf "$base/readyz" | grep -q '"ready"' || fail "/readyz"

# Distance must match the library answer for the fixture pair.
distance=$(timeout 30 curl -sf -X POST "$base/distance" \
    -d '{"tree_a": "{a{b}{c}}", "tree_b": "{a{c}{d}}"}')
echo "$distance" | grep -q '"distance": 2.0' || fail "/distance gave: $distance"

# kNN against the registered corpus.
knn=$(timeout 30 curl -sf -X POST "$base/knn" -d '{"query": "{a{b}{c}}", "k": 3}')
echo "$knn" | grep -q '"matches"' || fail "/knn gave: $knn"

# Over-deadline request: must return 504 promptly, not hang.
start=$(date +%s)
status=$(timeout 30 curl -s -o "$workdir/timeout.json" -w '%{http_code}' \
    -X POST "$base/distance" --data-binary "@$workdir/big.json")
elapsed=$(( $(date +%s) - start ))
[ "$status" = "504" ] || fail "over-deadline request gave $status, wanted 504"
[ "$elapsed" -le 10 ] || fail "over-deadline request took ${elapsed}s"
grep -q '"timeout": true' "$workdir/timeout.json" || fail "504 body lacks timeout marker"
echo "serve_smoke: over-deadline request timed out cleanly in ${elapsed}s"

# The server must stay healthy after a timeout.
timeout 10 curl -sf "$base/readyz" > /dev/null || fail "/readyz after timeout"

# Graceful drain: SIGTERM, clean exit 0.
kill -TERM "$server_pid"
rc=0
timeout 30 tail --pid="$server_pid" -f /dev/null || true
wait "$server_pid" || rc=$?
[ "$rc" = "0" ] || fail "server exited $rc after SIGTERM (log: $(cat "$workdir/server.log"))"
grep -q "drained" "$workdir/server.log" || fail "no drain confirmation in server log"
server_pid=""

# No orphaned shared-memory blocks once the server is gone.
reap=$(python -m repro.cli shm-reap --dry-run 2>&1)
echo "$reap" | grep -q "would reap 0" || fail "stale shm after drain: $reap"

echo "serve_smoke: ok"
