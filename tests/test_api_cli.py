"""Tests for the high-level API, the algorithm registry, and the CLI."""

import pytest

from repro import (
    available_algorithms,
    compare_algorithms,
    compute,
    edit_mapping,
    edit_script,
    make_algorithm,
    parse_tree,
    tree_edit_distance,
    tree_to_bracket,
)
from repro.algorithms import register_algorithm, SimpleTED, PAPER_ALGORITHMS
from repro.cli import main as cli_main
from repro.exceptions import ParseError, UnknownAlgorithmError, UnknownEngineError
from repro.trees import Node, Tree, tree_from_nested


class TestParseTree:
    def test_tree_passthrough(self):
        tree = tree_from_nested(("a", ["b"]))
        assert parse_tree(tree) is tree

    def test_node_is_indexed(self):
        assert isinstance(parse_tree(Node("a", [Node("b")])), Tree)

    def test_bracket_autodetection(self):
        assert parse_tree("{a{b}}").n == 2

    def test_newick_autodetection(self):
        assert parse_tree("(A,B)r;").n == 3

    def test_xml_autodetection(self):
        assert parse_tree("<a><b/></a>").n == 2

    def test_explicit_format(self):
        assert parse_tree("{a{b}}", fmt="bracket").n == 2

    def test_unknown_format_rejected(self):
        with pytest.raises(ParseError):
            parse_tree("{a}", fmt="yaml")

    def test_non_tree_input_rejected(self):
        with pytest.raises(ParseError):
            parse_tree(12345)


class TestHighLevelApi:
    def test_distance_with_string_inputs(self):
        assert tree_edit_distance("{a{b}{c}}", "{a{b}{x}}") == 1.0

    def test_compute_returns_metadata(self):
        result = compute("{a{b}{c}}", "{a{b}{x}}", algorithm="rted")
        assert result.distance == 1.0
        assert result.algorithm == "RTED"
        assert result.subproblems > 0

    def test_edit_mapping_and_script(self):
        mapping = edit_mapping("{a{b}}", "{a{b}{c}}")
        assert mapping.cost == 1.0
        script = edit_script("{a{b}}", "{a{b}{c}}")
        assert any(op.op == "insert" for op in script)

    def test_compare_algorithms_agree(self):
        results = compare_algorithms("{a{b{c}}{d}}", "{a{d{c}}{e}}")
        distances = {round(result.distance, 9) for result in results.values()}
        assert len(distances) == 1
        assert set(results) == set(PAPER_ALGORITHMS)

    def test_tree_to_bracket_round_trip(self):
        text = "{a{b}{c{d}}}"
        assert tree_to_bracket(parse_tree(text)) == text


class TestRegistry:
    def test_available_algorithms_contains_paper_set(self):
        names = available_algorithms()
        for name in PAPER_ALGORITHMS:
            assert name in names

    def test_aliases(self):
        assert make_algorithm("zhang-shasha").name == "Zhang-L"
        assert make_algorithm("ROBUST").name == "RTED"

    def test_unknown_algorithm(self):
        with pytest.raises(UnknownAlgorithmError):
            make_algorithm("quantum-ted")

    def test_register_custom_algorithm(self):
        register_algorithm("my-oracle", SimpleTED)
        assert make_algorithm("my-oracle").name == "Simple"

    def test_engine_selection(self):
        for name in ("zhang-l", "zhang-r", "rted", "klein-h", "demaine-h"):
            for engine in ("auto", "recursive", "spf"):
                algo = make_algorithm(name, engine=engine)
                assert algo.distance(
                    parse_tree("{a{b{c}}{d}}"), parse_tree("{a{d{c}}{e}}")
                ) == pytest.approx(2.0)

    def test_engine_none_is_auto(self):
        assert make_algorithm("zhang-l", engine=None).name == "Zhang-L"
        assert make_algorithm("zhang-l", engine="spf").name == "Zhang-L[spf]"

    def test_unknown_engine(self):
        with pytest.raises(UnknownEngineError):
            make_algorithm("rted", engine="quantum")

    @pytest.mark.parametrize(
        "name", ["rted", "zhang-l", "zhang-r", "klein-h", "demaine-h", "gted-left-g"]
    )
    def test_unknown_engine_never_falls_back_silently(self, name):
        """Every multi-engine name must reject a bogus selector loudly."""
        with pytest.raises(UnknownEngineError, match="unknown engine"):
            make_algorithm(name, engine="gpu")

    def test_unknown_engine_through_api(self):
        with pytest.raises(UnknownEngineError):
            compute("{a}", "{b}", algorithm="rted", engine="warp")

    def test_unknown_engine_direct_constructors(self):
        from repro.algorithms import GTED, RTED, LeftFStrategy

        with pytest.raises(UnknownEngineError):
            RTED(engine="warp")
        with pytest.raises(UnknownEngineError):
            GTED(LeftFStrategy(), engine="warp")

    def test_auto_engine_defaults_to_spf_for_strategy_algorithms(self):
        for name in ("rted", "klein-h", "demaine-h"):
            result = make_algorithm(name).compute(
                parse_tree("{a{b{c}}{d}}"), parse_tree("{a{d{c}}{e}}")
            )
            assert result.extra["engine"] == "spf"

    def test_single_implementation_rejects_engine(self):
        with pytest.raises(UnknownEngineError):
            make_algorithm("simple", engine="spf")
        assert make_algorithm("simple", engine="auto").name == "Simple"

    def test_engine_through_api(self):
        result = compute("{a{b}{c}}", "{a{b}{x}}", algorithm="zhang-l", engine="spf")
        assert result.distance == 1.0
        assert result.extra["engine"] == "spf"
        assert tree_edit_distance("{a{b}{c}}", "{a{b}{x}}", engine="spf") == 1.0


class TestCli:
    def test_distance_command(self, capsys):
        assert cli_main(["distance", "{a{b}}", "{a{c}}"]) == 0
        assert capsys.readouterr().out.strip() == "1.0"

    def test_distance_verbose(self, capsys):
        assert cli_main(["distance", "{a{b}}", "{a{c}}", "--verbose", "--algorithm", "zhang-l"]) == 0
        output = capsys.readouterr().out
        assert "distance" in output and "subproblems" in output

    def test_distance_engine_flag(self, capsys):
        assert cli_main(
            ["distance", "{a{b}}", "{a{c}}", "--algorithm", "zhang-l", "--engine", "spf",
             "--verbose"]
        ) == 0
        output = capsys.readouterr().out
        assert "engine:      spf" in output
        assert "1.0" in output

    def test_distance_from_file(self, tmp_path, capsys):
        path = tmp_path / "tree.bracket"
        path.write_text("{a{b}{c}}")
        assert cli_main(["distance", f"@{path}", "{a{b}{c}}"]) == 0
        assert capsys.readouterr().out.strip() == "0.0"

    def test_mapping_command(self, capsys):
        assert cli_main(["mapping", "{a{b}}", "{a{x}}"]) == 0
        assert "rename" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert cli_main(["compare", "{a{b}{c}}", "{a{c}{d}}"]) == 0
        output = capsys.readouterr().out
        assert "rted" in output and "zhang-l" in output

    def test_generate_command(self, capsys):
        assert cli_main(["generate", "--shape", "zigzag", "--size", "9"]) == 0
        output = capsys.readouterr().out.strip()
        assert output.count("{") == 9

    def test_generate_random_with_render(self, capsys):
        assert cli_main(["generate", "--shape", "random", "--size", "7", "--render"]) == 0
        assert "{" in capsys.readouterr().out

    def test_join_command(self, tmp_path, capsys):
        path = tmp_path / "collection.txt"
        path.write_text("{a{b}{c}}\n{a{b}{d}}\n{x{y{z{w{v}}}}}\n")
        assert cli_main(["join", f"@{path}", "--threshold", "2", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[0].split("\t")[:2] == ["0", "1"]
        # Stats go to stderr so piped stdout stays machine-parseable.
        assert "#" not in captured.out
        assert "# matches:" in captured.err and "# pairs total:      3" in captured.err

    def test_query_knn_command(self, tmp_path, capsys):
        path = tmp_path / "collection.txt"
        path.write_text("{a{b}{c}{d}}\n{x{y}}\n{a{b}}\n")
        assert cli_main(
            ["query", "{a{b}{c}}", f"@{path}", "--top-k", "2", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        lines = [line.split("\t") for line in captured.out.splitlines()]
        assert [line[0] for line in lines] == ["0", "2"]
        assert "#" not in captured.out
        assert "# corpus size:      3" in captured.err
        assert "# matches:          2" in captured.err

    def test_query_range_command(self, tmp_path, capsys):
        path = tmp_path / "collection.txt"
        path.write_text("{a{b}{c}{d}}\n{x{y}}\n{a{b}}\n")
        assert cli_main(["query", "{a{b}{c}}", f"@{path}", "--range", "2"]) == 0
        lines = [line.split("\t") for line in capsys.readouterr().out.splitlines()]
        assert [line[0] for line in lines] == ["0", "2"]
        assert all(float(line[1]) < 2.0 for line in lines)

    def test_query_modes_are_exclusive(self, tmp_path, capsys):
        path = tmp_path / "collection.txt"
        path.write_text("{a}\n")
        with pytest.raises(SystemExit):
            cli_main(["query", "{a}", f"@{path}", "--top-k", "1", "--range", "1"])
        with pytest.raises(SystemExit):
            cli_main(["query", "{a}", f"@{path}"])

    def test_query_negative_k_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "collection.txt"
        path.write_text("{a}\n")
        assert cli_main(["query", "{a}", f"@{path}", "--top-k", "-1"]) == 64
        assert "rted:" in capsys.readouterr().err

    def test_join_command_cross_and_no_cascade(self, tmp_path, capsys):
        path_a = tmp_path / "a.txt"
        path_b = tmp_path / "b.txt"
        path_a.write_text("{a{b}}\n")
        path_b.write_text("{a{c}}\n{a{b}}\n")
        assert cli_main(
            ["join", f"@{path_a}", "--other", f"@{path_b}", "--threshold", "1.5",
             "--no-cascade", "--algorithm", "zhang-l"]
        ) == 0
        lines = [line.split("\t") for line in capsys.readouterr().out.splitlines()]
        assert [line[:2] for line in lines] == [["0", "0"], ["0", "1"]]

    def test_join_requires_file_argument(self):
        with pytest.raises(SystemExit):
            cli_main(["join", "{a{b}}", "--threshold", "1"])
