"""Unit tests for repro.trees.node."""

import pytest

from repro.trees import Node, node_from_nested


class TestNodeConstruction:
    def test_leaf_has_no_children(self):
        node = Node("a")
        assert node.is_leaf
        assert node.children == []

    def test_children_kept_in_order(self):
        node = Node("a", [Node("b"), Node("c"), Node("d")])
        assert [child.label for child in node.children] == ["b", "c", "d"]

    def test_add_child_returns_child(self):
        root = Node("a")
        child = root.add_child(Node("b"))
        assert child.label == "b"
        assert root.children == [child]

    def test_add_children_returns_self(self):
        root = Node("a")
        assert root.add_children([Node("b"), Node("c")]) is root
        assert len(root.children) == 2

    def test_labels_may_be_non_strings(self):
        node = Node(42, [Node((1, 2))])
        assert node.label == 42
        assert node.children[0].label == (1, 2)


class TestNodeQueries:
    def test_size_counts_all_nodes(self):
        node = Node("a", [Node("b"), Node("c", [Node("d"), Node("e")])])
        assert node.size() == 5

    def test_depth_of_single_node_is_zero(self):
        assert Node("a").depth() == 0

    def test_depth_of_chain(self):
        node = Node("a", [Node("b", [Node("c", [Node("d")])])])
        assert node.depth() == 3

    def test_preorder_traversal(self):
        node = Node("a", [Node("b", [Node("c")]), Node("d")])
        assert node.labels_preorder() == ["a", "b", "c", "d"]

    def test_postorder_traversal(self):
        node = Node("a", [Node("b", [Node("c")]), Node("d")])
        assert node.labels_postorder() == ["c", "b", "d", "a"]

    def test_postorder_handles_deep_chains(self):
        # A chain deep enough to break naive recursion if it were used.
        root = Node(0)
        current = root
        for index in range(1, 5000):
            current = current.add_child(Node(index))
        labels = root.labels_postorder()
        assert labels[0] == 4999
        assert labels[-1] == 0


class TestNodeCopyAndEquality:
    def test_copy_is_deep(self):
        original = Node("a", [Node("b")])
        clone = original.copy()
        clone.children[0].label = "x"
        assert original.children[0].label == "b"

    def test_mirrored_reverses_children_recursively(self):
        node = Node("a", [Node("b", [Node("x"), Node("y")]), Node("c")])
        mirrored = node.mirrored()
        assert [child.label for child in mirrored.children] == ["c", "b"]
        assert [child.label for child in mirrored.children[1].children] == ["y", "x"]

    def test_structural_equality(self):
        a = Node("a", [Node("b"), Node("c")])
        b = Node("a", [Node("b"), Node("c")])
        c = Node("a", [Node("c"), Node("b")])
        assert a.structurally_equal(b)
        assert not a.structurally_equal(c)
        assert not a.structurally_equal("not a node")


class TestNodeFromNested:
    def test_bare_label_is_leaf(self):
        node = node_from_nested("x")
        assert node.is_leaf and node.label == "x"

    def test_nested_structure(self):
        node = node_from_nested(("a", ["b", ("c", ["d"])]))
        assert node.labels_preorder() == ["a", "b", "c", "d"]

    def test_pair_without_child_list_is_leaf_label(self):
        # A 2-tuple whose second element is not a list is treated as a label.
        node = node_from_nested((1, 2))
        assert node.is_leaf
