"""Tests for edit mappings and edit scripts."""

import pytest
from hypothesis import given, settings

from repro.algorithms import ZhangShashaTED, compute_edit_mapping, mapping_cost
from repro.costs import UnitCostModel, WeightedCostModel
from repro.io import parse_bracket

from conftest import random_tree_pairs, tree_pairs


class TestMappingOnExamples:
    def test_identical_trees_map_every_node(self):
        tree = parse_bracket("{a{b{c}}{d}}")
        mapping = compute_edit_mapping(tree, tree)
        assert mapping.cost == 0.0
        assert len(mapping.matches) == tree.n
        assert mapping.deletions == [] and mapping.insertions == []

    def test_single_rename_is_reported(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}{x}}")
        mapping = compute_edit_mapping(t1, t2)
        script = mapping.to_edit_script(t1, t2, UnitCostModel())
        renames = [op for op in script if op.op == "rename"]
        assert len(renames) == 1
        assert renames[0].source_label == "c" and renames[0].target_label == "x"

    def test_deletion_is_reported(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}}")
        mapping = compute_edit_mapping(t1, t2)
        assert len(mapping.deletions) == 1
        assert mapping.insertions == []
        assert mapping.cost == 1.0

    def test_insertion_is_reported(self):
        t1 = parse_bracket("{a{b}}")
        t2 = parse_bracket("{a{b}{c}}")
        mapping = compute_edit_mapping(t1, t2)
        assert len(mapping.insertions) == 1
        assert mapping.cost == 1.0

    def test_edit_script_operations_are_printable(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{x{b}{c}{d}}")
        script = compute_edit_mapping(t1, t2).to_edit_script(t1, t2, UnitCostModel())
        for operation in script:
            assert str(operation)
        kinds = {operation.op for operation in script}
        assert "rename" in kinds and "insert" in kinds


class TestMappingValidity:
    def test_mapping_cost_equals_distance_on_random_pairs(self):
        for tree_f, tree_g in random_tree_pairs(count=20, max_size=15, seed=23):
            mapping = compute_edit_mapping(tree_f, tree_g)
            distance = ZhangShashaTED().distance(tree_f, tree_g)
            assert mapping.cost == pytest.approx(distance)
            assert mapping_cost(mapping, tree_f, tree_g) == pytest.approx(distance)

    def test_mapping_is_a_valid_tree_mapping(self):
        for tree_f, tree_g in random_tree_pairs(count=15, max_size=12, seed=29):
            mapping = compute_edit_mapping(tree_f, tree_g)
            assert mapping.is_valid_mapping(tree_f, tree_g)

    @given(tree_pairs())
    @settings(max_examples=30, deadline=None)
    def test_property_mapping_cost_equals_distance(self, pair):
        tree_f, tree_g = pair
        mapping = compute_edit_mapping(tree_f, tree_g)
        assert mapping.cost == pytest.approx(ZhangShashaTED().distance(tree_f, tree_g))
        assert mapping_cost(mapping, tree_f, tree_g) == pytest.approx(mapping.cost)
        assert mapping.is_valid_mapping(tree_f, tree_g)

    def test_weighted_cost_mapping(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{c}{d}}")
        model = WeightedCostModel(delete_cost=1.0, insert_cost=1.0, rename_cost=0.4)
        mapping = compute_edit_mapping(t1, t2, cost_model=model)
        distance = ZhangShashaTED().distance(t1, t2, cost_model=model)
        assert mapping_cost(mapping, t1, t2, cost_model=model) == pytest.approx(distance)


class TestExactBacktrace:
    """The backtrace compares candidates with exact float equality.

    An absolute epsilon (the previous implementation used 1e-9) mis-selects
    branches whenever operation costs sit at or below the tolerance — every
    comparison looks like a tie, so the walk degenerates into deletes and
    inserts — and can over-match for large-magnitude costs where distinct
    sums lie closer together than the tolerance.

    The cost models are chosen dyadic (powers of two) so that sums are
    exact floats regardless of association and the equality assertions below
    are deterministic, not approximate.
    """

    MODELS = [
        ("unit", UnitCostModel()),
        ("fractional", WeightedCostModel(0.5, 0.25, 0.5)),
        ("tiny", WeightedCostModel(2.0 ** -40, 2.0 ** -40, 2.0 ** -41)),
        ("huge", WeightedCostModel(2.0 ** 30, 2.0 ** 30, 2.0 ** 20)),
    ]

    @pytest.mark.parametrize("name,model", MODELS, ids=[m[0] for m in MODELS])
    def test_property_mapping_cost_equals_distance_exactly(self, name, model):
        for tree_f, tree_g in random_tree_pairs(count=25, max_size=14, seed=101):
            mapping = compute_edit_mapping(tree_f, tree_g, cost_model=model)
            distance = ZhangShashaTED().distance(tree_f, tree_g, cost_model=model)
            assert mapping.cost == distance
            assert mapping_cost(mapping, tree_f, tree_g, cost_model=model) == distance
            assert mapping.is_valid_mapping(tree_f, tree_g)

    def test_tiny_costs_still_prefer_matches(self):
        # With every operation costing 2^-40, identical trees must map
        # node-for-node at cost 0 — the epsilon backtrace collapsed this
        # into a full delete+insert script instead.
        tree = parse_bracket("{a{b{c}}{d}{e}}")
        model = WeightedCostModel(2.0 ** -40, 2.0 ** -40, 2.0 ** -40)
        mapping = compute_edit_mapping(tree, tree, cost_model=model)
        assert mapping.cost == 0.0
        assert len(mapping.matches) == tree.n
        assert mapping.deletions == [] and mapping.insertions == []
