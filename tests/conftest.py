"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.trees import Node, Tree, tree_from_nested
from repro.datasets import random_tree


# --------------------------------------------------------------------------- #
# Deterministic example trees
# --------------------------------------------------------------------------- #
@pytest.fixture
def paper_tree() -> Tree:
    """The example tree of Figure 1 of the paper: root a, children b, (e->c?), d.

    Labels follow the figure: a root with three children b, e (which has one
    child c) and d.
    """
    return tree_from_nested(("a", ["b", ("e", ["c"]), "d"]))


@pytest.fixture
def figure3_tree() -> Tree:
    """The tree used in Figures 3 and 4 (A with children B(D, E(F), G) and C)."""
    return tree_from_nested(("A", [("B", ["D", ("E", ["F"]), "G"]), "C"]))


@pytest.fixture
def small_pair() -> tuple:
    """A small, hand-checkable tree pair with known unit-cost distance 2."""
    t1 = tree_from_nested(("a", ["b", ("c", ["d"])]))
    t2 = tree_from_nested(("a", [("c", ["d"]), "e"]))
    return t1, t2


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20110401)


def random_tree_pairs(count: int, max_size: int = 14, seed: int = 7):
    """Deterministic list of random tree pairs for cross-algorithm tests."""
    generator = random.Random(seed)
    pairs = []
    for _ in range(count):
        size_a = generator.randint(1, max_size)
        size_b = generator.randint(1, max_size)
        pairs.append(
            (
                random_tree(size_a, rng=generator, max_depth=8, max_fanout=4),
                random_tree(size_b, rng=generator, max_depth=8, max_fanout=4),
            )
        )
    return pairs


# --------------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------------- #
_LABELS = st.sampled_from(list("abcde"))


def _node_strategy(max_children: int, max_depth: int):
    return st.recursive(
        _LABELS.map(Node),
        lambda children: st.builds(
            Node,
            _LABELS,
            st.lists(children, min_size=0, max_size=max_children),
        ),
        max_leaves=12,
    )


@st.composite
def trees(draw, max_children: int = 3, max_depth: int = 4) -> Tree:
    """Hypothesis strategy generating small random :class:`Tree` objects."""
    node = draw(_node_strategy(max_children, max_depth))
    return Tree(node)


@st.composite
def tree_pairs(draw) -> tuple:
    """Hypothesis strategy generating pairs of small random trees."""
    return draw(trees()), draw(trees())
