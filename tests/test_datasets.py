"""Tests for the dataset generators (shapes, random trees, simulated collections)."""

import random

import pytest

from repro.datasets import (
    SHAPE_GENERATORS,
    full_binary_tree,
    generate_collection,
    identical_pair,
    join_workload,
    left_branch_tree,
    make_shape,
    mixed_tree,
    pairs_at_size_intervals,
    partition_by_size,
    perturb_tree,
    random_binary_tree,
    random_forest_of_trees,
    random_tree,
    right_branch_tree,
    sample_partition,
    swissprot_like_tree,
    treebank_like_tree,
    treefam_like_tree,
    treefam_partitions,
    zigzag_tree,
)
from repro.exceptions import TreeConstructionError
from repro.trees import tree_stats


class TestShapes:
    @pytest.mark.parametrize("size", [1, 2, 7, 20, 101, 256])
    @pytest.mark.parametrize("name", sorted(SHAPE_GENERATORS))
    def test_exact_size(self, name, size):
        assert make_shape(name, size).n == size

    def test_left_branch_structure(self):
        tree = left_branch_tree(41)
        stats = tree_stats(tree)
        assert stats.depth == 20
        assert stats.num_leaves == 21
        assert stats.left_heaviness == 1.0

    def test_right_branch_is_mirror_of_left_branch(self):
        assert right_branch_tree(31).structurally_equal(left_branch_tree(31).mirrored())

    def test_zigzag_alternates(self):
        tree = zigzag_tree(41)
        assert tree.depth() == 20
        stats = tree_stats(tree)
        assert 0.0 < stats.left_heaviness < 1.0

    def test_full_binary_is_balanced(self):
        tree = full_binary_tree(63)
        assert tree.depth() == 5
        assert tree.max_fanout() == 2

    def test_mixed_tree_contains_varied_substructures(self):
        tree = mixed_tree(101)
        assert tree.n == 101
        assert len(tree.children[tree.root]) == 4

    def test_shape_shorthand_names(self):
        assert make_shape("LB", 11).structurally_equal(left_branch_tree(11))
        assert make_shape("zz", 11).structurally_equal(zigzag_tree(11))

    def test_unknown_shape_rejected(self):
        with pytest.raises(TreeConstructionError):
            make_shape("spiral", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(TreeConstructionError):
            left_branch_tree(0)


class TestRandomTrees:
    def test_exact_size_and_limits(self):
        tree = random_tree(200, max_depth=15, max_fanout=6, rng=1)
        assert tree.n == 200
        assert tree.depth() <= 15
        assert tree.max_fanout() <= 6

    def test_deterministic_for_same_seed(self):
        assert random_tree(50, rng=7).structurally_equal(random_tree(50, rng=7))

    def test_different_seeds_differ(self):
        assert not random_tree(50, rng=7).structurally_equal(random_tree(50, rng=8))

    def test_impossible_constraints_rejected(self):
        with pytest.raises(TreeConstructionError):
            random_tree(10, max_depth=1, max_fanout=2)

    def test_invalid_size_rejected(self):
        with pytest.raises(TreeConstructionError):
            random_tree(0)

    def test_random_binary_tree_fanout(self):
        tree = random_binary_tree(41, rng=3)
        assert all(len(tree.children[v]) in (0, 2) for v in range(tree.n))

    def test_random_forest_sizes_within_range(self):
        forest = random_forest_of_trees(10, size_range=(5, 25), rng=5)
        assert len(forest) == 10
        assert all(5 <= tree.n <= 25 for tree in forest)

    def test_perturb_tree_changes_little(self):
        base = random_tree(40, rng=9)
        modified = perturb_tree(base, 2, rng=10)
        assert abs(modified.n - base.n) <= 2


class TestRealWorldSimulators:
    def test_swissprot_like_is_flat_and_wide(self):
        tree = swissprot_like_tree(rng=1)
        assert tree.depth() <= 4
        assert tree.n >= 20

    def test_treebank_like_is_small_and_deep(self):
        tree = treebank_like_tree(rng=2, target_size=70)
        assert tree.n <= 75
        assert tree.depth() >= 5

    def test_treefam_like_is_binaryish_and_deep(self):
        tree = treefam_like_tree(rng=3, target_size=95)
        stats = tree_stats(tree)
        assert stats.max_fanout == 2
        assert stats.depth > 10

    def test_generate_collection_kinds(self):
        for kind in ("swissprot", "treebank", "treefam"):
            collection = generate_collection(kind, 5, rng=4)
            assert len(collection) == 5

    def test_generate_collection_size_range(self):
        collection = generate_collection("treefam", 5, rng=4, size_range=(30, 60))
        assert all(25 <= tree.n <= 65 for tree in collection)

    def test_unknown_collection_kind_rejected(self):
        with pytest.raises(ValueError):
            generate_collection("dblp", 3)


class TestWorkloads:
    def test_identical_pair_shapes(self):
        a, b = identical_pair("zigzag", 21)
        assert a.structurally_equal(b)

    def test_identical_pair_random(self):
        a, b = identical_pair("random", 21, rng=5)
        assert a.structurally_equal(b)
        assert a.n == 21

    def test_pairs_at_size_intervals(self):
        collection = [full_binary_tree(n) for n in (7, 15, 31, 63)]
        picks = pairs_at_size_intervals(collection, [10, 60])
        assert len(picks) == 2
        size, tree_a, tree_b = picks[0]
        assert {tree_a.n, tree_b.n} == {7, 15}

    def test_join_workload(self):
        trees = join_workload(node_count=30, rng=1)
        assert len(trees) == 5
        assert all(tree.n == 30 for tree in trees)

    def test_partition_by_size(self):
        collection = [full_binary_tree(n) for n in (5, 20, 50, 200)]
        partitions = partition_by_size(collection, [10, 100])
        assert [len(p) for p in partitions] == [1, 2, 1]

    def test_sample_partition(self):
        collection = [full_binary_tree(7) for _ in range(10)]
        assert len(sample_partition(collection, 3, rng=1)) == 3
        assert len(sample_partition(collection, 50, rng=1)) == 10

    def test_treefam_partitions(self):
        partitions = treefam_partitions(num_trees=12, boundaries=(80, 160), size_range=(30, 250), rng=3)
        assert len(partitions) == 3
        assert sum(len(p) for p in partitions) == 12
