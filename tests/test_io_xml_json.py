"""Unit tests for the XML and JSON adapters."""

import pytest

from repro.exceptions import ParseError
from repro.io import (
    arrays_dict_to_tree,
    dumps,
    loads,
    nested_dict_to_tree,
    parse_xml_collection,
    tree_to_arrays_dict,
    tree_to_nested_dict,
    tree_to_xml,
    xml_to_tree,
)
from repro.trees import tree_from_nested


SAMPLE_XML = """
<article key="a1">
  <title>Tree edit distance</title>
  <authors>
    <author>Pawlik</author>
    <author>Augsten</author>
  </authors>
</article>
"""


class TestXmlAdapter:
    def test_structure_only_view(self):
        tree = xml_to_tree(SAMPLE_XML)
        assert tree.label(tree.root) == "article"
        assert tree.labels_preorder() == ["article", "title", "authors", "author", "author"]

    def test_text_nodes_included_when_requested(self):
        tree = xml_to_tree(SAMPLE_XML, include_text=True)
        assert "Pawlik" in list(tree.labels)
        assert "Tree edit distance" in list(tree.labels)

    def test_attributes_included_when_requested(self):
        tree = xml_to_tree(SAMPLE_XML, include_attributes=True)
        assert "@key=a1" in list(tree.labels)

    def test_namespace_stripping(self):
        xml = '<ns:root xmlns:ns="http://example.org"><ns:child/></ns:root>'
        tree = xml_to_tree(xml)
        assert tree.labels_preorder() == ["root", "child"]

    def test_invalid_xml_raises(self):
        with pytest.raises(ParseError):
            xml_to_tree("<unclosed>")

    def test_round_trip_through_xml(self):
        tree = xml_to_tree(SAMPLE_XML)
        rebuilt = xml_to_tree(tree_to_xml(tree))
        assert rebuilt.structurally_equal(tree)

    def test_invalid_tag_labels_are_wrapped(self):
        tree = tree_from_nested(("not a tag!", ["ok"]))
        xml = tree_to_xml(tree)
        assert 'label="not a tag!"' in xml

    def test_collection_parsing_skips_broken_documents(self):
        trees = parse_xml_collection(["<a><b/></a>", "<broken>", "<c/>"])
        assert [t.n for t in trees] == [2, 1]


class TestJsonAdapter:
    def test_nested_round_trip(self):
        tree = tree_from_nested(("a", ["b", ("c", ["d"])]))
        assert nested_dict_to_tree(tree_to_nested_dict(tree)).structurally_equal(tree)

    def test_arrays_round_trip(self):
        tree = tree_from_nested(("a", ["b", ("c", ["d"])]))
        assert arrays_dict_to_tree(tree_to_arrays_dict(tree)).structurally_equal(tree)

    def test_dumps_loads_nested(self):
        tree = tree_from_nested(("a", ["b"]))
        assert loads(dumps(tree, encoding="nested")).structurally_equal(tree)

    def test_dumps_loads_arrays(self):
        tree = tree_from_nested(("a", ["b", "c"]))
        assert loads(dumps(tree, encoding="arrays")).structurally_equal(tree)

    def test_dumps_rejects_unknown_encoding(self):
        with pytest.raises(ValueError):
            dumps(tree_from_nested("a"), encoding="pickle")

    def test_loads_rejects_invalid_json(self):
        with pytest.raises(ParseError):
            loads("{not json")

    def test_loads_rejects_missing_tree_key(self):
        with pytest.raises(ParseError):
            loads('{"encoding": "nested"}')

    def test_nested_requires_label_key(self):
        with pytest.raises(ParseError):
            nested_dict_to_tree({"children": []})
