"""Unit tests for bracket-notation parsing and serialization."""

import pytest
from hypothesis import given, settings

from repro.exceptions import ParseError
from repro.io import (
    dump_bracket_collection,
    parse_bracket,
    parse_bracket_collection,
    to_bracket,
)

from conftest import trees


class TestParsing:
    def test_single_node(self):
        tree = parse_bracket("{a}")
        assert tree.n == 1 and tree.label(tree.root) == "a"

    def test_nested(self):
        tree = parse_bracket("{a{b}{c{d}}}")
        assert tree.n == 4
        assert tree.labels_preorder() == ["a", "b", "c", "d"]

    def test_whitespace_tolerated_around_tree(self):
        assert parse_bracket("  {a{b}}  ").n == 2

    def test_empty_label_allowed(self):
        tree = parse_bracket("{{x}}")
        assert tree.label(tree.root) == ""
        assert tree.n == 2

    def test_escaped_braces_in_label(self):
        tree = parse_bracket(r"{a\{b\}}")
        assert tree.label(tree.root) == "a{b}"

    def test_label_with_spaces_and_punctuation(self):
        tree = parse_bracket("{hello world, 42!{x}}")
        assert tree.label(tree.root) == "hello world, 42!"

    @pytest.mark.parametrize(
        "text",
        ["", "a", "{a", "{a}}", "{a}{b}", "{a}trailing"],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse_bracket(text)


class TestSerialization:
    def test_round_trip_simple(self):
        text = "{a{b}{c{d}}}"
        assert to_bracket(parse_bracket(text)) == text

    def test_round_trip_with_special_characters(self):
        original = parse_bracket(r"{we\{ird{x}}")
        assert parse_bracket(to_bracket(original)).structurally_equal(original)

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_random_trees(self, tree):
        assert parse_bracket(to_bracket(tree)).structurally_equal(tree)

    def test_deep_tree_serialization_does_not_recurse(self):
        from repro.datasets import left_branch_tree

        tree = left_branch_tree(4001)
        text = to_bracket(tree)
        assert text.count("{") == tree.n
        assert parse_bracket(text).n == tree.n


class TestCollections:
    def test_collection_round_trip(self):
        trees_in = [parse_bracket("{a{b}}"), parse_bracket("{x}")]
        text = dump_bracket_collection(trees_in)
        trees_out = parse_bracket_collection(text)
        assert len(trees_out) == 2
        assert trees_out[0].structurally_equal(trees_in[0])

    def test_collection_skips_comments_and_blank_lines(self):
        text = "# comment\n\n{a}\n   \n{b{c}}\n"
        assert [t.n for t in parse_bracket_collection(text)] == [1, 2]

    def test_collection_reports_line_number_on_error(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_bracket_collection("{a}\n{broken\n")
