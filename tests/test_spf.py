"""Tests for the iterative single-path layer (spf, spf_numpy, StrategyExecutor).

The recursive :class:`DecompositionEngine` is the reference oracle; every
test here cross-checks the iterative SPFs and the strategy executor against
it (and against the independent Zhang–Shasha implementation), on randomized
tree pairs with unit and non-unit cost models, and on deep path-shaped trees
that the recursive engine could only handle by raising the interpreter
recursion limit.
"""

import random
import sys

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    GTED,
    RTED,
    DecompositionEngine,
    HeavyFStrategy,
    HeavyGStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    LeftGStrategy,
    RightFStrategy,
    RightGStrategy,
    SinglePathContext,
    StrategyExecutor,
    ZhangShashaTED,
    make_algorithm,
    optimal_strategy,
    spf_A,
    spf_H,
    spf_L,
    spf_R,
    zhang_shasha_distance,
)
from repro.algorithms.spf import numpy_available
from repro.costs import UNIT_COST, StringRenameCostModel, WeightedCostModel
from repro.datasets import random_tree
from repro.trees import HEAVY, LEFT, RIGHT, Node, Tree

from conftest import random_tree_pairs, tree_pairs

KERNELS = [False, True] if numpy_available() else [False]

#: 100 pairs for the left SPF + 100 pairs for the right SPF = the >= 200
#: randomized cross-checked pairs required of this layer.
SPF_PAIRS = random_tree_pairs(count=100, max_size=14, seed=20110713)

WEIGHTED = WeightedCostModel(delete_cost=1.5, insert_cost=0.5, rename_cost=2.0)


def _path_tree(depth: int, label: object = "a") -> Tree:
    """A linear (path-shaped) tree with ``depth`` edges, built iteratively."""
    node = Node(label)
    for _ in range(depth):
        node = Node(label, [node])
    return Tree(node)


class TestSinglePathFunctions:
    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_spf_left_matches_recursive_engine(self, use_numpy):
        for tree_f, tree_g in SPF_PAIRS:
            expected = DecompositionEngine(tree_f, tree_g, LeftFStrategy()).distance()
            assert spf_L(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_spf_right_matches_recursive_engine(self, use_numpy):
        for tree_f, tree_g in SPF_PAIRS:
            expected = DecompositionEngine(tree_f, tree_g, RightFStrategy()).distance()
            assert spf_R(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    def test_spf_left_matches_zhang_shasha(self):
        for tree_f, tree_g in SPF_PAIRS[:40]:
            expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
            assert spf_L(tree_f, tree_g) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    @pytest.mark.parametrize(
        "cost_model", [WEIGHTED, StringRenameCostModel()], ids=["weighted", "string-rename"]
    )
    def test_non_unit_costs_match_recursive_engine(self, use_numpy, cost_model):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            left = DecompositionEngine(
                tree_f, tree_g, LeftFStrategy(), cost_model=cost_model
            ).distance()
            right = DecompositionEngine(
                tree_f, tree_g, RightFStrategy(), cost_model=cost_model
            ).distance()
            assert spf_L(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy) == (
                pytest.approx(left)
            )
            assert spf_R(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy) == (
                pytest.approx(right)
            )

    def test_kernels_agree_with_each_other(self):
        if not numpy_available():
            pytest.skip("numpy kernel unavailable")
        for tree_f, tree_g in SPF_PAIRS[:30]:
            assert spf_L(tree_f, tree_g, use_numpy=True) == pytest.approx(
                spf_L(tree_f, tree_g, use_numpy=False)
            )
            assert spf_R(tree_f, tree_g, use_numpy=True) == pytest.approx(
                spf_R(tree_f, tree_g, use_numpy=False)
            )

    def test_subtree_pair_distances(self):
        """run() on inner subtree roots matches the engine's subtree_distance."""
        gen = random.Random(5)
        tree_f = random_tree(18, rng=gen)
        tree_g = random_tree(16, rng=gen)
        engine = DecompositionEngine(tree_f, tree_g, LeftFStrategy())
        for v in range(0, tree_f.n, 3):
            for w in range(0, tree_g.n, 3):
                context = SinglePathContext(tree_f, tree_g)
                got = context.run("F", "left", v, w)
                assert got == pytest.approx(engine.subtree_distance(v, w))

    def test_counts_cells(self):
        tree_f, tree_g = SPF_PAIRS[0]
        context = SinglePathContext(tree_f, tree_g)
        context.run("F", "left", tree_f.root, tree_g.root)
        assert context.cells > 0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_property_spf_matches_zhang_shasha(self, pair):
        tree_f, tree_g = pair
        expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
        assert spf_L(tree_f, tree_g) == pytest.approx(expected)
        assert spf_R(tree_f, tree_g) == pytest.approx(expected)


def _caterpillar(k: int, leaf_first: bool = False, label: object = "a") -> Tree:
    """A caterpillar: a spine of ``k`` nodes, each with one leaf child.

    With ``leaf_first=False`` the leaf hangs *after* the spine child, which
    makes every spine subtree end at a distinct chain position — the worst
    case for the inner-path row cache.
    """
    node = Node(label)
    for _ in range(k):
        if leaf_first:
            node = Node(label, [Node(label), node])
        else:
            node = Node(label, [node, Node(label)])
    return Tree(node)


class TestInnerPathFunctions:
    """The chain/grid single-path function Δ_A (heavy and arbitrary paths)."""

    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_spf_heavy_matches_recursive_engine(self, use_numpy):
        # 100 pairs per kernel — together with the weighted/string-rename
        # sweeps below this layer is cross-checked on well over 200 pairs.
        for tree_f, tree_g in SPF_PAIRS:
            expected = DecompositionEngine(tree_f, tree_g, HeavyFStrategy()).distance()
            assert spf_H(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    def test_spf_heavy_matches_zhang_shasha(self):
        for tree_f, tree_g in SPF_PAIRS[:40]:
            expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
            assert spf_H(tree_f, tree_g) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    @pytest.mark.parametrize(
        "cost_model", [WEIGHTED, StringRenameCostModel()], ids=["weighted", "string-rename"]
    )
    def test_non_unit_costs_match_recursive_engine(self, use_numpy, cost_model):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            expected = DecompositionEngine(
                tree_f, tree_g, HeavyFStrategy(), cost_model=cost_model
            ).distance()
            assert spf_H(
                tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy
            ) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_heavy_g_side(self, use_numpy):
        """Decomposing the right-hand tree exercises the transposed kernels."""
        for tree_f, tree_g in SPF_PAIRS[:25]:
            expected = DecompositionEngine(tree_f, tree_g, HeavyGStrategy()).distance()
            context = SinglePathContext(tree_f, tree_g, use_numpy=use_numpy)
            got = context.run_inner("G", HEAVY, tree_f.root, tree_g.root)
            assert got == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    @pytest.mark.parametrize("kind", [LEFT, RIGHT])
    def test_inner_left_right_agree_with_keyroot_spfs(self, use_numpy, kind):
        """Δ_A with a left/right path must equal the dedicated Δ_L / Δ_R."""
        keyroot = spf_L if kind == LEFT else spf_R
        for tree_f, tree_g in SPF_PAIRS[:30]:
            assert spf_A(tree_f, tree_g, kind, use_numpy=use_numpy) == pytest.approx(
                keyroot(tree_f, tree_g)
            )

    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_single_node_edge_cases(self, use_numpy):
        single = Tree(Node("x"))
        bigger = random_tree(9, rng=13)
        assert spf_H(single, single, use_numpy=use_numpy) == 0.0
        assert spf_H(single, Tree(Node("y")), use_numpy=use_numpy) == 1.0
        expected = DecompositionEngine(single, bigger, HeavyFStrategy()).distance()
        assert spf_H(single, bigger, use_numpy=use_numpy) == pytest.approx(expected)
        expected = DecompositionEngine(bigger, single, HeavyFStrategy()).distance()
        assert spf_H(bigger, single, use_numpy=use_numpy) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    @pytest.mark.parametrize("leaf_first", [False, True], ids=["leaf-after", "leaf-before"])
    def test_caterpillar_edge_cases(self, use_numpy, leaf_first):
        """Caterpillars maximize distinct forest-split targets per chain."""
        cat = _caterpillar(9, leaf_first=leaf_first)
        other = random_tree(15, rng=4)
        for tree_f, tree_g in ((cat, other), (other, cat), (cat, _caterpillar(7, label="b"))):
            expected = DecompositionEngine(tree_f, tree_g, HeavyFStrategy()).distance()
            assert spf_H(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    def test_subtree_pair_distances(self):
        """run_inner() on inner subtree roots matches the engine's values."""
        gen = random.Random(6)
        tree_f = random_tree(17, rng=gen)
        tree_g = random_tree(15, rng=gen)
        engine = DecompositionEngine(tree_f, tree_g, HeavyFStrategy())
        for v in range(0, tree_f.n, 3):
            for w in range(0, tree_g.n, 3):
                context = SinglePathContext(tree_f, tree_g)
                got = context.run_inner("F", HEAVY, v, w)
                assert got == pytest.approx(engine.subtree_distance(v, w))

    def test_counts_cells(self):
        tree_f, tree_g = SPF_PAIRS[0]
        context = SinglePathContext(tree_f, tree_g)
        context.run_inner("F", HEAVY, tree_f.root, tree_g.root)
        assert context.cells > 0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_property_spf_heavy_matches_zhang_shasha(self, pair):
        tree_f, tree_g = pair
        expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
        assert spf_H(tree_f, tree_g) == pytest.approx(expected)


EXECUTOR_STRATEGIES = [
    LeftFStrategy(),
    RightFStrategy(),
    LeftGStrategy(),
    RightGStrategy(),
    HeavyFStrategy(),
    HeavyGStrategy(),
    HeavyLargerStrategy(),
]


class TestStrategyExecutor:
    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES, ids=lambda s: s.name)
    def test_matches_recursive_engine(self, strategy):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            expected = DecompositionEngine(tree_f, tree_g, strategy).distance()
            executor = StrategyExecutor(tree_f, tree_g, strategy)
            assert executor.distance() == pytest.approx(expected)
            assert executor.subproblems > 0

    def test_optimal_strategy_through_executor(self):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            strategy = optimal_strategy(tree_f, tree_g).strategy
            expected = DecompositionEngine(tree_f, tree_g, strategy).distance()
            assert StrategyExecutor(tree_f, tree_g, strategy).distance() == pytest.approx(expected)

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES, ids=lambda s: s.name)
    def test_weighted_costs(self, strategy):
        for tree_f, tree_g in SPF_PAIRS[:10]:
            expected = DecompositionEngine(
                tree_f, tree_g, strategy, cost_model=WEIGHTED
            ).distance()
            executor = StrategyExecutor(tree_f, tree_g, strategy, cost_model=WEIGHTED)
            assert executor.distance() == pytest.approx(expected)

    def test_gted_engine_parameter(self):
        tree_f, tree_g = SPF_PAIRS[1]
        recursive = GTED(LeftFStrategy(), engine="recursive").compute(tree_f, tree_g)
        iterative = GTED(LeftFStrategy(), engine="spf").compute(tree_f, tree_g)
        assert iterative.distance == pytest.approx(recursive.distance)
        assert recursive.extra["engine"] == "recursive"
        assert iterative.extra["engine"] == "spf"

    def test_rted_engine_parameter(self):
        for tree_f, tree_g in SPF_PAIRS[:15]:
            recursive = RTED(engine="recursive").compute(tree_f, tree_g)
            iterative = RTED(engine="spf").compute(tree_f, tree_g)
            assert iterative.distance == pytest.approx(recursive.distance)

    def test_auto_engine_is_spf(self):
        tree_f, tree_g = SPF_PAIRS[2]
        assert RTED().compute(tree_f, tree_g).extra["engine"] == "spf"
        assert GTED(HeavyFStrategy()).compute(tree_f, tree_g).extra["engine"] == "spf"


class TestNoRecursiveEngineOnDefaultPath:
    """The recursive engine is a pure oracle: the default (``auto``) and the
    ``spf`` engine must never instantiate it, for any strategy step kind."""

    @pytest.fixture
    def forbidden_recursive_engine(self, monkeypatch):
        def forbidden(self, *args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("DecompositionEngine must not run on the default path")

        monkeypatch.setattr(DecompositionEngine, "__init__", forbidden)

    def test_rted_auto_never_uses_recursive_engine(self, forbidden_recursive_engine):
        for tree_f, tree_g in SPF_PAIRS[:20]:
            expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
            assert RTED().distance(tree_f, tree_g) == pytest.approx(expected)
            assert RTED(engine="spf").distance(tree_f, tree_g) == pytest.approx(expected)

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES, ids=lambda s: s.name)
    def test_gted_spf_never_uses_recursive_engine(self, forbidden_recursive_engine, strategy):
        for tree_f, tree_g in SPF_PAIRS[:10]:
            expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
            assert GTED(strategy, engine="spf").distance(tree_f, tree_g) == (
                pytest.approx(expected)
            )

    @pytest.mark.parametrize("name", ["rted", "klein-h", "demaine-h", "zhang-l", "zhang-r"])
    def test_registry_auto_never_uses_recursive_engine(self, forbidden_recursive_engine, name):
        tree_f, tree_g = SPF_PAIRS[3]
        expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
        assert make_algorithm(name).distance(tree_f, tree_g) == pytest.approx(expected)

    def test_recursive_engine_still_selectable(self):
        tree_f, tree_g = SPF_PAIRS[4]
        result = RTED(engine="recursive").compute(tree_f, tree_g)
        assert result.extra["engine"] == "recursive"


class TestDeepTrees:
    """Path-shaped inputs beyond any reasonable recursion limit."""

    def test_deep_left_path_spf(self):
        deep = _path_tree(1200)
        bushy = random_tree(24, rng=3)
        expected = zhang_shasha_distance(deep, bushy, UNIT_COST)[0]
        assert spf_L(deep, bushy) == pytest.approx(expected)
        assert spf_R(deep, bushy) == pytest.approx(expected)

    def test_deep_pair_both_deep(self):
        left = _path_tree(1100, label="a")
        right = _path_tree(1050, label="b")
        # Both trees are pure paths with disjoint labels: the cheapest script
        # renames all 1051 nodes of the shorter path and deletes the other 50.
        assert spf_L(left, right) == pytest.approx(1101.0)

    def test_5000_deep_zhang_l_without_recursion_limit(self, monkeypatch):
        """Acceptance: a 5000-deep linear tree under zhang-l, with
        sys.setrecursionlimit forbidden for the whole computation."""
        deep = _path_tree(5000)
        bushy = random_tree(30, rng=7)
        expected = zhang_shasha_distance(deep, bushy, UNIT_COST)[0]

        def forbidden(limit):  # pragma: no cover - would fail the test
            raise AssertionError("sys.setrecursionlimit must not be touched")

        monkeypatch.setattr(sys, "setrecursionlimit", forbidden)
        from repro.api import compute

        assert compute(deep, bushy, algorithm="zhang-l").distance == pytest.approx(expected)
        assert compute(deep, bushy, algorithm="zhang-l", engine="spf").distance == (
            pytest.approx(expected)
        )
        assert GTED(RightFStrategy(), engine="spf").distance(deep, bushy) == (
            pytest.approx(expected)
        )

    def test_5000_deep_heavy_and_rted_without_recursion_limit(self, monkeypatch):
        """Acceptance: heavy strategies and full RTED on a 5000-deep path
        tree, with the interpreter recursion limit left at its default and
        sys.setrecursionlimit forbidden end-to-end."""
        deep = _path_tree(5000)
        bushy = random_tree(30, rng=7)
        expected = zhang_shasha_distance(deep, bushy, UNIT_COST)[0]

        def forbidden(limit):  # pragma: no cover - would fail the test
            raise AssertionError("sys.setrecursionlimit must not be touched")

        monkeypatch.setattr(sys, "setrecursionlimit", forbidden)
        from repro.api import compute

        assert spf_H(deep, bushy) == pytest.approx(expected)
        assert GTED(HeavyFStrategy(), engine="spf").distance(deep, bushy) == (
            pytest.approx(expected)
        )
        # Full RTED (auto engine): Algorithm 2 plus the iterative executor,
        # whatever mix of paths the optimal strategy picks.
        assert compute(deep, bushy, algorithm="rted").distance == pytest.approx(expected)
        assert compute(bushy, deep, algorithm="klein-h").distance == pytest.approx(expected)

    def test_deep_heavy_both_directions(self):
        """Heavy spine runs on deep × deep caterpillar pairs.

        Caterpillars are the worst case for the boundary grid (|A| is
        genuinely quadratic, so no keyroot shortcut applies) — kept at a
        moderate size for runtime, the point is depth × depth correctness.
        """
        left_cat = _caterpillar(130)
        right_cat = _caterpillar(120, leaf_first=True, label="b")
        expected = zhang_shasha_distance(left_cat, right_cat, UNIT_COST)[0]
        assert spf_H(left_cat, right_cat) == pytest.approx(expected)

    def test_fallback_engine_still_bumps_recursion_limit_capped(self):
        from repro.algorithms.forest_engine import MAX_RECURSION_LIMIT, _recursion_headroom

        before = sys.getrecursionlimit()
        with _recursion_headroom(10**9):
            assert sys.getrecursionlimit() == MAX_RECURSION_LIMIT
        assert sys.getrecursionlimit() == before
