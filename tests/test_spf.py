"""Tests for the iterative single-path layer (spf, spf_numpy, StrategyExecutor).

The recursive :class:`DecompositionEngine` is the reference oracle; every
test here cross-checks the iterative SPFs and the strategy executor against
it (and against the independent Zhang–Shasha implementation), on randomized
tree pairs with unit and non-unit cost models, and on deep path-shaped trees
that the recursive engine could only handle by raising the interpreter
recursion limit.
"""

import random
import sys

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    GTED,
    RTED,
    DecompositionEngine,
    HeavyFStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    LeftGStrategy,
    RightFStrategy,
    RightGStrategy,
    SinglePathContext,
    StrategyExecutor,
    ZhangShashaTED,
    optimal_strategy,
    spf_L,
    spf_R,
    zhang_shasha_distance,
)
from repro.algorithms.spf import numpy_available
from repro.costs import UNIT_COST, StringRenameCostModel, WeightedCostModel
from repro.datasets import random_tree
from repro.trees import Node, Tree

from conftest import random_tree_pairs, tree_pairs

KERNELS = [False, True] if numpy_available() else [False]

#: 100 pairs for the left SPF + 100 pairs for the right SPF = the >= 200
#: randomized cross-checked pairs required of this layer.
SPF_PAIRS = random_tree_pairs(count=100, max_size=14, seed=20110713)

WEIGHTED = WeightedCostModel(delete_cost=1.5, insert_cost=0.5, rename_cost=2.0)


def _path_tree(depth: int, label: object = "a") -> Tree:
    """A linear (path-shaped) tree with ``depth`` edges, built iteratively."""
    node = Node(label)
    for _ in range(depth):
        node = Node(label, [node])
    return Tree(node)


class TestSinglePathFunctions:
    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_spf_left_matches_recursive_engine(self, use_numpy):
        for tree_f, tree_g in SPF_PAIRS:
            expected = DecompositionEngine(tree_f, tree_g, LeftFStrategy()).distance()
            assert spf_L(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    def test_spf_right_matches_recursive_engine(self, use_numpy):
        for tree_f, tree_g in SPF_PAIRS:
            expected = DecompositionEngine(tree_f, tree_g, RightFStrategy()).distance()
            assert spf_R(tree_f, tree_g, use_numpy=use_numpy) == pytest.approx(expected)

    def test_spf_left_matches_zhang_shasha(self):
        for tree_f, tree_g in SPF_PAIRS[:40]:
            expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
            assert spf_L(tree_f, tree_g) == pytest.approx(expected)

    @pytest.mark.parametrize("use_numpy", KERNELS)
    @pytest.mark.parametrize(
        "cost_model", [WEIGHTED, StringRenameCostModel()], ids=["weighted", "string-rename"]
    )
    def test_non_unit_costs_match_recursive_engine(self, use_numpy, cost_model):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            left = DecompositionEngine(
                tree_f, tree_g, LeftFStrategy(), cost_model=cost_model
            ).distance()
            right = DecompositionEngine(
                tree_f, tree_g, RightFStrategy(), cost_model=cost_model
            ).distance()
            assert spf_L(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy) == (
                pytest.approx(left)
            )
            assert spf_R(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy) == (
                pytest.approx(right)
            )

    def test_kernels_agree_with_each_other(self):
        if not numpy_available():
            pytest.skip("numpy kernel unavailable")
        for tree_f, tree_g in SPF_PAIRS[:30]:
            assert spf_L(tree_f, tree_g, use_numpy=True) == pytest.approx(
                spf_L(tree_f, tree_g, use_numpy=False)
            )
            assert spf_R(tree_f, tree_g, use_numpy=True) == pytest.approx(
                spf_R(tree_f, tree_g, use_numpy=False)
            )

    def test_subtree_pair_distances(self):
        """run() on inner subtree roots matches the engine's subtree_distance."""
        gen = random.Random(5)
        tree_f = random_tree(18, rng=gen)
        tree_g = random_tree(16, rng=gen)
        engine = DecompositionEngine(tree_f, tree_g, LeftFStrategy())
        for v in range(0, tree_f.n, 3):
            for w in range(0, tree_g.n, 3):
                context = SinglePathContext(tree_f, tree_g)
                got = context.run("F", "left", v, w)
                assert got == pytest.approx(engine.subtree_distance(v, w))

    def test_counts_cells(self):
        tree_f, tree_g = SPF_PAIRS[0]
        context = SinglePathContext(tree_f, tree_g)
        context.run("F", "left", tree_f.root, tree_g.root)
        assert context.cells > 0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_property_spf_matches_zhang_shasha(self, pair):
        tree_f, tree_g = pair
        expected = zhang_shasha_distance(tree_f, tree_g, UNIT_COST)[0]
        assert spf_L(tree_f, tree_g) == pytest.approx(expected)
        assert spf_R(tree_f, tree_g) == pytest.approx(expected)


EXECUTOR_STRATEGIES = [
    LeftFStrategy(),
    RightFStrategy(),
    LeftGStrategy(),
    RightGStrategy(),
    HeavyFStrategy(),
    HeavyLargerStrategy(),
]


class TestStrategyExecutor:
    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES, ids=lambda s: s.name)
    def test_matches_recursive_engine(self, strategy):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            expected = DecompositionEngine(tree_f, tree_g, strategy).distance()
            executor = StrategyExecutor(tree_f, tree_g, strategy)
            assert executor.distance() == pytest.approx(expected)
            assert executor.subproblems > 0

    def test_optimal_strategy_through_executor(self):
        for tree_f, tree_g in SPF_PAIRS[:25]:
            strategy = optimal_strategy(tree_f, tree_g).strategy
            expected = DecompositionEngine(tree_f, tree_g, strategy).distance()
            assert StrategyExecutor(tree_f, tree_g, strategy).distance() == pytest.approx(expected)

    @pytest.mark.parametrize("strategy", EXECUTOR_STRATEGIES, ids=lambda s: s.name)
    def test_weighted_costs(self, strategy):
        for tree_f, tree_g in SPF_PAIRS[:10]:
            expected = DecompositionEngine(
                tree_f, tree_g, strategy, cost_model=WEIGHTED
            ).distance()
            executor = StrategyExecutor(tree_f, tree_g, strategy, cost_model=WEIGHTED)
            assert executor.distance() == pytest.approx(expected)

    def test_gted_engine_parameter(self):
        tree_f, tree_g = SPF_PAIRS[1]
        recursive = GTED(LeftFStrategy(), engine="recursive").compute(tree_f, tree_g)
        iterative = GTED(LeftFStrategy(), engine="spf").compute(tree_f, tree_g)
        assert iterative.distance == pytest.approx(recursive.distance)
        assert recursive.extra["engine"] == "recursive"
        assert iterative.extra["engine"] == "spf"

    def test_rted_engine_parameter(self):
        for tree_f, tree_g in SPF_PAIRS[:15]:
            recursive = RTED(engine="recursive").compute(tree_f, tree_g)
            iterative = RTED(engine="spf").compute(tree_f, tree_g)
            assert iterative.distance == pytest.approx(recursive.distance)


class TestDeepTrees:
    """Path-shaped inputs beyond any reasonable recursion limit."""

    def test_deep_left_path_spf(self):
        deep = _path_tree(1200)
        bushy = random_tree(24, rng=3)
        expected = zhang_shasha_distance(deep, bushy, UNIT_COST)[0]
        assert spf_L(deep, bushy) == pytest.approx(expected)
        assert spf_R(deep, bushy) == pytest.approx(expected)

    def test_deep_pair_both_deep(self):
        left = _path_tree(1100, label="a")
        right = _path_tree(1050, label="b")
        # Both trees are pure paths with disjoint labels: the cheapest script
        # renames all 1051 nodes of the shorter path and deletes the other 50.
        assert spf_L(left, right) == pytest.approx(1101.0)

    def test_5000_deep_zhang_l_without_recursion_limit(self, monkeypatch):
        """Acceptance: a 5000-deep linear tree under zhang-l, with
        sys.setrecursionlimit forbidden for the whole computation."""
        deep = _path_tree(5000)
        bushy = random_tree(30, rng=7)
        expected = zhang_shasha_distance(deep, bushy, UNIT_COST)[0]

        def forbidden(limit):  # pragma: no cover - would fail the test
            raise AssertionError("sys.setrecursionlimit must not be touched")

        monkeypatch.setattr(sys, "setrecursionlimit", forbidden)
        from repro.api import compute

        assert compute(deep, bushy, algorithm="zhang-l").distance == pytest.approx(expected)
        assert compute(deep, bushy, algorithm="zhang-l", engine="spf").distance == (
            pytest.approx(expected)
        )
        assert GTED(RightFStrategy(), engine="spf").distance(deep, bushy) == (
            pytest.approx(expected)
        )

    def test_fallback_engine_still_bumps_recursion_limit_capped(self):
        from repro.algorithms.forest_engine import MAX_RECURSION_LIMIT, _recursion_headroom

        before = sys.getrecursionlimit()
        with _recursion_headroom(10**9):
            assert sys.getrecursionlimit() == MAX_RECURSION_LIMIT
        assert sys.getrecursionlimit() == before
