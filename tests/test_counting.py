"""Tests for the subproblem counting machinery (cost formula, Lemmas 1-3)."""

import pytest
from hypothesis import given, settings

from repro.counting import (
    count_subproblems,
    count_subproblems_fast,
    demaine_count,
    full_decomposition_size,
    full_decomposition_size_enumerated,
    klein_count,
    optimal_cost_restricted,
    recursive_decomposition_size,
    recursive_decomposition_size_enumerated,
    relevant_subtree_counts,
    rted_count,
    single_path_subforest_count,
    single_path_subforest_count_enumerated,
    zhang_left_count,
    zhang_right_count,
)
from repro.algorithms import PathChoice, SIDE_F, SIDE_G
from repro.exceptions import UnknownAlgorithmError
from repro.datasets import (
    full_binary_tree,
    left_branch_tree,
    make_shape,
    random_tree,
    right_branch_tree,
    zigzag_tree,
)
from repro.trees import HEAVY, LEFT, RIGHT, tree_from_nested

from conftest import tree_pairs, trees


class TestLemmas:
    @given(trees())
    @settings(max_examples=30, deadline=None)
    def test_lemma1_closed_form(self, tree):
        assert full_decomposition_size(tree) == full_decomposition_size_enumerated(tree)

    @given(trees())
    @settings(max_examples=30, deadline=None)
    def test_lemma2_single_path_count(self, tree):
        for kind in (LEFT, RIGHT, HEAVY):
            assert single_path_subforest_count(tree, tree.root, kind) == tree.n
            assert single_path_subforest_count_enumerated(tree, tree.root, kind) == tree.n

    @given(trees())
    @settings(max_examples=30, deadline=None)
    def test_lemma3_recursive_decomposition(self, tree):
        for kind in (LEFT, RIGHT):
            assert recursive_decomposition_size(tree, kind) == (
                recursive_decomposition_size_enumerated(tree, kind)
            )

    def test_relevant_subtree_counts(self):
        tree = tree_from_nested(("a", ["b", ("c", ["d", "e"]), "f"]))
        counts = relevant_subtree_counts(tree)
        assert counts[LEFT][tree.root] == 2
        assert counts[HEAVY][tree.root] == 3
        assert counts[LEFT][0] == 0  # a leaf has no relevant subtrees

    def test_heavy_decomposition_size_defined(self):
        tree = full_binary_tree(15)
        assert recursive_decomposition_size(tree, HEAVY) >= tree.n

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            recursive_decomposition_size(full_binary_tree(7), "diagonal")


class TestCostFormulaKnownValues:
    """Closed-form sanity checks against the analysis in the paper."""

    def test_left_branch_zhang_l_is_quadratic(self):
        # For the LB shape Zhang-L computes ~ (n+1)^2/4 * ... exactly
        # |F(F,ΓL)| = n for this shape, so the count is n * n-ish; in any case
        # it must be far below the Zhang-R count, which is cubic.
        tree = left_branch_tree(101)
        left = zhang_left_count(tree, tree)
        right = zhang_right_count(tree, tree)
        assert left < right / 50

    def test_right_branch_mirrors_left_branch(self):
        left_tree = left_branch_tree(61)
        right_tree = right_branch_tree(61)
        assert zhang_left_count(left_tree, left_tree) == zhang_right_count(
            right_tree, right_tree
        )
        assert zhang_right_count(left_tree, left_tree) == zhang_left_count(
            right_tree, right_tree
        )

    def test_zigzag_demaine_beats_zhang(self):
        tree = zigzag_tree(81)
        assert demaine_count(tree, tree) < zhang_left_count(tree, tree)
        assert demaine_count(tree, tree) < zhang_right_count(tree, tree)

    def test_full_binary_zhang_beats_klein_and_demaine(self):
        tree = full_binary_tree(63)
        zhang = zhang_left_count(tree, tree)
        assert zhang < klein_count(tree, tree)
        assert zhang < demaine_count(tree, tree)

    def test_rted_wins_or_ties_everywhere(self):
        for shape in ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]:
            tree = make_shape(shape, 41)
            best_competitor = min(
                zhang_left_count(tree, tree),
                zhang_right_count(tree, tree),
                klein_count(tree, tree),
                demaine_count(tree, tree),
            )
            assert rted_count(tree, tree) <= best_competitor

    def test_single_node_pair_costs_one(self):
        tree = tree_from_nested("a")
        assert rted_count(tree, tree) == 1
        assert zhang_left_count(tree, tree) == 1


class TestFastCountersAgree:
    @given(tree_pairs())
    @settings(max_examples=30, deadline=None)
    def test_fast_matches_reference(self, pair):
        tree_f, tree_g = pair
        for algorithm in ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]:
            assert count_subproblems_fast(algorithm, tree_f, tree_g) == count_subproblems(
                algorithm, tree_f, tree_g
            )

    @pytest.mark.parametrize("algorithm", ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"])
    def test_fast_matches_reference_on_shapes(self, algorithm):
        tree_f = make_shape("mixed", 37)
        tree_g = make_shape("zigzag", 29)
        assert count_subproblems_fast(algorithm, tree_f, tree_g) == count_subproblems(
            algorithm, tree_f, tree_g
        )

    def test_asymmetric_pairs(self):
        tree_f = random_tree(25, rng=1)
        tree_g = random_tree(40, rng=2)
        for algorithm in ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]:
            assert count_subproblems_fast(algorithm, tree_f, tree_g) == count_subproblems(
                algorithm, tree_f, tree_g
            )

    def test_unknown_algorithm_rejected(self):
        tree = random_tree(5, rng=1)
        with pytest.raises(UnknownAlgorithmError):
            count_subproblems("tai-1979", tree, tree)
        with pytest.raises(UnknownAlgorithmError):
            count_subproblems_fast("tai-1979", tree, tree)


class TestRestrictedOptimum:
    def test_restriction_never_improves(self):
        tree = make_shape("mixed", 33)
        full = rted_count(tree, tree)
        lr_only = optimal_cost_restricted(
            tree, tree, (PathChoice(SIDE_F, LEFT), PathChoice(SIDE_F, RIGHT))
        )
        heavy_only = optimal_cost_restricted(
            tree, tree, (PathChoice(SIDE_F, HEAVY), PathChoice(SIDE_G, HEAVY))
        )
        assert full <= lr_only
        assert full <= heavy_only

    def test_single_choice_restriction_equals_fixed_strategy(self):
        tree = make_shape("zigzag", 25)
        assert optimal_cost_restricted(
            tree, tree, (PathChoice(SIDE_F, LEFT),)
        ) == zhang_left_count(tree, tree)

    def test_empty_restriction_rejected(self):
        tree = make_shape("zigzag", 9)
        with pytest.raises(ValueError):
            optimal_cost_restricted(tree, tree, ())
