"""Tests for the ASCII visualization helpers."""

from repro.algorithms import compute_edit_mapping
from repro.io import parse_bracket
from repro.visualize import render_mapping, render_outline, render_tree
from repro.datasets import left_branch_tree


class TestRenderTree:
    def test_single_node(self):
        assert render_tree(parse_bracket("{a}")) == "a"

    def test_every_node_appears_once(self):
        tree = parse_bracket("{a{b{c}}{d}}")
        rendering = render_tree(tree)
        assert rendering.splitlines()[0] == "a"
        for label in ("b", "c", "d"):
            assert rendering.count(label) == 1

    def test_connectors_present(self):
        rendering = render_tree(parse_bracket("{a{b}{c}}"))
        assert "├── b" in rendering
        assert "└── c" in rendering

    def test_truncation(self):
        rendering = render_tree(left_branch_tree(101), max_nodes=10)
        assert rendering.endswith("…")
        assert len(rendering.splitlines()) == 11


class TestRenderOutline:
    def test_outline(self):
        assert render_outline(parse_bracket("{a{b}{c{d}}}")) == "a(b, c(d))"

    def test_leaf_outline(self):
        assert render_outline(parse_bracket("{x}")) == "x"


class TestRenderMapping:
    def test_annotations(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{x}{c}{d}}")
        mapping = compute_edit_mapping(t1, t2)
        rendering = render_mapping(t1, t2, mapping)
        assert "[=]" in rendering                # at least one exact match
        assert "rename" in rendering or "delete" in rendering
        assert "inserted in target:" in rendering
