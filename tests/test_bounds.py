"""Tests for distance bounds: every lower bound ≤ exact TED ≤ every upper bound."""

import pytest
from hypothesis import given, settings

from repro.algorithms import ZhangShashaTED
from repro.bounds import (
    binary_branch_distance,
    binary_branch_lower_bound,
    cheap_lower_bound,
    combined_lower_bound,
    label_multiset_lower_bound,
    levenshtein,
    pq_gram_distance,
    pq_gram_profile,
    postorder_string_lower_bound,
    preorder_string_lower_bound,
    size_lower_bound,
    top_down_upper_bound,
    traversal_string_lower_bound,
    trivial_upper_bound,
)
from repro.costs import (
    CallableCostModel,
    CostModel,
    PerLabelCostModel,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from repro.io import parse_bracket
from repro.datasets import perturb_tree, random_tree

from conftest import random_tree_pairs, tree_pairs

EXACT = ZhangShashaTED()


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_known_values(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein(list("ab"), list("ba")) == 2

    def test_symmetry(self):
        assert levenshtein("abcd", "xy") == levenshtein("xy", "abcd")


class TestSimpleBounds:
    def test_size_bound(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a}")
        assert size_lower_bound(t1, t2) == 2

    def test_label_multiset_bound(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{x}{y}}")
        assert label_multiset_lower_bound(t1, t2) == 2

    def test_cheap_bound_is_max_of_both(self):
        t1 = parse_bracket("{a{b}{c}{d}}")
        t2 = parse_bracket("{x}")
        assert cheap_lower_bound(t1, t2) == max(
            size_lower_bound(t1, t2), label_multiset_lower_bound(t1, t2)
        )

    def test_identical_trees_have_zero_bounds(self):
        tree = parse_bracket("{a{b{c}}{d}}")
        assert cheap_lower_bound(tree, tree) == 0
        assert traversal_string_lower_bound(tree, tree) == 0
        assert binary_branch_distance(tree, tree) == 0


class TestStringBounds:
    def test_preorder_bound_on_rename(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}{x}}")
        assert preorder_string_lower_bound(t1, t2) == 1
        assert postorder_string_lower_bound(t1, t2) == 1

    def test_string_bounds_can_exceed_cheap_bounds(self):
        # Same label multiset, same size, but different arrangement.
        t1 = parse_bracket("{a{b{c}}{d}}")
        t2 = parse_bracket("{a{d{b}}{c}}")
        assert traversal_string_lower_bound(t1, t2) >= cheap_lower_bound(t1, t2)


class TestBinaryBranchAndPqGrams:
    def test_binary_branch_profile_size(self):
        tree = parse_bracket("{a{b}{c}}")
        profile = pq_gram_profile(tree)
        assert sum(profile.values()) > 0
        assert sum(binary_branch_distance(tree, tree) for _ in range(1)) == 0

    def test_pq_gram_distance_range(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{x{y{z}}}")
        assert 0.0 <= pq_gram_distance(t1, t2) <= 1.0
        assert pq_gram_distance(t1, t1) == 0.0

    def test_pq_gram_rejects_bad_parameters(self):
        tree = parse_bracket("{a}")
        with pytest.raises(ValueError):
            pq_gram_profile(tree, p=0, q=2)

    def test_similar_trees_have_smaller_pq_distance_than_dissimilar(self):
        base = random_tree(30, rng=1)
        near = perturb_tree(base, 2, rng=2)
        far = random_tree(30, rng=99)
        assert pq_gram_distance(base, near) <= pq_gram_distance(base, far)


class TestSandwich:
    """lower bound ≤ exact distance ≤ upper bound, on many random pairs."""

    def test_sandwich_on_random_pairs(self):
        for tree_f, tree_g in random_tree_pairs(count=25, max_size=16, seed=37):
            exact = EXACT.distance(tree_f, tree_g)
            assert size_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert label_multiset_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert preorder_string_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert postorder_string_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert binary_branch_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert combined_lower_bound(tree_f, tree_g) <= exact + 1e-9
            assert exact <= top_down_upper_bound(tree_f, tree_g) + 1e-9
            assert exact <= trivial_upper_bound(tree_f, tree_g) + 1e-9

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_sandwich_property_based(self, pair):
        tree_f, tree_g = pair
        exact = EXACT.distance(tree_f, tree_g)
        assert combined_lower_bound(tree_f, tree_g) <= exact + 1e-9
        assert exact <= top_down_upper_bound(tree_f, tree_g) + 1e-9

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_upper_bounds_ordered(self, pair):
        tree_f, tree_g = pair
        assert top_down_upper_bound(tree_f, tree_g) <= trivial_upper_bound(tree_f, tree_g) + 1e-9

    def test_bounds_tight_on_perturbed_trees(self):
        base = random_tree(40, rng=11)
        perturbed = perturb_tree(base, 3, rng=12)
        exact = EXACT.distance(base, perturbed)
        assert exact <= top_down_upper_bound(base, perturbed) + 1e-9
        # A small perturbation keeps the exact distance small; the upper bound
        # must not be wildly larger than delete-all/insert-all would suggest.
        assert top_down_upper_bound(base, perturbed) < trivial_upper_bound(base, perturbed)


class TestSandwichCustomCostModels:
    """The bound sandwich under non-unit cost models.

    The lower bounds count edit operations, so under a model with cheapest
    operation ``c = min_operation_cost()`` the sound statement is
    ``c · ops_bound ≤ exact ≤ upper bound``, with the upper bounds evaluated
    under the actual model (they are costs of explicit mappings).
    """

    COST_MODELS = [
        WeightedCostModel(0.4, 0.4, 0.4),
        WeightedCostModel(0.25, 1.0, 0.5),
        WeightedCostModel(2.0, 3.0, 1.5),
        PerLabelCostModel(
            delete_costs={"a": 0.2}, default_delete=0.7, default_insert=0.9, rename_cost=0.6
        ),
        StringRenameCostModel(),
    ]

    @pytest.mark.parametrize("cost_model", COST_MODELS, ids=lambda cm: repr(cm)[:40])
    def test_scaled_sandwich_on_random_pairs(self, cost_model):
        scale = cost_model.min_operation_cost()
        assert scale is not None and scale >= 0
        for tree_f, tree_g in random_tree_pairs(count=20, max_size=14, seed=53):
            exact = EXACT.distance(tree_f, tree_g, cost_model=cost_model)
            ops_bound = max(
                float(cheap_lower_bound(tree_f, tree_g)),
                combined_lower_bound(tree_f, tree_g),
            )
            assert scale * ops_bound <= exact + 1e-9
            assert exact <= top_down_upper_bound(tree_f, tree_g, cost_model) + 1e-9
            assert exact <= trivial_upper_bound(tree_f, tree_g, cost_model) + 1e-9

    def test_min_operation_cost_values(self):
        assert UnitCostModel().min_operation_cost() == 1.0
        assert WeightedCostModel(0.4, 0.7, 0.9).min_operation_cost() == pytest.approx(0.4)
        assert (
            PerLabelCostModel(
                insert_costs={"x": 0.1}, default_delete=2.0, default_insert=2.0
            ).min_operation_cost()
            == pytest.approx(0.1)
        )
        assert StringRenameCostModel().min_operation_cost() == 0.0
        assert CostModel().min_operation_cost() is None
        assert CallableCostModel(
            lambda _: 1.0, lambda _: 1.0, lambda a, b: 1.0
        ).min_operation_cost() is None
