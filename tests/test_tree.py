"""Unit tests for repro.trees.tree (indexing, paths, decomposition sizes)."""

import pytest
from hypothesis import given, settings

from repro.exceptions import InvalidNodeError, TreeConstructionError
from repro.trees import HEAVY, LEFT, RIGHT, Node, Tree, tree_from_nested

from conftest import trees


@pytest.fixture
def example() -> Tree:
    #        a
    #      / | \
    #     b  c  f
    #        |\
    #        d e
    return tree_from_nested(("a", ["b", ("c", ["d", "e"]), "f"]))


class TestIndexing:
    def test_postorder_labels(self, example):
        assert list(example.labels) == ["b", "d", "e", "c", "f", "a"]

    def test_root_is_last_postorder_node(self, example):
        assert example.root == example.n - 1
        assert example.label(example.root) == "a"

    def test_parents(self, example):
        root = example.root
        assert example.parents[root] == -1
        b, d, e, c, f = 0, 1, 2, 3, 4
        assert example.parents[b] == root
        assert example.parents[c] == root
        assert example.parents[f] == root
        assert example.parents[d] == c
        assert example.parents[e] == c

    def test_children_in_left_to_right_order(self, example):
        assert example.children[example.root] == [0, 3, 4]
        assert example.children[3] == [1, 2]

    def test_sizes(self, example):
        assert example.sizes[example.root] == 6
        assert example.sizes[3] == 3
        assert example.sizes[0] == 1

    def test_depths(self, example):
        assert example.depths[example.root] == 0
        assert example.depths[0] == 1
        assert example.depths[1] == 2
        assert example.depth() == 2

    def test_leftmost_and_rightmost_leaves(self, example):
        root = example.root
        assert example.lml[root] == 0  # node b
        assert example.rml[root] == 4  # node f
        assert example.lml[3] == 1  # c's leftmost leaf is d
        assert example.rml[3] == 2  # c's rightmost leaf is e

    def test_pre_post_mappings_are_inverse(self, example):
        for post_id in range(example.n):
            assert example.post_of_pre[example.pre_of_post[post_id]] == post_id

    def test_preorder_labels(self, example):
        assert example.labels_preorder() == ["a", "b", "c", "d", "e", "f"]

    def test_invalid_constructor_argument(self):
        with pytest.raises(TreeConstructionError):
            Tree("not a node")

    def test_invalid_node_id(self, example):
        with pytest.raises(InvalidNodeError):
            example.label(99)


class TestSubtreeQueries:
    def test_subtree_nodes_contiguous(self, example):
        assert example.subtree_nodes(3) == [1, 2, 3]

    def test_is_descendant(self, example):
        assert example.is_descendant(1, 3)
        assert example.is_descendant(3, 3)
        assert not example.is_descendant(3, 1)
        assert not example.is_descendant(0, 3)

    def test_subtree_extraction(self, example):
        sub = example.subtree(3)
        assert sub.n == 3
        assert list(sub.labels) == ["d", "e", "c"]

    def test_num_leaves(self, example):
        assert example.num_leaves() == 4
        assert example.num_leaves(3) == 2

    def test_iter_preorder_of_subtree(self, example):
        assert list(example.iter_preorder(3)) == [3, 1, 2]


class TestPaths:
    def test_left_path(self, example):
        assert example.root_leaf_path(example.root, LEFT) == [example.root, 0]

    def test_right_path(self, example):
        assert example.root_leaf_path(example.root, RIGHT) == [example.root, 4]

    def test_heavy_path(self, example):
        # c roots the largest subtree (3 nodes); its heavy child is d (ties -> leftmost).
        assert example.root_leaf_path(example.root, HEAVY) == [example.root, 3, 1]

    def test_heavy_child_tie_breaks_to_leftmost(self):
        tree = tree_from_nested(("a", ["b", "c"]))
        assert tree.heavy_child[tree.root] == 0

    def test_on_parent_path(self, example):
        assert example.on_parent_path(0, LEFT)
        assert not example.on_parent_path(0, RIGHT)
        assert example.on_parent_path(4, RIGHT)
        assert example.on_parent_path(3, HEAVY)
        assert not example.on_parent_path(example.root, LEFT)

    def test_relevant_subtrees_left(self, example):
        # Hanging off the left path (a -> b): subtrees rooted at c and f.
        assert example.relevant_subtrees(example.root, LEFT) == [3, 4]

    def test_relevant_subtrees_heavy(self, example):
        # Heavy path a -> c -> d; hanging: b, e, f.
        assert example.relevant_subtrees(example.root, HEAVY) == [0, 2, 4]

    def test_path_partitioning_covers_tree_disjointly(self, example):
        for kind in (LEFT, RIGHT, HEAVY):
            partitioning = example.path_partitioning(kind)
            nodes = [v for path in partitioning for v in path]
            assert sorted(nodes) == list(range(example.n))
            # Each path ends at a leaf.
            for path in partitioning:
                assert example.is_leaf(path[-1])


class TestDecompositionSizes:
    def test_single_node(self):
        tree = Tree(Node("a"))
        assert tree.full_decomposition_sizes() == [1]
        assert tree.left_decomposition_sizes() == [1]
        assert tree.right_decomposition_sizes() == [1]

    def test_full_decomposition_lemma1_example(self, figure3_tree):
        # Figure 3 of the paper shows the full decomposition of the 7-node
        # example tree; |A(F)| counts distinct subforests including F itself.
        sizes = figure3_tree.full_decomposition_sizes()
        # Closed form: n(n+3)/2 - sum of subtree sizes.
        n = figure3_tree.n
        expected = n * (n + 3) // 2 - sum(
            figure3_tree.sizes[v] for v in range(figure3_tree.n)
        )
        assert sizes[figure3_tree.root] == expected

    def test_left_right_decomposition_of_balanced_pair(self):
        tree = tree_from_nested(("a", [("b", ["c"]), ("d", ["e"])]))
        # Left decomposition relevant subtrees: whole tree + subtree(d) => 5 + 2 = 7.
        assert tree.left_decomposition_sizes()[tree.root] == 7
        # Right decomposition: whole tree + subtree(b) => 5 + 2 = 7.
        assert tree.right_decomposition_sizes()[tree.root] == 7


class TestKeyroots:
    def test_keyroots_contain_root(self, example):
        assert example.root in example.keyroots_left()
        assert example.root in example.keyroots_right()

    def test_left_keyroots_are_nodes_with_distinct_leftmost_leaf(self, example):
        keyroots = example.keyroots_left()
        # b (0) is on the root's left path, so it is not a keyroot; c, e, f are.
        assert keyroots == [2, 3, 4, 5]

    def test_keyroots_of_left_branch_chain(self):
        tree = tree_from_nested(("a", [("b", [("c", ["d"])])]))
        assert tree.keyroots_left() == [tree.root]


class TestDerivedTrees:
    def test_mirrored_reverses_children(self, example):
        mirrored = example.mirrored()
        assert mirrored.labels_preorder() == ["a", "f", "c", "e", "d", "b"]
        assert mirrored.n == example.n

    def test_to_node_round_trip(self, example):
        rebuilt = Tree(example.to_node())
        assert rebuilt.structurally_equal(example)

    def test_structural_equality_detects_label_change(self, example):
        other = tree_from_nested(("a", ["b", ("c", ["d", "x"]), "f"]))
        assert not example.structurally_equal(other)


class TestTreePropertyBased:
    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_sizes_and_parents_consistent(self, tree):
        for v in range(tree.n):
            assert tree.sizes[v] == 1 + sum(tree.sizes[c] for c in tree.children[v])
            for c in tree.children[v]:
                assert tree.parents[c] == v
        assert tree.sizes[tree.root] == tree.n

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_postorder_ids_of_subtrees_are_contiguous(self, tree):
        for v in range(tree.n):
            nodes = tree.subtree_nodes(v)
            assert nodes == list(range(v - tree.sizes[v] + 1, v + 1))

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_mirroring_twice_is_identity(self, tree):
        assert tree.mirrored().mirrored().structurally_equal(tree)

    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_path_partitionings_cover_all_nodes(self, tree):
        for kind in (LEFT, RIGHT, HEAVY):
            covered = sorted(v for path in tree.path_partitioning(kind) for v in path)
            assert covered == list(range(tree.n))


@pytest.fixture
def figure3_tree():
    return tree_from_nested(("A", [("B", ["D", ("E", ["F"]), "G"]), "C"]))


class TestSpfIndexArrays:
    """Index arrays consumed by the iterative single-path functions."""

    def test_rpost_is_postorder_of_mirrored_tree(self, example):
        rpost = example.rpost_of_post()
        mirrored = example.mirrored()
        # Node with postorder id v maps to postorder id rpost[v] in the mirror.
        assert [mirrored.labels[rpost[v]] for v in range(example.n)] == list(example.labels)

    def test_rpost_roundtrip(self, example):
        rpost = example.rpost_of_post()
        post = example.post_of_rpost()
        assert sorted(rpost) == list(range(example.n))
        assert all(rpost[post[i]] == i for i in range(example.n))

    def test_rpost_subtrees_are_contiguous(self, example):
        rpost = example.rpost_of_post()
        for v in range(example.n):
            ids = sorted(rpost[u] for u in example.subtree_nodes(v))
            assert ids == list(range(rpost[v] - example.sizes[v] + 1, rpost[v] + 1))

    def test_subtree_offset(self, example):
        for v in range(example.n):
            assert example.subtree_offset(v) == v - example.sizes[v] + 1
        assert example.subtree_offset(example.root) == 0

    def test_subtree_keyroots_match_rebuilt_subtree(self, example):
        for v in range(example.n):
            offset = example.subtree_offset(v)
            sub = example.subtree(v)
            assert example.subtree_keyroots(v, LEFT) == [
                offset + k for k in sub.keyroots_left()
            ]
            assert example.subtree_keyroots(v, RIGHT) == [
                offset + k for k in sub.keyroots_right()
            ]

    def test_subtree_keyroots_whole_tree(self, example):
        assert example.subtree_keyroots(example.root, LEFT) == example.keyroots_left()
        assert example.subtree_keyroots(example.root, RIGHT) == example.keyroots_right()

    def test_subtree_keyroots_reject_heavy(self, example):
        with pytest.raises(ValueError):
            example.subtree_keyroots(example.root, HEAVY)

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_subtree_keyroots_property(self, tree):
        for v in range(tree.n):
            offset = tree.subtree_offset(v)
            sub = tree.subtree(v)
            assert tree.subtree_keyroots(v, LEFT) == [offset + k for k in sub.keyroots_left()]
