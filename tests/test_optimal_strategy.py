"""Tests for Algorithm 2 (OptStrategy) — the optimal LRH strategy in O(n^2)."""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    ALL_FIXED_CHOICES,
    EncodedStrategy,
    PathChoice,
    SIDE_F,
    SIDE_G,
    optimal_strategy,
    optimal_strategy_cost,
    optimal_strategy_objects,
)
from repro.algorithms.optimal_strategy import (
    _node_heights,
    _optimal_strategy_numpy,
    _optimal_strategy_python,
)
from repro.counting import (
    count_subproblems,
    optimal_cost_bruteforce,
    rted_count_fast,
    strategy_cost,
)
from repro.datasets import (
    full_binary_tree,
    left_branch_tree,
    make_shape,
    random_tree,
    right_branch_tree,
    zigzag_tree,
)
from repro.trees import HEAVY, LEFT, RIGHT, tree_from_nested

from conftest import tree_pairs


class TestPaperExample4:
    """Example 4 of the paper: F has 3 nodes (root + 2 leaves), G has 2 (chain)."""

    def setup_method(self):
        self.tree_f = tree_from_nested(("3", ["1", "2"]))
        self.tree_g = tree_from_nested(("2", ["1"]))

    def test_optimal_cost_is_eight(self):
        # The paper computes all six candidate costs as 8 for the root pair.
        result = optimal_strategy(self.tree_f, self.tree_g)
        assert result.cost == 8

    def test_tie_breaks_to_heavy_path_in_f(self):
        # All candidates tie; the paper picks γ_H(F_3).
        result = optimal_strategy(self.tree_f, self.tree_g)
        root_choice = result.choices[self.tree_f.root][self.tree_g.root]
        assert root_choice == PathChoice(SIDE_F, HEAVY)

    def test_leaf_pairs_cost_one(self):
        result = optimal_strategy(self.tree_f, self.tree_g)
        assert result.costs[0][0] == 1


class TestOptimalityAgainstBruteForce:
    """Algorithm 2 must equal the direct evaluation of the cost formula."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_trees(self, seed):
        tree_f = random_tree(10 + seed, rng=seed, max_depth=6, max_fanout=4)
        tree_g = random_tree(8 + seed, rng=seed + 100, max_depth=6, max_fanout=4)
        assert optimal_strategy_cost(tree_f, tree_g) == optimal_cost_bruteforce(tree_f, tree_g)

    @pytest.mark.parametrize(
        "shape", ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]
    )
    def test_synthetic_shapes(self, shape):
        tree = make_shape(shape, 21)
        assert optimal_strategy_cost(tree, tree) == optimal_cost_bruteforce(tree, tree)

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_property_based(self, pair):
        tree_f, tree_g = pair
        assert optimal_strategy_cost(tree_f, tree_g) == optimal_cost_bruteforce(tree_f, tree_g)

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_numpy_counter_agrees(self, pair):
        tree_f, tree_g = pair
        assert rted_count_fast(tree_f, tree_g) == optimal_strategy_cost(tree_f, tree_g)


class TestOptimalityAgainstFixedStrategies:
    """The optimal cost can never exceed the cost of any fixed LRH strategy."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees(self, seed):
        tree_f = random_tree(12, rng=seed, max_depth=6, max_fanout=4)
        tree_g = random_tree(12, rng=seed + 50, max_depth=6, max_fanout=4)
        optimal = optimal_strategy_cost(tree_f, tree_g)
        for choice in ALL_FIXED_CHOICES:
            fixed = strategy_cost(tree_f, tree_g, lambda v, w, c=choice: c)
            assert optimal <= fixed

    @pytest.mark.parametrize("algorithm", ["zhang-l", "zhang-r", "klein-h", "demaine-h"])
    @pytest.mark.parametrize(
        "shape", ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]
    )
    def test_rted_never_worse_than_paper_competitors(self, algorithm, shape):
        tree = make_shape(shape, 41)
        assert optimal_strategy_cost(tree, tree) <= count_subproblems(algorithm, tree, tree)

    @given(tree_pairs())
    @settings(max_examples=30, deadline=None)
    def test_property_based_dominance(self, pair):
        tree_f, tree_g = pair
        optimal = optimal_strategy_cost(tree_f, tree_g)
        for algorithm in ["zhang-l", "zhang-r", "klein-h", "demaine-h"]:
            assert optimal <= count_subproblems(algorithm, tree_f, tree_g)


class TestFlatArrayImplementationsAgree:
    """The vectorized and flat-scalar Algorithm 2 must be bit-identical to
    the legacy object-matrix implementation (codes, costs, and total)."""

    @staticmethod
    def _as_lists(matrix):
        return [[int(value) for value in row] for row in matrix]

    def _assert_same(self, result, oracle):
        assert result.cost == oracle.cost
        assert self._as_lists(result.choice_codes) == self._as_lists(oracle.choice_codes)
        assert self._as_lists(result.costs) == self._as_lists(oracle.costs)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_trees(self, seed):
        tree_f = random_tree(6 + 2 * seed, rng=seed, max_depth=7, max_fanout=5)
        tree_g = random_tree(5 + 2 * seed, rng=seed + 77, max_depth=7, max_fanout=5)
        oracle = optimal_strategy_objects(tree_f, tree_g)
        self._assert_same(_optimal_strategy_python(tree_f, tree_g), oracle)
        self._assert_same(
            _optimal_strategy_numpy(
                tree_f, tree_g, _node_heights(tree_f), _node_heights(tree_g)
            ),
            oracle,
        )
        self._assert_same(optimal_strategy(tree_f, tree_g), oracle)

    @pytest.mark.parametrize(
        "shape", ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]
    )
    def test_synthetic_shapes(self, shape):
        tree = make_shape(shape, 33)
        oracle = optimal_strategy_objects(tree, tree)
        self._assert_same(_optimal_strategy_python(tree, tree), oracle)
        self._assert_same(
            _optimal_strategy_numpy(tree, tree, _node_heights(tree), _node_heights(tree)),
            oracle,
        )

    @given(tree_pairs())
    @settings(max_examples=25, deadline=None)
    def test_property_based(self, pair):
        tree_f, tree_g = pair
        oracle = optimal_strategy_objects(tree_f, tree_g)
        self._assert_same(
            _optimal_strategy_numpy(
                tree_f, tree_g, _node_heights(tree_f), _node_heights(tree_g)
            ),
            oracle,
        )

    def test_single_node_edge_cases(self):
        one = random_tree(1, rng=0)
        other = random_tree(6, rng=1)
        for pair in ((one, one), (one, other), (other, one)):
            self._assert_same(
                _optimal_strategy_python(*pair), optimal_strategy_objects(*pair)
            )

    def test_strategy_is_encoded(self):
        tree = random_tree(9, rng=2)
        strategy = optimal_strategy(tree, tree).strategy
        assert isinstance(strategy, EncodedStrategy)
        decoded = strategy.as_matrix()
        assert decoded[tree.root][tree.root] in ALL_FIXED_CHOICES
        assert strategy.choose(tree, tree, 0, 0) is decoded[0][0]


class TestStrategyChoicesMatchShapes:
    """On the synthetic shapes the optimal strategy picks the expected paths."""

    def test_left_branch_prefers_left_paths(self):
        tree = left_branch_tree(41)
        result = optimal_strategy(tree, tree)
        assert optimal_strategy_cost(tree, tree) == count_subproblems("zhang-l", tree, tree)
        root_choice = result.choices[tree.root][tree.root]
        assert root_choice.kind in (LEFT, HEAVY)  # heavy == left path for this shape

    def test_right_branch_matches_zhang_r(self):
        tree = right_branch_tree(41)
        assert optimal_strategy_cost(tree, tree) == count_subproblems("zhang-r", tree, tree)

    def test_zigzag_matches_demaine(self):
        tree = zigzag_tree(41)
        assert optimal_strategy_cost(tree, tree) == count_subproblems("demaine-h", tree, tree)

    def test_full_binary_matches_zhang_l(self):
        tree = full_binary_tree(31)
        assert optimal_strategy_cost(tree, tree) == count_subproblems("zhang-l", tree, tree)

    def test_mixed_strictly_beats_every_competitor(self):
        tree = make_shape("mixed", 81)
        optimal = optimal_strategy_cost(tree, tree)
        for algorithm in ["zhang-l", "zhang-r", "klein-h", "demaine-h"]:
            assert optimal < count_subproblems(algorithm, tree, tree)


class TestStrategyMatrixShape:
    def test_matrix_dimensions_and_completeness(self):
        tree_f = random_tree(9, rng=3)
        tree_g = random_tree(7, rng=4)
        result = optimal_strategy(tree_f, tree_g)
        assert len(result.choices) == tree_f.n
        assert all(len(row) == tree_g.n for row in result.choices)
        for row in result.choices:
            for choice in row:
                assert choice is not None
                assert choice.side in (SIDE_F, SIDE_G)
                assert choice.kind in (LEFT, RIGHT, HEAVY)

    def test_costs_matrix_monotone_in_subtree_size(self):
        tree = full_binary_tree(15)
        result = optimal_strategy(tree, tree)
        # The optimal cost of the root pair dominates that of any other pair.
        root_cost = result.costs[tree.root][tree.root]
        assert all(root_cost >= cost for row in result.costs for cost in row)
