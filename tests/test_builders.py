"""Unit tests for repro.trees.builders."""

import pytest

from repro.exceptions import TreeConstructionError
from repro.trees import (
    path_tree,
    single_node_tree,
    star_tree,
    tree_from_edges,
    tree_from_nested,
    tree_from_parent_array,
)


class TestTreeFromNested:
    def test_simple(self):
        tree = tree_from_nested(("a", ["b", ("c", ["d"])]))
        assert tree.n == 4
        assert tree.labels_preorder() == ["a", "b", "c", "d"]

    def test_single_label(self):
        assert tree_from_nested("only").n == 1


class TestTreeFromParentArray:
    def test_round_trip(self):
        labels = ["b", "d", "e", "c", "f", "a"]
        parents = [5, 3, 3, 5, 5, -1]
        tree = tree_from_parent_array(labels, parents)
        assert list(tree.labels) == labels
        assert list(tree.parents) == parents

    def test_length_mismatch(self):
        with pytest.raises(TreeConstructionError):
            tree_from_parent_array(["a", "b"], [-1])

    def test_requires_exactly_one_root(self):
        with pytest.raises(TreeConstructionError):
            tree_from_parent_array(["a", "b"], [-1, -1])

    def test_rejects_empty_input(self):
        with pytest.raises(TreeConstructionError):
            tree_from_parent_array([], [])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TreeConstructionError):
            tree_from_parent_array(["a", "b"], [-1, 7])

    def test_rejects_cycle(self):
        with pytest.raises(TreeConstructionError):
            tree_from_parent_array(["a", "b", "c"], [-1, 2, 1])


class TestTreeFromEdges:
    def test_simple_edges(self):
        tree = tree_from_edges([("a", "b"), ("a", "c"), ("c", "d")])
        assert tree.n == 4
        assert tree.labels_preorder() == ["a", "b", "c", "d"]

    def test_labels_mapping(self):
        tree = tree_from_edges([(1, 2)], labels={1: "root", 2: "leaf"})
        assert tree.labels_preorder() == ["root", "leaf"]

    def test_explicit_root(self):
        tree = tree_from_edges([("a", "b")], root="a")
        assert tree.label(tree.root) == "a"

    def test_unknown_root_rejected(self):
        with pytest.raises(TreeConstructionError):
            tree_from_edges([("a", "b")], root="zzz")

    def test_multiple_roots_rejected(self):
        with pytest.raises(TreeConstructionError):
            tree_from_edges([("a", "b"), ("c", "d")])

    def test_empty_edge_list_rejected(self):
        with pytest.raises(TreeConstructionError):
            tree_from_edges([])

    def test_cycle_rejected(self):
        with pytest.raises(TreeConstructionError):
            tree_from_edges([("a", "b"), ("b", "a")], root="a")


class TestSimpleShapes:
    def test_single_node_tree(self):
        tree = single_node_tree("x")
        assert tree.n == 1 and tree.label(tree.root) == "x"

    def test_path_tree(self):
        tree = path_tree(["a", "b", "c"])
        assert tree.n == 3
        assert tree.depth() == 2
        assert tree.max_fanout() == 1

    def test_path_tree_requires_labels(self):
        with pytest.raises(TreeConstructionError):
            path_tree([])

    def test_star_tree(self):
        tree = star_tree("hub", ["s1", "s2", "s3"])
        assert tree.n == 4
        assert tree.max_fanout() == 3
        assert tree.depth() == 1
