"""Fault tolerance of the supervised batch executor (ISSUE 7).

Every recovery path of :mod:`repro.join.supervisor` is exercised through
the deterministic fault-injection layer (:mod:`repro.join.faults`) and
asserted **bit-identical** to the clean serial run — the degradation
ladder's core invariant is that it trades throughput, never correctness.

These tests install explicit fault plans via ``faults.use_plan`` (including
``use_plan(None)`` for clean baselines), so they behave identically whether
or not the CI fault-injection leg has ``RTED_FAULT_INJECT`` exported in the
environment.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.datasets.random_trees import random_tree
from repro.exceptions import (
    BatchExecutionError,
    ChunkFailure,
    FaultInjectionError,
    InjectedFaultError,
)
from repro.join import faults
from repro.join.batch import batch_distances, batch_similarity_join
from repro.join.faults import FaultPlan
from repro.join.shared import SHM_PREFIX, _SHM_DIR, reap_stale
from repro.join.supervisor import (
    ExecutionPolicy,
    ExecutionReport,
    RUNG_SERIAL,
    RUNG_SHM,
)


@pytest.fixture(autouse=True)
def _isolate_fault_plan():
    """Every test starts from an explicit no-faults state and restores it."""
    with faults.use_plan(None):
        yield


@pytest.fixture(scope="module")
def corpus():
    return [random_tree(12, rng=i) for i in range(36)]


@pytest.fixture(scope="module")
def all_pairs(corpus):
    n = len(corpus)
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


@pytest.fixture(scope="module")
def serial_baseline(corpus, all_pairs):
    with faults.use_plan(None):
        return sorted(batch_distances(corpus, None, all_pairs, workers=1))


def _mp(corpus, all_pairs, plan, policy=None, **kwargs):
    report = ExecutionReport()
    with faults.use_plan(plan):
        results = batch_distances(
            corpus, None, all_pairs, workers=2, chunk_size=50,
            policy=policy, exec_report=report, **kwargs,
        )
    return sorted(results), report


# --------------------------------------------------------------------------- #
# The fault plan itself
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse("worker_crash:0.1;poison_pair:0.5", seed=7)
        assert plan.rates == {"worker_crash": 0.1, "poison_pair": 0.5}
        assert plan.seed == 7

    def test_parse_hang_duration_suffix(self):
        plan = FaultPlan.parse("chunk_hang:0.25@30")
        assert plan.rates == {"chunk_hang": 0.25}
        assert plan.hang_seconds == 30.0

    def test_parse_empty_and_all_zero_is_none(self):
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("   ") is None
        assert FaultPlan.parse("worker_crash:0") is None

    @pytest.mark.parametrize(
        "spec", ["segfault:0.1", "worker_crash:x", "worker_crash:1.5",
                 "chunk_hang:0.1@soon"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse(spec)

    def test_decide_is_deterministic_and_key_sensitive(self):
        plan = FaultPlan.parse("worker_crash:0.5", seed=1)
        draws = [plan.decide("worker_crash", i, 0) for i in range(64)]
        assert draws == [plan.decide("worker_crash", i, 0) for i in range(64)]
        assert any(draws) and not all(draws)  # rate is neither 0 nor 1
        # A different seed yields a different schedule.
        other = FaultPlan.parse("worker_crash:0.5", seed=2)
        assert draws != [other.decide("worker_crash", i, 0) for i in range(64)]

    def test_decide_rate_extremes(self):
        plan = FaultPlan(rates={"worker_crash": 1.0, "chunk_hang": 0.0})
        assert plan.decide("worker_crash", 0, 0)
        assert not plan.decide("chunk_hang", 0, 0)
        assert not plan.decide("poison_pair", 0, 0)  # unlisted kind

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_ENV, "poison_pair:1")
        monkeypatch.setenv(faults.SEED_ENV, "3")
        faults.clear_plan()
        try:
            plan = faults.active_plan()
            assert plan is not None
            assert plan.rates == {"poison_pair": 1.0}
            assert plan.seed == 3
            # An installed None overrides the environment entirely.
            faults.install_plan(None)
            assert faults.active_plan() is None
        finally:
            faults.clear_plan()

    def test_check_pair_raises_injected_fault(self):
        with faults.use_plan(FaultPlan(rates={"poison_pair": 1.0})):
            with pytest.raises(InjectedFaultError):
                faults.check_pair(1, 2)


# --------------------------------------------------------------------------- #
# Recovery paths, each vs. the clean serial baseline
# --------------------------------------------------------------------------- #
class TestRecoveryPaths:
    def test_clean_supervised_run_matches_serial(
        self, corpus, all_pairs, serial_baseline
    ):
        results, report = _mp(corpus, all_pairs, None)
        assert results == serial_baseline
        assert report.retried_chunks == 0
        assert report.failed_workers == 0
        assert report.degraded_to is None
        assert report.poisoned_pairs == []

    def test_worker_crash_recovery(self, corpus, all_pairs, serial_baseline):
        plan = FaultPlan.parse("worker_crash:0.2", seed=7)
        results, report = _mp(corpus, all_pairs, plan)
        assert results == serial_baseline
        assert report.retried_chunks > 0
        assert report.failed_workers > 0
        assert report.poisoned_pairs == []

    def test_chunk_hang_timeout_recovery(self, corpus, all_pairs, serial_baseline):
        # Every chunk hangs on every mp attempt; an aggressive policy walks
        # the ladder to the serial rung quickly (hang detection itself is
        # what's under test, not wall-clock tuning).
        plan = FaultPlan.parse("chunk_hang:1@600", seed=0)
        policy = ExecutionPolicy(
            chunk_timeout=1.0, max_chunk_retries=1, max_rung_failures=0,
            backoff_base=0.0,
        )
        results, report = _mp(corpus, all_pairs, plan, policy=policy)
        assert results == serial_baseline
        assert report.failed_workers > 0
        assert report.degraded_to == RUNG_SERIAL
        assert report.serial_chunks > 0
        assert any("chunk timeout" in f.errors[0] for f in report.chunk_failures)

    def test_shm_attach_failure_falls_back_to_local_rebuild(
        self, corpus, all_pairs, serial_baseline
    ):
        # Attach failure is recovered *inside* the worker (local pack
        # rebuild), so the batch completes on the first rung undegraded.
        plan = FaultPlan.parse("shm_attach_fail:1", seed=0)
        results, report = _mp(corpus, all_pairs, plan)
        assert results == serial_baseline
        assert report.degraded_to is None
        assert report.poisoned_pairs == []

    def test_poisoned_pairs_reported_not_fatal(
        self, corpus, all_pairs, serial_baseline
    ):
        plan = FaultPlan.parse("poison_pair:0.01", seed=3)
        results, report = _mp(corpus, all_pairs, plan)
        poisoned = {(p.i, p.j) for p in report.poisoned_pairs}
        assert poisoned  # the seed is chosen to poison at least one pair
        # Every non-poisoned pair is present and bit-identical; poisoned
        # pairs are reported, not silently dropped.
        expected = [t for t in serial_baseline if (t[0], t[1]) not in poisoned]
        assert results == sorted(expected)
        assert report.serial_chunks > 0
        assert report.chunk_failures
        assert all(isinstance(f, ChunkFailure) for f in report.chunk_failures)

    def test_strict_mode_raises_on_poisoned_pairs(self, corpus, all_pairs):
        plan = FaultPlan.parse("poison_pair:0.01", seed=3)
        policy = ExecutionPolicy(strict=True)
        with faults.use_plan(plan):
            with pytest.raises(BatchExecutionError):
                batch_distances(
                    corpus, None, all_pairs, workers=2, chunk_size=50,
                    policy=policy,
                )

    def test_no_orphaned_shared_memory_after_faulted_run(
        self, corpus, all_pairs
    ):
        plan = FaultPlan.parse("worker_crash:0.2", seed=7)
        _mp(corpus, all_pairs, plan)
        if os.path.isdir(_SHM_DIR):
            mine = f"{SHM_PREFIX}{os.getpid()}_"
            leftovers = [e for e in os.listdir(_SHM_DIR) if e.startswith(mine)]
            assert leftovers == []


# --------------------------------------------------------------------------- #
# Stats surfacing through the join
# --------------------------------------------------------------------------- #
class TestJoinStatsSurface:
    def test_join_surfaces_recovery_counters(self, corpus):
        # Cascade off so every pair reaches the supervised verifier.
        with faults.use_plan(None):
            clean = batch_similarity_join(
                corpus, 8.0, workers=1, use_cascade=False,
            )
        plan = FaultPlan.parse("worker_crash:0.2", seed=7)
        with faults.use_plan(plan):
            faulted = batch_similarity_join(
                corpus, 8.0, workers=2, chunk_size=8, use_cascade=False,
            )
        assert faulted.match_set == clean.match_set
        assert faulted.matches == clean.matches
        assert faulted.stats.retried_chunks > 0
        assert faulted.stats.failed_workers > 0
        assert faulted.stats.poisoned_pairs == 0
        for key in ("retried_chunks", "failed_workers", "degraded_to",
                    "poisoned_pairs"):
            assert key in faulted.stats.as_dict()

    def test_join_policy_parameter_reaches_verifier(self, corpus):
        plan = FaultPlan.parse("poison_pair:0.005", seed=3)
        with faults.use_plan(plan):
            with pytest.raises(BatchExecutionError):
                batch_similarity_join(
                    corpus, 6.0, workers=2, chunk_size=8,
                    use_cascade=False, early_accept=False,
                    policy=ExecutionPolicy(strict=True),
                )

    def test_clean_join_reports_no_recovery(self, corpus):
        with faults.use_plan(None):
            result = batch_similarity_join(corpus, 4.0, workers=2, chunk_size=8)
        assert result.stats.retried_chunks == 0
        assert result.stats.failed_workers == 0
        assert result.stats.degraded_to is None
        assert result.stats.poisoned_pairs == 0


# --------------------------------------------------------------------------- #
# Shared-memory reaping
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(
    not os.path.isdir(_SHM_DIR) or not os.access(_SHM_DIR, os.W_OK),
    reason="no writable /dev/shm",
)
class TestShmReap:
    def _dead_pid(self) -> int:
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_reap_removes_only_dead_owner_blocks(self):
        dead = self._dead_pid()
        orphan = f"{SHM_PREFIX}{dead}_deadbeef"
        live = f"{SHM_PREFIX}{os.getpid()}_feedface"
        for name in (orphan, live):
            with open(os.path.join(_SHM_DIR, name), "wb") as handle:
                handle.write(b"\0")
        try:
            preview = reap_stale(dry_run=True)
            assert orphan in preview
            assert live not in preview
            assert os.path.exists(os.path.join(_SHM_DIR, orphan))  # dry!
            reaped = reap_stale()
            assert orphan in reaped
            assert not os.path.exists(os.path.join(_SHM_DIR, orphan))
            assert os.path.exists(os.path.join(_SHM_DIR, live))
        finally:
            for name in (orphan, live):
                try:
                    os.unlink(os.path.join(_SHM_DIR, name))
                except OSError:
                    pass

    def test_reap_ignores_foreign_blocks(self):
        assert all(name.startswith(SHM_PREFIX) for name in reap_stale(dry_run=True))


# --------------------------------------------------------------------------- #
# Native compile cache hardening
# --------------------------------------------------------------------------- #
class TestNativeCompileCache:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        from repro.algorithms.native import _atomic_write

        target = tmp_path / "out.txt"
        _atomic_write(str(target), "payload")
        assert target.read_text() == "payload"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_compile_failure_is_negative_cached(self, tmp_path, monkeypatch):
        from repro.algorithms import native

        monkeypatch.setattr(native.tempfile, "gettempdir", lambda: str(tmp_path))
        monkeypatch.setattr(native, "_find_compiler", lambda: "/bin/false")
        with pytest.raises(Exception):
            native._compile_cc_library()
        markers = list((tmp_path / "rted-native").glob("*.failed"))
        assert len(markers) == 1
        assert markers[0].read_text()  # the failure reason was recorded

        # Second call must honor the marker without invoking any compiler.
        def _boom(*args, **kwargs):  # pragma: no cover - defends the assert
            raise AssertionError("compiler re-invoked despite failure marker")

        monkeypatch.setattr(native.subprocess, "run", _boom)
        with pytest.raises(RuntimeError, match="previously failed"):
            native._compile_cc_library()

    def test_expired_marker_allows_recompile_attempt(self, tmp_path, monkeypatch):
        from repro.algorithms import native

        monkeypatch.setattr(native.tempfile, "gettempdir", lambda: str(tmp_path))
        monkeypatch.setattr(native, "_find_compiler", lambda: "/bin/false")
        with pytest.raises(Exception):
            native._compile_cc_library()
        marker = next((tmp_path / "rted-native").glob("*.failed"))
        old = native.time.time() - native._FAILURE_MARKER_TTL - 1
        os.utime(marker, (old, old))
        # The expired marker is dropped and the compiler is tried again.
        with pytest.raises(subprocess.CalledProcessError):
            native._compile_cc_library()


# --------------------------------------------------------------------------- #
# CLI error handling
# --------------------------------------------------------------------------- #
class TestCliErrors:
    def test_parse_error_exit_code_and_message(self, capsys):
        from repro.cli import EXIT_CODES, main

        code = main(["distance", "{a{b}", "{a}"])
        assert code == EXIT_CODES["data"]
        err = capsys.readouterr().err
        assert err.startswith("rted: parse error:")
        assert err.count("\n") == 1  # one line, no traceback

    def test_missing_input_file_exit_code(self, capsys, tmp_path):
        from repro.cli import EXIT_CODES, main

        missing = tmp_path / "nope.txt"
        code = main(["distance", f"@{missing}", "{a}"])
        assert code == EXIT_CODES["noinput"]
        assert "rted: cannot read input" in capsys.readouterr().err

    def test_successful_distance_still_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["distance", "{a{b}}", "{a{c}}"]) == 0
        assert capsys.readouterr().out.strip() == "1.0"

    def test_shm_reap_dry_run(self, capsys):
        from repro.cli import main

        assert main(["shm-reap", "--dry-run"]) == 0
        assert "would reap" in capsys.readouterr().err
