"""Tests for the similarity join."""

import pytest

from repro.algorithms import ZhangShashaTED
from repro.bounds import cheap_lower_bound
from repro.costs import WeightedCostModel
from repro.datasets import perturb_tree, random_tree
from repro.join import similarity_join, similarity_self_join, top_k_closest_pairs
from repro.io import parse_bracket


@pytest.fixture
def collection():
    base = random_tree(20, rng=1)
    return [
        base,
        perturb_tree(base, 1, rng=2),
        perturb_tree(base, 2, rng=3),
        random_tree(20, rng=99),
    ]


class TestSelfJoin:
    def test_matches_respect_threshold(self, collection):
        result = similarity_self_join(collection, threshold=3.5, algorithm="zhang-l")
        exact = ZhangShashaTED()
        expected = {
            (i, j)
            for i in range(len(collection))
            for j in range(i + 1, len(collection))
            if exact.distance(collection[i], collection[j]) < 3.5
        }
        assert {(i, j) for i, j, _ in result.matches} == expected

    def test_pair_counting(self, collection):
        result = similarity_self_join(collection, threshold=2.0, algorithm="zhang-l")
        assert result.pairs_total == 6
        assert result.pairs_computed == 6
        assert result.pairs_filtered == 0
        assert result.total_subproblems > 0
        assert result.total_time >= 0.0

    def test_rted_and_zhang_produce_identical_matches(self, collection):
        zhang = similarity_self_join(collection, threshold=4.0, algorithm="zhang-l")
        rted = similarity_self_join(collection, threshold=4.0, algorithm="rted")
        assert {(i, j) for i, j, _ in zhang.matches} == {(i, j) for i, j, _ in rted.matches}

    def test_lower_bound_filter_preserves_result(self, collection):
        unfiltered = similarity_self_join(collection, threshold=3.0, algorithm="zhang-l")
        filtered = similarity_self_join(
            collection, threshold=3.0, algorithm="zhang-l", use_lower_bound_filter=True
        )
        assert {(i, j) for i, j, _ in unfiltered.matches} == {
            (i, j) for i, j, _ in filtered.matches
        }
        assert filtered.pairs_filtered + filtered.pairs_computed == filtered.pairs_total

    def test_filter_reduces_work_for_dissimilar_trees(self):
        trees = [parse_bracket("{a{b}{c}}"), parse_bracket("{x{y{z{w{v}}}}}")]
        result = similarity_self_join(
            trees, threshold=1.0, algorithm="zhang-l", use_lower_bound_filter=True
        )
        assert result.pairs_filtered == 1
        assert result.pairs_computed == 0
        assert result.filter_rate == 1.0

    def test_combined_filter_also_preserves_result(self, collection):
        strict = similarity_self_join(
            collection,
            threshold=3.0,
            algorithm="zhang-l",
            use_lower_bound_filter=True,
            cheap_filter_only=False,
        )
        baseline = similarity_self_join(collection, threshold=3.0, algorithm="zhang-l")
        assert {(i, j) for i, j, _ in strict.matches} == {(i, j) for i, j, _ in baseline.matches}

    def test_algorithm_instance_accepted(self, collection):
        result = similarity_self_join(collection, threshold=2.0, algorithm=ZhangShashaTED())
        assert result.algorithm == "Zhang-L"


class TestFilterCostModelSoundness:
    """Regression for the headline bug: the lower-bound filter used to compare
    *unit-cost* bounds against the threshold regardless of the cost model, so
    with operation costs below 1 it pruned pairs whose true distance beats τ."""

    def test_fractional_costs_do_not_lose_matches(self):
        tree_a = parse_bracket("{a{b}{c}}")
        tree_b = parse_bracket("{a}")
        cm = WeightedCostModel(0.4, 0.4, 0.4)
        threshold = 1.0
        # The scenario the pre-fix code provably got wrong: the unit-cost
        # bound reaches τ, but the true distance under the model is below it.
        assert cheap_lower_bound(tree_a, tree_b) >= threshold
        exact = ZhangShashaTED().distance(tree_a, tree_b, cost_model=cm)
        assert exact == pytest.approx(0.8)
        assert exact < threshold

        filtered = similarity_self_join(
            [tree_a, tree_b],
            threshold=threshold,
            algorithm="zhang-l",
            cost_model=cm,
            use_lower_bound_filter=True,
        )
        assert {(i, j) for i, j, _ in filtered.matches} == {(0, 1)}

    def test_fractional_costs_combined_filter(self, collection):
        cm = WeightedCostModel(0.5, 0.5, 0.5)
        baseline = similarity_self_join(
            collection, threshold=2.0, algorithm="zhang-l", cost_model=cm
        )
        for cheap_only in (True, False):
            filtered = similarity_self_join(
                collection,
                threshold=2.0,
                algorithm="zhang-l",
                cost_model=cm,
                use_lower_bound_filter=True,
                cheap_filter_only=cheap_only,
            )
            assert {(i, j) for i, j, _ in filtered.matches} == {
                (i, j) for i, j, _ in baseline.matches
            }

    def test_unit_costs_still_filter(self):
        trees = [parse_bracket("{a{b}{c}}"), parse_bracket("{x{y{z{w{v}}}}}")]
        result = similarity_self_join(
            trees, threshold=1.0, algorithm="zhang-l", use_lower_bound_filter=True
        )
        assert result.pairs_filtered == 1


class TestCrossJoin:
    def test_join_of_two_collections(self, collection):
        result = similarity_join(collection[:2], collection[2:], threshold=5.0, algorithm="zhang-l")
        assert result.pairs_total == 4
        for i, j, distance in result.matches:
            assert distance < 5.0
            assert 0 <= i < 2 and 0 <= j < 2


class TestTopK:
    def test_top_k_returns_sorted_closest_pairs(self, collection):
        top = top_k_closest_pairs(collection, k=2, algorithm="zhang-l")
        assert len(top) == 2
        assert top[0][2] <= top[1][2]

    def test_top_k_with_k_larger_than_pairs(self, collection):
        assert len(top_k_closest_pairs(collection, k=100, algorithm="zhang-l")) == 6
