"""Integration tests: every algorithm computes the same distance.

The distance value is independent of the decomposition strategy, so all
implementations must agree with the independent oracle (SimpleTED) on every
input — the single most important invariant of the library.
"""

import pytest
from hypothesis import given, settings

from repro.algorithms import (
    GTED,
    RTED,
    DemaineTED,
    HeavyGStrategy,
    KleinTED,
    LeftGStrategy,
    RightGStrategy,
    SimpleTED,
    ZhangShashaRightTED,
    ZhangShashaTED,
)
from repro.costs import WeightedCostModel
from repro.datasets import make_shape

from conftest import random_tree_pairs, tree_pairs

ALL_ALGORITHMS = [
    ZhangShashaTED(),
    ZhangShashaRightTED(),
    KleinTED(),
    DemaineTED(),
    RTED(),
    GTED(LeftGStrategy(), name="GTED(left-G)"),
    GTED(RightGStrategy(), name="GTED(right-G)"),
    GTED(HeavyGStrategy(), name="GTED(heavy-G)"),
]

ORACLE = SimpleTED()

RANDOM_PAIRS = random_tree_pairs(count=25, max_size=13, seed=11)


class TestAgreementOnRandomTrees:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_unit_cost_agreement(self, algorithm):
        for tree_f, tree_g in RANDOM_PAIRS:
            expected = ORACLE.distance(tree_f, tree_g)
            assert algorithm.distance(tree_f, tree_g) == pytest.approx(expected), (
                f"{algorithm.name} disagrees with the oracle"
            )

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_weighted_cost_agreement(self, algorithm):
        model = WeightedCostModel(delete_cost=1.5, insert_cost=0.5, rename_cost=2.0)
        for tree_f, tree_g in RANDOM_PAIRS[:10]:
            expected = ORACLE.distance(tree_f, tree_g, cost_model=model)
            assert algorithm.distance(tree_f, tree_g, cost_model=model) == pytest.approx(expected)


class TestAgreementOnShapes:
    @pytest.mark.parametrize("shape", ["left-branch", "right-branch", "zigzag", "full-binary", "mixed"])
    def test_identical_shape_pairs_have_zero_distance(self, shape):
        tree = make_shape(shape, 25)
        for algorithm in ALL_ALGORITHMS:
            assert algorithm.distance(tree, tree) == 0.0

    @pytest.mark.parametrize("shape", ["left-branch", "zigzag", "mixed"])
    def test_cross_shape_agreement(self, shape):
        tree_a = make_shape(shape, 17)
        tree_b = make_shape("full-binary", 15, label="b")
        expected = ORACLE.distance(tree_a, tree_b)
        for algorithm in ALL_ALGORITHMS:
            assert algorithm.distance(tree_a, tree_b) == pytest.approx(expected)


class TestAgreementPropertyBased:
    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_rted_matches_oracle(self, pair):
        tree_f, tree_g = pair
        assert RTED().distance(tree_f, tree_g) == pytest.approx(ORACLE.distance(tree_f, tree_g))

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_zhang_shasha_matches_oracle(self, pair):
        tree_f, tree_g = pair
        assert ZhangShashaTED().distance(tree_f, tree_g) == pytest.approx(
            ORACLE.distance(tree_f, tree_g)
        )

    @given(tree_pairs())
    @settings(max_examples=25, deadline=None)
    def test_demaine_matches_oracle(self, pair):
        tree_f, tree_g = pair
        assert DemaineTED().distance(tree_f, tree_g) == pytest.approx(
            ORACLE.distance(tree_f, tree_g)
        )
