"""Unit tests for the Zhang–Shasha algorithm and the simple oracle."""

import pytest

from repro.algorithms import (
    SimpleTED,
    ZhangShashaRightTED,
    ZhangShashaTED,
    simple_ted,
    zhang_shasha,
)
from repro.trees import tree_from_nested
from repro.io import parse_bracket


class TestKnownDistances:
    """Hand-verified distances on small examples."""

    def test_identical_trees_have_distance_zero(self):
        tree = parse_bracket("{a{b{d}}{c}}")
        assert zhang_shasha(tree, tree) == 0.0
        assert simple_ted(tree, tree) == 0.0

    def test_single_rename(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}{x}}")
        assert zhang_shasha(t1, t2) == 1.0

    def test_single_leaf_deletion(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}}")
        assert zhang_shasha(t1, t2) == 1.0

    def test_single_internal_deletion(self):
        # Deleting the internal node b connects d and e to a.
        t1 = parse_bracket("{a{b{d}{e}}{c}}")
        t2 = parse_bracket("{a{d}{e}{c}}")
        assert zhang_shasha(t1, t2) == 1.0

    def test_leaf_vs_leaf(self):
        assert zhang_shasha(parse_bracket("{a}"), parse_bracket("{a}")) == 0.0
        assert zhang_shasha(parse_bracket("{a}"), parse_bracket("{b}")) == 1.0

    def test_completely_different_trees(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{x{y{z}}}")
        # Best mapping renames all three nodes: a->x, and two of {b, c} cannot
        # both map (structure differs), giving distance 4 is wrong -- verify
        # against the oracle instead of hand-waving.
        assert zhang_shasha(t1, t2) == simple_ted(t1, t2)

    def test_classic_zhang_shasha_paper_example(self):
        # The f(d(a, c(b)), e) vs f(c(d(a, b)), e) example from Zhang & Shasha
        # has edit distance 2 under unit costs.
        t1 = tree_from_nested(("f", [("d", ["a", ("c", ["b"])]), "e"]))
        t2 = tree_from_nested(("f", [("c", [("d", ["a", "b"])]), "e"]))
        assert zhang_shasha(t1, t2) == 2.0

    def test_order_matters_for_ordered_trees(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{c}{b}}")
        # Swapping two differently-labeled leaves needs two operations.
        assert zhang_shasha(t1, t2) == 2.0

    def test_tree_vs_single_node(self):
        t1 = parse_bracket("{a{b}{c}{d}}")
        t2 = parse_bracket("{a}")
        assert zhang_shasha(t1, t2) == 3.0


class TestResultMetadata:
    def test_result_fields(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{b}{d}}")
        result = ZhangShashaTED().compute(t1, t2)
        assert result.algorithm == "Zhang-L"
        assert result.distance == 1.0
        assert result.subproblems > 0
        assert result.n_f == 3 and result.n_g == 3
        assert result.distance_time >= 0.0
        assert result.strategy_time == 0.0

    def test_right_variant_gives_same_distance(self):
        t1 = parse_bracket("{a{b{x}{y}}{c}}")
        t2 = parse_bracket("{a{b{y}}{d}}")
        assert ZhangShashaTED().distance(t1, t2) == ZhangShashaRightTED().distance(t1, t2)

    def test_left_and_right_subproblem_counts_differ_on_skewed_trees(self):
        from repro.datasets import left_branch_tree

        tree = left_branch_tree(41)
        left = ZhangShashaTED().compute(tree, tree).subproblems
        right = ZhangShashaRightTED().compute(tree, tree).subproblems
        # Zhang-L is optimal for the left branch shape; the mirror variant
        # must evaluate strictly more forest-distance cells.
        assert right > left

    def test_symmetry_of_unit_cost_distance(self):
        t1 = parse_bracket("{a{b{c}}{d}}")
        t2 = parse_bracket("{a{x}{d{e}}}")
        assert ZhangShashaTED().distance(t1, t2) == ZhangShashaTED().distance(t2, t1)


class TestSimpleOracle:
    def test_subproblem_count_is_reported(self):
        t1 = parse_bracket("{a{b}{c}}")
        result = SimpleTED().compute(t1, t1)
        assert result.subproblems > 0

    def test_oracle_on_empty_like_cases(self):
        single = parse_bracket("{a}")
        chain = parse_bracket("{a{b{c}}}")
        assert SimpleTED().distance(single, chain) == 2.0
