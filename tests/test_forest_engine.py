"""Tests for the strategy-driven decomposition engine and GTED."""

import pytest

from repro.algorithms import (
    GTED,
    DecompositionEngine,
    HeavyFStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    RightFStrategy,
    SimpleTED,
    ZhangShashaTED,
    optimal_strategy,
)
from repro.counting import count_subproblems
from repro.costs import WeightedCostModel
from repro.datasets import left_branch_tree, make_shape, random_tree
from repro.io import parse_bracket


class TestEngineBasics:
    def test_distance_of_identical_trees_is_zero(self):
        tree = parse_bracket("{a{b{c}}{d}}")
        engine = DecompositionEngine(tree, tree, LeftFStrategy())
        assert engine.distance() == 0.0

    def test_distance_matches_zhang_shasha(self):
        t1 = parse_bracket("{a{b{x}{y}}{c}}")
        t2 = parse_bracket("{a{b{y}}{d{e}}}")
        expected = ZhangShashaTED().distance(t1, t2)
        for strategy in [LeftFStrategy(), RightFStrategy(), HeavyFStrategy(), HeavyLargerStrategy()]:
            engine = DecompositionEngine(t1, t2, strategy)
            assert engine.distance() == pytest.approx(expected)

    def test_subproblem_counter_increases(self):
        t1 = parse_bracket("{a{b}{c}}")
        engine = DecompositionEngine(t1, t1, LeftFStrategy())
        engine.distance()
        assert engine.subproblems > 0

    def test_subtree_distance(self):
        t1 = parse_bracket("{a{b{x}}{c}}")
        t2 = parse_bracket("{q{b{x}}{c}}")
        engine = DecompositionEngine(t1, t2, LeftFStrategy())
        # The subtrees rooted at the 'b' nodes are identical.
        b_in_f = next(v for v in range(t1.n) if t1.labels[v] == "b")
        b_in_g = next(w for w in range(t2.n) if t2.labels[w] == "b")
        assert engine.subtree_distance(b_in_f, b_in_g) == 0.0

    def test_custom_cost_model(self):
        t1 = parse_bracket("{a{b}}")
        t2 = parse_bracket("{a}")
        model = WeightedCostModel(delete_cost=2.5)
        engine = DecompositionEngine(t1, t2, LeftFStrategy(), cost_model=model)
        assert engine.distance() == 2.5

    def test_deep_trees_do_not_hit_recursion_limit(self):
        tree = left_branch_tree(301)
        engine = DecompositionEngine(tree, tree, LeftFStrategy())
        assert engine.distance() == 0.0


class TestEngineFidelity:
    """For left-path strategies the engine evaluates exactly the subproblems
    counted by the cost formula (the Δ_L decomposition)."""

    @pytest.mark.parametrize("shape", ["left-branch", "full-binary", "zigzag", "mixed"])
    def test_left_strategy_matches_cost_formula(self, shape):
        tree = make_shape(shape, 33)
        engine = DecompositionEngine(tree, tree, LeftFStrategy())
        engine.distance()
        assert engine.subproblems == count_subproblems("zhang-l", tree, tree)

    def test_optimal_strategy_never_exceeds_left_strategy_work(self):
        tree = make_shape("zigzag", 41)
        left_engine = DecompositionEngine(tree, tree, LeftFStrategy())
        left_engine.distance()
        optimal = optimal_strategy(tree, tree)
        optimal_engine = DecompositionEngine(tree, tree, optimal.strategy)
        optimal_engine.distance()
        assert optimal_engine.subproblems <= left_engine.subproblems


class TestGTED:
    def test_gted_wraps_engine(self):
        t1 = parse_bracket("{a{b}{c}}")
        t2 = parse_bracket("{a{c}{d}}")
        result = GTED(LeftFStrategy()).compute(t1, t2)
        assert result.algorithm == "GTED(left-F)"
        assert result.distance == SimpleTED().distance(t1, t2)
        assert result.subproblems > 0

    def test_gted_accepts_custom_name(self):
        assert GTED(LeftFStrategy(), name="my-gted").name == "my-gted"

    def test_gted_with_precomputed_strategy_equals_rted(self):
        t1 = random_tree(15, rng=5)
        t2 = random_tree(13, rng=6)
        strategy = optimal_strategy(t1, t2).strategy
        gted_result = GTED(strategy, name="GTED(optimal)").compute(t1, t2)
        assert gted_result.distance == pytest.approx(SimpleTED().distance(t1, t2))
