"""Property-based tests of the metric axioms of the unit-cost tree edit distance."""

import pytest
from hypothesis import given, settings

from repro.algorithms import RTED, ZhangShashaTED
from repro.datasets import perturb_tree, random_tree

from conftest import tree_pairs, trees

EXACT = ZhangShashaTED()


class TestMetricAxioms:
    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_identity(self, tree):
        assert EXACT.distance(tree, tree) == 0.0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_non_negativity(self, pair):
        tree_f, tree_g = pair
        assert EXACT.distance(tree_f, tree_g) >= 0.0

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_symmetry_under_unit_costs(self, pair):
        tree_f, tree_g = pair
        assert EXACT.distance(tree_f, tree_g) == pytest.approx(EXACT.distance(tree_g, tree_f))

    @given(trees(), trees(), trees())
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality(self, tree_a, tree_b, tree_c):
        ab = EXACT.distance(tree_a, tree_b)
        bc = EXACT.distance(tree_b, tree_c)
        ac = EXACT.distance(tree_a, tree_c)
        assert ac <= ab + bc + 1e-9

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_zero_distance_implies_structural_equality(self, pair):
        tree_f, tree_g = pair
        if EXACT.distance(tree_f, tree_g) == 0.0:
            assert tree_f.structurally_equal(tree_g)

    @given(tree_pairs())
    @settings(max_examples=40, deadline=None)
    def test_distance_bounded_by_total_size(self, pair):
        tree_f, tree_g = pair
        assert EXACT.distance(tree_f, tree_g) <= tree_f.n + tree_g.n


class TestPerturbationBounds:
    @pytest.mark.parametrize("edits", [1, 2, 4])
    def test_k_edits_give_distance_at_most_k(self, edits):
        base = random_tree(30, rng=edits)
        modified = perturb_tree(base, edits, rng=edits + 100)
        assert EXACT.distance(base, modified) <= edits

    def test_rted_agrees_on_perturbed_pairs(self):
        base = random_tree(25, rng=5)
        modified = perturb_tree(base, 3, rng=6)
        assert RTED().distance(base, modified) == pytest.approx(EXACT.distance(base, modified))
