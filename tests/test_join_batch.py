"""Tests for the corpus-indexed batch join: TreeCorpus, cascade, soundness."""

import itertools

import pytest

from repro.algorithms import ZhangShashaTED
from repro.bounds import binary_branch_profile
from repro.costs import (
    PerLabelCostModel,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from repro.datasets import clustered_corpus, perturb_tree, random_tree
from repro.io import parse_bracket
from repro.join import (
    TreeCorpus,
    batch_distances,
    batch_self_join,
    batch_similarity_join,
    branch_candidate_pairs,
    default_cascade,
    operations_threshold,
)

EXACT = ZhangShashaTED()


def small_corpus(num=8, size=14, seed=11):
    trees = []
    for index in range(num // 2):
        base = random_tree(size, rng=seed + index)
        trees.append(base)
        trees.append(perturb_tree(base, 1 + index % 3, rng=seed + 100 + index))
    return trees


def brute_force_matches(trees_a, threshold, trees_b=None, cost_model=None):
    if trees_b is None:
        pairs = itertools.combinations(range(len(trees_a)), 2)
        lookup = trees_a
    else:
        pairs = itertools.product(range(len(trees_a)), range(len(trees_b)))
        lookup = trees_b
    return {
        (i, j)
        for i, j in pairs
        if EXACT.distance(trees_a[i], lookup[j], cost_model=cost_model) < threshold
    }


class TestTreeCorpus:
    def test_profiles_cached_and_correct(self):
        trees = small_corpus()
        corpus = TreeCorpus(trees)
        prof = corpus.profile(0)
        assert prof.size == trees[0].n
        assert prof.branch_profile == binary_branch_profile(trees[0])
        assert sum(prof.label_histogram.values()) == trees[0].n
        assert corpus.profile(0) is prof  # cached

    def test_container_protocol(self):
        trees = small_corpus(num=4)
        corpus = TreeCorpus(trees)
        assert len(corpus) == 4
        assert corpus[2] is trees[2]
        assert list(corpus) == trees

    def test_branch_index_covers_all_profiles(self):
        corpus = TreeCorpus(small_corpus())
        index = corpus.branch_index()
        for prof in corpus.profiles():
            for branch in prof.branch_profile:
                assert prof.index in index[branch]

    def test_pq_index_built_lazily(self):
        corpus = TreeCorpus(small_corpus(num=4))
        assert corpus.profile(0).pq_profile is None
        corpus.pq_index()
        assert corpus.profile(0).pq_profile is not None


class TestCandidateGeneration:
    def test_candidates_are_sound(self):
        """Every true match must survive index-based candidate generation."""
        trees = clustered_corpus(num_clusters=5, cluster_size=4, tree_size=10, rng=3)
        corpus = TreeCorpus(trees)
        threshold = 4.0
        candidates, skipped = branch_candidate_pairs(corpus, None, threshold)
        total = len(trees) * (len(trees) - 1) // 2
        assert len(candidates) + skipped == total
        assert brute_force_matches(trees, threshold) <= candidates

    def test_infinite_threshold_yields_all_pairs(self):
        corpus = TreeCorpus(small_corpus(num=6))
        candidates, skipped = branch_candidate_pairs(corpus, None, float("inf"))
        assert skipped == 0
        assert len(candidates) == 15

    def test_cross_corpus_candidates_sound(self):
        trees = clustered_corpus(num_clusters=4, cluster_size=4, tree_size=10, rng=9)
        corpus_a = TreeCorpus(trees[:8])
        corpus_b = TreeCorpus(trees[8:])
        threshold = 4.0
        candidates, _ = branch_candidate_pairs(corpus_a, corpus_b, threshold)
        assert brute_force_matches(trees[:8], threshold, trees[8:]) <= candidates

    def test_tiny_trees_survive_without_shared_branches(self):
        # Disjoint profiles, but |F| + |G| < 5·τ_ops: must stay candidates.
        trees = [parse_bracket("{a}"), parse_bracket("{b{c}}")]
        candidates, _ = branch_candidate_pairs(TreeCorpus(trees), None, 2.0)
        assert (0, 1) in candidates

    def test_dense_corpus_blowup_guard_falls_back_to_all_pairs(self):
        # A tiny shared alphabet makes every posting list nearly full, so the
        # posting-product guard must fall back to all pairs (still sound).
        trees = [random_tree(40, alphabet=["x", "y"], rng=i) for i in range(40)]
        corpus_a, corpus_b = TreeCorpus(trees[:20]), TreeCorpus(trees[20:])
        index_a, index_b = corpus_a.branch_index(), corpus_b.branch_index()
        product_work = sum(
            len(postings) * len(index_b.get(branch, ()))
            for branch, postings in index_a.items()
        )
        assert product_work > 8 * 400  # the guard's trigger condition holds
        candidates, skipped = branch_candidate_pairs(corpus_a, corpus_b, 3.0)
        assert len(candidates) == 400 and skipped == 0
        self_candidates, self_skipped = branch_candidate_pairs(
            TreeCorpus(trees), None, 3.0
        )
        assert len(self_candidates) == 40 * 39 // 2 and self_skipped == 0


class TestBatchJoinEquivalence:
    @pytest.mark.parametrize(
        "algorithm,engine",
        [("zhang-l", None), ("zhang-l", "spf"), ("rted", None), ("rted", "spf")],
    )
    def test_cascade_on_off_identical_matches(self, algorithm, engine):
        """Cascade on/off must produce identical match sets for every
        algorithm/engine combination."""
        trees = small_corpus()
        for threshold in (2.0, 4.0, 8.0):
            on = batch_self_join(trees, threshold, algorithm=algorithm, engine=engine)
            off = batch_self_join(
                trees, threshold, algorithm=algorithm, engine=engine, use_cascade=False
            )
            assert on.match_set == off.match_set
            assert on.match_set == brute_force_matches(trees, threshold)

    def test_cross_join_matches_brute_force(self):
        trees = small_corpus()
        result = batch_similarity_join(
            trees[:4], 5.0, corpus_b=trees[4:], algorithm="zhang-l"
        )
        assert result.match_set == brute_force_matches(trees[:4], 5.0, trees[4:])

    def test_early_accept_off_reports_exact_distances(self):
        trees = small_corpus()
        result = batch_self_join(trees, 6.0, algorithm="zhang-l", early_accept=False)
        for i, j, distance in result.matches:
            assert distance == pytest.approx(EXACT.distance(trees[i], trees[j]))

    def test_early_accept_distances_are_valid_upper_bounds(self):
        trees = small_corpus()
        result = batch_self_join(trees, 6.0, algorithm="zhang-l")
        for i, j, distance in result.matches:
            exact = EXACT.distance(trees[i], trees[j])
            assert exact <= distance + 1e-9
            assert distance < 6.0

    def test_stats_accounting(self):
        trees = small_corpus()
        result = batch_self_join(trees, 4.0, algorithm="zhang-l")
        stats = result.stats
        assert stats.pairs_total == len(trees) * (len(trees) - 1) // 2
        assert stats.candidate_pairs + stats.index_pruned == stats.pairs_total
        routed = sum(stats.stage_pruned.values()) + stats.accepted_early + stats.exact_computed
        assert routed == stats.candidate_pairs
        assert stats.matches == len(result.matches)
        assert stats.accepted_early + stats.exact_matched == stats.matches
        assert 0.0 <= stats.filter_rate <= 1.0
        assert isinstance(stats.as_dict()["stage_pruned"], dict)

    def test_streaming_progress_callback(self):
        trees = small_corpus()
        snapshots = []
        batch_self_join(
            trees, 4.0, algorithm="zhang-l", chunk_size=2,
            progress=lambda stats: snapshots.append(stats.exact_computed),
        )
        assert snapshots  # called at least once
        assert snapshots == sorted(snapshots)  # counters only grow

    def test_approximate_mode_is_subset(self):
        trees = small_corpus()
        exact = batch_self_join(trees, 4.0, algorithm="zhang-l")
        approx = batch_self_join(
            trees, 4.0, algorithm="zhang-l", approximate=True, pq_gram_cutoff=0.05
        )
        assert approx.match_set <= exact.match_set


class TestCostModelSoundness:
    """Acceptance: over ≥200 random pairs the cascade never drops a pair whose
    exact distance is below τ, for unit and fractional-cost models."""

    COST_MODELS = [
        UnitCostModel(),
        WeightedCostModel(0.4, 0.4, 0.4),
        WeightedCostModel(0.25, 1.0, 0.5),
        PerLabelCostModel(default_delete=0.3, default_insert=0.3, rename_cost=0.6),
        StringRenameCostModel(),
    ]

    @pytest.mark.parametrize("cost_model", COST_MODELS, ids=lambda cm: type(cm).__name__)
    def test_cascade_never_drops_matches(self, cost_model):
        trees = [random_tree(4 + (i % 12), rng=1000 + i) for i in range(24)]
        # 24 trees → 276 pairs ≥ 200, joined at several selectivities.
        assert len(trees) * (len(trees) - 1) // 2 >= 200
        for threshold in (1.5, 3.0):
            expected = brute_force_matches(trees, threshold, cost_model=cost_model)
            result = batch_self_join(
                trees, threshold, algorithm="zhang-l", cost_model=cost_model
            )
            assert result.match_set == expected

    def test_fractional_model_disables_unscaled_pruning(self):
        # τ_ops must be τ / min_op_cost, not τ.
        assert operations_threshold(2.0, WeightedCostModel(0.5, 0.5, 0.5)) == 4.0
        assert operations_threshold(2.0, UnitCostModel()) == 2.0
        # No provable positive minimum → filters disabled, not unsound.
        assert operations_threshold(2.0, StringRenameCostModel()) == float("inf")

    def test_lower_bound_stages_skipped_without_sound_scale(self):
        trees = small_corpus(num=6)
        result = batch_self_join(
            trees, 3.0, algorithm="zhang-l", cost_model=StringRenameCostModel()
        )
        for stage in ("size", "label", "traversal-string", "binary-branch"):
            assert stage not in result.stats.stage_pruned


class TestBatchDistances:
    def test_matches_direct_computation(self):
        trees = small_corpus(num=6)
        pairs = [(0, 1), (2, 3), (4, 5), (1, 4)]
        rows = batch_distances(trees, None, pairs, algorithm="zhang-l")
        assert [(i, j) for i, j, _, _ in rows] == pairs
        for i, j, distance, subproblems in rows:
            assert distance == pytest.approx(EXACT.distance(trees[i], trees[j]))
            assert subproblems > 0

    def test_multiprocessing_workers_agree_with_serial(self):
        trees = small_corpus(num=10)
        pairs = list(itertools.combinations(range(len(trees)), 2))
        serial = batch_distances(trees, None, pairs, algorithm="zhang-l")
        fanned = batch_distances(
            trees, None, pairs, algorithm="zhang-l", workers=2, chunk_size=5
        )
        assert sorted(serial) == sorted(fanned)

    def test_join_with_workers_matches_serial(self):
        trees = clustered_corpus(num_clusters=4, cluster_size=5, tree_size=10, rng=7)
        serial = batch_self_join(trees, 4.0, algorithm="zhang-l", early_accept=False)
        fanned = batch_self_join(
            trees, 4.0, algorithm="zhang-l", early_accept=False, workers=2, chunk_size=3
        )
        assert serial.match_set == fanned.match_set
