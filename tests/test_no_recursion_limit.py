"""Production paths must never mutate the process-global recursion limit.

PR 2 made every ``auto``-engine distance recursion-free; this extends the
monkeypatch-forbid guarantee to the remaining production helpers — bracket
I/O, the distance bounds, ASCII rendering and edit-mapping extraction — which
used to widen ``sys.setrecursionlimit`` around recursive traversals (a
thread-hostile mutation for a service).  Only the cross-check oracles
(``algorithms/simple.py``, ``algorithms/forest_engine.py``,
``counting/cost_formula.py``) remain exempt.
"""

import sys

import pytest

from repro.algorithms.edit_mapping import compute_edit_mapping, mapping_cost
from repro.algorithms.zhang_shasha import zhang_shasha_distance
from repro.bounds import pq_gram_profile, top_down_upper_bound, trivial_upper_bound
from repro.costs import UNIT_COST, WeightedCostModel
from repro.datasets import random_tree
from repro.io.bracket import parse_bracket, to_bracket
from repro.join import batch_self_join
from repro.trees import Node, Tree
from repro.visualize import render_mapping, render_outline, render_tree

DEPTH = 5000


def _path_tree(depth: int, label: object = "a") -> Tree:
    node = Node(label)
    for _ in range(depth - 1):
        node = Node(label, [node])
    return Tree(node)


@pytest.fixture
def forbid_recursion_limit(monkeypatch):
    def forbidden(limit):  # pragma: no cover - would fail the test
        raise AssertionError("sys.setrecursionlimit must not be touched")

    monkeypatch.setattr(sys, "setrecursionlimit", forbidden)


@pytest.fixture
def deep_tree(forbid_recursion_limit) -> Tree:
    return _path_tree(DEPTH)


class TestIterativeHelpers:
    def test_bracket_round_trip_on_deep_tree(self, forbid_recursion_limit):
        text = "{a" * DEPTH + "}" * DEPTH
        tree = parse_bracket(text)
        assert tree.n == DEPTH
        assert to_bracket(tree) == text

    def test_pq_gram_profile_on_deep_tree(self, deep_tree):
        profile = pq_gram_profile(deep_tree)
        # A unary chain yields 3 grams per internal node (q = 3) plus the leaf.
        assert sum(profile.values()) == 3 * (DEPTH - 1) + 1

    def test_upper_bounds_on_deep_trees(self, deep_tree):
        other = _path_tree(DEPTH - 3, label="b")
        upper = top_down_upper_bound(deep_tree, other)
        assert upper <= trivial_upper_bound(deep_tree, other)
        assert upper >= abs(deep_tree.n - other.n)

    def test_render_on_deep_tree(self, deep_tree):
        assert len(render_tree(deep_tree).splitlines()) == DEPTH
        assert render_tree(deep_tree, max_nodes=10).endswith("…")
        assert render_outline(deep_tree).count("(") == DEPTH - 1


class TestDeepEditMapping:
    def test_mapping_extraction_on_5000_deep_path_tree(self, deep_tree):
        """Acceptance: edit_mapping on a 5000-deep path tree at the default
        recursion limit, with sys.setrecursionlimit forbidden end to end."""
        bushy = random_tree(30, rng=7)
        expected = zhang_shasha_distance(deep_tree, bushy, UNIT_COST)[0]
        mapping = compute_edit_mapping(deep_tree, bushy)
        assert mapping.cost == pytest.approx(expected)
        assert mapping_cost(mapping, deep_tree, bushy) == pytest.approx(expected)
        covered = {v for v, _ in mapping.matches} | set(mapping.deletions)
        assert len(covered) == deep_tree.n

    def test_mapping_between_two_deep_trees(self, forbid_recursion_limit):
        # Deep × deep exercises the worklist over long backtrace chains;
        # 1500 keeps the O(n·m) tables fast while still far beyond the
        # default interpreter recursion limit.
        left = _path_tree(1500)
        right = _path_tree(1498, label="b")
        cm = WeightedCostModel(1.0, 1.0, 0.5)
        expected = zhang_shasha_distance(left, right, cm)[0]
        mapping = compute_edit_mapping(left, right, cost_model=cm)
        assert mapping.cost == pytest.approx(expected)
        assert mapping_cost(mapping, left, right, cost_model=cm) == pytest.approx(expected)

    def test_render_mapping_on_deep_tree(self, forbid_recursion_limit):
        deep = _path_tree(1500)
        other = _path_tree(1499, label="b")
        mapping = compute_edit_mapping(deep, other)
        rendered = render_mapping(deep, other, mapping)
        assert len(rendered.splitlines()) >= 1500


class TestJoinPipelineRecursionFree:
    def test_batch_join_with_deep_trees(self, forbid_recursion_limit):
        trees = [
            _path_tree(1200),
            _path_tree(1199),
            _path_tree(1180, label="b"),
            random_tree(40, rng=3),
        ]
        result = batch_self_join(trees, 3.0, algorithm="zhang-l")
        off = batch_self_join(trees, 3.0, algorithm="zhang-l", use_cascade=False)
        assert result.match_set == off.match_set == {(0, 1)}


class TestWorkspacePathRecursionFree:
    """The amortized workspace layer must stay iterative end to end."""

    def test_workspace_rted_on_5000_deep_tree(self, deep_tree):
        """Acceptance: a workspace-backed RTED distance involving a
        5000-deep path tree at the default recursion limit, with
        sys.setrecursionlimit forbidden end to end."""
        from repro.algorithms import TedWorkspace, make_algorithm
        from repro.algorithms.zhang_shasha import zhang_shasha_distance

        bushy = random_tree(40, rng=9)
        workspace = TedWorkspace()
        algorithm = make_algorithm("rted", workspace=workspace)
        expected = zhang_shasha_distance(deep_tree, bushy, UNIT_COST)[0]
        # Twice: the second run exercises the cache-hit (reused frames,
        # pooled matrix) path on the same deep tree.
        assert algorithm.compute(deep_tree, bushy).distance == expected
        assert algorithm.compute(deep_tree, bushy).distance == expected
        assert workspace.stats.frame_hits > 0

    def test_workspace_small_pair_kernel_on_deep_chains(self, forbid_recursion_limit):
        from repro.algorithms import TedWorkspace, make_algorithm
        from repro.join import batch_distances

        # Path trees under the small-pair cutoff run the flat unit kernel;
        # everything stays loop-based regardless of depth/shape mix.
        trees = [_path_tree(60), _path_tree(59), _path_tree(58, label="b"), random_tree(30, rng=5)]
        workspace = TedWorkspace()
        pairs = [(i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))]
        on = batch_distances(trees, None, pairs, workspace=workspace)
        off = batch_distances(trees, None, pairs, workspace=False)
        assert [(i, j, d) for i, j, d, _ in on] == [(i, j, d) for i, j, d, _ in off]
        assert workspace.stats.small_pair_runs == len(pairs)
