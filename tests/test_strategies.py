"""Unit tests for path strategies (Definition 4)."""

import pytest

from repro.algorithms import (
    ALL_FIXED_CHOICES,
    SIDE_F,
    SIDE_G,
    HeavyFStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    PathChoice,
    PrecomputedStrategy,
    RightFStrategy,
    fixed_strategy_for,
)
from repro.exceptions import StrategyError
from repro.trees import HEAVY, LEFT, RIGHT, tree_from_nested
from repro.datasets import left_branch_tree, right_branch_tree


@pytest.fixture
def trees():
    return tree_from_nested(("a", ["b", "c"])), tree_from_nested(("x", [("y", ["z"])]))


class TestPathChoice:
    def test_valid_choice(self):
        choice = PathChoice(SIDE_F, LEFT)
        assert choice.side == SIDE_F and choice.kind == LEFT

    def test_invalid_side_rejected(self):
        with pytest.raises(StrategyError):
            PathChoice("X", LEFT)

    def test_invalid_kind_rejected(self):
        with pytest.raises(StrategyError):
            PathChoice(SIDE_F, "diagonal")

    def test_choices_are_hashable_and_comparable(self):
        assert PathChoice(SIDE_F, LEFT) == PathChoice(SIDE_F, LEFT)
        assert len({PathChoice(SIDE_F, LEFT), PathChoice(SIDE_F, LEFT)}) == 1


class TestFixedStrategies:
    def test_left_f(self, trees):
        tree_f, tree_g = trees
        assert LeftFStrategy().choose(tree_f, tree_g, tree_f.root, tree_g.root) == PathChoice(
            SIDE_F, LEFT
        )

    def test_right_f(self, trees):
        tree_f, tree_g = trees
        assert RightFStrategy().choose(tree_f, tree_g, 0, 0) == PathChoice(SIDE_F, RIGHT)

    def test_heavy_f(self, trees):
        tree_f, tree_g = trees
        assert HeavyFStrategy().choose(tree_f, tree_g, 0, 0) == PathChoice(SIDE_F, HEAVY)

    def test_heavy_larger_picks_larger_tree(self):
        small = tree_from_nested(("a", ["b"]))
        large = tree_from_nested(("x", ["y", "z", "w"]))
        strategy = HeavyLargerStrategy()
        assert strategy.choose(small, large, small.root, large.root).side == SIDE_G
        assert strategy.choose(large, small, large.root, small.root).side == SIDE_F

    def test_heavy_larger_ties_go_to_f(self):
        a = tree_from_nested(("a", ["b"]))
        b = tree_from_nested(("x", ["y"]))
        assert HeavyLargerStrategy().choose(a, b, a.root, b.root).side == SIDE_F

    def test_fixed_strategy_factory_covers_all_choices(self, trees):
        tree_f, tree_g = trees
        for choice in ALL_FIXED_CHOICES:
            strategy = fixed_strategy_for(choice)
            assert strategy.choose(tree_f, tree_g, 0, 0) == choice


class TestPrecomputedStrategy:
    def test_lookup(self, trees):
        tree_f, tree_g = trees
        matrix = [
            [PathChoice(SIDE_F, LEFT) for _ in range(tree_g.n)] for _ in range(tree_f.n)
        ]
        matrix[tree_f.root][tree_g.root] = PathChoice(SIDE_G, HEAVY)
        strategy = PrecomputedStrategy(matrix)
        assert strategy.choose(tree_f, tree_g, 0, 0) == PathChoice(SIDE_F, LEFT)
        assert strategy.choose(tree_f, tree_g, tree_f.root, tree_g.root) == PathChoice(
            SIDE_G, HEAVY
        )

    def test_missing_entry_raises(self, trees):
        tree_f, tree_g = trees
        strategy = PrecomputedStrategy([[None]])
        with pytest.raises(StrategyError):
            strategy.choose(tree_f, tree_g, 0, 0)

    def test_out_of_range_raises(self, trees):
        tree_f, tree_g = trees
        strategy = PrecomputedStrategy([[PathChoice(SIDE_F, LEFT)]])
        with pytest.raises(StrategyError):
            strategy.choose(tree_f, tree_g, 5, 9)


class TestStrategyEffectOnWork:
    def test_matching_strategy_beats_mismatched_strategy(self):
        from repro.counting import strategy_object_cost

        tree = left_branch_tree(41)
        left_cost = strategy_object_cost(tree, tree, LeftFStrategy())
        right_cost = strategy_object_cost(tree, tree, RightFStrategy())
        assert left_cost < right_cost

        tree = right_branch_tree(41)
        left_cost = strategy_object_cost(tree, tree, LeftFStrategy())
        right_cost = strategy_object_cost(tree, tree, RightFStrategy())
        assert right_cost < left_cost
