"""Live-corpus tests: versioned mutation, snapshot pinning, epoch-keyed caches.

The contract under test (the PR 10 invariant): after **any** interleaving of
:meth:`TreeCorpus.add_trees` / :meth:`TreeCorpus.remove_trees` the corpus is
observably identical — distances, join match sets, kNN/range results,
cascade stats modulo timing — to a fresh :class:`TreeCorpus` built from the
same final tree sequence.  The randomized interleaving suite checks this
bit-identically at every step, under both the unit and a fractional
(metric-eligible weighted) cost model.

The service tests cover the corpus-management endpoints and the per-corpus
epoch-keyed pair-result LRU: a mutation bumps the epoch, which implicitly
invalidates every cached pair distance (the stale key can never be built
again).

This module also runs in CI under ``RTED_FAULT_INJECT=worker_crash:0.2``;
everything here uses the serial (``workers=1``) execution path, which fault
injection leaves untouched, so results stay deterministic either way.
"""

import asyncio
import random

import pytest

from repro.costs import UnitCostModel, WeightedCostModel
from repro.datasets import random_tree
from repro.exceptions import CorpusError, QueryError
from repro.io import to_bracket
from repro.join.batch import batch_similarity_join
from repro.join.corpus import CorpusSnapshot, TreeCorpus
from repro.join.metric_index import VPTree
from repro.join.query import QueryEngine

from test_service import _get, _post, run_service

#: JoinStats counters that must match a fresh corpus exactly (timings and
#: worker counts are execution details, not observable corpus state).
_STAT_FIELDS = (
    "pairs_total",
    "candidate_pairs",
    "index_pruned",
    "accepted_early",
    "exact_computed",
    "exact_matched",
    "aborted_early",
    "matches",
    "total_subproblems",
)


def _forest(count, seed, lo=3, hi=8):
    rng = random.Random(seed)
    return [random_tree(rng.randint(lo, hi), rng=seed * 1000 + i) for i in range(count)]


# --------------------------------------------------------------------------- #
# Versioned store mechanics
# --------------------------------------------------------------------------- #
class TestVersionedCorpus:
    def test_epoch_bumps_and_dense_ids(self):
        trees = _forest(6, seed=1)
        corpus = TreeCorpus(trees[:4])
        assert corpus.epoch == 0
        added = corpus.add_trees(trees[4:])
        assert added == [4, 5]
        assert corpus.epoch == 1
        removed = corpus.remove_trees([1, 3])
        assert removed == [1, 3]
        assert corpus.epoch == 2
        assert len(corpus) == 4
        assert corpus.trees == (trees[0], trees[2], trees[4], trees[5])
        assert corpus.mutation_counters() == {
            "adds": 1,
            "removals": 1,
            "trees_added": 2,
            "trees_removed": 2,
            "compactions": 0,
        }

    def test_mutation_validation(self):
        corpus = TreeCorpus(_forest(3, seed=2))
        with pytest.raises(CorpusError):
            corpus.add_trees(["{a}"])  # strings must be parsed by the caller
        with pytest.raises(CorpusError):
            corpus.remove_trees([3])
        with pytest.raises(CorpusError):
            corpus.remove_trees([-1])
        assert corpus.epoch == 0  # failed mutations leave the corpus untouched

    def test_incremental_index_maintenance(self):
        trees = _forest(12, seed=3)
        corpus = TreeCorpus(trees[:8])
        # Build the postings first, so adds/removes take the incremental path.
        corpus.branch_index()
        corpus.pq_index()
        corpus.add_trees(trees[8:])
        corpus.remove_trees([0, 5])
        fresh = TreeCorpus(list(corpus.trees))
        assert corpus.branch_index() == fresh.branch_index()
        assert corpus.pq_index() == fresh.pq_index()
        assert corpus.size_order() == fresh.size_order()
        assert [corpus.profile(i).index for i in range(len(corpus))] == list(
            range(len(corpus))
        )

    def test_removal_compacts_past_threshold_without_rebuild(self):
        trees = _forest(24, seed=4)
        corpus = TreeCorpus(trees)
        corpus.branch_index()
        corpus.COMPACTION_THRESHOLD = 0  # instance override: compact eagerly
        corpus.remove_trees(list(range(16)))
        assert corpus.compactions >= 1
        fresh = TreeCorpus(list(corpus.trees))
        assert corpus.branch_index() == fresh.branch_index()
        # Compaction filtered the slot-keyed postings in place: no tombstoned
        # slot id survives anywhere.
        for slots in corpus._branch_postings.values():
            assert not set(slots) & corpus._dead

    def test_trees_tuple_resists_in_place_mutation(self):
        corpus = TreeCorpus(_forest(3, seed=5))
        with pytest.raises(TypeError):
            corpus.trees[0] = corpus.trees[1]


class TestSnapshot:
    def test_pin_delta_translate(self):
        trees = _forest(8, seed=6)
        corpus = TreeCorpus(trees[:6])
        snap = corpus.snapshot()
        assert isinstance(snap, CorpusSnapshot)
        assert snap.epoch == corpus.epoch and snap.is_current()
        assert snap.delta() == ([], [])
        assert corpus.snapshot() is snap  # cached per epoch
        corpus.add_trees(trees[6:])
        corpus.remove_trees([2])
        assert not snap.is_current()
        added, removed = snap.delta()
        assert added == [5, 6]  # parent dense ids of the post-pin inserts
        assert removed == [2]  # snapshot dense ids the parent dropped
        assert snap.to_parent(2) is None
        assert snap.to_parent(0) == 0 and snap.to_parent(3) == 2
        assert snap.trees == tuple(trees[:6])  # the pin never moves

    def test_snapshot_is_immutable(self):
        corpus = TreeCorpus(_forest(4, seed=7))
        snap = corpus.snapshot()
        with pytest.raises(CorpusError):
            snap.add_trees([corpus.trees[0]])
        with pytest.raises(CorpusError):
            snap.remove_trees([0])
        assert snap.snapshot() is snap

    def test_snapshot_queries_match_parent_at_pin(self):
        trees = _forest(10, seed=8)
        corpus = TreeCorpus(trees)
        snap = corpus.snapshot()
        threshold = 3.0
        live = batch_similarity_join(corpus, threshold)
        pinned = batch_similarity_join(snap, threshold)
        assert live.matches == pinned.matches

    def test_snapshot_profiles_survive_parent_removal(self):
        trees = _forest(6, seed=9)
        corpus = TreeCorpus(trees)
        snap = corpus.snapshot()
        corpus.remove_trees([0, 1])
        # The parent dropped the trees' profiles; the snapshot rebuilds its
        # own and still answers with the pinned membership.
        result = batch_similarity_join(snap, 3.0)
        fresh = batch_similarity_join(TreeCorpus(trees), 3.0)
        assert result.matches == fresh.matches


# --------------------------------------------------------------------------- #
# Satellite 1 regression: pack cache vs late interner sharing and mutation
# --------------------------------------------------------------------------- #
class TestPackEpochKeying:
    def test_pack_invalidated_by_share_interner(self):
        pytest.importorskip("numpy")
        trees = _forest(10, seed=10)
        a = TreeCorpus(trees[:5])
        b = TreeCorpus(trees[5:])
        stale = b.pack()
        assert stale is not None
        b.share_interner(a.interner())
        rebuilt = b.pack()
        # The old pack's label codes came from b's private interner; serving
        # it after the switch would mix incompatible code spaces.
        assert rebuilt is not stale
        assert b.shares_interner(a)
        assert b.pack() is rebuilt  # stable within (interner, cutoff, epoch)

    def test_pack_invalidated_by_mutation(self):
        pytest.importorskip("numpy")
        trees = _forest(7, seed=11)
        corpus = TreeCorpus(trees[:6])
        before = corpus.pack()
        assert before is not None and before.n_trees == 6
        corpus.add_trees(trees[6:])
        after = corpus.pack()
        assert after is not before and after.n_trees == 7
        corpus.remove_trees([0])
        assert corpus.pack().n_trees == 6

    def test_share_interner_rejects_none(self):
        corpus = TreeCorpus(_forest(2, seed=12))
        with pytest.raises(CorpusError):
            corpus.share_interner(None)

    def test_snapshot_pack_delegates_while_current(self):
        pytest.importorskip("numpy")
        corpus = TreeCorpus(_forest(5, seed=13))
        snap = corpus.snapshot()
        assert snap.pack() is corpus.pack()
        corpus.add_trees(_forest(1, seed=14))
        # Parent moved on: the snapshot now needs its own pinned-membership pack.
        assert snap.pack() is not corpus.pack()
        assert snap.pack().n_trees == 5 and corpus.pack().n_trees == 6

    def test_export_descriptor_carries_epoch(self):
        pytest.importorskip("numpy")
        from repro.join.shared import export_pack, shared_available

        if not shared_available():
            pytest.skip("shared memory unavailable")
        corpus = TreeCorpus(_forest(4, seed=15))
        corpus.add_trees(_forest(1, seed=16))
        exported = export_pack(corpus.pack(), epoch=corpus.epoch)
        if exported is None:
            pytest.skip("shm export unavailable in this sandbox")
        handle, descriptor = exported
        try:
            assert descriptor["epoch"] == 1
        finally:
            handle.close()


# --------------------------------------------------------------------------- #
# Engine staleness: pinning, side lists, prebuilt-index refusal
# --------------------------------------------------------------------------- #
class TestEngineStaleness:
    def test_pin_survives_small_drift(self):
        trees = _forest(42, seed=17)
        corpus = TreeCorpus(trees[:40])
        query = random_tree(6, rng=170)
        engine = QueryEngine(corpus)
        engine.knn(query, 3)
        pinned = engine.snapshot_epoch
        corpus.add_trees(trees[40:])
        corpus.remove_trees([1])
        result = engine.knn(query, 3)
        assert engine.snapshot_epoch == pinned  # drift 3 <= budget 10
        assert result.stats.side_candidates == 2
        fresh = QueryEngine(TreeCorpus(list(corpus.trees))).knn(query, 3)
        assert result.matches == fresh.matches

    def test_pin_refreshes_past_budget(self):
        trees = _forest(14, seed=18)
        corpus = TreeCorpus(trees[:8])
        query = random_tree(6, rng=180)
        engine = QueryEngine(corpus, staleness_budget=0.25)
        engine.knn(query, 3)
        corpus.add_trees(trees[8:])  # drift 6 > budget 2
        result = engine.knn(query, 3)
        assert engine.snapshot_epoch == corpus.epoch
        assert result.stats.side_candidates == 0
        fresh = QueryEngine(TreeCorpus(list(corpus.trees))).knn(query, 3)
        assert result.matches == fresh.matches

    def test_staleness_budget_validation(self):
        corpus = TreeCorpus(_forest(3, seed=19))
        with pytest.raises(QueryError):
            QueryEngine(corpus, staleness_budget=-0.5)

    def test_prebuilt_stale_metric_index_refused(self):
        corpus = TreeCorpus(_forest(20, seed=20))
        vp = VPTree.build(corpus.snapshot())
        corpus.add_trees(_forest(1, seed=21))
        with pytest.raises(QueryError, match="stale"):
            QueryEngine(corpus, metric_index=vp)

    def test_prebuilt_snapshot_index_accepted(self):
        corpus = TreeCorpus(_forest(20, seed=22))
        vp = VPTree.build(corpus.snapshot())
        engine = QueryEngine(corpus, metric_index=vp)
        assert engine.metric_index() is vp
        query = random_tree(6, rng=220)
        result = engine.knn(query, 3)
        fresh = QueryEngine(TreeCorpus(list(corpus.trees))).knn(query, 3)
        assert result.matches == fresh.matches


# --------------------------------------------------------------------------- #
# The mutation-equivalence invariant, randomized
# --------------------------------------------------------------------------- #
class TestMutationEquivalence:
    """≥200 randomized operations per cost model, checked at every step."""

    OPERATIONS = 200
    THRESHOLD = 3.0

    def _check_step(self, live, engine, cost_model, query):
        fresh = TreeCorpus(list(live.trees))
        assert live.trees == fresh.trees
        assert live.branch_index() == fresh.branch_index()
        assert live.pq_index() == fresh.pq_index()
        assert live.size_order() == fresh.size_order()
        live_join = batch_similarity_join(live, self.THRESHOLD, cost_model=cost_model)
        fresh_join = batch_similarity_join(fresh, self.THRESHOLD, cost_model=cost_model)
        assert live_join.matches == fresh_join.matches
        for field in _STAT_FIELDS:
            assert getattr(live_join.stats, field) == getattr(
                fresh_join.stats, field
            ), field
        fresh_engine = QueryEngine(fresh, cost_model=cost_model)
        assert (
            engine.knn(query, 4).matches == fresh_engine.knn(query, 4).matches
        )
        assert (
            engine.range_query(query, 2.5).matches
            == fresh_engine.range_query(query, 2.5).matches
        )

    def _run_interleaving(self, cost_model, seed):
        rng = random.Random(seed)
        pool = _forest(160, seed=seed, lo=3, hi=8)
        cursor = 18
        live = TreeCorpus(pool[:cursor])
        live.branch_index()  # force the incremental maintenance path
        engine = QueryEngine(live, cost_model=cost_model)
        query = random_tree(6, rng=seed + 1)
        mutations = 0
        for step in range(self.OPERATIONS):
            op = rng.random()
            if op < 0.45 and cursor < len(pool):
                take = min(rng.randint(1, 3), len(pool) - cursor)
                live.add_trees(pool[cursor:cursor + take])
                cursor += take
                mutations += 1
            elif op < 0.80 and len(live) > 6:
                victims = rng.sample(range(len(live)), rng.randint(1, 2))
                live.remove_trees(victims)
                mutations += 1
            else:
                # A query op: exercised against the engine mid-drift (the
                # equivalence check below queries too, but through a fresh
                # baseline — this one hits whatever pin state the engine is in).
                engine.knn(query, 3)
            self._check_step(live, engine, cost_model, query)
        assert mutations >= 80  # the interleaving actually mutated
        assert live.epoch == mutations

    def test_unit_cost_interleaving(self):
        self._run_interleaving(UnitCostModel(), seed=23)

    def test_fractional_cost_interleaving(self):
        self._run_interleaving(
            WeightedCostModel(delete_cost=0.5, insert_cost=0.5, rename_cost=0.75),
            seed=24,
        )


# --------------------------------------------------------------------------- #
# Service: corpus management + epoch-keyed pair caching
# --------------------------------------------------------------------------- #
def _delete(base, path, timeout=30):
    import json as _json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(base + path, method="DELETE")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, _json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, _json.loads(error.read())


class TestServiceManagement:
    def test_create_add_remove_lifecycle(self):
        async def body(service, base):
            brackets = [to_bracket(t) for t in _forest(4, seed=25)]
            status, _, payload = await asyncio.to_thread(
                _post, base, "/corpora", {"name": "scratch", "trees": brackets[:2]}
            )
            assert status == 200
            assert payload == {"name": "scratch", "size": 2, "epoch": 0}
            status, _, payload = await asyncio.to_thread(
                _post, base, "/corpora/scratch/trees", {"trees": brackets[2:]}
            )
            assert status == 200
            assert payload["added"] == [2, 3]
            assert payload["size"] == 4 and payload["epoch"] == 1
            status, payload = await asyncio.to_thread(
                _delete, base, "/corpora/scratch/trees/0"
            )
            assert status == 200
            assert payload["size"] == 3 and payload["epoch"] == 2
            # The new corpus serves queries like any registered one.
            status, _, payload = await asyncio.to_thread(
                _post, base, "/knn", {"corpus": "scratch", "query": brackets[1], "k": 2}
            )
            assert status == 200 and len(payload["matches"]) == 2

        run_service(body)

    def test_create_conflict_and_bad_requests(self):
        async def body(service, base):
            status, _, _ = await asyncio.to_thread(
                _post, base, "/corpora", {"name": "default"}
            )
            assert status == 409
            status, _, _ = await asyncio.to_thread(
                _post, base, "/corpora", {"trees": []}
            )
            assert status == 400  # missing name
            status, _, _ = await asyncio.to_thread(
                _post, base, "/corpora/nowhere/trees", {"trees": ["{a}"]}
            )
            assert status == 400  # unknown corpus
            status, payload = await asyncio.to_thread(
                _delete, base, "/corpora/default/trees/999"
            )
            assert status == 400  # out of range -> CorpusError -> 400
            status, payload = await asyncio.to_thread(
                _delete, base, "/corpora/default/trees/abc"
            )
            assert status == 400  # non-integer id

        run_service(body)

    def test_pair_cache_hit_miss_and_epoch_invalidation(self):
        async def body(service, base):
            request = {"corpus": "default", "i": 0, "j": 1}
            status, _, first = await asyncio.to_thread(_post, base, "/distance", request)
            assert status == 200
            assert first["cached"] is False and first["epoch"] == 0
            status, _, second = await asyncio.to_thread(_post, base, "/distance", request)
            assert second["cached"] is True
            assert second["distance"] == first["distance"]
            # A mutation bumps the epoch: the same (i, j) misses and recomputes.
            tree = to_bracket(random_tree(8, rng=260))
            status, _, payload = await asyncio.to_thread(
                _post, base, "/corpora/default/trees", {"trees": [tree]}
            )
            assert status == 200 and payload["epoch"] == 1
            status, _, third = await asyncio.to_thread(_post, base, "/distance", request)
            assert third["cached"] is False and third["epoch"] == 1
            assert third["distance"] == first["distance"]
            status, _, stats = await asyncio.to_thread(_get, base, "/stats")
            default = stats["corpora"]["default"]
            assert default["pair_cache_hits"] == 1
            assert default["pair_cache_misses"] == 2
            assert default["epoch"] == 1
            assert default["adds"] == 1 and default["trees_added"] == 1

        run_service(body)

    def test_pair_cache_rejects_out_of_range_ids(self):
        async def body(service, base):
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance", {"corpus": "default", "i": 0, "j": 999}
            )
            assert status == 400
            assert "tree ids" in payload["error"]

        run_service(body)

    def test_stats_surfaces_snapshot_epoch(self):
        async def body(service, base):
            query = to_bracket(random_tree(6, rng=270))
            status, _, _ = await asyncio.to_thread(
                _post, base, "/knn", {"query": query, "k": 2}
            )
            assert status == 200
            status, _, stats = await asyncio.to_thread(_get, base, "/stats")
            default = stats["corpora"]["default"]
            assert default["snapshot_epoch"] == 0  # engine pinned at epoch 0

        run_service(body)
