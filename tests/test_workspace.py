"""Tests for the amortized execution layer (TedWorkspace, interning, pooling).

The contract under test is *bit-identity*: a workspace may cache frames,
intern labels into alphabet tables, pool matrices and short-circuit small
unit-cost pairs, but the distances it produces must equal the fresh-context
results exactly (``==``, not ``approx``) — across random pairs, mixed
shapes, unit and fractional cost models, and repeated-tree (self-join)
sequences where stale caches would surface.
"""

import random

import pytest

from repro.algorithms import (
    RTED,
    LabelInterner,
    TedWorkspace,
    WorkspaceTED,
    make_algorithm,
    spf_L,
    spf_R,
)
from repro.costs import (
    UNIT_COST,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from repro.datasets import clustered_corpus, random_tree
from repro.datasets.shapes import make_shape
from repro.exceptions import WorkspaceError
from repro.join import TreeCorpus, batch_distances, batch_self_join, batch_similarity_join

from conftest import random_tree_pairs

FRACTIONAL = WeightedCostModel(delete_cost=1.3, insert_cost=0.7, rename_cost=1.9)


def _mixed_shape_trees():
    """Trees across the shape families plus random ones (sizes 1..40)."""
    trees = [
        make_shape("left-branch", 25),
        make_shape("right-branch", 25),
        make_shape("full-binary", 31),
        make_shape("zigzag", 24),
        random_tree(1, rng=11),
        random_tree(3, rng=12),
    ]
    trees += [random_tree(5 + 2 * k, rng=100 + k) for k in range(12)]
    return trees


def _pair_sequence(trees, count, seed=7):
    """Pairs sampled *with replacement* — repeated trees, self-pairs included."""
    rng = random.Random(seed)
    return [
        (rng.randrange(len(trees)), rng.randrange(len(trees))) for _ in range(count)
    ]


class TestBitIdentity:
    """Workspace-reused vs fresh-context results, exact equality."""

    @pytest.mark.parametrize("cost_model", [UNIT_COST, FRACTIONAL], ids=["unit", "fractional"])
    @pytest.mark.parametrize("algorithm", ["rted", "zhang-l"])
    def test_property_200_random_pairs(self, algorithm, cost_model):
        trees = _mixed_shape_trees()
        pairs = _pair_sequence(trees, 200)
        workspace = TedWorkspace(cost_model)
        amortized = make_algorithm(algorithm, workspace=workspace)
        fresh = make_algorithm(algorithm)
        for i, j in pairs:
            a = amortized.compute(trees[i], trees[j], cost_model=cost_model).distance
            b = fresh.compute(trees[i], trees[j], cost_model=cost_model).distance
            assert a == b, (algorithm, cost_model, i, j)
        if cost_model is UNIT_COST:
            assert workspace.stats.small_pair_runs > 0

    def test_repeated_tree_self_join_sequence(self):
        # The same few trees queried over and over — the cache-staleness
        # scenario.  Every repetition must reproduce the first answer.
        trees = [random_tree(20, rng=k) for k in range(4)]
        workspace = TedWorkspace()
        algorithm = make_algorithm("rted", workspace=workspace)
        baseline = {}
        for _ in range(5):
            for i in range(len(trees)):
                for j in range(len(trees)):
                    d = algorithm.compute(trees[i], trees[j]).distance
                    assert baseline.setdefault((i, j), d) == d
        assert workspace.stats.frame_hits + workspace.stats.small_pair_runs > 0

    @pytest.mark.parametrize("cost_model", [UNIT_COST, FRACTIONAL], ids=["unit", "fractional"])
    def test_large_pairs_use_workspace_contexts(self, cost_model):
        # Above the small-pair cutoff the executor runs with workspace-backed
        # contexts (cached frames, interned rename tables, pooled matrices).
        trees = [random_tree(90 + 10 * k, rng=50 + k) for k in range(4)]
        workspace = TedWorkspace(cost_model)
        amortized = make_algorithm("rted", workspace=workspace)
        fresh = make_algorithm("rted")
        for i in range(len(trees)):
            for j in range(len(trees)):
                a = amortized.compute(trees[i], trees[j], cost_model=cost_model).distance
                b = fresh.compute(trees[i], trees[j], cost_model=cost_model).distance
                assert a == b
        assert workspace.stats.small_pair_runs == 0
        assert workspace.stats.frame_hits > 0
        assert workspace.stats.matrices_pooled > 0

    def test_spf_functions_accept_workspace(self):
        workspace = TedWorkspace(FRACTIONAL)
        for tree_f, tree_g in random_tree_pairs(count=20, max_size=14, seed=5):
            assert spf_L(tree_f, tree_g, cost_model=FRACTIONAL, workspace=workspace) == spf_L(
                tree_f, tree_g, cost_model=FRACTIONAL
            )
            assert spf_R(tree_f, tree_g, cost_model=FRACTIONAL, workspace=workspace) == spf_R(
                tree_f, tree_g, cost_model=FRACTIONAL
            )


class TestBatchLayer:
    def test_batch_distances_workspace_on_off_identical(self):
        trees = clustered_corpus(
            num_clusters=5, cluster_size=6, tree_size=12, num_edits=2, rng=9
        )
        pairs = [(i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))]
        on = batch_distances(trees, None, pairs, algorithm="rted", workspace=True)
        off = batch_distances(trees, None, pairs, algorithm="rted", workspace=False)
        assert [(i, j, d) for i, j, d, _ in on] == [(i, j, d) for i, j, d, _ in off]

    def test_batch_join_workspace_on_off_identical(self):
        trees = clustered_corpus(
            num_clusters=6, cluster_size=5, tree_size=12, num_edits=2, rng=4
        )
        on = batch_self_join(trees, 3.0, algorithm="zhang-l")
        off = batch_self_join(trees, 3.0, algorithm="zhang-l", workspace=False)
        assert on.matches == off.matches

    def test_cross_corpus_interning(self):
        # A cross join interns both corpora into one dictionary; labels seen
        # only in corpus_b must still gather correct costs.
        a = TreeCorpus([random_tree(12, rng=k, alphabet=["x", "y"]) for k in range(5)])
        b = TreeCorpus([random_tree(12, rng=30 + k, alphabet=["y", "z", "w"]) for k in range(5)])
        pairs = [(i, j) for i in range(len(a)) for j in range(len(b))]
        for cm in (None, FRACTIONAL):
            on = batch_distances(a, b, pairs, algorithm="rted", cost_model=cm, workspace=True)
            off = batch_distances(a, b, pairs, algorithm="rted", cost_model=cm, workspace=False)
            assert [(i, j, d) for i, j, d, _ in on] == [(i, j, d) for i, j, d, _ in off]

    def test_explicit_workspace_reused_across_batches(self):
        trees = TreeCorpus([random_tree(14, rng=k) for k in range(6)])
        workspace = TedWorkspace(interner=trees.interner())
        pairs = [(i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))]
        first = batch_distances(trees, None, pairs, workspace=workspace)
        hits_after_first = workspace.stats.small_pair_runs
        second = batch_distances(trees, None, pairs, workspace=workspace)
        assert first == second
        assert workspace.stats.small_pair_runs > hits_after_first

    def test_workers_match_serial(self):
        trees = clustered_corpus(
            num_clusters=4, cluster_size=5, tree_size=12, num_edits=2, rng=2
        )
        pairs = [(i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))]
        serial = batch_distances(trees, None, pairs, algorithm="rted", workspace=True)
        fanned = batch_distances(
            trees, None, pairs, algorithm="rted", workspace=True, workers=2, chunk_size=20
        )
        assert sorted(serial) == sorted(fanned)


class TestCostModelBinding:
    def test_mismatched_explicit_workspace_raises(self):
        trees = [random_tree(10, rng=1), random_tree(10, rng=2)]
        workspace = TedWorkspace(FRACTIONAL)
        with pytest.raises(WorkspaceError):
            batch_distances(trees, None, [(0, 1)], workspace=workspace)  # unit batch

    def test_wrapper_bypasses_foreign_cost_model(self):
        # WorkspaceTED with a unit workspace asked for a fractional distance:
        # must bypass the caches and still be exact.
        workspace = TedWorkspace()
        algorithm = WorkspaceTED(RTED(), workspace)
        tree_f, tree_g = random_tree(15, rng=3), random_tree(15, rng=4)
        expected = RTED().compute(tree_f, tree_g, cost_model=FRACTIONAL).distance
        assert algorithm.compute(tree_f, tree_g, cost_model=FRACTIONAL).distance == expected
        assert workspace.stats.bypasses > 0

    def test_matches_unit_aliases(self):
        workspace = TedWorkspace()
        assert workspace.matches(None)
        assert workspace.matches(UNIT_COST)
        assert workspace.matches(UnitCostModel())
        assert not workspace.matches(FRACTIONAL)
        # A model that merely *behaves* like unit cost is not trusted.
        assert not workspace.matches(WeightedCostModel(1.0, 1.0, 1.0))

    def test_string_rename_model_amortized_exactly(self):
        cm = StringRenameCostModel()
        trees = [random_tree(18, rng=60 + k, alphabet=["alpha", "beta", "betas", "x"]) for k in range(4)]
        workspace = TedWorkspace(cm)
        amortized = make_algorithm("rted", workspace=workspace)
        fresh = make_algorithm("rted")
        for i in range(len(trees)):
            for j in range(len(trees)):
                assert (
                    amortized.compute(trees[i], trees[j], cost_model=cm).distance
                    == fresh.compute(trees[i], trees[j], cost_model=cm).distance
                )


class TestWorkspaceInternals:
    def test_interner_codes_stable_and_shared(self):
        interner = LabelInterner()
        tree = random_tree(20, rng=8)
        first = interner.codes_postorder(tree)
        assert interner.codes_postorder(tree) is first
        # Codes decode back to the original labels.
        assert [interner.labels[c] for c in first] == list(tree.labels)

    def test_non_reflexive_labels_fall_back(self):
        # A NaN label is identical-to-itself for dict lookup but unequal
        # under the cost model's ==; interning must refuse it so the unit
        # kernels cannot charge rename 0 where UnitCostModel charges 1.
        from repro.trees import Node, Tree

        shared_nan = float("nan")
        tree_a = Tree(Node(shared_nan))
        tree_b = Tree(Node(shared_nan))
        workspace = TedWorkspace()
        assert workspace.compute_small(tree_a, tree_b) is None
        amortized = make_algorithm("rted", workspace=workspace)
        fresh = make_algorithm("rted")
        assert (
            amortized.compute(tree_a, tree_b).distance
            == fresh.compute(tree_a, tree_b).distance
            == 1.0
        )

    def test_prebuilt_oracle_instance_never_short_circuited(self):
        # An explicitly constructed oracle passed to batch_distances must run
        # as configured — the workspace applies to registry names only.
        trees = [random_tree(8, rng=1), random_tree(8, rng=2)]
        oracle = RTED(engine="recursive")
        results = batch_distances(trees, None, [(0, 1)], algorithm=oracle, workspace=True)
        expected = oracle.compute(trees[0], trees[1])
        assert results[0][2] == expected.distance
        assert results[0][3] == expected.subproblems

    def test_unhashable_labels_fall_back(self):
        from repro.trees import Node, Tree

        tree = Tree(Node(["unhashable"], [Node(["leaf"])]))
        other = random_tree(6, rng=1)
        workspace = TedWorkspace()
        assert workspace.compute_small(tree, other) is None
        amortized = make_algorithm("rted", workspace=workspace)
        assert (
            amortized.compute(tree, other).distance
            == make_algorithm("rted").compute(tree, other).distance
        )

    def test_matrix_pool_round_trip(self):
        pytest.importorskip("numpy")
        import numpy as np

        workspace = TedWorkspace()
        first = workspace.acquire_matrix(7, 5)
        assert first.shape == (7, 5) and np.isnan(first).all()
        workspace.release_matrix(first)
        second = workspace.acquire_matrix(8, 8)  # same power-of-two class (64)
        assert workspace.stats.matrices_pooled == 1
        assert second.shape == (8, 8) and np.isnan(second).all()

    def test_small_pair_cutoff_respected(self):
        workspace = TedWorkspace(small_pair_cutoff=8)
        small = random_tree(8, rng=1)
        large = random_tree(9, rng=2)
        assert workspace.compute_small(small, small) is not None
        assert workspace.compute_small(small, large) is None

    def test_clear_resets_caches(self):
        workspace = TedWorkspace()
        tree = random_tree(10, rng=1)
        workspace.compute_small(tree, tree)
        workspace.clear()
        assert workspace.compute_small(tree, tree) == (0.0, workspace.compute_small(tree, tree)[1])
