"""Tests for the HTTP serving layer: endpoints, deadlines, shedding, drain.

Each test spins up an in-process :class:`RtedService` on an ephemeral port
inside ``asyncio.run`` (no subprocess, no fixed ports, no pytest-asyncio
dependency) and talks real HTTP to it through ``urllib`` in worker threads.
"""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import compute, parse_tree
from repro.datasets import random_tree
from repro.io import to_bracket
from repro.join.corpus import TreeCorpus
from repro.join.shared import reap_stale
from repro.service import RtedService, ServiceConfig


def _post(base, path, body, timeout=60):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def _get(base, path, timeout=10):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def run_service(test_body, config=None, corpus_sizes=(20,), corpus_count=24, **service_kwargs):
    """Start a service on port 0, run ``await test_body(service, base_url)``."""

    async def main():
        trees = [
            random_tree(corpus_sizes[i % len(corpus_sizes)], rng=i)
            for i in range(corpus_count)
        ]
        service = RtedService(
            {"default": TreeCorpus(trees)},
            config if config is not None else ServiceConfig(port=0),
            **service_kwargs,
        )
        await service.start()
        base = f"http://127.0.0.1:{service.port}"
        try:
            await test_body(service, base)
        finally:
            if not service.draining:
                await service.drain()

    asyncio.run(main())


class TestEndpoints:
    def test_health_ready_stats(self):
        async def body(service, base):
            status, _, payload = await asyncio.to_thread(_get, base, "/healthz")
            assert (status, payload["status"]) == (200, "alive")
            status, _, payload = await asyncio.to_thread(_get, base, "/readyz")
            assert (status, payload["status"]) == (200, "ready")
            status, _, payload = await asyncio.to_thread(_get, base, "/stats")
            assert status == 200
            default = payload["corpora"]["default"]
            assert default["size"] == 24
            assert default["epoch"] == 0
            assert default["pair_cache_hits"] == 0
            assert default["pair_cache_misses"] == 0
            assert default["pair_cache_evictions"] == 0
            assert default["adds"] == 0 and default["removals"] == 0
            assert payload["counters"]["served"] == 0

        run_service(body)

    def test_distance_bit_identical_to_library(self):
        async def body(service, base):
            f, g = random_tree(30, rng=1), random_tree(30, rng=2)
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance",
                {"tree_a": to_bracket(f), "tree_b": to_bracket(g)},
            )
            assert status == 200
            direct = compute(f, g)
            assert payload["distance"] == direct.distance
            assert payload["subproblems"] == direct.subproblems

        run_service(body)

    def test_bounded_distance(self):
        async def body(service, base):
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance",
                {"tree_a": "{a{b}{c}}", "tree_b": "{x{y}{z}{w}}", "cutoff": 1.5},
            )
            assert status == 200
            assert payload["bounded"] is True
            assert payload["lower_bound"] >= 1.5

        run_service(body)

    def test_knn_and_range_match_library(self):
        async def body(service, base):
            query = random_tree(20, rng=90)
            status, _, payload = await asyncio.to_thread(
                _post, base, "/knn", {"query": to_bracket(query), "k": 3},
            )
            assert status == 200
            assert len(payload["matches"]) == 3
            assert payload["partial"] is False
            expected = service._engines["default"].knn(query, 3)
            assert payload["matches"] == [[j, d] for j, d in expected.matches]

            status, _, ranged = await asyncio.to_thread(
                _post, base, "/range", {"query": to_bracket(query), "threshold": 12.0},
            )
            assert status == 200
            assert ranged["partial"] is False
            assert ranged["stats"]["corpus_size"] == 24

        run_service(body)

    def test_join_exposes_stats(self):
        async def body(service, base):
            status, _, payload = await asyncio.to_thread(
                _post, base, "/join", {"threshold": 4.0},
            )
            assert status == 200
            assert "exact_computed" in payload["stats"]
            # The telemetry lands in /stats for scrapers.
            _, _, stats = await asyncio.to_thread(_get, base, "/stats")
            assert stats["last_join_stats"] == payload["stats"]

        run_service(body)

    def test_request_errors(self):
        async def body(service, base):
            cases = [
                ("/distance", {"tree_a": "{a}"}),              # missing field
                ("/distance", {"tree_a": "{a}", "tree_b": 3}),  # wrong type
                ("/distance", {"tree_a": "{a", "tree_b": "{b}"}),  # parse error
                ("/knn", {"query": "{a}", "k": 1, "corpus": "nope"}),
                ("/knn", {"query": "{a}", "k": "three"}),
                ("/distance", {"tree_a": "{a}", "tree_b": "{b}", "deadline": -1}),
            ]
            for path, payload in cases:
                status, _, body_ = await asyncio.to_thread(_post, base, path, payload)
                assert status == 400, (path, payload, body_)
            status, _, _ = await asyncio.to_thread(_get, base, "/nope")
            assert status == 404
            status, _, _ = await asyncio.to_thread(_get, base, "/distance")
            assert status == 405

        run_service(body)


class TestDeadlines:
    def test_over_deadline_request_times_out_promptly(self):
        async def body(service, base):
            big_a = to_bracket(random_tree(900, rng=5))
            big_b = to_bracket(random_tree(880, rng=6))
            start = time.monotonic()
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance",
                {"tree_a": big_a, "tree_b": big_b, "deadline": 0.1},
            )
            elapsed = time.monotonic() - start
            assert status == 504
            assert payload["timeout"] is True
            assert elapsed < 2.0
            assert service.counters.timeouts == 1
            # The service stays healthy: the next request succeeds.
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance", {"tree_a": "{a{b}}", "tree_b": "{a{c}}"},
            )
            assert (status, payload["distance"]) == (200, 1.0)

        run_service(body)

    def test_max_deadline_clamps_client_budget(self):
        async def body(service, base):
            big_a = to_bracket(random_tree(900, rng=5))
            big_b = to_bracket(random_tree(880, rng=6))
            start = time.monotonic()
            status, _, _ = await asyncio.to_thread(
                _post, base, "/distance",
                {"tree_a": big_a, "tree_b": big_b, "deadline": 3600.0},
            )
            assert status == 504
            assert time.monotonic() - start < 2.0

        run_service(body, config=ServiceConfig(port=0, max_deadline=0.1))

    def test_default_deadline_applies_when_unset(self):
        async def body(service, base):
            big_a = to_bracket(random_tree(900, rng=5))
            big_b = to_bracket(random_tree(880, rng=6))
            status, _, payload = await asyncio.to_thread(
                _post, base, "/distance", {"tree_a": big_a, "tree_b": big_b},
            )
            assert (status, payload["timeout"]) == (504, True)

        run_service(body, config=ServiceConfig(port=0, default_deadline=0.1))

    def test_partial_knn_over_http(self):
        async def body(service, base):
            query = to_bracket(random_tree(400, rng=99))
            status, _, payload = await asyncio.to_thread(
                _post, base, "/knn", {"query": query, "k": 3, "deadline": 0.1},
            )
            # Partial results are 200 with the explicit marker, not an error.
            assert status == 200
            assert payload["partial"] is True
            assert service.counters.partial_results == 1

        run_service(body, corpus_sizes=(400,), corpus_count=12)


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after(self):
        async def body(service, base):
            big_a = to_bracket(random_tree(900, rng=5))
            big_b = to_bracket(random_tree(880, rng=6))
            slow = asyncio.create_task(
                asyncio.to_thread(
                    _post, base, "/distance",
                    {"tree_a": big_a, "tree_b": big_b, "deadline": 10.0},
                )
            )
            # Wait until the slow request holds the only slot.
            while service._admitted == 0:
                await asyncio.sleep(0.01)
            shed = 0
            for _ in range(5):
                status, headers, payload = await asyncio.to_thread(
                    _post, base, "/distance", {"tree_a": "{a}", "tree_b": "{b}"},
                )
                if status == 503:
                    shed += 1
                    assert headers.get("Retry-After") == "1"
                    assert "overloaded" in payload["error"]
            assert shed >= 4
            assert service.counters.shed >= 4
            service._drain_token.cancel()
            await slow

        config = ServiceConfig(port=0, max_inflight=1, max_queue=0)
        run_service(body, config=config)

    def test_queue_admits_up_to_bound(self):
        async def body(service, base):
            tasks = [
                asyncio.create_task(
                    asyncio.to_thread(
                        _post, base, "/distance",
                        {"tree_a": "{a{b}{c}}", "tree_b": "{a{c}{d}}"},
                    )
                )
                for _ in range(6)
            ]
            outcomes = [status for status, _, _ in await asyncio.gather(*tasks)]
            # With inflight 1 + queue 8, all six complete (some after waiting).
            assert outcomes == [200] * 6

        config = ServiceConfig(port=0, max_inflight=1, max_queue=8)
        run_service(body, config=config)


class TestDrain:
    def test_drain_cancels_inflight_and_reaps(self):
        async def body(service, base):
            big_a = to_bracket(random_tree(900, rng=5))
            big_b = to_bracket(random_tree(880, rng=6))
            slow = asyncio.create_task(
                asyncio.to_thread(
                    _post, base, "/distance", {"tree_a": big_a, "tree_b": big_b},
                )
            )
            while service._admitted == 0:
                await asyncio.sleep(0.01)
            start = time.monotonic()
            await service.drain()
            assert time.monotonic() - start < 5.0
            status, _, payload = await slow
            assert status == 504
            assert "cancelled" in payload["error"]
            assert reap_stale() == []
            # Draining fails readiness and rejects new compute work at the
            # admission gate (the listener itself is already closed).
            assert service.draining

        config = ServiceConfig(port=0, drain_grace=0.3)
        run_service(body, config=config)

    def test_drain_lets_quick_work_finish(self):
        async def body(service, base):
            quick = asyncio.create_task(
                asyncio.to_thread(
                    _post, base, "/distance",
                    {"tree_a": "{a{b}{c}}", "tree_b": "{a{c}{d}}"},
                )
            )
            await asyncio.sleep(0.05)
            await service.drain()
            status, _, payload = await quick
            assert (status, payload["distance"]) == (200, 2.0)

        config = ServiceConfig(port=0, drain_grace=5.0)
        run_service(body, config=config)
