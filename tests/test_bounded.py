"""Tests for τ-bounded (cutoff-aware) exact verification.

Covers the bounded-computation contract end to end:

* the cutoff property suite — ≥200 random pairs across shape families ×
  {unit, fractional, string-rename} cost models × {workspace on/off,
  serial/multiprocessing}: sub-cutoff results are bit-identical to the
  unbounded kernels, at-or-above-cutoff results are sentinels whose proving
  bound never exceeds the true distance, and joins are identical with and
  without bounded verification;
* τ == TED boundary regressions for every cascade stage and the verifier
  (the ``TED < τ`` contract), under unit and fractional cost models;
* the bounded surfaces: ``api.compute`` / ``api.tree_edit_distance`` /
  ``batch_distances(cutoff=)`` / ``JoinStats.aborted_early`` / the CLI.
"""

import math
import random

import pytest

from repro import BoundedResult, compare_algorithms, compute, tree_edit_distance
from repro.algorithms import (
    GTED,
    RTED,
    LeftFStrategy,
    RightGStrategy,
    TedWorkspace,
    ZhangShashaTED,
    make_algorithm,
)
from repro.algorithms.base import CutoffExceeded, cutoff_band, cutoff_precheck
from repro.algorithms.zhang_shasha import zhang_shasha_distance
from repro.cli import main as cli_main
from repro.costs import (
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from repro.datasets import clustered_corpus, make_shape, random_tree
from repro.io import parse_bracket
from repro.join import batch_distances, batch_self_join

EXACT = ZhangShashaTED()

#: Dyadic fractional model: every cost is an exact float and sums commute
#: bit-exactly, so boundary tests at ``TED == τ`` are deterministic.
FRACTIONAL = WeightedCostModel(0.5, 0.5, 0.5)


def shape_family_pairs(count, seed=20110713):
    """Deterministic tree pairs spanning the shape families (≥ ``count``)."""
    generator = random.Random(seed)
    shapes = ["left-branch", "right-branch", "full-binary", "zigzag", "mixed"]
    pairs = []
    while len(pairs) < count:
        kind = generator.randrange(3)
        if kind == 0:
            f = random_tree(generator.randint(1, 24), rng=generator)
            g = random_tree(generator.randint(1, 24), rng=generator)
        elif kind == 1:
            f = make_shape(generator.choice(shapes), generator.randint(3, 24))
            g = make_shape(generator.choice(shapes), generator.randint(3, 24))
        else:
            base = random_tree(generator.randint(4, 24), rng=generator)
            f = base
            g = random_tree(base.n, rng=generator)
        pairs.append((f, g))
    return pairs


class TestCutoffContract:
    """compute(cutoff=τ): exact below τ, a sound sentinel otherwise."""

    @pytest.mark.parametrize("name", ["rted", "zhang-l", "zhang-r", "klein-h", "demaine-h"])
    def test_exact_below_and_bounded_at_or_above(self, name):
        algo = make_algorithm(name)
        # str hashes are salted per process; derive a stable per-name seed.
        seed = sum(ord(ch) for ch in name)
        for f, g in shape_family_pairs(12, seed=seed):
            exact = algo.compute(f, g).distance
            for cutoff in (exact * 0.5 + 0.25, exact, exact + 0.5, exact * 2 + 1.0):
                result = algo.compute(f, g, cutoff=cutoff)
                if exact < cutoff:
                    assert not result.bounded
                    assert result.distance == exact  # bit-identical
                else:
                    assert result.bounded
                    assert cutoff <= result.lower_bound <= exact

    def test_bounded_result_has_no_distance_attribute(self):
        result = compute("{a}", "{b{c}{d}{e}}", cutoff=1.0)
        assert isinstance(result, BoundedResult)
        assert not hasattr(result, "distance")
        assert result.lower_bound >= result.cutoff

    def test_precheck_skips_computation_entirely(self):
        f = parse_bracket("{a}")
        g = parse_bracket("{a" + "{b}" * 9 + "}")
        result = RTED().compute(f, g, cutoff=2.0)
        assert result.bounded and result.aborted
        assert result.subproblems == 0
        assert result.lower_bound == 9.0

    def test_non_positive_cutoff_is_always_bounded(self):
        tree = parse_bracket("{a{b}}")
        result = compute(tree, tree, cutoff=0.0)
        assert result.bounded and result.lower_bound >= 0.0
        assert tree_edit_distance(tree, tree, cutoff=0.0) == math.inf

    def test_tree_edit_distance_returns_inf_when_bounded(self):
        assert tree_edit_distance("{a{b}{c}}", "{a{b}{c}}", cutoff=5.0) == 0.0
        assert tree_edit_distance("{a{b}{c}}", "{x{y{z}}}", cutoff=1.0) == math.inf

    def test_no_positive_floor_disables_aborts_but_keeps_final_check(self):
        model = StringRenameCostModel()
        assert cutoff_band(model) is None
        f = random_tree(12, rng=5)
        g = random_tree(12, rng=6)
        exact = EXACT.compute(f, g, cost_model=model).distance
        bounded = EXACT.compute(f, g, cost_model=model, cutoff=exact)
        assert bounded.bounded and not bounded.aborted
        assert bounded.lower_bound == exact
        ok = EXACT.compute(f, g, cost_model=model, cutoff=exact + 0.5)
        assert not ok.bounded and ok.distance == exact

    def test_recursive_engine_applies_final_check(self):
        f = random_tree(10, rng=1)
        g = random_tree(10, rng=2)
        spf = make_algorithm("rted").compute(f, g)
        recursive = make_algorithm("rted", engine="recursive").compute(
            f, g, cutoff=spf.distance
        )
        assert recursive.bounded and not recursive.aborted
        assert recursive.lower_bound == spf.distance

    def test_gted_right_g_strategy_bounded(self):
        # A G-side decomposition exercises the swapped kernel orientation.
        algo = GTED(RightGStrategy())
        f = random_tree(14, rng=8)
        g = random_tree(14, rng=9)
        exact = algo.compute(f, g).distance
        assert algo.compute(f, g, cutoff=exact + 1.0).distance == exact
        bounded = algo.compute(f, g, cutoff=exact)
        assert bounded.bounded and bounded.lower_bound <= exact

    def test_scalar_and_vector_kernels_agree_on_abort(self, monkeypatch):
        # Force the scalar fallback by raising the vectorization threshold,
        # then compare against the default (vectorized) kernels.
        from repro.algorithms import spf_numpy

        algo = GTED(LeftFStrategy())
        f = random_tree(40, rng=11)
        g = random_tree(40, rng=12)
        exact = algo.compute(f, g).distance
        for cutoff in (exact / 2, exact, exact + 1.0):
            vector = algo.compute(f, g, cutoff=cutoff)
            monkeypatch.setattr(spf_numpy, "MIN_VECTOR_COLS", 10_000)
            scalar = algo.compute(f, g, cutoff=cutoff)
            monkeypatch.undo()
            assert vector.bounded == scalar.bounded
            if not vector.bounded:
                assert vector.distance == scalar.distance == exact

    def test_non_dyadic_costs_respect_float_accumulation(self):
        # Regression: with all-0.1 costs, ten float additions give
        # 0.9999999999999999 while the bound machinery's single multiply
        # gives 0.1 * 10 == 1.0 — without the round-off slack
        # (base.CUTOFF_SLACK) a cutoff of 1.0 mis-classified this pair as
        # bounded even though its (float) distance is below the cutoff.
        model = WeightedCostModel(0.1, 0.1, 0.1)
        f = parse_bracket("{a" * 11 + "}" * 11)
        g = parse_bracket("{a}")
        for name in ("rted", "zhang-l", "zhang-r", "klein-h", "simple"):
            algo = make_algorithm(name)
            exact = algo.compute(f, g, cost_model=model).distance
            assert exact < 1.0  # the float-accumulated sum rounds below 1.0
            result = algo.compute(f, g, cost_model=model, cutoff=1.0)
            assert not result.bounded
            assert result.distance == exact

    def test_non_dyadic_fuzz_bounded_matches_unbounded(self):
        model = WeightedCostModel(0.1, 0.3, 0.7)
        for f, g in shape_family_pairs(30, seed=4242):
            exact = EXACT.compute(f, g, cost_model=model).distance
            for cutoff in (exact * 0.5 + 0.05, exact, exact + 0.1, exact * 3 + 1.0):
                if cutoff <= 0:
                    continue
                result = EXACT.compute(f, g, cost_model=model, cutoff=cutoff)
                if exact < cutoff:
                    assert not result.bounded and result.distance == exact
                else:
                    assert result.bounded
                    assert cutoff <= result.lower_bound <= max(exact, cutoff)

    def test_banded_zhang_shasha_matches_unbounded_below_cutoff(self):
        for f, g in shape_family_pairs(20, seed=99):
            for model in (UnitCostModel(), FRACTIONAL):
                exact, subproblems, _ = zhang_shasha_distance(f, g, model)
                bounded, banded_cells, _ = zhang_shasha_distance(
                    f, g, model, cutoff=exact + 1.0
                )
                assert bounded == exact
                assert banded_cells <= subproblems
                with pytest.raises(CutoffExceeded) as info:
                    zhang_shasha_distance(f, g, model, cutoff=max(exact, 0.5))
                assert info.value.lower_bound <= max(exact, 0.5)


class TestCutoffPropertySuite:
    """≥200 pairs × cost models × workspace/serial-mp: the acceptance suite."""

    PAIRS = shape_family_pairs(200)
    MODELS = [
        ("unit", None),
        ("fractional", FRACTIONAL),
        ("string-rename", StringRenameCostModel()),
    ]

    @pytest.mark.parametrize("model_name,model", MODELS, ids=[m[0] for m in MODELS])
    @pytest.mark.parametrize("workspace", [True, False], ids=["workspace", "fresh"])
    def test_bounded_batch_matches_unbounded(self, model_name, model, workspace):
        trees = []
        pairs = []
        for f, g in self.PAIRS:
            pairs.append((len(trees), len(trees) + 1))
            trees.extend([f, g])
        unbounded = batch_distances(
            trees, None, pairs, algorithm="zhang-l", cost_model=model,
            workspace=workspace,
        )
        cutoff = 4.0
        bounded = batch_distances(
            trees, None, pairs, algorithm="zhang-l", cost_model=model,
            workspace=workspace, cutoff=cutoff,
        )
        assert len(bounded) == len(unbounded) == len(pairs)
        for (i, j, exact, _), (bi, bj, value, _, aborted) in zip(unbounded, bounded):
            assert (i, j) == (bi, bj)
            if exact < cutoff:
                # Exact below the cutoff, bit-identical to the unbounded run.
                assert value == exact and not aborted
            else:
                # A sound proving bound: τ ≤ bound ≤ true distance.
                assert cutoff <= value <= exact

    def test_multiprocessing_matches_serial(self):
        trees = []
        pairs = []
        for f, g in self.PAIRS[:60]:
            pairs.append((len(trees), len(trees) + 1))
            trees.extend([f, g])
        serial = batch_distances(
            trees, None, pairs, algorithm="zhang-l", cutoff=3.0
        )
        fanned = batch_distances(
            trees, None, pairs, algorithm="zhang-l", cutoff=3.0,
            workers=2, chunk_size=7,
        )
        assert sorted(serial) == sorted(fanned)

    @pytest.mark.parametrize("model_name,model", MODELS, ids=[m[0] for m in MODELS])
    def test_join_identical_with_and_without_bounded_verify(self, model_name, model):
        trees = clustered_corpus(
            num_clusters=6, cluster_size=6, tree_size=12, num_edits=4, rng=31
        )
        for threshold in (2.0, 3.5):
            bounded = batch_self_join(
                trees, threshold, cost_model=model, early_accept=False,
                bounded_verify=True,
            )
            unbounded = batch_self_join(
                trees, threshold, cost_model=model, early_accept=False,
                bounded_verify=False,
            )
            assert bounded.matches == unbounded.matches
            assert unbounded.stats.aborted_early == 0
            assert bounded.stats.exact_computed == unbounded.stats.exact_computed


class TestThresholdBoundary:
    """Pairs sitting exactly at TED == τ must never match (``TED < τ``)."""

    CASES = [
        # (cost model, τ multiplier per operation)
        (None, 1.0),
        (FRACTIONAL, 0.5),
    ]

    @pytest.mark.parametrize("model,unit", CASES, ids=["unit", "fractional"])
    def test_verifier_boundary(self, model, unit):
        # d(f, g) == 2 operations exactly; τ == d must not match.
        f = parse_bracket("{a{b}{c}}")
        g = parse_bracket("{a{b}{x}{y}}")
        assert EXACT.distance(f, g, cost_model=model) == 2 * unit
        for bounded_verify in (True, False):
            at = batch_self_join(
                [f, g], 2 * unit, cost_model=model, use_cascade=False,
                bounded_verify=bounded_verify,
            )
            assert at.match_set == set()
            above = batch_self_join(
                [f, g], 2 * unit + unit / 2, cost_model=model, use_cascade=False,
                bounded_verify=bounded_verify,
            )
            assert above.match_set == {(0, 1)}

    @pytest.mark.parametrize("model,unit", CASES, ids=["unit", "fractional"])
    def test_size_stage_boundary(self, model, unit):
        # Size difference == τ in operation space: the stage must prune, and
        # pruning is correct because d ≥ τ excludes a strict-< match.
        f = parse_bracket("{a}")
        g = parse_bracket("{a{b}{c}}")
        assert EXACT.distance(f, g, cost_model=model) == 2 * unit
        result = batch_self_join([f, g], 2 * unit, cost_model=model)
        assert result.match_set == set()
        assert result.stats.stage_pruned.get("size", 0) == 1

    @pytest.mark.parametrize("model,unit", CASES, ids=["unit", "fractional"])
    def test_label_stage_boundary(self, model, unit):
        # Same sizes (size stage passes); label multisets differ in exactly
        # τ positions and d == τ.
        f = parse_bracket("{a{b}{c}}")
        g = parse_bracket("{a{x}{y}}")
        assert EXACT.distance(f, g, cost_model=model) == 2 * unit
        result = batch_self_join([f, g], 2 * unit, cost_model=model, use_candidate_index=False)
        assert result.match_set == set()
        pruned = result.stats.stage_pruned
        assert pruned.get("label", 0) == 1, pruned

    @pytest.mark.parametrize("model,unit", CASES, ids=["unit", "fractional"])
    def test_upper_bound_accept_boundary(self, model, unit):
        # Identical shapes, k label mismatches: the top-down upper bound
        # equals the exact distance, so at τ == d the accept stage must NOT
        # fire (strict <) and the pair must not match.
        f = parse_bracket("{a{b}{c}{d}}")
        g = parse_bracket("{a{b}{x}{y}}")
        assert EXACT.distance(f, g, cost_model=model) == 2 * unit
        at = batch_self_join([f, g], 2 * unit, cost_model=model)
        assert at.match_set == set()
        assert at.stats.accepted_early == 0
        above = batch_self_join([f, g], 2 * unit + unit / 2, cost_model=model)
        assert above.match_set == {(0, 1)}
        assert above.stats.accepted_early == 1

    @pytest.mark.parametrize("model,unit", CASES, ids=["unit", "fractional"])
    def test_traversal_and_branch_stage_boundaries(self, model, unit):
        # Force the traversal-string / binary-branch stages to the decision
        # by disabling earlier pruning via use_candidate_index=False and
        # observing that a TED == τ pair never matches whichever stage rules.
        f = random_tree(10, rng=77)
        g = random_tree(10, rng=78)
        d = EXACT.distance(f, g, cost_model=model)
        assert d > 0
        result = batch_self_join([f, g], d, cost_model=model, use_candidate_index=False)
        assert result.match_set == set()
        above = batch_self_join(
            [f, g], d + unit / 2, cost_model=model, use_candidate_index=False
        )
        assert above.match_set == {(0, 1)}

    def test_small_pair_sweep_boundary(self):
        # Disjoint-branch pairs with |F| + |G| == 5·τ_ops are correctly
        # prunable (BBD/5 ≥ τ_ops ⇒ d ≥ τ): the index must not materialize
        # them, and must keep pairs one node smaller.
        from repro.join import TreeCorpus, branch_candidate_pairs

        f = parse_bracket("{a{a}{a}{a}{a}}")   # 5 nodes, branches disjoint from g
        g = parse_bracket("{x{x}{x}{x}{x}}")   # 5 nodes
        corpus = TreeCorpus([f, g])
        candidates, skipped = branch_candidate_pairs(corpus, None, 2.0)
        assert candidates == set() and skipped == 1
        candidates, _ = branch_candidate_pairs(corpus, None, 2.5)
        assert candidates == {(0, 1)}


class TestLegacyAlgorithmInstances:
    def test_pre_cutoff_compute_signature_still_joins(self):
        # A pre-built instance whose compute() predates the cutoff keyword
        # must keep working under the bounded-verify default: the batch
        # falls back to unbounded computation for it.
        class LegacyTED(ZhangShashaTED):
            def compute(self, tree_f, tree_g, cost_model=None):
                return super().compute(tree_f, tree_g, cost_model=cost_model)

        trees = clustered_corpus(
            num_clusters=4, cluster_size=5, tree_size=10, num_edits=3, rng=55
        )
        legacy = batch_self_join(trees, 2.5, algorithm=LegacyTED(), early_accept=False)
        modern = batch_self_join(trees, 2.5, algorithm="zhang-l", early_accept=False)
        assert legacy.matches == modern.matches
        assert legacy.stats.aborted_early == 0

    def test_legacy_instance_in_bounded_batch_distances(self):
        class LegacyTED(ZhangShashaTED):
            def compute(self, tree_f, tree_g, cost_model=None):
                return super().compute(tree_f, tree_g, cost_model=cost_model)

        f = random_tree(8, rng=1)
        g = random_tree(8, rng=2)
        rows = batch_distances([f, g], None, [(0, 1)], algorithm=LegacyTED(), cutoff=1.0)
        (i, j, value, _, aborted) = rows[0]
        assert (i, j) == (0, 1) and not aborted
        assert value == EXACT.distance(f, g)


class TestJoinAbortStats:
    def test_aborted_early_counts_cut_short_verifications(self):
        trees = clustered_corpus(
            num_clusters=8, cluster_size=8, tree_size=12, num_edits=4, rng=13
        )
        result = batch_self_join(trees, 3.0, early_accept=False)
        stats = result.stats
        assert stats.aborted_early > 0
        assert stats.aborted_early <= stats.exact_computed - stats.exact_matched
        assert stats.as_dict()["aborted_early"] == stats.aborted_early

    def test_workers_report_aborts_too(self):
        trees = clustered_corpus(
            num_clusters=6, cluster_size=6, tree_size=12, num_edits=4, rng=14
        )
        serial = batch_self_join(trees, 3.0, early_accept=False)
        fanned = batch_self_join(trees, 3.0, early_accept=False, workers=2)
        assert fanned.matches == serial.matches
        assert fanned.stats.aborted_early == serial.stats.aborted_early


class TestCompareAlgorithmsEngine:
    def test_engine_is_threaded_and_reported(self):
        f = parse_bracket("{a{b{c}}{d}}")
        g = parse_bracket("{a{b{x}}{d}{e}}")
        results = compare_algorithms(f, g, engine="recursive")
        assert {r.extra["engine"] for r in results.values()} == {"recursive"}
        distances = {r.distance for r in results.values()}
        assert len(distances) == 1

    def test_default_engine_reported_in_extra(self):
        results = compare_algorithms("{a{b}}", "{a{c}}")
        for name, result in results.items():
            assert "engine" in result.extra
        # GTED/RTED variants resolve auto to the spf executor and say so.
        assert results["rted"].extra["engine"] == "spf"
        # Dedicated single-implementation algorithms report the selector.
        assert results["zhang-l"].extra["engine"] == "auto"

    def test_unknown_engine_raises(self):
        from repro.exceptions import UnknownEngineError

        with pytest.raises(UnknownEngineError):
            compare_algorithms("{a}", "{a}", engine="nope")


class TestBoundedCLI:
    def test_distance_cutoff_bounded(self, capsys):
        code = cli_main(["distance", "{a{b}{c}}", "{x{y{z}}}", "--cutoff", "1.5"])
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert out.startswith(">=")

    def test_distance_cutoff_exact(self, capsys):
        code = cli_main(["distance", "{a{b}{c}}", "{a{b}{x}}", "--cutoff", "5"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "1.0"

    def test_distance_cutoff_verbose(self, capsys):
        code = cli_main(
            ["distance", "{a{b}{c}}", "{x{y{z}}}", "--cutoff", "1.5", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert ">= 1.5" in out and "aborted" in out

    def test_join_stats_report_aborts(self, capsys, tmp_path):
        collection = tmp_path / "trees.txt"
        collection.write_text("{a{b}{c}}\n{a{b}{x}{y}{z}}\n{q{r}{s}}\n")
        code = cli_main(
            ["join", f"@{collection}", "--threshold", "2", "--stats"]
        )
        assert code == 0
        # Stats go to stderr (stdout carries only the match lines).
        assert "# aborted early:" in capsys.readouterr().err

    def test_join_no_bounded_verify_flag(self, capsys, tmp_path):
        collection = tmp_path / "trees.txt"
        collection.write_text("{a{b}{c}}\n{a{b}{x}}\n")
        code = cli_main(
            [
                "join", f"@{collection}", "--threshold", "2",
                "--no-bounded-verify", "--stats",
            ]
        )
        assert code == 0
        assert "# aborted early:    0" in capsys.readouterr().err


class TestWorkspaceBounded:
    def test_small_pair_fast_path_aborts(self):
        workspace = TedWorkspace()
        algo = make_algorithm("zhang-l", workspace=workspace)
        f = random_tree(12, rng=21)
        g = random_tree(12, rng=22)
        exact = EXACT.distance(f, g)
        assert exact > 1.0
        result = algo.compute(f, g, cutoff=1.0)
        assert result.bounded and result.aborted
        assert result.extra.get("workspace") == "small-pair-unit"
        assert workspace.stats.small_pair_runs >= 1

    def test_small_pair_bounded_is_bit_identical_below_cutoff(self):
        workspace = TedWorkspace()
        algo = make_algorithm("zhang-l", workspace=workspace)
        for f, g in shape_family_pairs(40, seed=17):
            exact = algo.compute(f, g).distance
            bounded = algo.compute(f, g, cutoff=exact + 1.0)
            assert not bounded.bounded
            assert bounded.distance == exact

    def test_precheck_raise_carries_size_bound(self):
        workspace = TedWorkspace()
        f = random_tree(4, rng=1)
        g = random_tree(16, rng=2)
        with pytest.raises(CutoffExceeded) as info:
            workspace.compute_small(f, g, cutoff=3.0)
        assert info.value.lower_bound == 12.0

    def test_cutoff_precheck_helper(self):
        f = random_tree(3, rng=1)
        g = random_tree(9, rng=2)
        assert cutoff_precheck(f, g, UnitCostModel(), 6.0) == 6.0
        assert cutoff_precheck(f, g, UnitCostModel(), 6.5) is None
        assert cutoff_precheck(f, g, StringRenameCostModel(), 6.0) is None
