"""Unit tests for the cost models and their effect on distances."""

import pytest

from repro.costs import (
    CallableCostModel,
    CostModel,
    PerLabelCostModel,
    StringRenameCostModel,
    UnitCostModel,
    WeightedCostModel,
)
from repro.exceptions import CostModelError
from repro.trees import tree_from_nested
from repro.algorithms import RTED, ZhangShashaTED, SimpleTED


class TestUnitCostModel:
    def test_costs(self):
        model = UnitCostModel()
        assert model.delete("a") == 1.0
        assert model.insert("b") == 1.0
        assert model.rename("a", "a") == 0.0
        assert model.rename("a", "b") == 1.0

    def test_validate_passes(self):
        UnitCostModel().validate()


class TestWeightedCostModel:
    def test_costs(self):
        model = WeightedCostModel(delete_cost=2.0, insert_cost=3.0, rename_cost=0.5)
        assert model.delete("a") == 2.0
        assert model.insert("a") == 3.0
        assert model.rename("a", "b") == 0.5
        assert model.rename("a", "a") == 0.0

    def test_negative_costs_rejected(self):
        with pytest.raises(CostModelError):
            WeightedCostModel(delete_cost=-1)


class TestPerLabelCostModel:
    def test_lookup_and_defaults(self):
        model = PerLabelCostModel(
            delete_costs={"wrapper": 0.1}, insert_costs={"wrapper": 0.2}, default_delete=1.0
        )
        assert model.delete("wrapper") == 0.1
        assert model.insert("wrapper") == 0.2
        assert model.delete("content") == 1.0

    def test_negative_costs_rejected(self):
        with pytest.raises(CostModelError):
            PerLabelCostModel(delete_costs={"x": -0.5})


class TestStringRenameCostModel:
    def test_identical_labels_are_free(self):
        assert StringRenameCostModel().rename("author", "author") == 0.0

    def test_similar_labels_cheaper_than_different(self):
        model = StringRenameCostModel()
        assert model.rename("author", "authors") < model.rename("author", "price")

    def test_rename_cost_is_at_most_one(self):
        model = StringRenameCostModel()
        assert 0 < model.rename("abc", "xyz") <= 1.0


class TestCallableCostModel:
    def test_delegates_to_functions(self):
        model = CallableCostModel(
            delete=lambda label: 5.0,
            insert=lambda label: 7.0,
            rename=lambda a, b: 0.0 if a == b else 2.0,
        )
        assert model.delete("a") == 5.0
        assert model.insert("a") == 7.0
        assert model.rename("a", "b") == 2.0


class TestValidation:
    def test_validate_rejects_negative_delete(self):
        class Broken(CostModel):
            def delete(self, label):
                return -1.0

            def insert(self, label):
                return 1.0

            def rename(self, a, b):
                return 0.0

        with pytest.raises(CostModelError):
            Broken().validate()

    def test_validate_rejects_nonzero_identity_rename(self):
        class Broken(CostModel):
            def delete(self, label):
                return 1.0

            def insert(self, label):
                return 1.0

            def rename(self, a, b):
                return 0.5

        with pytest.raises(CostModelError):
            Broken().validate()


class TestCostModelsInDistances:
    @pytest.fixture
    def pair(self):
        t1 = tree_from_nested(("a", ["b", "c"]))
        t2 = tree_from_nested(("a", ["b", "d"]))
        return t1, t2

    def test_unit_cost_rename(self, pair):
        t1, t2 = pair
        assert ZhangShashaTED().distance(t1, t2) == 1.0

    def test_weighted_rename_cost_scales_distance(self, pair):
        t1, t2 = pair
        model = WeightedCostModel(rename_cost=0.25)
        assert ZhangShashaTED().distance(t1, t2, cost_model=model) == 0.25

    def test_expensive_rename_forces_delete_insert(self, pair):
        t1, t2 = pair
        # Renaming costs more than delete + insert, so the optimum switches.
        model = WeightedCostModel(delete_cost=1.0, insert_cost=1.0, rename_cost=5.0)
        assert ZhangShashaTED().distance(t1, t2, cost_model=model) == 2.0

    def test_all_algorithms_respect_custom_costs(self, pair):
        t1, t2 = pair
        model = WeightedCostModel(delete_cost=2.0, insert_cost=3.0, rename_cost=1.5)
        reference = SimpleTED().distance(t1, t2, cost_model=model)
        assert RTED().distance(t1, t2, cost_model=model) == pytest.approx(reference)
        assert ZhangShashaTED().distance(t1, t2, cost_model=model) == pytest.approx(reference)

    def test_asymmetric_costs_break_symmetry(self):
        t1 = tree_from_nested(("a", ["b"]))
        t2 = tree_from_nested("a")
        model = WeightedCostModel(delete_cost=3.0, insert_cost=1.0)
        assert RTED().distance(t1, t2, cost_model=model) == 3.0
        assert RTED().distance(t2, t1, cost_model=model) == 1.0


class TestIsMetric:
    """is_metric() — the soundness gate for triangle-inequality indexing.

    A wrong True silently drops query results, so every case that cannot be
    proven metric must answer False (conservatism only costs speed)."""

    def test_unit_model_is_metric(self):
        assert UnitCostModel().is_metric()

    def test_base_class_defaults_to_false(self):
        assert not CostModel().is_metric()
        assert not CallableCostModel(
            lambda l: 1.0, lambda l: 1.0, lambda a, b: 0.0 if a == b else 1.0
        ).is_metric()

    def test_weighted_symmetric_models(self):
        assert WeightedCostModel(0.5, 0.5, 0.5).is_metric()
        assert WeightedCostModel(1.0, 1.0, 2.0).is_metric()
        # rename > delete + insert breaks the triangle via ε.
        assert not WeightedCostModel(1.0, 1.0, 2.5).is_metric()
        # delete != insert breaks symmetry.
        assert not WeightedCostModel(1.0, 2.0, 1.5).is_metric()

    def test_per_label_models(self):
        assert PerLabelCostModel().is_metric()
        # Asymmetric tables break symmetry.
        assert not PerLabelCostModel(delete_costs={"a": 2.0}).is_metric()
        # Symmetric tables within the triangle bounds stay metric.
        assert PerLabelCostModel(
            delete_costs={"a": 1.5}, insert_costs={"a": 1.5}, rename_cost=1.0
        ).is_metric()
        # A label far cheaper than the rename route breaks delete-via-rename.
        assert not PerLabelCostModel(
            delete_costs={"a": 0.1}, insert_costs={"a": 0.1}, rename_cost=1.0
        ).is_metric()

    def test_string_rename_model_is_not_metric(self):
        assert not StringRenameCostModel().is_metric()
