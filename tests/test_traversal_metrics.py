"""Unit tests for repro.trees.traversal and repro.trees.metrics."""

import pytest

from repro.trees import tree_from_nested, tree_stats, collection_stats, shape_signature, label_histogram
from repro.trees.traversal import (
    ancestors,
    bfs_order,
    euler_tour,
    leaves,
    levels,
    lowest_common_ancestor,
    root_path_labels,
)
from repro.datasets import left_branch_tree, full_binary_tree


@pytest.fixture
def tree():
    return tree_from_nested(("a", ["b", ("c", ["d", "e"]), "f"]))


class TestTraversal:
    def test_bfs_order_starts_at_root(self, tree):
        order = bfs_order(tree)
        assert order[0] == tree.root
        assert sorted(order) == list(range(tree.n))

    def test_leaves(self, tree):
        assert leaves(tree) == [0, 1, 2, 4]

    def test_ancestors(self, tree):
        assert ancestors(tree, 1) == [3, tree.root]
        assert ancestors(tree, tree.root) == []

    def test_root_path_labels(self, tree):
        assert root_path_labels(tree, 1) == ["a", "c", "d"]

    def test_levels(self, tree):
        grouped = levels(tree)
        assert grouped[0] == [tree.root]
        assert sorted(grouped[1]) == [0, 3, 4]
        assert sorted(grouped[2]) == [1, 2]

    def test_euler_tour_visits_each_node_twice(self, tree):
        tour = euler_tour(tree)
        assert len(tour) == 2 * tree.n
        assert tour[0] == ("enter", tree.root)
        assert tour[-1] == ("leave", tree.root)

    def test_lowest_common_ancestor(self, tree):
        assert lowest_common_ancestor(tree, 1, 2) == 3
        assert lowest_common_ancestor(tree, 1, 4) == tree.root
        assert lowest_common_ancestor(tree, 3, 1) == 3


class TestMetrics:
    def test_tree_stats(self, tree):
        stats = tree_stats(tree)
        assert stats.size == 6
        assert stats.depth == 2
        assert stats.max_fanout == 3
        assert stats.num_leaves == 4

    def test_left_heaviness_of_left_branch(self):
        stats = tree_stats(left_branch_tree(31))
        assert stats.left_heaviness == 1.0

    def test_collection_stats(self):
        stats = collection_stats([full_binary_tree(15), full_binary_tree(31)])
        assert stats.num_trees == 2
        assert stats.max_size == 31
        assert stats.avg_size == 23

    def test_collection_stats_empty(self):
        assert collection_stats([]).num_trees == 0

    def test_shape_signature_ignores_labels(self):
        a = tree_from_nested(("a", ["b", "c"]))
        b = tree_from_nested(("x", ["y", "z"]))
        c = tree_from_nested(("a", [("b", ["c"])]))
        assert shape_signature(a) == shape_signature(b)
        assert shape_signature(a) != shape_signature(c)

    def test_label_histogram(self, tree):
        histogram = label_histogram(tree)
        assert histogram["a"] == 1
        assert sum(histogram.values()) == tree.n
