"""Property tests for the struct-of-arrays batch kernel, the optional
compiled backend, and the zero-copy shared corpus packs.

The contract under test is *bit-identity*: the batch kernel
(:mod:`repro.algorithms.batch_kernel`), the compiled backend
(:mod:`repro.algorithms.native`) and the shared-memory multiprocessing
fan-out (:mod:`repro.join.shared`) must reproduce the scalar small-pair
kernel — values, subproblem counts and bounded-abort decisions — exactly,
with and without a cutoff, over ragged batches of 2–64-node trees.
"""

import os
import subprocess
import sys

import pytest

np = pytest.importorskip("numpy")

from repro.algorithms import make_algorithm
from repro.algorithms import native as native_mod
from repro.algorithms.base import CutoffExceeded
from repro.algorithms.batch_kernel import (
    build_corpus_pack,
    kernel_available,
    kernel_chunk_entries,
    run_batch,
)
from repro.algorithms.native import (
    native_available,
    native_batch,
    native_provider,
    native_small_pair,
)
from repro.algorithms.workspace import SMALL_PAIR_CUTOFF, TedWorkspace
from repro.algorithms.zhang_shasha import zhang_shasha_distance
from repro.costs import UnitCostModel, WeightedCostModel
from repro.datasets import perturb_tree, random_tree
from repro.exceptions import UnknownEngineError
from repro.join import (
    JoinStats,
    attach_pack,
    batch_distances,
    batch_similarity_join,
    export_pack,
    shared_available,
)

CUTOFFS = [None, 2.0, 3.0, 4.5, 8.0]


def ragged_corpus():
    """Mixed 2–64-node trees plus oversized stragglers (> small-pair cutoff)."""
    trees = []
    for size in (2, 3, 5, 8, 12, 16, 24, 33, 48, 64):
        base = random_tree(size, rng=300 + size)
        trees.append(base)
        trees.append(perturb_tree(base, 1 + size % 4, rng=600 + size))
    trees.append(random_tree(80, rng=901))
    trees.append(random_tree(70, rng=902))
    return trees


def all_pairs(trees):
    return [(i, j) for i in range(len(trees)) for j in range(i + 1, len(trees))]


def scalar_entry(workspace, trees, i, j, cutoff):
    """The scalar reference tuple for one pair (the per-pair fast path)."""
    try:
        out = workspace.compute_small(trees[i], trees[j], cutoff=cutoff)
    except CutoffExceeded as exceeded:
        return (i, j, exceeded.lower_bound, exceeded.subproblems, True)
    assert out is not None, "reference pair unexpectedly ineligible"
    value, cells = out
    if cutoff is None:
        return (i, j, value, cells)
    return (i, j, value, cells, False)


@pytest.fixture(scope="module")
def corpus():
    return ragged_corpus()


@pytest.fixture(scope="module")
def pairs(corpus):
    pair_list = all_pairs(corpus)
    assert len(pair_list) >= 200  # the suite's coverage floor
    return pair_list


class TestBatchKernelIdentity:
    """run_batch / kernel_chunk_entries vs the scalar kernel."""

    @pytest.mark.parametrize("cutoff", CUTOFFS)
    def test_chunk_entries_bit_identical_to_scalar(self, corpus, pairs, cutoff):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)

        def fallback(i, j):
            # Oversized pairs: same shape as the batch entries, via the
            # unbounded reference oracle (cells reported as 0 on purpose —
            # the test only reaches it for ineligible pairs).
            value, cells, _ = zhang_shasha_distance(
                corpus[i], corpus[j], UnitCostModel()
            )
            if cutoff is None:
                return (i, j, value, cells)
            return (i, j, value, cells, value >= cutoff)

        entries = kernel_chunk_entries(
            pack, pack, pairs, cutoff, fallback, workspace=workspace
        )
        reference = TedWorkspace()
        for entry, (i, j) in zip(entries, pairs):
            if corpus[i].n > reference.small_pair_cutoff or (
                corpus[j].n > reference.small_pair_cutoff
            ):
                continue  # fallback path, covered by its own tests
            expected = scalar_entry(reference, corpus, i, j, cutoff)
            assert entry == expected, (i, j, cutoff)

    def test_unbounded_values_match_zhang_shasha(self, corpus, pairs):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        lanes = [
            (i, j) for i, j in pairs if pack.eligible[i] and pack.eligible[j]
        ]
        fi = [i for i, _ in lanes]
        gi = [j for _, j in lanes]
        values, cells, aborted = run_batch(pack, pack, fi, gi)
        assert not aborted.any()
        for p, (i, j) in enumerate(lanes):
            distance, subproblems, _ = zhang_shasha_distance(
                corpus[i], corpus[j], UnitCostModel()
            )
            assert values[p] == distance
            assert cells[p] == subproblems

    def test_bounded_aborts_match_scalar_decisions(self, corpus, pairs):
        cutoff = 3.0
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        lanes = [
            (i, j)
            for i, j in pairs
            if pack.eligible[i]
            and pack.eligible[j]
            and abs(corpus[i].n - corpus[j].n) < cutoff  # post-precheck lanes
        ]
        values, cells, aborted = run_batch(
            pack, pack, [i for i, _ in lanes], [j for _, j in lanes], cutoff=cutoff
        )
        reference = TedWorkspace()
        seen_abort = seen_exact = False
        for p, (i, j) in enumerate(lanes):
            try:
                value, sub = reference.compute_small(corpus[i], corpus[j], cutoff=cutoff)
                assert not aborted[p]
                assert values[p] == value and cells[p] == sub
                seen_exact = True
            except CutoffExceeded as exceeded:
                assert aborted[p]
                assert values[p] == exceeded.lower_bound
                assert cells[p] == exceeded.subproblems
                seen_abort = True
        assert seen_abort and seen_exact  # both branches exercised

    def test_empty_batch_and_single_pair(self, corpus):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        values, cells, aborted = run_batch(pack, pack, [], [])
        assert values.size == 0 and cells.size == 0 and aborted.size == 0
        assert kernel_chunk_entries(pack, pack, [], None, None) == []
        (entry,) = kernel_chunk_entries(
            pack, pack, [(0, 1)], None, lambda i, j: pytest.fail("no fallback")
        )
        expected = scalar_entry(TedWorkspace(), corpus, 0, 1, None)
        assert entry == expected

    def test_non_unit_cost_model_stays_on_fallback(self, corpus):
        workspace = TedWorkspace(WeightedCostModel(1.0, 1.0, 2.0))
        assert workspace.compute_small(corpus[0], corpus[1]) is None


class TestNativeBackend:
    """The compiled providers vs the pure-Python kernels."""

    @pytest.mark.skipif(not native_available(), reason="no compiled provider")
    @pytest.mark.parametrize("cutoff", CUTOFFS)
    def test_native_batch_bit_identical_to_numpy(self, corpus, pairs, cutoff):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        lanes = [
            (i, j)
            for i, j in pairs
            if pack.eligible[i]
            and pack.eligible[j]
            and (cutoff is None or abs(corpus[i].n - corpus[j].n) < cutoff)
        ]
        fi = [i for i, _ in lanes]
        gi = [j for _, j in lanes]
        out = native_batch(pack, pack, fi, gi, cutoff=cutoff)
        assert out is not None
        n_values, n_cells, n_aborted = out
        values, cells, aborted = run_batch(pack, pack, fi, gi, cutoff=cutoff)
        assert (n_values == values).all()
        assert (n_cells == cells).all()
        assert (n_aborted == aborted).all()

    @pytest.mark.skipif(not native_available(), reason="no compiled provider")
    @pytest.mark.parametrize("cutoff", CUTOFFS)
    def test_compute_small_native_matches_compute_small(self, corpus, pairs, cutoff):
        native_ws = TedWorkspace()
        python_ws = TedWorkspace()
        for i, j in pairs[:120]:
            if max(corpus[i].n, corpus[j].n) > native_ws.small_pair_cutoff:
                continue

            def run(workspace, method):
                try:
                    return method(corpus[i], corpus[j], cutoff=cutoff)
                except CutoffExceeded as exceeded:
                    return ("abort", exceeded.lower_bound, exceeded.subproblems)

            native = run(native_ws, native_ws.compute_small_native)
            python = run(python_ws, python_ws.compute_small)
            assert native == python, (i, j, cutoff)
        assert native_ws.stats.native_runs > 0

    @pytest.mark.skipif(not native_available(), reason="no compiled provider")
    def test_native_small_pair_direct(self, corpus):
        workspace = TedWorkspace()
        f, g = corpus[4], corpus[5]
        arrays_f = workspace._small_arrays(f)
        arrays_g = workspace._small_arrays(g)
        value, cells, aborted = native_small_pair(arrays_f, f.n, arrays_g, g.n, None)
        expected_value, expected_cells = TedWorkspace().compute_small(f, g)
        assert (value, cells, aborted) == (expected_value, expected_cells, False)

    def test_numba_provider_compiles_the_python_sources(self):
        numba = pytest.importorskip("numba")
        native_mod._reset_provider_cache()
        try:
            assert native_provider() == "numba"
        finally:
            native_mod._reset_provider_cache()

    def test_python_source_twin_is_directly_callable(self, corpus):
        # The numba sources are plain Python functions: interpretable without
        # numba, so the port itself is testable in every environment.
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        fi = np.array([0, 2], dtype=np.int64)
        gi = np.array([1, 3], dtype=np.int64)
        lanes = fi.size
        scratch_n = int(pack.sizes[fi].max())
        scratch_m = int(pack.sizes[gi].max())
        D = np.zeros(scratch_n * scratch_m, dtype=np.float64)
        fd = np.zeros((scratch_n + 1, scratch_m + 1), dtype=np.float64)
        out_val = np.zeros(lanes, dtype=np.float64)
        out_cells = np.zeros(lanes, dtype=np.int64)
        out_ab = np.zeros(lanes, dtype=np.uint8)
        native_mod._batch_kernel_source(
            pack.lml_flat, pack.codes_flat, pack.kroots, pack.node_off,
            pack.kr_off, pack.kr_count, pack.sizes,
            pack.lml_flat, pack.codes_flat, pack.kroots, pack.node_off,
            pack.kr_off, pack.kr_count, pack.sizes,
            fi, gi, False, 0.0, D, fd, out_val, out_cells, out_ab,
        )
        reference = TedWorkspace()
        for p in range(lanes):
            value, cells = reference.compute_small(corpus[int(fi[p])], corpus[int(gi[p])])
            assert out_val[p] == value and out_cells[p] == cells
            assert out_ab[p] == 0

    def test_kill_switch_disables_native(self, monkeypatch):
        monkeypatch.setenv("RTED_NO_NATIVE", "1")
        native_mod._reset_provider_cache()
        try:
            assert not native_available()
            assert native_provider() is None
            workspace = TedWorkspace()
            f, g = random_tree(10, rng=7), random_tree(11, rng=8)
            assert workspace.compute_small_native(f, g) is None
        finally:
            monkeypatch.delenv("RTED_NO_NATIVE")
            native_mod._reset_provider_cache()

    def test_engine_native_matches_spf_with_workspace(self, corpus):
        # The fair identity: engine="native" implies the workspace layer, so
        # it is compared against spf *with* a workspace (same amortization).
        def signature(result):
            if result.bounded:
                return ("B", result.lower_bound, result.aborted, result.subproblems)
            return ("D", result.distance, result.subproblems)

        for name in ("rted", "zhang-l", "klein-h"):
            native_algo = make_algorithm(name, engine="native")
            spf_algo = make_algorithm(name, engine="spf", workspace=TedWorkspace())
            for i, j in [(0, 1), (10, 11), (18, 19), (20, 21), (1, 20)]:
                for cutoff in (None, 3.0):
                    kwargs = {} if cutoff is None else {"cutoff": cutoff}
                    got = native_algo.compute(corpus[i], corpus[j], **kwargs)
                    expected = spf_algo.compute(corpus[i], corpus[j], **kwargs)
                    assert signature(got) == signature(expected), (name, i, j, cutoff)

    def test_engine_native_error_semantics_preserved(self):
        with pytest.raises(UnknownEngineError):
            make_algorithm("simple", engine="native")
        with pytest.raises(UnknownEngineError):
            make_algorithm("rted", engine="compiled")


class TestSharedPack:
    """export_pack / attach_pack round-trip and lifecycle."""

    @pytest.mark.skipif(not shared_available(), reason="no shared memory")
    def test_round_trip_is_bit_identical(self, corpus):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        exported = export_pack(pack)
        assert exported is not None
        handle, descriptor = exported
        try:
            attached = attach_pack(descriptor)
            assert attached is not None
            for field in pack.ARRAY_FIELDS:
                original = getattr(pack, field)
                view = getattr(attached, field)
                assert view.dtype == original.dtype and view.shape == original.shape
                assert (view == original).all()
                assert not view.flags.owndata  # zero-copy view over the block
            assert attached.n_trees == pack.n_trees
            assert attached.pad_w == pack.pad_w
            assert attached.small_pair_cutoff == pack.small_pair_cutoff
            # The attached pack is a working kernel input.
            values, cells, _ = run_batch(attached, attached, [0], [1])
            expected = TedWorkspace().compute_small(corpus[0], corpus[1])
            assert (values[0], cells[0]) == expected
        finally:
            handle.close()

    @pytest.mark.skipif(not shared_available(), reason="no shared memory")
    def test_handle_close_is_idempotent(self, corpus):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        handle, descriptor = export_pack(pack)
        handle.close()
        handle.close()  # second close must be a no-op
        assert attach_pack(descriptor) is None  # unlinked block: graceful miss


class TestBatchDistancesIdentity:
    """Serial vs multiprocessing vs shared-memory batch verification."""

    @pytest.mark.parametrize("cutoff", [None, 4.0])
    def test_serial_mp_and_kernel_modes_agree(self, corpus, pairs, cutoff):
        def normalize(entries):
            return sorted(tuple(entry) for entry in entries)

        serial = batch_distances(
            corpus, None, pairs, algorithm="rted", cutoff=cutoff
        )
        no_kernel = batch_distances(
            corpus, None, pairs, algorithm="rted", cutoff=cutoff, batch_kernel=False
        )
        mp_shared = batch_distances(
            corpus, None, pairs, algorithm="rted", cutoff=cutoff,
            workers=3, chunk_size=32,
        )
        assert normalize(serial) == normalize(no_kernel) == normalize(mp_shared)

    @pytest.mark.skipif(not native_available(), reason="no compiled provider")
    def test_engine_native_batch_agrees(self, corpus, pairs):
        baseline = batch_distances(corpus, None, pairs, algorithm="rted")
        native = batch_distances(corpus, None, pairs, algorithm="rted", engine="native")
        assert sorted(baseline) == sorted(native)

    def test_cross_corpus_kernel_agrees(self, corpus):
        other = [random_tree(size, rng=40 + size) for size in (4, 9, 13, 21, 35)]
        pair_list = [
            (i, j) for i in range(len(corpus)) for j in range(len(other))
        ]
        with_kernel = batch_distances(corpus, other, pair_list, algorithm="rted")
        without = batch_distances(
            corpus, other, pair_list, algorithm="rted", batch_kernel=False
        )
        assert with_kernel == without

    def test_empty_pair_list(self, corpus):
        assert batch_distances(corpus, None, [], algorithm="rted") == []

    def test_join_matches_across_all_execution_modes(self, corpus):
        threshold = 4.0
        baseline = batch_similarity_join(corpus, threshold)
        variants = [
            batch_similarity_join(corpus, threshold, batch_kernel=False),
            batch_similarity_join(corpus, threshold, workers=3, chunk_size=16),
            batch_similarity_join(corpus, threshold, workspace=False),
        ]
        if native_available():
            variants.append(batch_similarity_join(corpus, threshold, engine="native"))
        for variant in variants:
            assert variant.match_set == baseline.match_set
            assert sorted(variant.matches) == sorted(baseline.matches)


class TestConfiguration:
    """Env knobs and the stats surface."""

    def test_small_pair_cutoff_env_override(self):
        code = (
            "from repro.algorithms.workspace import SMALL_PAIR_CUTOFF, TedWorkspace; "
            "print(SMALL_PAIR_CUTOFF, TedWorkspace().small_pair_cutoff)"
        )
        env = dict(os.environ, RTED_SMALL_PAIR_CUTOFF="24")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True,
            check=True,
        )
        assert out.stdout.split() == ["24", "24"]
        assert SMALL_PAIR_CUTOFF == 64  # this process keeps the default

    def test_small_pair_cutoff_env_invalid_falls_back(self):
        code = "from repro.algorithms.workspace import SMALL_PAIR_CUTOFF; print(SMALL_PAIR_CUTOFF)"
        env = dict(os.environ, RTED_SMALL_PAIR_CUTOFF="bogus")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")])
        )
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True,
            check=True,
        )
        assert out.stdout.split() == ["64"]

    def test_verify_workers_reported(self, corpus):
        serial = batch_similarity_join(corpus, 4.0, workers=4)  # one-chunk survivors
        assert serial.stats.verify_workers == 1
        assert serial.stats.as_dict()["verify_workers"] == 1
        fanned = batch_similarity_join(corpus, 4.0, workers=3, chunk_size=4)
        assert fanned.stats.verify_workers >= 1
        assert JoinStats().verify_workers == 1

    def test_batch_lane_stats_counted(self, corpus, pairs):
        workspace = TedWorkspace()
        pack = build_corpus_pack(corpus, workspace.interner, workspace.small_pair_cutoff)
        lanes = [(i, j) for i, j in pairs if pack.eligible[i] and pack.eligible[j]]
        kernel_chunk_entries(
            pack, pack, lanes, None, None, workspace=workspace
        )
        assert workspace.stats.batch_lanes == len(lanes)
        assert workspace.stats.small_pair_runs == len(lanes)
