"""Unit tests for the Newick parser and serializer."""

import pytest

from repro.exceptions import ParseError
from repro.io import parse_newick, to_newick


class TestNewickParsing:
    def test_leaf_only(self):
        tree = parse_newick("A;")
        assert tree.n == 1 and tree.label(tree.root) == "A"

    def test_simple_phylogeny(self):
        tree = parse_newick("((A,B)ab,C)root;")
        assert tree.n == 5
        assert tree.label(tree.root) == "root"
        assert tree.labels_preorder() == ["root", "ab", "A", "B", "C"]

    def test_unnamed_internal_nodes_get_empty_label(self):
        tree = parse_newick("(A,B);")
        assert tree.label(tree.root) == ""
        assert tree.n == 3

    def test_branch_lengths_dropped_by_default(self):
        tree = parse_newick("(A:0.1,B:0.25)r:1.0;")
        assert tree.labels_preorder() == ["r", "A", "B"]

    def test_branch_lengths_kept_when_requested(self):
        tree = parse_newick("(A:0.1,B)r;", keep_lengths=True)
        assert "A:0.1" in tree.labels_preorder()

    def test_quoted_labels(self):
        tree = parse_newick("('Homo sapiens',B)r;")
        assert "Homo sapiens" in tree.labels_preorder()

    def test_missing_semicolon_is_tolerated(self):
        assert parse_newick("(A,B)r").n == 3

    @pytest.mark.parametrize("text", ["", "(A,B", "(A,B))x;", "(A,B}x;"])
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse_newick(text)


class TestNewickSerialization:
    def test_round_trip(self):
        text = "((A,B)ab,C)root;"
        tree = parse_newick(text)
        assert to_newick(tree) == text

    def test_round_trip_structural(self):
        tree = parse_newick("((HUMAN,MOUSE)clade,(RAT,CHICK)clade)family;")
        rebuilt = parse_newick(to_newick(tree))
        assert rebuilt.structurally_equal(tree)

    def test_labels_with_spaces_are_quoted(self):
        tree = parse_newick("('Homo sapiens',B)r;")
        assert "'Homo sapiens'" in to_newick(tree)

    def test_without_semicolon(self):
        tree = parse_newick("(A,B)r;")
        assert not to_newick(tree, with_semicolon=False).endswith(";")
