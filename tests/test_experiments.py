"""Smoke and correctness tests for the experiment harnesses (small workloads)."""

import pytest

from repro.experiments import (
    format_fig8,
    format_fig9,
    format_fig10,
    format_table1,
    format_table2,
    run_fig8,
    run_fig9,
    run_fig10,
    run_strategy_computation_ablation,
    run_strategy_space_ablation,
    run_table1,
    run_table2,
)
from repro.experiments.ablation_strategy import format_ablations
from repro.experiments.runner import format_count, format_seconds, format_table, geometric_sizes, linear_sizes


class TestRunnerHelpers:
    def test_format_count(self):
        assert format_count(12) == "12"
        assert format_count(2_500) == "2.5K"
        assert format_count(3_200_000) == "3.20M"
        assert format_count(4_000_000_000) == "4.00G"

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("µs")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5).endswith("s")

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_size_helpers(self):
        assert linear_sizes(10, 50, 5) == [10, 20, 30, 40, 50]
        geo = geometric_sizes(10, 1000, 3)
        assert geo[0] == 10 and geo[-1] == 1000
        assert linear_sizes(5, 10, 1) == [10]


class TestFig8:
    def test_small_run_reproduces_headline_claims(self):
        result = run_fig8(sizes=[20, 60], shapes=("left-branch", "zigzag", "mixed"))
        # (1) LB: Zhang-L ties with RTED and Zhang-R degenerates.
        for point in result.points["left-branch"]:
            assert point.counts["rted"] == point.counts["zhang-l"]
            assert point.counts["zhang-r"] > point.counts["zhang-l"]
        # (2) ZZ: Demaine ties with RTED.
        for point in result.points["zigzag"]:
            assert point.counts["rted"] == point.counts["demaine-h"]
        # (3) RTED never loses.
        for shape_points in result.points.values():
            for point in shape_points:
                assert point.rted_vs_best_ratio() <= 1.0

    def test_series_extraction_and_formatting(self):
        result = run_fig8(sizes=[20, 40], shapes=("full-binary",))
        series = result.series("full-binary", "rted")
        assert [size for size, _ in series] == [20, 40]
        text = format_fig8(result)
        assert "full-binary" in text and "rted" in text


class TestFig9:
    def test_small_run_produces_all_series(self):
        result = run_fig9(sizes=[10, 20], shapes=("zigzag",))
        points = result.points["zigzag"]
        assert len(points) == 2
        for point in points:
            assert set(point.runtimes) == {"zhang-l", "demaine-h", "rted"}
            assert all(value >= 0 for value in point.runtimes.values())
            # Identical trees: every algorithm must report distance 0.
            assert all(value == 0.0 for value in point.distances.values())
        assert "zigzag" in format_fig9(result)


class TestFig10:
    def test_overhead_fraction_is_sane(self):
        result = run_fig10(datasets=("treebank",), targets=[30, 60], num_trees=12,
                           size_range=(20, 80), seed=1)
        points = result.points["treebank"]
        assert points, "expected at least one sampled pair"
        for point in points:
            assert 0.0 <= point.overhead_fraction <= 1.0
            assert point.total_seconds >= point.strategy_seconds
        assert "treebank" in format_fig10(result)


class TestTable1:
    def test_join_rows_and_rted_dominance(self):
        result = run_table1(node_count=20, seed=3)
        assert {row.algorithm for row in result.rows} == {
            "zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"
        }
        rted_row = result.row("rted")
        for row in result.rows:
            assert row.subproblems_cost_formula >= rted_row.subproblems_cost_formula
            # The same pairs are joined, so every algorithm finds the same matches.
            assert row.matches == rted_row.matches
        assert "Table 1" in format_table1(result)

    def test_unknown_row_lookup_raises(self):
        result = run_table1(node_count=12, algorithms=("rted",), seed=3)
        with pytest.raises(KeyError):
            result.row("zhang-l")


class TestTable2:
    def test_ratios_are_within_unit_interval(self):
        result = run_table2(num_trees=18, boundaries=(60,), size_range=(30, 120),
                            sample_size=3, seed=5)
        assert result.partition_labels == ["<60", ">60"]
        assert result.cells, "expected at least one partition pair"
        for cell in result.cells.values():
            assert 0.0 < cell.ratio_to_best <= 1.0 + 1e-9
            assert 0.0 < cell.ratio_to_worst <= cell.ratio_to_best + 1e-9
        assert "Table 2" in format_table2(result)


class TestAblations:
    def test_strategy_space_monotonicity(self):
        rows = run_strategy_space_ablation(shapes=("mixed",), size=60)
        for row in rows:
            full = row.counts["full LRH (RTED)"]
            assert all(full <= count for count in row.counts.values())

    def test_strategy_computation_equivalence(self):
        rows = run_strategy_computation_ablation(sizes=(20, 40), shape="mixed")
        for row in rows:
            assert row.baseline_cost == row.algorithm2_cost
            assert row.baseline_seconds >= 0 and row.algorithm2_seconds >= 0
        text = format_ablations(run_strategy_space_ablation(shapes=("zigzag",), size=30), rows)
        assert "Ablation A1" in text and "Ablation A2" in text
