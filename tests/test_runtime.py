"""Tests for the runtime layer: deadlines, cancellation, env hardening.

The deadline contract under test:

* **bit-identity** — an armed deadline that never fires changes nothing:
  results (distance *and* subproblem counts) are identical to no-deadline
  runs across engines, cost models and execution modes;
* **promptness** — every engine detects expiry within a small multiple of
  the check interval, even on adversarially large pairs;
* **cleanliness** — a deadline that kills a supervised fan-out leaves no
  worker processes or shared-memory blocks behind, and the batch layer
  keeps working afterwards.
"""

import threading
import time

import pytest

from repro.api import compute, tree_edit_distance
from repro.costs import UnitCostModel, WeightedCostModel
from repro.datasets import random_tree
from repro.exceptions import ComputeTimeoutError, ReproError
from repro.join import batch_distances
from repro.join.shared import reap_stale
from repro.join.supervisor import ExecutionPolicy
from repro.runtime import (
    CancelToken,
    Deadline,
    active_deadline,
    as_deadline,
    deadline_scope,
    env_flag,
    env_float,
    env_int,
)

#: Generous wall-clock ceiling for "prompt" detection of a ~50 ms budget:
#: orders of magnitude below the uninterrupted run time of the adversarial
#: pairs (seconds), loose enough for a loaded CI machine.
PROMPT_SECONDS = 1.5


# --------------------------------------------------------------------------- #
# Hardened environment parsing
# --------------------------------------------------------------------------- #
class TestEnvParsing:
    def test_unset_returns_default_silently(self, monkeypatch, recwarn):
        monkeypatch.delenv("RTED_TEST_VAR", raising=False)
        assert env_int("RTED_TEST_VAR", 7) == 7
        assert env_float("RTED_TEST_VAR", 1.5) == 1.5
        assert env_flag("RTED_TEST_VAR", True) is True
        assert not recwarn.list

    def test_empty_returns_default_silently(self, monkeypatch, recwarn):
        monkeypatch.setenv("RTED_TEST_VAR", "  ")
        assert env_int("RTED_TEST_VAR", 7) == 7
        assert env_flag("RTED_TEST_VAR") is False
        assert not recwarn.list

    def test_valid_values_parse(self, monkeypatch):
        monkeypatch.setenv("RTED_TEST_VAR", "42")
        assert env_int("RTED_TEST_VAR") == 42
        monkeypatch.setenv("RTED_TEST_VAR", "2.5")
        assert env_float("RTED_TEST_VAR") == 2.5
        for word, expected in [("1", True), ("YES", True), ("off", False), ("0", False)]:
            monkeypatch.setenv("RTED_TEST_VAR", word)
            assert env_flag("RTED_TEST_VAR") is expected

    def test_malformed_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("RTED_TEST_VAR", "abc")
        with pytest.warns(RuntimeWarning, match="RTED_TEST_VAR"):
            assert env_int("RTED_TEST_VAR", 3) == 3
        with pytest.warns(RuntimeWarning):
            assert env_float("RTED_TEST_VAR", 0.5) == 0.5
        with pytest.warns(RuntimeWarning):
            assert env_flag("RTED_TEST_VAR", True) is True

    def test_bounds_rejected_with_warning(self, monkeypatch):
        monkeypatch.setenv("RTED_TEST_VAR", "-4")
        with pytest.warns(RuntimeWarning, match=">= 0"):
            assert env_int("RTED_TEST_VAR", 2, minimum=0) == 2
        monkeypatch.setenv("RTED_TEST_VAR", "0")
        with pytest.warns(RuntimeWarning, match="positive"):
            assert env_float("RTED_TEST_VAR", 1.0, positive=True) == 1.0
        monkeypatch.setenv("RTED_TEST_VAR", "nan")
        with pytest.warns(RuntimeWarning):
            assert env_float("RTED_TEST_VAR", 1.0) == 1.0

    def test_malformed_chunk_timeout_falls_back(self, monkeypatch):
        """The ISSUE's canonical case: RTED_CHUNK_TIMEOUT=abc must not raise."""
        monkeypatch.setenv("RTED_CHUNK_TIMEOUT", "abc")
        monkeypatch.setenv("RTED_CHUNK_RETRIES", "many")
        with pytest.warns(RuntimeWarning):
            policy = ExecutionPolicy.default()
        assert policy.chunk_timeout is None
        assert policy.max_chunk_retries == 3

    def test_valid_chunk_policy_env(self, monkeypatch):
        monkeypatch.setenv("RTED_CHUNK_TIMEOUT", "2.5")
        monkeypatch.setenv("RTED_CHUNK_RETRIES", "5")
        policy = ExecutionPolicy.default()
        assert policy.chunk_timeout == 2.5
        assert policy.max_chunk_retries == 5

    def test_native_kill_switch_malformed(self, monkeypatch):
        from repro.algorithms.native import KILL_SWITCH, _killed

        monkeypatch.setenv(KILL_SWITCH, "abc")
        with pytest.warns(RuntimeWarning):
            assert _killed() is False
        monkeypatch.setenv(KILL_SWITCH, "1")
        assert _killed() is True


# --------------------------------------------------------------------------- #
# Deadline / CancelToken primitives
# --------------------------------------------------------------------------- #
class TestDeadlinePrimitives:
    def test_unexpired_deadline_passes_checks(self):
        deadline = Deadline(60.0)
        deadline.check()
        for _ in range(10_000):
            deadline.tick()
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0

    def test_expired_deadline_raises(self):
        deadline = Deadline(-1.0)
        assert deadline.expired()
        with pytest.raises(ComputeTimeoutError, match="deadline exceeded"):
            deadline.check()

    def test_token_only_deadline_never_times_out(self):
        token = CancelToken()
        deadline = Deadline(token=token)
        assert deadline.remaining() == float("inf")
        deadline.check()
        token.cancel()
        assert deadline.expired()
        with pytest.raises(ComputeTimeoutError, match="cancelled"):
            deadline.check()

    def test_tick_interval_adapts_upward(self):
        deadline = Deadline(60.0)
        start = deadline.interval
        for _ in range(1 << 14):
            deadline.tick()
        assert deadline.interval > start

    def test_as_deadline_coercion(self):
        assert as_deadline(None) is None
        deadline = Deadline(1.0)
        assert as_deadline(deadline) is deadline
        assert isinstance(as_deadline(2.5), Deadline)
        with pytest.raises(ReproError):
            as_deadline("soon")
        with pytest.raises(ReproError):
            as_deadline(True)

    def test_scope_install_and_restore(self):
        assert active_deadline() is None
        outer, inner = Deadline(60.0), Deadline(30.0)
        with deadline_scope(outer):
            assert active_deadline() is outer
            # None is a no-op that preserves the outer scope (nested library
            # calls inherit the caller's budget).
            with deadline_scope(None):
                assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_scope_is_thread_local(self):
        seen = {}
        with deadline_scope(Deadline(60.0)):
            thread = threading.Thread(
                target=lambda: seen.setdefault("other", active_deadline())
            )
            thread.start()
            thread.join()
        assert seen["other"] is None


# --------------------------------------------------------------------------- #
# Bit-identity: an armed, never-firing deadline changes nothing
# --------------------------------------------------------------------------- #
COST_MODELS = [
    UnitCostModel(),
    WeightedCostModel(delete_cost=0.7, insert_cost=0.7, rename_cost=0.4),
]
ENGINE_IDS = ["auto", "spf", "native", "recursive"]


class TestBitIdentity:
    @pytest.mark.parametrize("cost_model", COST_MODELS, ids=lambda cm: type(cm).__name__)
    @pytest.mark.parametrize("engine", ENGINE_IDS)
    def test_compute_identical_with_generous_deadline(self, engine, cost_model):
        for seed in range(4):
            f = random_tree(40, rng=seed)
            g = random_tree(40, rng=seed + 100)
            plain = compute(f, g, engine=engine, cost_model=cost_model)
            armed = compute(f, g, engine=engine, cost_model=cost_model, deadline=600.0)
            assert armed.distance == plain.distance
            assert armed.subproblems == plain.subproblems

    @pytest.mark.parametrize("algorithm", ["rted", "zhang-l", "simple"])
    def test_algorithms_identical_with_generous_deadline(self, algorithm):
        f, g = random_tree(12, rng=3), random_tree(12, rng=4)
        assert tree_edit_distance(f, g, algorithm=algorithm) == tree_edit_distance(
            f, g, algorithm=algorithm, deadline=600.0
        )

    @pytest.mark.parametrize("cost_model", COST_MODELS, ids=lambda cm: type(cm).__name__)
    def test_batch_serial_identical(self, cost_model):
        trees = [random_tree(24, rng=i) for i in range(16)]
        pairs = [(i, j) for i in range(16) for j in range(i + 1, 16)]
        plain = batch_distances(trees, None, pairs, cost_model=cost_model)
        armed = batch_distances(trees, None, pairs, cost_model=cost_model, deadline=600.0)
        assert plain == armed

    def test_batch_mp_identical(self):
        # workers=2 with the batch kernel eligible exercises the
        # shared-memory rung of the supervised fan-out under a deadline.
        trees = [random_tree(18, rng=i) for i in range(20)]
        pairs = [(i, j) for i in range(20) for j in range(i + 1, 20)]
        plain = batch_distances(trees, None, pairs, workers=2, chunk_size=24)
        armed = batch_distances(
            trees, None, pairs, workers=2, chunk_size=24, deadline=600.0
        )
        assert sorted(plain) == sorted(armed)

    def test_ambient_deadline_reaches_nested_compute(self):
        f, g = random_tree(20, rng=1), random_tree(20, rng=2)
        plain = compute(f, g)
        with deadline_scope(as_deadline(600.0)):
            nested = compute(f, g)
        assert nested.distance == plain.distance


# --------------------------------------------------------------------------- #
# Promptness: expiry is detected quickly on adversarial pairs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def adversarial_pair():
    """A pair big enough that every engine needs seconds uninterrupted."""
    return random_tree(900, rng=7), random_tree(880, rng=8)


class TestPromptTimeout:
    @pytest.mark.parametrize("engine", ["auto", "spf", "native"])
    def test_rted_engines_time_out_promptly(self, engine, adversarial_pair):
        f, g = adversarial_pair
        start = time.monotonic()
        with pytest.raises(ComputeTimeoutError):
            compute(f, g, engine=engine, deadline=0.05)
        assert time.monotonic() - start < PROMPT_SECONDS

    @pytest.mark.parametrize("algorithm", ["zhang-l", "klein", "demaine"])
    def test_other_algorithms_time_out_promptly(self, algorithm, adversarial_pair):
        f, g = adversarial_pair
        start = time.monotonic()
        with pytest.raises(ComputeTimeoutError):
            compute(f, g, algorithm=algorithm, deadline=0.05)
        assert time.monotonic() - start < PROMPT_SECONDS

    def test_recursive_engine_times_out_promptly(self, adversarial_pair):
        f, g = adversarial_pair
        start = time.monotonic()
        with pytest.raises(ComputeTimeoutError):
            compute(f, g, engine="recursive", deadline=0.05)
        assert time.monotonic() - start < PROMPT_SECONDS

    def test_cancel_token_stops_compute_from_another_thread(self, adversarial_pair):
        f, g = adversarial_pair
        token = CancelToken()
        outcome = {}

        def work():
            try:
                compute(f, g, deadline=Deadline(token=token))
                outcome["result"] = "finished"
            except ComputeTimeoutError as exc:
                outcome["result"] = str(exc)

        thread = threading.Thread(target=work)
        thread.start()
        time.sleep(0.1)
        token.cancel()
        thread.join(timeout=PROMPT_SECONDS * 2)
        assert not thread.is_alive()
        assert outcome["result"] == "computation cancelled"


# --------------------------------------------------------------------------- #
# Supervised fan-out under a deadline: teardown is clean, recovery works
# --------------------------------------------------------------------------- #
class TestBatchDeadlines:
    def test_serial_batch_times_out(self):
        big = [random_tree(500, rng=i) for i in range(4)]
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        start = time.monotonic()
        with pytest.raises(ComputeTimeoutError):
            batch_distances(big, None, pairs, deadline=0.05)
        assert time.monotonic() - start < PROMPT_SECONDS

    def test_mp_batch_times_out_and_leaves_no_shm(self):
        big = [random_tree(400, rng=i) for i in range(12)]
        pairs = [(i, j) for i in range(12) for j in range(i + 1, 12)]
        with pytest.raises(ComputeTimeoutError):
            batch_distances(big, None, pairs, workers=2, chunk_size=4, deadline=0.5)
        # The pool was hard-killed and every exported block unlinked.
        assert reap_stale() == []
        # The batch layer stays healthy: the same call without a deadline
        # budget, on a small workload, completes normally afterwards.
        small = [random_tree(12, rng=i) for i in range(10)]
        small_pairs = [(i, j) for i in range(10) for j in range(i + 1, 10)]
        results = batch_distances(
            small, None, small_pairs, workers=2, chunk_size=5, deadline=600.0
        )
        assert len(results) == len(small_pairs)
        assert reap_stale() == []

    def test_query_deadline_returns_partial(self):
        from repro.api import knn, range_query
        from repro.join.corpus import TreeCorpus

        corpus = TreeCorpus([random_tree(400, rng=i) for i in range(16)])
        query = random_tree(400, rng=99)
        start = time.monotonic()
        result = knn(query, corpus, 3, deadline=0.1)
        assert time.monotonic() - start < PROMPT_SECONDS
        assert result.stats.partial is True
        # A threshold far above any filter bound forces exact refinement of
        # every candidate, so the budget must expire mid-verification.
        ranged = range_query(query, corpus, 10_000.0, deadline=0.1)
        assert ranged.stats.partial is True
        assert "partial" in ranged.stats.as_dict()

    def test_query_without_deadline_is_never_partial(self):
        from repro.api import knn
        from repro.join.corpus import TreeCorpus

        corpus = TreeCorpus([random_tree(20, rng=i) for i in range(12)])
        result = knn(random_tree(20, rng=77), corpus, 3)
        assert result.stats.partial is False
        assert len(result.matches) == 3
