"""Unit tests for repro.trees.forest (ForestView and decomposition enumeration)."""

import pytest
from hypothesis import given, settings

from repro.trees import (
    HEAVY,
    LEFT,
    RIGHT,
    ForestView,
    Tree,
    enumerate_full_decomposition,
    enumerate_path_decomposition,
    enumerate_recursive_path_decomposition,
    tree_from_nested,
)

from conftest import trees


@pytest.fixture
def tree() -> Tree:
    return tree_from_nested(("a", ["b", ("c", ["d", "e"]), "f"]))


class TestForestView:
    def test_whole_tree(self, tree):
        forest = ForestView.whole_tree(tree)
        assert forest.is_tree
        assert forest.size() == tree.n
        assert forest.leftmost_root == forest.rightmost_root == tree.root

    def test_remove_leftmost_root_exposes_children(self, tree):
        forest = ForestView.whole_tree(tree).remove_leftmost_root()
        assert forest.roots == tuple(tree.children[tree.root])
        assert forest.size() == tree.n - 1

    def test_remove_rightmost_root_of_forest(self, tree):
        forest = ForestView.whole_tree(tree).remove_leftmost_root()
        after = forest.remove_rightmost_root()
        # Rightmost root is the leaf f; removing it exposes no children.
        assert after.size() == forest.size() - 1
        assert after.roots == forest.roots[:-1]

    def test_subtree_operations(self, tree):
        forest = ForestView.whole_tree(tree).remove_leftmost_root()
        assert forest.leftmost_subtree().roots == (forest.roots[0],)
        assert forest.without_leftmost_subtree().roots == forest.roots[1:]
        assert forest.rightmost_subtree().roots == (forest.roots[-1],)
        assert forest.without_rightmost_subtree().roots == forest.roots[:-1]

    def test_empty_forest(self, tree):
        forest = ForestView(tree, ())
        assert forest.is_empty
        assert forest.size() == 0

    def test_labels_and_nodes(self, tree):
        forest = ForestView.subtree(tree, 3)
        assert sorted(forest.iter_nodes()) == [1, 2, 3]
        assert forest.labels() == ["d", "e", "c"]

    def test_equality_and_hash(self, tree):
        a = ForestView(tree, (0, 3))
        b = ForestView(tree, (0, 3))
        c = ForestView(tree, (3,))
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestDecompositionEnumeration:
    def test_full_decomposition_of_figure3_tree(self):
        # Figure 3 of the paper enumerates the full decomposition of this
        # 7-node tree; together with the tree itself and excluding the empty
        # forest the closed form gives the count below.
        tree = tree_from_nested(("A", [("B", ["D", ("E", ["F"]), "G"]), "C"]))
        enumerated = enumerate_full_decomposition(tree)
        assert len(enumerated) == tree.full_decomposition_sizes()[tree.root]

    def test_single_path_decomposition_count_is_tree_size(self, tree):
        for kind in (LEFT, RIGHT, HEAVY):
            forests = enumerate_path_decomposition(tree, tree.root, kind)
            assert len(forests) == tree.n  # Lemma 2

    def test_single_path_decomposition_starts_with_whole_tree(self, tree):
        forests = enumerate_path_decomposition(tree, tree.root, LEFT)
        assert forests[0] == (tree.root,)

    def test_recursive_decomposition_matches_lemma3(self, tree):
        left = enumerate_recursive_path_decomposition(tree, tree.root, LEFT)
        right = enumerate_recursive_path_decomposition(tree, tree.root, RIGHT)
        assert len(left) == tree.left_decomposition_sizes()[tree.root]
        assert len(right) == tree.right_decomposition_sizes()[tree.root]

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_lemma1_closed_form_matches_enumeration(self, random_tree):
        enumerated = enumerate_full_decomposition(random_tree)
        assert len(enumerated) == random_tree.full_decomposition_sizes()[random_tree.root]

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_lemma2_every_path_produces_n_subforests(self, random_tree):
        for kind in (LEFT, RIGHT, HEAVY):
            forests = enumerate_path_decomposition(random_tree, random_tree.root, kind)
            assert len(forests) == random_tree.n

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_lemma3_closed_form_matches_enumeration(self, random_tree):
        for kind, table in (
            (LEFT, random_tree.left_decomposition_sizes()),
            (RIGHT, random_tree.right_decomposition_sizes()),
        ):
            forests = enumerate_recursive_path_decomposition(random_tree, random_tree.root, kind)
            assert len(forests) == table[random_tree.root]

    @given(trees())
    @settings(max_examples=40, deadline=None)
    def test_path_decompositions_are_subsets_of_full_decomposition(self, random_tree):
        full = enumerate_full_decomposition(random_tree)
        for kind in (LEFT, RIGHT, HEAVY):
            forests = set(enumerate_path_decomposition(random_tree, random_tree.root, kind))
            assert forests <= full
