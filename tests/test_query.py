"""Query-engine correctness: knn / range_query vs brute force, metric gating,
corpus freezing, and the planner pipeline invariants."""

import random

import pytest

from repro import knn, range_query
from repro.costs import StringRenameCostModel, UnitCostModel, WeightedCostModel
from repro.datasets.random_trees import random_tree
from repro.exceptions import MetricGateError, QueryError
from repro.join import (
    QueryEngine,
    TreeCorpus,
    VPTree,
    batch_distances,
    metric_eligible,
)

ALPHABET = list("abcde")

#: The three property-suite cost models: the canonical unit model, a
#: fractional metric (min_operation_cost < 1 exercises threshold scaling),
#: and a non-symmetric model that must never take the VP-tree pruning path.
COST_MODELS = {
    "unit": UnitCostModel(),
    "fractional": WeightedCostModel(0.5, 0.5, 0.5),
    "non-symmetric": WeightedCostModel(1.0, 2.0, 1.5),
}


def _random_trees(count, rng, lo=2, hi=12):
    return [random_tree(rng.randint(lo, hi), alphabet=ALPHABET, rng=rng) for _ in range(count)]


def _brute_ranking(query, corpus, cost_model):
    """The reference ranking: ``(distance, index)`` ascending, from the
    unfiltered batch verifier (query → corpus orientation)."""
    query_corpus = TreeCorpus([query], interner=corpus.interner())
    entries = batch_distances(
        query_corpus, corpus, [(0, j) for j in range(len(corpus))], cost_model=cost_model
    )
    return sorted((distance, j) for _, j, distance, *_ in entries)


class TestPropertySuite:
    """knn/range_query return exactly the brute-force result sets.

    ≥ 200 random queries spread over the three cost models; every query is
    checked at several k values and several thresholds, with exact
    result-set (and distance) equality.
    """

    @pytest.mark.parametrize("model_name", sorted(COST_MODELS))
    def test_queries_match_brute_force(self, model_name):
        cost_model = COST_MODELS[model_name]
        rng = random.Random(hash(model_name) & 0xFFFF)
        corpus = TreeCorpus(_random_trees(50, rng))
        engine = QueryEngine(corpus, cost_model=cost_model)
        metric = metric_eligible(cost_model)
        for _ in range(70):
            query = random_tree(rng.randint(2, 12), alphabet=ALPHABET, rng=rng)
            ranking = _brute_ranking(query, corpus, cost_model)
            for k in (1, 5, len(corpus) + 3):
                result = engine.knn(query, k)
                assert result.matches == [(j, d) for d, j in ranking[:k]]
                assert result.stats.metric_index_used == metric
            for threshold in (1.0, 2.5, 4.0):
                result = engine.range_query(query, threshold)
                expected = sorted(
                    ((j, d) for d, j in ranking if d < threshold),
                    key=lambda entry: (entry[1], entry[0]),
                )
                assert result.matches == expected
                assert result.stats.metric_index_used == (metric and threshold > 0)

    def test_non_metric_models_never_take_vp_path(self):
        rng = random.Random(7)
        corpus = TreeCorpus(_random_trees(30, rng))
        for cost_model in (COST_MODELS["non-symmetric"], StringRenameCostModel()):
            assert not metric_eligible(cost_model)
            engine = QueryEngine(corpus, cost_model=cost_model)
            query = _random_trees(1, rng)[0]
            assert engine.knn(query, 3).stats.metric_index_used is False
            assert engine.range_query(query, 2.0).stats.metric_index_used is False
            assert engine.metric_index() is None
            with pytest.raises(MetricGateError):
                VPTree.build(corpus, cost_model=cost_model)


class TestQueryEngine:
    def test_scan_and_index_paths_agree(self):
        rng = random.Random(11)
        corpus = TreeCorpus(_random_trees(40, rng))
        indexed = QueryEngine(corpus, use_metric_index=True)
        scanned = QueryEngine(corpus, use_metric_index=False)
        for _ in range(10):
            query = _random_trees(1, rng)[0]
            assert indexed.knn(query, 4).matches == scanned.knn(query, 4).matches
            assert (
                indexed.range_query(query, 3.0).matches
                == scanned.range_query(query, 3.0).matches
            )

    def test_no_cascade_path_agrees(self):
        rng = random.Random(13)
        corpus = TreeCorpus(_random_trees(25, rng))
        plain = QueryEngine(corpus, use_cascade=False, use_metric_index=False)
        full = QueryEngine(corpus)
        query = _random_trees(1, rng)[0]
        assert plain.knn(query, 5).matches == full.knn(query, 5).matches
        assert plain.range_query(query, 2.5).matches == full.range_query(query, 2.5).matches

    def test_knn_edge_cases(self):
        corpus = TreeCorpus(_random_trees(5, random.Random(3)))
        engine = QueryEngine(corpus)
        query = _random_trees(1, random.Random(4))[0]
        assert engine.knn(query, 0).matches == []
        assert len(engine.knn(query, 100).matches) == len(corpus)
        with pytest.raises(QueryError):
            engine.knn(query, -1)
        empty = QueryEngine(TreeCorpus([]))
        assert empty.knn(query, 3).matches == []
        assert empty.range_query(query, 2.0).matches == []

    def test_range_nonpositive_threshold_is_empty(self):
        corpus = TreeCorpus(_random_trees(8, random.Random(5)))
        engine = QueryEngine(corpus)
        query = corpus.trees[0]
        # Strict semantics: TED < 0 is impossible; TED < 0.0 likewise.
        assert engine.range_query(query, 0.0).matches == []
        assert engine.range_query(query, -1.0).matches == []

    def test_range_includes_exact_duplicates(self):
        trees = _random_trees(6, random.Random(6))
        corpus = TreeCorpus(trees + [trees[0]])
        engine = QueryEngine(corpus)
        result = engine.range_query(trees[0], 0.5)
        assert (0, 0.0) in result.matches and (len(trees), 0.0) in result.matches

    def test_metric_index_examines_fewer_than_scan(self):
        # Clustered corpus, tight radius: triangle pruning must cut the
        # number of exact evaluations well below the corpus size.
        from repro.datasets.workloads import clustered_corpus

        trees = clustered_corpus(
            num_clusters=12, cluster_size=8, tree_size=10, num_edits=1,
            rng=random.Random(8),
        )
        corpus = TreeCorpus(trees)
        engine = QueryEngine(corpus)
        result = engine.knn(trees[0], 3)
        assert result.stats.metric_index_used
        assert result.stats.exact_computed < len(corpus)
        assert result.stats.vp_pruned_subtrees > 0

    def test_prebuilt_metric_index_reuse(self):
        corpus = TreeCorpus(_random_trees(20, random.Random(9)))
        vp = VPTree.build(corpus)
        engine = QueryEngine(corpus, metric_index=vp)
        assert engine.metric_index() is vp
        other = TreeCorpus(_random_trees(5, random.Random(10)))
        with pytest.raises(QueryError):
            QueryEngine(other, metric_index=vp)

    def test_api_accepts_corpus_and_sequences(self):
        from repro import parse_tree

        trees = ["{a{b}{c}{d}}", "{x{y}}", "{a{b}}"]
        assert knn("{a{b}{c}}", trees, 2).indices == [0, 2]
        corpus = TreeCorpus([parse_tree(t) for t in trees])
        assert knn("{a{b}{c}}", corpus, 2).indices == [0, 2]
        assert range_query("{a{b}{c}}", corpus, 2.0).indices == [0, 2]


class TestCorpusFreeze:
    """A TreeCorpus is frozen at construction: post-construction mutation of
    the tree list must raise instead of silently serving stale indexes."""

    def test_item_assignment_raises(self):
        corpus = TreeCorpus(_random_trees(4, random.Random(1)))
        with pytest.raises(TypeError):
            corpus.trees[0] = corpus.trees[1]

    def test_append_raises(self):
        corpus = TreeCorpus(_random_trees(4, random.Random(1)))
        with pytest.raises(AttributeError):
            corpus.trees.append(corpus.trees[0])

    def test_rebinding_raises(self):
        corpus = TreeCorpus(_random_trees(4, random.Random(1)))
        with pytest.raises(AttributeError):
            corpus.trees = ()

    def test_constructor_snapshots_input_list(self):
        trees = _random_trees(4, random.Random(2))
        corpus = TreeCorpus(trees)
        corpus.branch_index()
        trees.append(trees[0])  # mutating the caller's list must not leak in
        assert len(corpus) == 4
