"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TreeConstructionError(ReproError):
    """Raised when a tree cannot be built from the given input."""


class ParseError(ReproError):
    """Raised when a serialized tree (bracket, Newick, XML, JSON) is malformed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        #: Character offset at which parsing failed, when known.
        self.position = position


class InvalidNodeError(ReproError):
    """Raised when a node identifier is outside a tree's valid range."""


class UnknownAlgorithmError(ReproError):
    """Raised when an algorithm name is not present in the registry."""


class UnknownEngineError(ReproError):
    """Raised when an execution-engine name is invalid or unsupported."""


class StrategyError(ReproError):
    """Raised when a decomposition strategy returns an invalid path choice."""


class CostModelError(ReproError):
    """Raised when a cost model produces invalid (e.g. negative) costs."""


class WorkspaceError(ReproError):
    """Raised when a :class:`~repro.algorithms.workspace.TedWorkspace` is
    used with a cost model other than the one it was created with (its cached
    cost tables would be silently wrong for the new model)."""
