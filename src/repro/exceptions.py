"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TreeConstructionError(ReproError):
    """Raised when a tree cannot be built from the given input."""


class ParseError(ReproError):
    """Raised when a serialized tree (bracket, Newick, XML, JSON) is malformed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        #: Character offset at which parsing failed, when known.
        self.position = position


class InvalidNodeError(ReproError):
    """Raised when a node identifier is outside a tree's valid range."""


class UnknownAlgorithmError(ReproError):
    """Raised when an algorithm name is not present in the registry."""


class UnknownEngineError(ReproError):
    """Raised when an execution-engine name is invalid or unsupported."""


class StrategyError(ReproError):
    """Raised when a decomposition strategy returns an invalid path choice."""


class CostModelError(ReproError):
    """Raised when a cost model produces invalid (e.g. negative) costs."""


class WorkspaceError(ReproError):
    """Raised when a :class:`~repro.algorithms.workspace.TedWorkspace` is
    used with a cost model other than the one it was created with (its cached
    cost tables would be silently wrong for the new model)."""


class BatchExecutionError(ReproError):
    """Raised when supervised batch execution cannot deliver a complete,
    exact result set.

    The supervised executor (:mod:`repro.join.supervisor`) only raises this
    in *strict* mode (``ExecutionPolicy(strict=True)``); by default failures
    are degraded through the recovery ladder and reported per pair in the
    :class:`~repro.join.supervisor.ExecutionReport` instead of aborting the
    batch."""


class ChunkFailure(BatchExecutionError):
    """One batch chunk exhausted its retry budget on every worker rung.

    Carries the chunk index, the number of attempts made, and the error
    message of each failed attempt.  Instances double as records inside
    :attr:`~repro.join.supervisor.ExecutionReport.chunk_failures` — a chunk
    rescued by the serial fallback still leaves its failure history there.
    """

    def __init__(self, chunk_index: int, attempts: int, errors) -> None:
        self.chunk_index = int(chunk_index)
        self.attempts = int(attempts)
        self.errors = [str(error) for error in errors]
        last = self.errors[-1] if self.errors else "unknown error"
        super().__init__(
            f"chunk {self.chunk_index} failed after {self.attempts} attempt(s): {last}"
        )


class ComputeTimeoutError(ReproError):
    """Raised when a computation exceeds its cooperative deadline.

    Armed via ``compute(..., deadline=...)`` (see :mod:`repro.runtime`): the
    DP kernels test the deadline amortized at row-loop granularity and raise
    as soon as the budget is exhausted or the attached
    :class:`~repro.runtime.CancelToken` is cancelled.  Unlike the ``cutoff``
    machinery, a deadline expiry carries no partial answer for a single
    pair, so it propagates as an exception through the public API; the
    retrieval layer (:meth:`~repro.join.query.QueryEngine.knn`) instead
    catches it and returns best-so-far results marked ``partial``."""


class MetricGateError(CostModelError):
    """Raised when a metric-space index is built over a non-metric cost model.

    Triangle-inequality pruning under a cost model that is not provably a
    metric silently drops true results, so
    :meth:`~repro.join.metric_index.VPTree.build` refuses outright; callers
    that cannot prove metricity (:func:`~repro.join.metric_index.metric_eligible`)
    must fall back to a linear scan."""


class CorpusError(ReproError):
    """Raised on an invalid corpus mutation: removing an out-of-range tree
    id, adding a non-tree object, or mutating an epoch-pinned
    :class:`~repro.join.corpus.CorpusSnapshot` (snapshots are immutable —
    mutate the parent corpus instead)."""


class QueryError(ReproError):
    """Raised when a retrieval query is malformed (e.g. ``k < 0``)."""


class FaultInjectionError(ReproError):
    """Raised when an ``RTED_FAULT_INJECT`` specification cannot be parsed."""


class InjectedFaultError(ReproError):
    """Raised by the deterministic fault-injection layer (:mod:`repro.join.faults`).

    Only ever seen when fault injection is active — e.g. a ``poison_pair``
    fault makes the affected pair's computation raise this error on every
    ladder rung, exercising the per-pair poisoned-result reporting."""
