"""Binary branch distance lower bound (Yang, Kalnis & Tung, SIGMOD 2005).

A tree is converted to its left-child/right-sibling binary representation;
every node then contributes one *binary branch* — the triple of its label, the
label of its first child and the label of its next sibling (missing positions
are padded with a null symbol).  The binary branch distance ``BBD`` is the L1
distance between the two binary-branch multisets, and it satisfies

``BBD(F, G) ≤ 5 · TED(F, G)``

for the unit cost model, so ``BBD / 5`` is a valid lower bound of the tree
edit distance.  It is cheap to compute (linear time) and often much tighter
than the size bound for structurally different trees.
"""

from __future__ import annotations

from collections import Counter
from typing import Counter as CounterType, Tuple

from ..trees.tree import Tree

#: Padding symbol for missing child / sibling positions.
NULL_LABEL = object()


def binary_branch_profile(tree: Tree) -> CounterType[Tuple[object, object, object]]:
    """Multiset of binary branches of ``tree``.

    Each node ``v`` produces the triple ``(label(v), label(first child of v),
    label(next sibling of v))``, with :data:`NULL_LABEL` for missing entries.
    """
    profile: CounterType[Tuple[object, object, object]] = Counter()
    for v in range(tree.n):
        children = tree.children[v]
        first_child_label = tree.labels[children[0]] if children else NULL_LABEL

        parent = tree.parents[v]
        next_sibling_label = NULL_LABEL
        if parent != -1:
            siblings = tree.children[parent]
            position = tree.child_index[v]
            if position + 1 < len(siblings):
                next_sibling_label = tree.labels[siblings[position + 1]]

        profile[(tree.labels[v], first_child_label, next_sibling_label)] += 1
    return profile


def binary_branch_distance(tree_f: Tree, tree_g: Tree) -> int:
    """L1 distance between the binary-branch multisets of the two trees."""
    profile_f = binary_branch_profile(tree_f)
    profile_g = binary_branch_profile(tree_g)
    keys = set(profile_f) | set(profile_g)
    return sum(abs(profile_f.get(key, 0) - profile_g.get(key, 0)) for key in keys)


def binary_branch_lower_bound(tree_f: Tree, tree_g: Tree) -> float:
    """``BBD / 5`` — a lower bound of the unit-cost tree edit distance."""
    return binary_branch_distance(tree_f, tree_g) / 5.0
