"""String-edit-distance based lower bounds for the tree edit distance.

Every unit-cost node edit operation changes the preorder (and the postorder)
label sequence of a tree by at most one symbol operation: a rename becomes a
substitution, a delete removes one symbol, and an insert adds one symbol,
while the relative order of all other nodes is preserved in both traversals.
Consequently the Levenshtein distance between the traversal label sequences is
a lower bound of the unit-cost tree edit distance (this is the serialization
bound of Guha et al., SIGMOD 2002, in its simplest form).

The bound is cheap (``O(n^2)`` with tiny constants, or ``O(n)`` for the even
weaker size/label bounds in :mod:`repro.bounds.size_bound`) and is used to
prune expensive exact computations in the similarity join.
"""

from __future__ import annotations

from typing import List, Sequence

from ..trees.tree import Tree


def levenshtein(seq_a: Sequence[object], seq_b: Sequence[object]) -> int:
    """Unit-cost string edit distance between two sequences of hashable items."""
    if len(seq_a) < len(seq_b):
        seq_a, seq_b = seq_b, seq_a
    if not seq_b:
        return len(seq_a)
    previous: List[int] = list(range(len(seq_b) + 1))
    for i, item_a in enumerate(seq_a, start=1):
        current = [i]
        for j, item_b in enumerate(seq_b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (0 if item_a == item_b else 1),
                )
            )
        previous = current
    return previous[-1]


def preorder_string_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """Levenshtein distance of the preorder label sequences (≤ unit-cost TED)."""
    return levenshtein(tree_f.labels_preorder(), tree_g.labels_preorder())


def postorder_string_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """Levenshtein distance of the postorder label sequences (≤ unit-cost TED)."""
    return levenshtein(tree_f.labels_postorder(), tree_g.labels_postorder())


def traversal_string_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """The tighter of the preorder and postorder serialization bounds."""
    return max(
        preorder_string_lower_bound(tree_f, tree_g),
        postorder_string_lower_bound(tree_f, tree_g),
    )
