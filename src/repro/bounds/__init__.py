"""Lower and upper bounds of the tree edit distance, plus join filters."""

from .size_bound import cheap_lower_bound, label_multiset_lower_bound, size_lower_bound
from .string_edit import (
    levenshtein,
    postorder_string_lower_bound,
    preorder_string_lower_bound,
    traversal_string_lower_bound,
)
from .binary_branch import (
    binary_branch_distance,
    binary_branch_lower_bound,
    binary_branch_profile,
)
from .pq_gram import pq_gram_distance, pq_gram_profile, pq_gram_symmetric_difference
from .upper_bound import top_down_upper_bound, trivial_upper_bound


def combined_lower_bound(tree_f, tree_g) -> float:
    """The tightest of all implemented unit-cost lower bounds."""
    return max(
        float(cheap_lower_bound(tree_f, tree_g)),
        float(traversal_string_lower_bound(tree_f, tree_g)),
        binary_branch_lower_bound(tree_f, tree_g),
    )


__all__ = [
    "size_lower_bound",
    "label_multiset_lower_bound",
    "cheap_lower_bound",
    "levenshtein",
    "preorder_string_lower_bound",
    "postorder_string_lower_bound",
    "traversal_string_lower_bound",
    "binary_branch_profile",
    "binary_branch_distance",
    "binary_branch_lower_bound",
    "pq_gram_profile",
    "pq_gram_distance",
    "pq_gram_symmetric_difference",
    "trivial_upper_bound",
    "top_down_upper_bound",
    "combined_lower_bound",
]
