"""Constant-time lower bounds from tree sizes and label multisets.

These are the cheapest filters in the bound hierarchy (``O(n)`` after the
trees are built) and hold for the unit cost model:

* ``|‖F| − |G‖``: every surplus node must be deleted or inserted;
* ``max(|F|, |G|) − |labels(F) ∩ labels(G)|``: a node pair mapped without
  rename consumes one occurrence of a common label, so at most the multiset
  intersection many nodes can be preserved for free.
"""

from __future__ import annotations

from collections import Counter

from ..trees.tree import Tree


def size_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """``| |F| − |G| |`` — the size difference lower bound."""
    return abs(tree_f.n - tree_g.n)


def label_multiset_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """``max(|F|, |G|) − |multiset intersection of labels|``."""
    histogram_f = Counter(tree_f.labels)
    histogram_g = Counter(tree_g.labels)
    intersection = sum((histogram_f & histogram_g).values())
    return max(tree_f.n, tree_g.n) - intersection


def cheap_lower_bound(tree_f: Tree, tree_g: Tree) -> int:
    """The tighter of the two constant-time bounds."""
    return max(size_lower_bound(tree_f, tree_g), label_multiset_lower_bound(tree_f, tree_g))
