"""Constructive upper bounds for the tree edit distance.

Two upper bounds are provided, both valid for arbitrary cost models because
they are the costs of explicit, valid edit mappings:

* :func:`trivial_upper_bound` — delete every node of ``F`` and insert every
  node of ``G``;
* :func:`top_down_upper_bound` — the *constrained* (top-down) edit distance:
  roots are aligned, and the children sequences are aligned recursively with a
  sequence alignment DP whose gap costs are whole-subtree deletions and
  insertions.  Every alignment produced this way is a valid tree edit mapping,
  so its cost can never fall below the unrestricted tree edit distance, and it
  is usually a much tighter upper bound than the trivial one.

Together with the lower bounds, these give the sandwich
``lower ≤ TED ≤ upper`` that the property tests assert and that the
similarity join uses for pruning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..costs import CostModel
from ..algorithms.base import resolve_cost_model
from ..trees.tree import Tree


def trivial_upper_bound(
    tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
) -> float:
    """Cost of deleting all of ``F`` and inserting all of ``G``."""
    cm = resolve_cost_model(cost_model)
    return sum(cm.delete(label) for label in tree_f.labels) + sum(
        cm.insert(label) for label in tree_g.labels
    )


def top_down_upper_bound(
    tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
) -> float:
    """Constrained (top-down) edit distance — an upper bound of the TED."""
    cm = resolve_cost_model(cost_model)

    delete_subtree = [0.0] * tree_f.n
    for v in range(tree_f.n):
        delete_subtree[v] = cm.delete(tree_f.labels[v]) + sum(
            delete_subtree[c] for c in tree_f.children[v]
        )
    insert_subtree = [0.0] * tree_g.n
    for w in range(tree_g.n):
        insert_subtree[w] = cm.insert(tree_g.labels[w]) + sum(
            insert_subtree[c] for c in tree_g.children[w]
        )

    memo: Dict[Tuple[int, int], float] = {}

    def solve(v: int, w: int) -> float:
        """``aligned(v, w)``: cost of the best top-down mapping sending v to w.

        Evaluated with an explicit dependency stack instead of recursion so
        that arbitrarily deep trees work at the default recursion limit: a
        pair is expanded once to enqueue its missing child pairs, and computed
        on the second visit when all of them are memoized.
        """
        stack: List[Tuple[int, int]] = [(v, w)]
        while stack:
            a, b = stack[-1]
            if (a, b) in memo:
                stack.pop()
                continue
            children_f = tree_f.children[a]
            children_g = tree_g.children[b]
            missing = [
                (cf, cg)
                for cf in children_f
                for cg in children_g
                if (cf, cg) not in memo
            ]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()

            rows = len(children_f) + 1
            cols = len(children_g) + 1
            # Sequence alignment of the children: gaps cost whole-subtree
            # deletion/insertion, matches cost the aligned child distance.
            table = [[0.0] * cols for _ in range(rows)]
            for i in range(1, rows):
                table[i][0] = table[i - 1][0] + delete_subtree[children_f[i - 1]]
            for j in range(1, cols):
                table[0][j] = table[0][j - 1] + insert_subtree[children_g[j - 1]]
            for i in range(1, rows):
                for j in range(1, cols):
                    table[i][j] = min(
                        table[i - 1][j] + delete_subtree[children_f[i - 1]],
                        table[i][j - 1] + insert_subtree[children_g[j - 1]],
                        table[i - 1][j - 1] + memo[(children_f[i - 1], children_g[j - 1])],
                    )

            memo[(a, b)] = (
                cm.rename(tree_f.labels[a], tree_g.labels[b]) + table[rows - 1][cols - 1]
            )
        return memo[(v, w)]

    return solve(tree_f.root, tree_g.root)
