"""pq-gram distance (Augsten, Böhlen & Gamper, ACM TODS 2010).

The pq-gram profile of a tree is the multiset of all subtrees consisting of a
*stem* of ``p`` ancestors and a *base* of ``q`` consecutive children, computed
on the tree extended with null nodes so that every node participates in the
same number of pq-grams.  The pq-gram distance is the normalized symmetric
difference of two profiles.

The pq-gram distance is *not* a lower bound of the tree edit distance (it is a
pseudo-metric that approximates a fanout-weighted edit distance), but it is an
effective and extremely cheap filter for similarity joins: trees with a small
edit distance have similar profiles.  It is exposed here alongside the proper
bounds because the join module can use either kind of filter.
"""

from __future__ import annotations

from collections import Counter
from typing import Counter as CounterType, List, Tuple

from ..trees.tree import Tree

#: Null symbol used to pad stems and bases.
NULL_LABEL = "*"


def pq_gram_profile(tree: Tree, p: int = 2, q: int = 3) -> CounterType[Tuple[object, ...]]:
    """Multiset of pq-grams of ``tree`` (each pq-gram is a label tuple of length p+q)."""
    if p < 1 or q < 1:
        raise ValueError("p and q must be >= 1")

    profile: CounterType[Tuple[object, ...]] = Counter()

    # Iterative preorder walk (recursion-free so arbitrarily deep trees work at
    # the default interpreter limit).  Each stack entry carries the stem of the
    # node — the labels of its ≤ p-1 nearest ancestors plus its own label.
    null_stem: Tuple[object, ...] = (NULL_LABEL,) * (p - 1)
    stack: List[Tuple[int, Tuple[object, ...]]] = [(tree.root, null_stem)]
    while stack:
        v, ancestor_stem = stack.pop()
        current_stem = (ancestor_stem + (tree.labels[v],))[-p:]
        padded_stem = (NULL_LABEL,) * (p - len(current_stem)) + current_stem

        children = tree.children[v]
        if not children:
            profile[padded_stem + (NULL_LABEL,) * q] += 1
            continue

        extended = (
            [NULL_LABEL] * (q - 1)
            + [tree.labels[c] for c in children]
            + [NULL_LABEL] * (q - 1)
        )
        for start in range(len(extended) - q + 1):
            profile[padded_stem + tuple(extended[start : start + q])] += 1
        for child in reversed(children):
            stack.append((child, current_stem))
    return profile


def pq_gram_distance(tree_f: Tree, tree_g: Tree, p: int = 2, q: int = 3) -> float:
    """Normalized pq-gram distance in ``[0, 1]``.

    ``1 − 2·|P_F ∩ P_G| / (|P_F| + |P_G|)`` where the intersection is the
    multiset intersection of the two profiles.
    """
    profile_f = pq_gram_profile(tree_f, p=p, q=q)
    profile_g = pq_gram_profile(tree_g, p=p, q=q)
    intersection = sum((profile_f & profile_g).values())
    total = sum(profile_f.values()) + sum(profile_g.values())
    if total == 0:
        return 0.0
    return 1.0 - 2.0 * intersection / total


def pq_gram_symmetric_difference(tree_f: Tree, tree_g: Tree, p: int = 2, q: int = 3) -> int:
    """Size of the symmetric difference of the two pq-gram profiles."""
    profile_f = pq_gram_profile(tree_f, p=p, q=q)
    profile_g = pq_gram_profile(tree_g, p=p, q=q)
    keys = set(profile_f) | set(profile_g)
    return sum(abs(profile_f.get(key, 0) - profile_g.get(key, 0)) for key in keys)
