"""NumPy kernel for the iterative single-path functions.

Same semantics as the pure-Python kernel in :mod:`repro.algorithms.spf`
(the test-suite cross-checks both), but each forest-distance table row is
computed with a handful of ``O(cols)`` vector operations:

* the delete / rename / split candidates of a row depend only on the previous
  row and on already-final tree distances, so they vectorize directly;
* the insert candidate couples ``fd[i][j]`` to ``fd[i][j-1]``; writing
  ``I[j]`` for the cumulative insert costs, the recurrence
  ``fd[i][j] = min(t[j], fd[i][j-1] + ins[j])`` unrolls to
  ``fd[i][j] = I[j] + min_{k<=j}(t[k] - I[k])``, a prefix minimum computed
  with ``np.minimum.accumulate``.

The kernel operates on ``base``, a dense tree-distance matrix whose row axis
is the decomposed tree — the caller passes ``D`` itself or its transposed
*view* ``D.T`` depending on the decomposition side, so no data is copied.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np


def allocate_matrix(n: int, m: int) -> np.ndarray:
    """Dense ``n × m`` tree-distance matrix, NaN-initialized.

    NaN (rather than 0) makes a violated fill-order contract visible: any read
    of a never-written entry propagates into the final distance.
    """
    return np.full((n, m), np.nan, dtype=np.float64)


def as_array(values: Sequence[float]) -> np.ndarray:
    """Cost list → float64 array."""
    return np.asarray(values, dtype=np.float64)


def rename_matrix(
    labels_rows: Sequence[object],
    labels_cols: Sequence[object],
    rename: Callable[[object, object], float],
) -> np.ndarray:
    """Dense rename-cost matrix between two label sequences.

    Labels are interned into integer codes so the cost model is only called
    once per *distinct* label pair (label alphabets are tiny compared to tree
    sizes).  When that does not hold — mostly-distinct labels would make the
    uniques×uniques table larger than the rows×cols result — and for
    unhashable labels, the direct quadratic evaluation is used instead.
    """
    codes: Dict[object, int] = {}
    row_codes = col_codes = None
    try:
        row_codes = np.fromiter(
            (codes.setdefault(label, len(codes)) for label in labels_rows),
            dtype=np.intp,
            count=len(labels_rows),
        )
        col_codes = np.fromiter(
            (codes.setdefault(label, len(codes)) for label in labels_cols),
            dtype=np.intp,
            count=len(labels_cols),
        )
    except TypeError:
        pass
    if col_codes is None or len(codes) ** 2 > len(labels_rows) * len(labels_cols):
        return np.array(
            [[rename(a, b) for b in labels_cols] for a in labels_rows], dtype=np.float64
        )
    uniques = list(codes)
    table = np.empty((len(uniques), len(uniques)), dtype=np.float64)
    for i, label_a in enumerate(uniques):
        for j, label_b in enumerate(uniques):
            table[i, j] = rename(label_a, label_b)
    return table[row_codes[:, None], col_codes[None, :]]


def _frame_arrays(frame) -> Dict[str, np.ndarray]:
    """Integer arrays of a :class:`~repro.algorithms.spf._Frame`, cached on it."""
    arrays = frame.np_arrays
    if arrays is None:
        arrays = {
            "lml": np.asarray(frame.lml, dtype=np.intp),
            "to_post": np.asarray(frame.to_post, dtype=np.intp),
        }
        frame.np_arrays = arrays
    return arrays


#: Minimum region width (columns) for the vectorized kernel.  Rows are swept
#: with ``O(cols)`` array operations whose fixed overhead (~a dozen ufunc
#: dispatches) only pays off for wide tables; narrow regions — the vast
#: majority on branchy trees — run faster through the scalar fallback kernel.
MIN_VECTOR_COLS = 16


def run_regions(
    dec,
    oth,
    dec_keyroots: List[int],
    oth_keyroots: List[int],
    del_costs: np.ndarray,
    ins_costs: np.ndarray,
    rename: np.ndarray,
    base: np.ndarray,
    fallback: Callable[[int, int], int],
) -> int:
    """Fill every keyroot-pair table of the given keyroot lists.

    Wide tables are swept with the vectorized row kernel; tables narrower
    than :data:`MIN_VECTOR_COLS` are delegated to ``fallback`` (the bound
    pure-Python kernel).  Returns the number of forest-distance cells
    evaluated.
    """
    oth_arrays = _frame_arrays(oth)
    dec_arrays = _frame_arrays(dec)
    oth_lml = oth.lml
    cells = 0
    for kg in oth_keyroots:
        vectorize = kg - oth_lml[kg] + 1 >= MIN_VECTOR_COLS
        for kf in dec_keyroots:
            if vectorize:
                cells += _region(
                    dec, oth, kf, kg, del_costs, ins_costs, rename, base,
                    dec_arrays["to_post"], oth_arrays["to_post"], oth_arrays["lml"],
                )
            else:
                cells += fallback(kf, kg)
    return cells


def _region(
    dec,
    oth,
    kf: int,
    kg: int,
    del_costs: np.ndarray,
    ins_costs: np.ndarray,
    rename: np.ndarray,
    base: np.ndarray,
    to_post_f: np.ndarray,
    to_post_g: np.ndarray,
    lml_g_array: np.ndarray,
) -> int:
    """One keyroot-pair forest-distance table, swept row-by-row."""
    lml_f = dec.lml
    lf = lml_f[kf]
    lg = oth.lml[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2

    inserts = ins_costs[lg : kg + 1]
    cumulative = np.empty(cols, dtype=np.float64)
    cumulative[0] = 0.0
    np.cumsum(inserts, out=cumulative[1:])

    lml_g_region = lml_g_array[lg : kg + 1]
    spans_g = lml_g_region == lg
    split_cols = lml_g_region - lg

    row_posts = to_post_f[lf : kf + 1]
    col_posts = to_post_g[lg : kg + 1]
    # Snapshot of the subtree distances this region may read.  Cells that are
    # *written* by this region (spine × spanning) are never read by it, so the
    # snapshot cannot go stale; their NaNs are masked out below.
    tree_dists = base[row_posts[:, None], col_posts[None, :]]
    rename_block = rename[lf : kf + 1, lg : kg + 1]
    write_cols = col_posts[spans_g]

    fd = np.empty((rows, cols), dtype=np.float64)
    fd[0] = cumulative
    deletes = del_costs[lf : kf + 1]
    special = np.empty(cols - 1, dtype=np.float64)
    spanning = np.empty(cols - 1, dtype=np.float64)

    for i in range(1, rows):
        node_f = lf + i - 1
        previous = fd[i - 1]
        delete_cost = deletes[i - 1]
        spans_f = lml_f[node_f] == lf

        # Candidate 3 of the recurrence: forest split (read-back of final
        # subtree distances) or, on spanning×spanning cells, rename.
        split_row = fd[lml_f[node_f] - lf]
        np.take(split_row, split_cols, out=special)
        special += tree_dists[i - 1]
        if spans_f:
            np.add(previous[:-1], rename_block[i - 1], out=spanning)
            np.copyto(special, spanning, where=spans_g)

        # t[j] = min(delete, special); then the insert candidate couples the
        # row left-to-right, resolved by the prefix minimum of t - I.
        row = fd[i]
        np.add(previous[1:], delete_cost, out=row[1:])
        np.minimum(row[1:], special, out=row[1:])
        row[0] = previous[0] + delete_cost
        row -= cumulative
        np.minimum.accumulate(row, out=row)
        row += cumulative

        if spans_f and write_cols.size:
            base[row_posts[i - 1], write_cols] = row[1:][spans_g]

    return (rows - 1) * (cols - 1)
