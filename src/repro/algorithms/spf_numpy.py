"""NumPy kernel for the iterative single-path functions.

Same semantics as the pure-Python kernel in :mod:`repro.algorithms.spf`
(the test-suite cross-checks both), but each forest-distance table row is
computed with a handful of ``O(cols)`` vector operations:

* the delete / rename / split candidates of a row depend only on the previous
  row and on already-final tree distances, so they vectorize directly;
* the insert candidate couples ``fd[i][j]`` to ``fd[i][j-1]``; writing
  ``I[j]`` for the cumulative insert costs, the recurrence
  ``fd[i][j] = min(t[j], fd[i][j-1] + ins[j])`` unrolls to
  ``fd[i][j] = I[j] + min_{k<=j}(t[k] - I[k])``, a prefix minimum computed
  with ``np.minimum.accumulate``.

The kernel operates on ``base``, a dense tree-distance matrix whose row axis
is the decomposed tree — the caller passes ``D`` itself or its transposed
*view* ``D.T`` depending on the decomposition side, so no data is copied.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import env_int
from .base import CutoffExceeded


def allocate_matrix(n: int, m: int) -> np.ndarray:
    """Dense ``n × m`` tree-distance matrix, NaN-initialized.

    NaN (rather than 0) makes a violated fill-order contract visible: any read
    of a never-written entry propagates into the final distance.
    """
    return np.full((n, m), np.nan, dtype=np.float64)


def as_array(values: Sequence[float]) -> np.ndarray:
    """Cost list → float64 array."""
    return np.asarray(values, dtype=np.float64)


def rename_matrix(
    labels_rows: Sequence[object],
    labels_cols: Sequence[object],
    rename: Callable[[object, object], float],
) -> np.ndarray:
    """Dense rename-cost matrix between two label sequences.

    Labels are interned into integer codes so the cost model is only called
    once per *distinct* label pair (label alphabets are tiny compared to tree
    sizes).  When that does not hold — mostly-distinct labels would make the
    uniques×uniques table larger than the rows×cols result — and for
    unhashable labels, the direct quadratic evaluation is used instead.
    """
    codes: Dict[object, int] = {}
    row_codes = col_codes = None
    try:
        row_codes = np.fromiter(
            (codes.setdefault(label, len(codes)) for label in labels_rows),
            dtype=np.intp,
            count=len(labels_rows),
        )
        col_codes = np.fromiter(
            (codes.setdefault(label, len(codes)) for label in labels_cols),
            dtype=np.intp,
            count=len(labels_cols),
        )
    except TypeError:
        pass
    if col_codes is None or len(codes) ** 2 > len(labels_rows) * len(labels_cols):
        return np.array(
            [[rename(a, b) for b in labels_cols] for a in labels_rows], dtype=np.float64
        )
    uniques = list(codes)
    table = np.empty((len(uniques), len(uniques)), dtype=np.float64)
    for i, label_a in enumerate(uniques):
        for j, label_b in enumerate(uniques):
            table[i, j] = rename(label_a, label_b)
    return table[row_codes[:, None], col_codes[None, :]]


def _frame_arrays(frame) -> Dict[str, np.ndarray]:
    """Integer arrays of a :class:`~repro.algorithms.spf._Frame`, cached on it."""
    arrays = frame.np_arrays
    if arrays is None:
        arrays = {
            "lml": np.asarray(frame.lml, dtype=np.intp),
            "to_post": np.asarray(frame.to_post, dtype=np.intp),
        }
        frame.np_arrays = arrays
    return arrays


#: Minimum region width (columns) for the vectorized kernel.  Rows are swept
#: with ``O(cols)`` array operations whose fixed overhead (~a dozen ufunc
#: dispatches) only pays off for wide tables; narrow regions — the vast
#: majority on branchy trees — run faster through the scalar fallback kernel.
#: The default is set from ``benchmarks/bench_vector_cols.py`` (see the
#: rationale in ``DESIGN.md``); override with ``RTED_MIN_VECTOR_COLS`` for
#: hardware where the crossover sits elsewhere.
MIN_VECTOR_COLS = env_int("RTED_MIN_VECTOR_COLS", 16, minimum=2)


def run_regions(
    dec,
    oth,
    dec_keyroots: List[int],
    oth_keyroots: List[int],
    del_costs: np.ndarray,
    ins_costs: np.ndarray,
    rename: Optional[np.ndarray],
    base: np.ndarray,
    fallback: Callable[[int, int], int],
    unit_codes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    abort: Optional[Tuple[int, int, float, float, float]] = None,
    native_region: Optional[Callable] = None,
    deadline=None,
) -> int:
    """Fill every keyroot-pair table of the given keyroot lists.

    Wide tables are swept with the vectorized row kernel; tables narrower
    than :data:`MIN_VECTOR_COLS` are delegated to ``fallback`` (the bound
    pure-Python kernel).  With ``unit_codes`` — frame-order integer label
    codes of the decomposed / other tree, unit-cost workspaces only — the
    row sweep runs the unit specialization: ``rename`` may be ``None`` (no
    rename matrix is ever built) and delete/insert costs are constant-folded
    to 1.  ``abort`` — a ``(kf, kg, cutoff, band, slack)`` spec naming the final
    region of a bounded computation — arms the per-row early-abort check in
    that region (the fallback kernel carries its own copy of the spec).
    ``native_region`` — the compiled unit-mode region sweep of
    :func:`repro.algorithms.native.native_region_kernel` (``engine="native"``
    with the numba provider) — replaces :func:`_region` on the regions the
    vectorized kernel would sweep, bit-identically (same arithmetic, same
    abort decisions and bounds; its cells are likewise dropped on abort).
    Returns the number of forest-distance cells evaluated.
    """
    oth_arrays = _frame_arrays(oth)
    dec_arrays = _frame_arrays(dec)
    oth_lml = oth.lml
    if native_region is not None and unit_codes is not None:
        lml_f_arr = dec_arrays["lml"]
        lml_g_arr = oth_arrays["lml"]
        to_post_f = dec_arrays["to_post"]
        to_post_g = oth_arrays["to_post"]
    else:
        native_region = None
    cells = 0
    for kg in oth_keyroots:
        vectorize = kg - oth_lml[kg] + 1 >= MIN_VECTOR_COLS
        for kf in dec_keyroots:
            if deadline is not None:
                # Region-granular check; the vectorized/native sweeps below
                # additionally tick per row through the ``deadline`` argument
                # of :func:`_region` (compiled regions run to completion —
                # they are bounded by one keyroot region).
                deadline.tick()
            if vectorize:
                cut = abort[2:] if abort is not None and (kf, kg) == abort[:2] else None
                if native_region is not None:
                    armed = cut is not None
                    r_cells, bound = native_region(
                        lml_f_arr, lml_g_arr, unit_codes[0], unit_codes[1],
                        to_post_f, to_post_g, base, kf, kg, armed,
                        cut[0] if armed else 0.0,
                        cut[1] if armed else 0.0,
                        cut[2] if armed else 0.0,
                    )
                    if bound >= 0.0:
                        raise CutoffExceeded(bound)
                    cells += r_cells
                    continue
                cells += _region(
                    dec, oth, kf, kg, del_costs, ins_costs, rename, base,
                    dec_arrays["to_post"], oth_arrays["to_post"], oth_arrays["lml"],
                    unit_codes, cut, deadline,
                )
            else:
                cells += fallback(kf, kg)
    return cells


#: Cached ``[0.0, 1.0, 2.0, ...]`` prefix for the unit-cost specialization:
#: with all insert costs 1 the cumulative-cost vector is just the index.
_UNIT_PREFIX = np.arange(64, dtype=np.float64)


def _unit_prefix(cols: int) -> np.ndarray:
    global _UNIT_PREFIX
    if cols > _UNIT_PREFIX.size:
        _UNIT_PREFIX = np.arange(2 * cols, dtype=np.float64)
    return _UNIT_PREFIX[:cols]


def _region(
    dec,
    oth,
    kf: int,
    kg: int,
    del_costs: np.ndarray,
    ins_costs: np.ndarray,
    rename: Optional[np.ndarray],
    base: np.ndarray,
    to_post_f: np.ndarray,
    to_post_g: np.ndarray,
    lml_g_array: np.ndarray,
    unit_codes: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    cut: Optional[Tuple[float, float, float]] = None,
    deadline=None,
) -> int:
    """One keyroot-pair forest-distance table, swept row-by-row.

    In unit mode (``unit_codes`` given) no rename matrix exists: the rename
    candidate of a spanning row is ``previous + (codes_g != code_f)`` — a
    code-array equality compare — and the delete/insert costs are the
    constant 1, so the cumulative-cost vector is a cached ``arange``.  All
    unit-mode arithmetic is integer-valued float64 and therefore exact,
    keeping the result bit-identical to the general path.

    ``cut`` — ``(cutoff, band, slack)``, final region of a bounded computation only
    — arms the per-row early abort: after each row the minimum of
    ``row + band · |remaining_F − remaining_G|`` lower-bounds the pair's
    distance (see :func:`repro.algorithms.base.check_row_cutoff`), so
    reaching the cutoff proves ``d ≥ cutoff`` and raises
    :class:`~repro.algorithms.base.CutoffExceeded`.  The check reads the
    finished row and never alters the arithmetic, so sub-cutoff results stay
    bit-identical.
    """
    lml_f = dec.lml
    lf = lml_f[kf]
    lg = oth.lml[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2

    if unit_codes is not None:
        codes_f_region = unit_codes[0]
        codes_g_region = unit_codes[1][lg : kg + 1]
        cumulative = _unit_prefix(cols)
    else:
        inserts = ins_costs[lg : kg + 1]
        cumulative = np.empty(cols, dtype=np.float64)
        cumulative[0] = 0.0
        np.cumsum(inserts, out=cumulative[1:])

    lml_g_region = lml_g_array[lg : kg + 1]
    spans_g = lml_g_region == lg
    split_cols = lml_g_region - lg

    row_posts = to_post_f[lf : kf + 1]
    col_posts = to_post_g[lg : kg + 1]
    # Snapshot of the subtree distances this region may read.  Cells that are
    # *written* by this region (spine × spanning) are never read by it, so the
    # snapshot cannot go stale; their NaNs are masked out below.
    tree_dists = base[row_posts[:, None], col_posts[None, :]]
    rename_block = None if unit_codes is not None else rename[lf : kf + 1, lg : kg + 1]
    write_cols = col_posts[spans_g]

    fd = np.empty((rows, cols), dtype=np.float64)
    fd[0] = cumulative
    deletes = None if unit_codes is not None else del_costs[lf : kf + 1]
    special = np.empty(cols - 1, dtype=np.float64)
    spanning = np.empty(cols - 1, dtype=np.float64)
    if cut is not None:
        cut_cutoff, cut_band, cut_slack = cut
        # remaining-G sizes per column: cols-1-j, constant over rows.
        rem_g = np.arange(cols - 1, -1, -1, dtype=np.float64)

    for i in range(1, rows):
        if deadline is not None:
            deadline.tick()
        node_f = lf + i - 1
        previous = fd[i - 1]
        delete_cost = 1.0 if deletes is None else deletes[i - 1]
        spans_f = lml_f[node_f] == lf

        # Candidate 3 of the recurrence: forest split (read-back of final
        # subtree distances) or, on spanning×spanning cells, rename.
        split_row = fd[lml_f[node_f] - lf]
        np.take(split_row, split_cols, out=special)
        special += tree_dists[i - 1]
        if spans_f:
            if unit_codes is not None:
                np.add(previous[:-1], codes_g_region != codes_f_region[node_f], out=spanning)
            else:
                np.add(previous[:-1], rename_block[i - 1], out=spanning)
            np.copyto(special, spanning, where=spans_g)

        # t[j] = min(delete, special); then the insert candidate couples the
        # row left-to-right, resolved by the prefix minimum of t - I.
        row = fd[i]
        np.add(previous[1:], delete_cost, out=row[1:])
        np.minimum(row[1:], special, out=row[1:])
        row[0] = previous[0] + delete_cost
        row -= cumulative
        np.minimum.accumulate(row, out=row)
        row += cumulative

        if spans_f and write_cols.size:
            base[row_posts[i - 1], write_cols] = row[1:][spans_g]

        if cut is not None:
            # O(1) diagonal probe first (see base.check_row_cutoff): on
            # similar pairs the vector scan never runs.
            rem_f = rows - 1 - i
            diag = cols - 1 - rem_f
            if not (0 <= diag < cols and row[diag] < cut_cutoff):
                bound = float((row + cut_band * np.abs(rem_g - rem_f)).min())
                # Round-off slack for non-dyadic cost sums (base.CUTOFF_SLACK).
                bound *= 1.0 - cut_slack
                if bound >= cut_cutoff:
                    raise CutoffExceeded(bound)

    return (rows - 1) * (cols - 1)


# --------------------------------------------------------------------------- #
# Inner (heavy / arbitrary) path kernel
# --------------------------------------------------------------------------- #

#: Minimum grid width (``m + 1``) for the vectorized inner-path kernel; below
#: this the pure-Python kernel wins on ufunc-dispatch overhead.
MIN_INNER_VECTOR_WIDTH = 12


def _inner_frame_arrays(frame) -> Dict[str, np.ndarray]:
    """Array mirrors of a :class:`~repro.algorithms.spf._GridFrame`, cached.

    Alongside the raw index/cost arrays this caches the per-frame constants of
    the two sweep directions: the canonical-cell masks, the cumulative removal
    costs used by the prefix/suffix-minimum trick, and the jump-target index
    vectors.  They depend only on the frame, so executor task batches that
    decompose many subtrees against the same other-side subtree build them
    once.
    """
    arrays = frame.np_arrays
    if arrays is not None:
        return arrays
    m = frame.m
    width = m + 1
    post_of_pre = np.asarray(frame.post_of_pre, dtype=np.intp)
    pre_of_post = np.asarray(frame.pre_of_post, dtype=np.intp)
    size_pre = np.asarray(frame.size_pre, dtype=np.intp)
    size_post = np.asarray(frame.size_post, dtype=np.intp)
    cost_pre = np.asarray(frame.cost_pre, dtype=np.float64)
    cost_post = np.asarray(frame.cost_post, dtype=np.float64)

    y_range = np.arange(width)
    x_range = np.arange(width)
    # Left removals couple cells along the preorder boundary x: a cell is
    # canonical when the boundary node (preorder x) is inside the forest.
    mask_left = y_range[None, :] > post_of_pre[:, None]  # (m, width)
    c_left = np.where(mask_left, cost_pre[:, None], 0.0)
    suffix_left = np.zeros((width, width), dtype=np.float64)
    suffix_left[:m] = np.cumsum(c_left[::-1], axis=0)[::-1]
    # Right removals couple cells along the postorder boundary y.
    mask_right = pre_of_post[None, :] >= x_range[:, None]  # (width, m)
    d_right = np.where(mask_right, cost_post[None, :], 0.0)
    prefix_right = np.zeros((width, width), dtype=np.float64)
    np.cumsum(d_right, axis=1, out=prefix_right[:, 1:])

    arrays = {
        "post_of_pre": post_of_pre,
        "pre_of_post": pre_of_post,
        "size_pre": size_pre,
        "size_post": size_post,
        "cost_post": cost_post,
        "ins_sum": np.asarray(frame.ins_sum, dtype=np.float64),
        "mask_left": mask_left,
        "suffix_left": suffix_left,
        "mask_right": mask_right,
        "prefix_right": prefix_right,
        "jump_x": np.arange(m) + size_pre,  # x + |G_{y_L}|
        "jump_y": np.arange(1, width) - size_post,  # y - |G_{y_R}|
    }
    frame.np_arrays = arrays
    return arrays


def inner_spine(
    dec_tree,
    chain,
    frame,
    dec_costs: Sequence[float],
    rename: Callable[[object, object], float],
    base: np.ndarray,
    deadline=None,
) -> None:
    """Vectorized inner-path spine kernel (Δ_A / Δ_H).

    Mirrors :meth:`~repro.algorithms.spf.SinglePathContext._inner_spine_py`:
    one boundary grid per chain position, swept with whole-grid vector
    operations.  The insert coupling along the active boundary is resolved
    with the same cumulative-cost prefix/suffix minimum used by the left/right
    kernel; only path-node rows need a per-``x`` loop because their
    forest-split term reads subtree distances produced by the same row.
    """
    g = _inner_frame_arrays(frame)
    m = frame.m
    width = m + 1
    o_lo = frame.o_lo

    nodes = chain.nodes
    on_path = chain.on_path
    remove_right = chain.remove_right
    jump = chain.jump
    n = len(nodes)

    chain_costs = np.asarray([dec_costs[u] for u in nodes], dtype=np.float64)
    del_sum = np.zeros(n + 1, dtype=np.float64)
    del_sum[:n] = np.cumsum(chain_costs[::-1])[::-1]

    readers = [0] * (n + 1)
    for j in range(1, n):
        readers[j] += 1
    for s in range(n):
        if jump[s] < n:
            readers[jump[s]] += 1

    path_nodes = [u for s, u in enumerate(nodes) if on_path[s]]
    ren_rows = rename_matrix(
        [dec_tree.labels[u] for u in path_nodes], frame.labels_post, rename
    )
    path_index = {u: i for i, u in enumerate(path_nodes)}

    post_of_pre = g["post_of_pre"]
    pre_of_post = g["pre_of_post"]
    cost_post = g["cost_post"]
    ins_sum = g["ins_sum"]
    mask_left = g["mask_left"]
    suffix_left = g["suffix_left"]
    mask_right = g["mask_right"]
    prefix_right = g["prefix_right"]
    jump_x = g["jump_x"]
    jump_y = g["jump_y"]

    rows: Dict[int, np.ndarray] = {n: ins_sum}
    for s in range(n - 1, -1, -1):
        u = nodes[s]
        del_u = chain_costs[s]
        row_next = rows[s + 1]
        base_val = del_sum[s]
        if deadline is not None:
            # Whole-grid sweeps below are O(width²) vector work; weight the
            # tick accordingly so detection latency tracks actual cost.
            deadline.tick(width)

        if on_path[s]:
            table = _inner_row_path(
                u, del_u, base_val, row_next, base, o_lo, m, width,
                post_of_pre, pre_of_post, cost_post, ins_sum, mask_right,
                jump_y, ren_rows[path_index[u]], deadline,
            )
        elif remove_right[s]:
            du = base[u, o_lo : o_lo + m]
            jump_grid = rows[jump[s]][:, jump_y]  # (width, m)
            match = np.where(mask_right, du[None, :] + jump_grid, np.inf)
            table = row_next + del_u
            np.minimum(table[:, 1:], match, out=table[:, 1:])
            table[:, 0] = base_val
            table -= prefix_right
            np.minimum.accumulate(table, axis=1, out=table)
            table += prefix_right
        else:
            du_pre = base[u, o_lo : o_lo + m][post_of_pre]
            jump_grid = rows[jump[s]][jump_x, :]  # (m, width)
            match = np.where(mask_left, du_pre[:, None] + jump_grid, np.inf)
            table = np.empty((width, width), dtype=np.float64)
            np.add(row_next[:m], del_u, out=table[:m])
            np.minimum(table[:m], match, out=table[:m])
            table[m] = base_val
            table -= suffix_left
            reversed_view = table[::-1]
            np.minimum.accumulate(reversed_view, axis=0, out=reversed_view)
            table += suffix_left

        rows[s] = table
        readers[s + 1] -= 1
        if readers[s + 1] == 0 and s + 1 < n:
            del rows[s + 1]
        j = jump[s]
        if j < n:
            readers[j] -= 1
            if readers[j] == 0:
                del rows[j]


def _inner_row_path(
    u: int,
    del_u: float,
    base_val: float,
    row_next: np.ndarray,
    base: np.ndarray,
    o_lo: int,
    m: int,
    width: int,
    post_of_pre: np.ndarray,
    pre_of_post: np.ndarray,
    cost_post: np.ndarray,
    ins_sum: np.ndarray,
    mask_right: np.ndarray,
    jump_y: np.ndarray,
    ren_row: np.ndarray,
    deadline=None,
) -> np.ndarray:
    """One path-node row: fills the grid and writes ``D[u][·]`` for all pairs.

    The decomposed forest is the single tree rooted at ``u``; its subtree
    distances against every other-side subtree are produced *by this row* (at
    the tree×tree cells), and the forest-split term of wider cells reads them
    back, which forces the ``x``-descending loop.
    """
    table = np.empty((width, width), dtype=np.float64)
    du_path = np.full(m, np.nan, dtype=np.float64)
    cumulative = np.empty(width, dtype=np.float64)
    for x in range(m, -1, -1):
        if deadline is not None:
            deadline.tick()
        next_row = row_next[x]
        valid = mask_right[x]
        match = np.where(valid, du_path + ins_sum[x][jump_y], np.inf)
        if x < m:
            pstar = post_of_pre[x]
            match[pstar] = next_row[pstar] + ren_row[pstar]
        indep = next_row + del_u
        np.minimum(indep[1:], match, out=indep[1:])
        indep[0] = base_val
        cumulative[0] = 0.0
        np.cumsum(np.where(valid, cost_post, 0.0), out=cumulative[1:])
        indep -= cumulative
        np.minimum.accumulate(indep, out=indep)
        indep += cumulative
        table[x] = indep
        if x < m:
            du_path[pstar] = indep[pstar + 1]
    base[u, o_lo : o_lo + m] = du_path
    return table
