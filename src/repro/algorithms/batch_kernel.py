"""Struct-of-arrays batch kernel for small unit-cost pairs.

The scalar small-pair fast path (:meth:`TedWorkspace.compute_small`) already
strips the per-pair cost of TED down to a flat left-path keyroot program —
but at ~12-node trees the program touches only a few hundred DP cells, so
the Python interpreter's per-*statement* cost dominates the arithmetic.
This module removes the remaining per-pair dispatch by executing the same
program for an **entire batch of pairs in lockstep**:

* **Packing** — :func:`build_corpus_pack` lowers a corpus into
  struct-of-arrays form (:class:`CorpusPack`): interned postorder label
  codes, per-keyroot column tables (codes / spanning flags / split columns /
  node ids, padded to a common width) and, for the decomposed side, the
  *step program* — the flattened sequence of forest-distance rows the
  left-path keyroot sweep executes, one entry per row.  Each keyroot's
  region sweeps its whole subtree, so the program has ``S_F = Σ |subtree(kf)|``
  steps — the tree's relevant-subproblem count along the decomposed axis;
  a pair's full program is ``S_F · K_G`` steps (the F program repeated
  once per G keyroot, i.e. the region loops in ``kg``-major order — any
  ascending keyroot order is a valid schedule because a region only reads
  subtree distances whose covering keyroots are ≤ its own, and the final
  whole-tree region still runs last).
* **Lockstep execution** — :func:`run_batch` advances every pair ("lane")
  through its program simultaneously: step ``t`` performs *one* vectorized
  row update across the batch axis (the insert coupling resolved by the
  same prefix-minimum trick as :func:`repro.algorithms.spf_numpy._region`),
  so the per-step ufunc dispatch is amortized over all active lanes.
  Lanes whose programs end — and, in τ-bounded mode, lanes whose row-abort
  check fires — simply drop out of the active mask.

Bit-identity
------------
All arithmetic is the unit-cost integer-valued float64 of the scalar
kernel: min and +1 are exact, the prefix-minimum unrolling reproduces the
sequential insert recurrence value-for-value, and the padded tail columns
of a row (``j ≥ cols``) are never read by any valid cell (reads at column
``j`` only touch columns ``≤ j`` of finished rows and finalized subtree
distances).  τ-bounded lanes run *unbanded* rows but make the identical
abort decisions as the banded scalar kernel: a banded cell below the
cutoff is bit-exact (PR 5's band invariant), and every out-of-band cell's
true value is ``≥ |i − j| ≥ cutoff``, so the row minima reach the cutoff
in exactly the same row — and the reported cell counts use the scalar
band-window arithmetic (``hi − lo + 1`` per row), not the padded width.
The property suite asserts exact equality against both
:meth:`TedWorkspace.compute_small` and ``zhang_shasha_distance``.
"""

from __future__ import annotations

from math import ceil
from typing import Callable, List, Optional, Sequence, Tuple

from ..runtime import active_deadline

try:  # Optional accelerator, mirroring repro.algorithms.workspace.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


def kernel_available() -> bool:
    """Whether the batch kernel can run (NumPy importable)."""
    return _np is not None


#: Per-lane-block element budget: lanes are processed in blocks sized so
#: ``block_lanes × program_steps`` stays below this, bounding the transient
#: step-metadata matrices (a handful of ``(lanes, steps)`` int64 arrays).
_LANE_ELEMENT_BUDGET = 1 << 20


class CorpusPack:
    """Struct-of-arrays form of one corpus side for :func:`run_batch`.

    All fields are flat NumPy arrays indexed by tree, by keyroot (through
    ``kr_off``/``kr_count``) or by program step (through ``prog_off``);
    trees that do not qualify for the kernel (too large, zero-sized, or
    uninternable labels) contribute empty slices and are flagged off in
    :attr:`eligible`.  A pack is immutable and can serve both sides of a
    batch; packs meant for one batch must share one
    :class:`~repro.algorithms.workspace.LabelInterner` so their codes agree.

    The layout (``E`` = eligible trees, ``K`` = their keyroots, ``P`` =
    their program steps, ``W`` = :attr:`pad_w`)::

        sizes[n_trees]      size_ok[n_trees]     eligible[n_trees]
        kr_off[n_trees] ─┐  prog_off[n_trees] ─┐
        kcols[K] ◄───────┘  prog_i/si/rem[P] ◄─┘   (row index / split row /
        kcodes[K, W]        prog_code/node[P]       rows-1-i of each step)
        kspans[K, W]        prog_spans[P]          (node_f on kf's left path)
        ksc[K, W]           prog_last[P]           (step lies in the last,
        knode[K, W]                                 whole-tree kf block)

    ``kcodes``/``kspans``/``ksc``/``knode`` are the per-keyroot *column
    tables*: entry ``j-1`` of keyroot ``kg``'s row describes column ``j``
    of its regions (``node_g = lg + j − 1``) — its label code, whether it
    lies on ``kg``'s left path, its split column ``lml(node_g) − lg`` and
    its postorder id — padded with inert values (0 / ``False``) beyond the
    region width so full-width vector rows need no per-lane trimming.
    """

    __slots__ = (
        "n_trees", "small_pair_cutoff", "pad_w",
        "sizes", "size_ok", "eligible",
        "kr_off", "kr_count", "kcols", "kcodes", "kspans", "ksc", "knode",
        "prog_off", "prog_len",
        "prog_i", "prog_si", "prog_rem", "prog_code", "prog_node",
        "prog_spans", "prog_last",
        "node_off", "lml_flat", "codes_flat", "kroots",
        "_shm",
    )

    def __init__(self, **arrays) -> None:
        for name in self.__slots__:
            if name != "_shm":
                setattr(self, name, arrays[name])
        #: Keeps an attached shared-memory block alive for the pack's
        #: lifetime (see :mod:`repro.join.shared`); ``None`` for packs that
        #: own their arrays.
        self._shm = arrays.get("_shm")

    #: The array fields (in a fixed order) — the serialization contract of
    #: :mod:`repro.join.shared`.
    ARRAY_FIELDS = (
        "sizes", "size_ok", "eligible",
        "kr_off", "kr_count", "kcols", "kcodes", "kspans", "ksc", "knode",
        "prog_off", "prog_len",
        "prog_i", "prog_si", "prog_rem", "prog_code", "prog_node",
        "prog_spans", "prog_last",
        "node_off", "lml_flat", "codes_flat", "kroots",
    )


def build_corpus_pack(trees: Sequence, interner, small_pair_cutoff: int) -> CorpusPack:
    """Lower ``trees`` into a :class:`CorpusPack` (one-time, ``O(Σ n)``).

    ``interner`` provides the label codes (and records any new labels);
    ``small_pair_cutoff`` bounds the tree sizes the kernel handles —
    larger trees are packed as ineligible stubs and fall back to the
    per-pair path.
    """
    if _np is None:  # pragma: no cover - callers gate on kernel_available()
        raise RuntimeError("the batch kernel requires numpy")
    n_trees = len(trees)
    sizes = _np.zeros(n_trees, dtype=_np.int64)
    size_ok = _np.zeros(n_trees, dtype=bool)
    eligible = _np.zeros(n_trees, dtype=bool)
    kr_off = _np.zeros(n_trees, dtype=_np.int64)
    kr_count = _np.zeros(n_trees, dtype=_np.int64)
    prog_off = _np.zeros(n_trees, dtype=_np.int64)
    prog_len = _np.zeros(n_trees, dtype=_np.int64)

    node_off = _np.zeros(n_trees, dtype=_np.int64)

    packed: List[Tuple[int, object, List[int], Sequence[int], List[int]]] = []
    pad_w = 1
    total_kr = 0
    total_prog = 0
    total_nodes = 0
    for idx, tree in enumerate(trees):
        n = tree.n
        sizes[idx] = n
        if not 0 < n <= small_pair_cutoff:
            continue
        size_ok[idx] = True
        codes = interner.codes_postorder(tree)
        if codes is None:
            continue
        eligible[idx] = True
        keyroots = tree.keyroots_left()
        lml = tree.lml
        kr_off[idx] = total_kr
        kr_count[idx] = len(keyroots)
        prog_off[idx] = total_prog
        node_off[idx] = total_nodes
        # One program step per forest-distance row: each keyroot's region
        # sweeps its whole subtree, so the program length is the tree's
        # relevant-subproblem count along this axis, Σ |subtree(kf)|.
        prog_len[idx] = sum(kf - lml[kf] + 1 for kf in keyroots)
        packed.append((idx, tree, lml, codes, keyroots))
        pad_w = max(pad_w, n)  # the root keyroot's region spans all n nodes
        total_kr += len(keyroots)
        total_prog += int(prog_len[idx])
        total_nodes += n

    kcols = _np.zeros(total_kr, dtype=_np.int64)
    kcodes = _np.zeros((total_kr, pad_w), dtype=_np.int64)
    kspans = _np.zeros((total_kr, pad_w), dtype=bool)
    ksc = _np.zeros((total_kr, pad_w), dtype=_np.int64)
    knode = _np.zeros((total_kr, pad_w), dtype=_np.int64)
    prog_i = _np.zeros(total_prog, dtype=_np.int64)
    prog_si = _np.zeros(total_prog, dtype=_np.int64)
    prog_rem = _np.zeros(total_prog, dtype=_np.int64)
    prog_code = _np.zeros(total_prog, dtype=_np.int64)
    prog_node = _np.zeros(total_prog, dtype=_np.int64)
    prog_spans = _np.zeros(total_prog, dtype=bool)
    prog_last = _np.zeros(total_prog, dtype=bool)
    # Raw concatenated per-tree arrays — the inputs of the compiled backend
    # (:mod:`repro.algorithms.native`), which re-runs the scalar keyroot
    # program per lane instead of consuming the lockstep column tables.
    lml_flat = _np.zeros(total_nodes, dtype=_np.int64)
    codes_flat = _np.zeros(total_nodes, dtype=_np.int64)
    kroots = _np.zeros(total_kr, dtype=_np.int64)

    kr = 0
    p = 0
    node = 0
    for idx, tree, lml, codes, keyroots in packed:
        n = tree.n
        lml_flat[node : node + n] = lml
        codes_flat[node : node + n] = codes
        node += n
        kroots[kr : kr + len(keyroots)] = keyroots
        for kg in keyroots:
            lg = lml[kg]
            width = kg - lg + 1  # cols - 1
            kcols[kr] = width + 1
            for jj in range(width):
                node_g = lg + jj
                kcodes[kr, jj] = codes[node_g]
                kspans[kr, jj] = lml[node_g] == lg
                ksc[kr, jj] = lml[node_g] - lg
                knode[kr, jj] = node_g
            kr += 1
        for kf in keyroots:
            lf = lml[kf]
            last = kf == n - 1
            rows = kf - lf + 2
            for i in range(1, rows):
                node_f = lf + i - 1
                prog_i[p] = i
                prog_si[p] = lml[node_f] - lf
                prog_rem[p] = rows - 1 - i
                prog_code[p] = codes[node_f]
                prog_node[p] = node_f
                prog_spans[p] = lml[node_f] == lf
                prog_last[p] = last
                p += 1

    return CorpusPack(
        n_trees=n_trees, small_pair_cutoff=int(small_pair_cutoff), pad_w=pad_w,
        sizes=sizes, size_ok=size_ok, eligible=eligible,
        kr_off=kr_off, kr_count=kr_count, kcols=kcols, kcodes=kcodes,
        kspans=kspans, ksc=ksc, knode=knode,
        prog_off=prog_off, prog_len=prog_len,
        prog_i=prog_i, prog_si=prog_si, prog_rem=prog_rem,
        prog_code=prog_code, prog_node=prog_node,
        prog_spans=prog_spans, prog_last=prog_last,
        node_off=node_off, lml_flat=lml_flat, codes_flat=codes_flat,
        kroots=kroots,
    )


def run_batch(
    pack_a: CorpusPack,
    pack_b: CorpusPack,
    fi,
    gi,
    cutoff: Optional[float] = None,
):
    """Execute the batched small-pair program for lanes ``(fi[p], gi[p])``.

    Every lane must be eligible in its pack, and — in bounded mode — must
    have passed the size pre-check (``|n − m| < cutoff``); the chunk driver
    (:func:`kernel_chunk_entries`) handles both.  Returns
    ``(values, cells, aborted)`` arrays in lane order: for finished lanes
    ``values`` is the exact distance, for bounded lanes at/above the cutoff
    it is the proving bound (the cutoff itself — banded values may be
    inflated, exactly like the scalar kernel) with ``aborted=True``.
    """
    fi = _np.ascontiguousarray(fi, dtype=_np.int64)
    gi = _np.ascontiguousarray(gi, dtype=_np.int64)
    lanes = fi.size
    values = _np.empty(lanes, dtype=_np.float64)
    cells = _np.zeros(lanes, dtype=_np.int64)
    aborted = _np.zeros(lanes, dtype=bool)
    if lanes == 0:
        return values, cells, aborted

    deadline = active_deadline()
    total = pack_a.prog_len[fi] * pack_b.kr_count[gi]
    order = _np.argsort(-total, kind="stable")
    start = 0
    while start < lanes:
        t_blk = int(total[order[start]])
        block = max(1, _LANE_ELEMENT_BUDGET // max(1, t_blk))
        sel = order[start : start + block]
        v, c, a = _run_block(pack_a, pack_b, fi[sel], gi[sel], cutoff, deadline)
        values[sel] = v
        cells[sel] = c
        aborted[sel] = a
        start += block
    return values, cells, aborted


def _run_block(pack_a, pack_b, fi, gi, cutoff, deadline=None):
    """One lane block in lockstep; lanes arrive sorted by descending work."""
    lanes = fi.size
    n = pack_a.sizes[fi]
    m = pack_b.sizes[gi]
    steps = pack_a.prog_len[fi]
    nkr = pack_b.kr_count[gi]
    total = steps * nkr
    t_max = int(total[0])

    # Step metadata, (lanes, t_max), gathered once: step t of lane p runs
    # F-program row (t mod n_p) against G keyroot (t div n_p).
    t_range = _np.arange(t_max, dtype=_np.int64)
    s_idx = t_range[None, :] % steps[:, None]
    blk = _np.minimum(t_range[None, :] // steps[:, None], (nkr - 1)[:, None])
    pf = pack_a.prog_off[fi][:, None] + s_idx
    gk = pack_b.kr_off[gi][:, None] + blk
    del s_idx
    active = t_range[None, :] < total[:, None]
    # Transposed (t_max, lanes) so each step reads contiguous rows.
    i_t = _np.ascontiguousarray(pack_a.prog_i[pf].T)
    si_t = _np.ascontiguousarray(pack_a.prog_si[pf].T)
    code_t = _np.ascontiguousarray(pack_a.prog_code[pf].T)
    node_t = _np.ascontiguousarray(pack_a.prog_node[pf].T)
    spans_t = _np.ascontiguousarray(pack_a.prog_spans[pf].T)
    gk_t = _np.ascontiguousarray(gk.T)
    cols_t = _np.ascontiguousarray(pack_b.kcols[gk].T)

    if cutoff is None:
        cells_total = ((pack_b.kcols[gk] - 1) * active).sum(axis=1)
        cells_cum = None
        final_t = rem_t = None
        any_final = None
    else:
        # Scalar band bookkeeping, computed analytically: the banded sweep
        # visits max(0, hi - lo + 1) cells per row with
        # hi = min(cols - 1, i + bw), lo = max(1, i - bw); rows the scalar
        # kernel breaks out of (band left the table) contribute 0 either way.
        band_w = max(0, ceil(cutoff) - 1)
        i_all = pack_a.prog_i[pf]
        cols_all = pack_b.kcols[gk]
        hi = _np.minimum(cols_all - 1, i_all + band_w)
        lo = _np.maximum(1, i_all - band_w)
        cells_cum = _np.cumsum(
            _np.clip(hi - lo + 1, 0, None) * active, axis=1
        )
        cells_total = cells_cum[:, -1]
        del i_all, cols_all, hi, lo
        final = pack_a.prog_last[pf] & (blk == (nkr - 1)[:, None])
        final_t = _np.ascontiguousarray(final.T)
        rem_t = _np.ascontiguousarray(pack_a.prog_rem[pf].T)
        any_final = final.any(axis=0)
        del final
    del pf, gk, active

    width = int(m.max()) + 1  # row length: columns 0..cols-1, cols ≤ m+1
    w1 = width - 1
    rows_max = int(n.max()) + 1
    fd = _np.zeros((lanes, rows_max, width), dtype=_np.float64)
    fd[:, 0, :] = _np.arange(width, dtype=_np.float64)
    dm = _np.zeros((lanes, int((n * m).max())), dtype=_np.float64)
    iota = _np.arange(width, dtype=_np.float64)
    jw = _np.arange(width, dtype=_np.int64)

    values = _np.empty(lanes, dtype=_np.float64)
    aborted = _np.zeros(lanes, dtype=bool)
    out_cells = _np.asarray(cells_total, dtype=_np.int64).copy()
    alive = _np.ones(lanes, dtype=bool)
    lane_idx = _np.arange(lanes, dtype=_np.int64)
    limit = lanes
    act = lane_idx
    act_stale = False

    for t in range(t_max):
        while limit > 0 and total[limit - 1] <= t:
            limit -= 1
            act_stale = True
        if limit == 0:
            break
        if deadline is not None:
            # One lockstep step is a whole vectorized row update across
            # every active lane, so weight the tick by the lane count.
            deadline.tick(limit)
        if act_stale:
            act = lane_idx[:limit][alive[:limit]]
            act_stale = False
            if act.size == 0:
                break
        contiguous = act.size == limit  # no dead lanes in the prefix

        if contiguous:
            i = i_t[t, :limit]
            si = si_t[t, :limit]
            code_f = code_t[t, :limit]
            node_f = node_t[t, :limit]
            spans_f = spans_t[t, :limit]
            kg = gk_t[t, :limit]
            mm = m[:limit]
        else:
            i = i_t[t, act]
            si = si_t[t, act]
            code_f = code_t[t, act]
            node_f = node_t[t, act]
            spans_f = spans_t[t, act]
            kg = gk_t[t, act]
            mm = m[act]

        prev = fd[act, i - 1]  # (a, width)
        split = fd[act, si]
        col_codes = pack_b.kcodes[kg, :w1]
        col_spans = pack_b.kspans[kg, :w1]
        col_sc = pack_b.ksc[kg, :w1]
        col_node = pack_b.knode[kg, :w1]
        dcol = node_f[:, None] * mm[:, None] + col_node
        rows2d = _np.broadcast_to(act[:, None], dcol.shape)
        # Candidate 3: forest split (finalized subtree distances) or, on
        # spanning×spanning cells, rename — a code equality compare.
        special = _np.take_along_axis(split, col_sc, axis=1)
        special += dm[rows2d, dcol]
        cell_span = spans_f[:, None] & col_spans
        _np.copyto(
            special, prev[:, :-1] + (col_codes != code_f[:, None]), where=cell_span
        )
        # Delete candidate, then the insert coupling via the prefix minimum.
        row = _np.empty((act.size, width), dtype=_np.float64)
        _np.add(prev[:, 1:], 1.0, out=row[:, 1:])
        _np.minimum(row[:, 1:], special, out=row[:, 1:])
        row[:, 0] = i
        row -= iota
        _np.minimum.accumulate(row, axis=1, out=row)
        row += iota
        fd[act, i] = row
        if cell_span.any():
            dm[rows2d[cell_span], dcol[cell_span]] = row[:, 1:][cell_span]

        if any_final is not None and any_final[t]:
            fsel = final_t[t, act] if not contiguous else final_t[t, :limit]
            if fsel.any():
                sub = _np.flatnonzero(fsel)
                cols_f = pack_b.kcols[kg[sub]]
                rem_f = rem_t[t, act[sub]].astype(_np.float64)
                rem_g = (cols_f - 1)[:, None] - jw[None, :]
                terms = _np.where(
                    jw[None, :] < cols_f[:, None],
                    row[sub] + _np.abs(rem_f[:, None] - rem_g),
                    _np.inf,
                )
                fired = terms.min(axis=1) >= cutoff
                if fired.any():
                    dead = act[sub[fired]]
                    alive[dead] = False
                    aborted[dead] = True
                    values[dead] = cutoff
                    out_cells[dead] = cells_cum[dead, t]
                    act_stale = True

    live = _np.flatnonzero(alive)
    if live.size:
        dist = dm[live, (n[live] - 1) * m[live] + (m[live] - 1)]
        values[live] = dist
        if cutoff is not None:
            over = dist >= cutoff
            if over.any():
                lanes_over = live[over]
                # Banded values at/above the cutoff may be inflated; the
                # cutoff itself is the certified bound (scalar final check).
                values[lanes_over] = cutoff
                aborted[lanes_over] = True
    return values, out_cells, aborted


def kernel_chunk_entries(
    pack_a: CorpusPack,
    pack_b: CorpusPack,
    pairs: Sequence[Tuple[int, int]],
    cutoff: Optional[float],
    fallback: Callable[[int, int], Tuple],
    workspace=None,
    use_native: bool = False,
) -> List[Tuple]:
    """Batch result tuples for one chunk, kernel-eligible lanes in lockstep.

    Replicates the scalar dispatch of :meth:`TedWorkspace.compute_small`
    pair by pair — in order: size gate (oversized pairs fall back), bounded
    size pre-check (``|n − m| ≥ cutoff`` aborts with the difference as the
    bound *before* label codes are consulted), code gate (uninternable
    labels fall back) — so the emitted tuples are bit-identical to the
    per-pair path, including the ``aborted`` flag and subproblem counts.
    ``fallback`` computes one pair through the ordinary per-pair machinery
    and must return a finished result tuple.  With ``use_native=True`` the
    lanes run through the compiled backend
    (:func:`repro.algorithms.native.native_batch`) when a provider is
    available, falling back to the NumPy lockstep kernel otherwise.
    """
    entries: List[Optional[Tuple]] = [None] * len(pairs)
    lane_pos: List[int] = []
    lane_i: List[int] = []
    lane_j: List[int] = []
    sizes_a = pack_a.sizes
    sizes_b = pack_b.sizes
    size_ok_a = pack_a.size_ok
    size_ok_b = pack_b.size_ok
    elig_a = pack_a.eligible
    elig_b = pack_b.eligible
    for pos, (i, j) in enumerate(pairs):
        if not (size_ok_a[i] and size_ok_b[j]):
            entries[pos] = fallback(i, j)
            continue
        if cutoff is not None:
            diff = abs(int(sizes_a[i]) - int(sizes_b[j]))
            if diff >= cutoff:
                entries[pos] = (i, j, float(diff), 0, True)
                continue
        if not (elig_a[i] and elig_b[j]):
            entries[pos] = fallback(i, j)
            continue
        lane_pos.append(pos)
        lane_i.append(i)
        lane_j.append(j)
    if lane_pos:
        out = None
        if use_native:
            from .native import native_batch

            deadline = active_deadline()
            if deadline is not None:
                # The compiled backend runs a whole chunk to completion, so
                # check once up front: a chunk is bounded (small pairs only)
                # and the granularity matches the supervisor's per-chunk
                # deadline handling.
                deadline.check()
            out = native_batch(pack_a, pack_b, lane_i, lane_j, cutoff=cutoff)
            if out is not None and workspace is not None:
                workspace.stats.native_runs += len(lane_pos)
        if out is None:
            out = run_batch(pack_a, pack_b, lane_i, lane_j, cutoff=cutoff)
        values, cell_counts, aborts = out
        if workspace is not None:
            workspace.stats.small_pair_runs += len(lane_pos)
            workspace.stats.batch_lanes += len(lane_pos)
        if cutoff is None:
            for p, pos in enumerate(lane_pos):
                entries[pos] = (
                    lane_i[p], lane_j[p], float(values[p]), int(cell_counts[p]),
                )
        else:
            for p, pos in enumerate(lane_pos):
                entries[pos] = (
                    lane_i[p], lane_j[p], float(values[p]), int(cell_counts[p]),
                    bool(aborts[p]),
                )
    return entries
