"""Edit mappings and edit scripts.

Beyond the distance *value*, many applications (diffing, change detection,
record linkage) need the actual node alignment that realizes the minimum
cost.  This module backtracks through the Zhang–Shasha dynamic program to
produce an :class:`EditMapping` — the set of matched node pairs plus the
deleted and inserted nodes — and converts it into a human-readable edit
script.

The mapping produced is optimal for the supplied cost model: its cost always
equals the tree edit distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..costs import CostModel
from ..trees.tree import Tree
from .base import resolve_cost_model
from .zhang_shasha import zhang_shasha_distance


@dataclass
class EditOperation:
    """A single node edit operation of an edit script."""

    op: str
    """One of ``"delete"``, ``"insert"``, ``"rename"``, ``"match"``."""

    source: Optional[int] = None
    """Postorder id in the source tree (``None`` for insertions)."""

    target: Optional[int] = None
    """Postorder id in the target tree (``None`` for deletions)."""

    source_label: Optional[object] = None
    target_label: Optional[object] = None
    cost: float = 0.0

    def __str__(self) -> str:
        if self.op == "delete":
            return f"delete {self.source_label!r} (source node {self.source})"
        if self.op == "insert":
            return f"insert {self.target_label!r} (target node {self.target})"
        if self.op == "rename":
            return (
                f"rename {self.source_label!r} -> {self.target_label!r} "
                f"(source {self.source}, target {self.target})"
            )
        return f"match {self.source_label!r} (source {self.source}, target {self.target})"


@dataclass
class EditMapping:
    """An optimal node alignment between two trees.

    ``matches`` contains pairs of postorder ids ``(v, w)`` of aligned nodes
    (including identity matches and renames); ``deletions`` and ``insertions``
    list unmatched source / target nodes.
    """

    matches: List[Tuple[int, int]] = field(default_factory=list)
    deletions: List[int] = field(default_factory=list)
    insertions: List[int] = field(default_factory=list)
    cost: float = 0.0

    def to_edit_script(self, tree_f: Tree, tree_g: Tree, cost_model: CostModel) -> List[EditOperation]:
        """Expand the mapping into explicit edit operations."""
        script: List[EditOperation] = []
        for v in sorted(self.deletions):
            script.append(
                EditOperation(
                    op="delete",
                    source=v,
                    source_label=tree_f.labels[v],
                    cost=cost_model.delete(tree_f.labels[v]),
                )
            )
        for v, w in sorted(self.matches):
            rename_cost = cost_model.rename(tree_f.labels[v], tree_g.labels[w])
            script.append(
                EditOperation(
                    op="rename" if rename_cost > 0 else "match",
                    source=v,
                    target=w,
                    source_label=tree_f.labels[v],
                    target_label=tree_g.labels[w],
                    cost=rename_cost,
                )
            )
        for w in sorted(self.insertions):
            script.append(
                EditOperation(
                    op="insert",
                    target=w,
                    target_label=tree_g.labels[w],
                    cost=cost_model.insert(tree_g.labels[w]),
                )
            )
        return script

    def is_valid_mapping(self, tree_f: Tree, tree_g: Tree) -> bool:
        """Check the tree-mapping conditions (one-to-one, ancestor & order preserving)."""
        seen_f = set()
        seen_g = set()
        for v, w in self.matches:
            if v in seen_f or w in seen_g:
                return False
            seen_f.add(v)
            seen_g.add(w)
        for v1, w1 in self.matches:
            for v2, w2 in self.matches:
                if v1 == v2:
                    continue
                # Ancestor condition: v1 is an ancestor of v2 iff w1 is an
                # ancestor of w2.
                anc_f = tree_f.is_descendant(v2, v1) and v1 != v2
                anc_g = tree_g.is_descendant(w2, w1) and w1 != w2
                if anc_f != anc_g:
                    return False
                # Order condition (on postorder ids for non-ancestor pairs).
                if not anc_f and not (tree_f.is_descendant(v1, v2)):
                    if (v1 < v2) != (w1 < w2):
                        return False
        expected_f = set(range(tree_f.n))
        expected_g = set(range(tree_g.n))
        covered_f = seen_f | set(self.deletions)
        covered_g = seen_g | set(self.insertions)
        return covered_f == expected_f and covered_g == expected_g


def compute_edit_mapping(
    tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
) -> EditMapping:
    """Compute an optimal edit mapping by backtracking the Zhang–Shasha DP."""
    cm = resolve_cost_model(cost_model)
    distance, _, tree_dist = zhang_shasha_distance(tree_f, tree_g, cm)

    mapping = EditMapping(cost=distance)
    matched_f = set()
    matched_g = set()

    # Subtree pairs are backtraced from an explicit worklist (not recursion):
    # each composite cell discovered while walking a forest table schedules
    # the corresponding subtree pair, so arbitrarily deep trees are handled
    # at the default interpreter recursion limit.
    pending: List[Tuple[int, int]] = [(tree_f.root, tree_g.root)]
    while pending:
        root_f, root_g = pending.pop()
        _backtrace_subtrees(tree_f, tree_g, cm, tree_dist, root_f, root_g, mapping, pending)

    for v, _ in mapping.matches:
        matched_f.add(v)
    for _, w in mapping.matches:
        matched_g.add(w)
    mapping.deletions = [v for v in range(tree_f.n) if v not in matched_f]
    mapping.insertions = [w for w in range(tree_g.n) if w not in matched_g]
    return mapping


def _backtrace_subtrees(
    tree_f: Tree,
    tree_g: Tree,
    cost_model: CostModel,
    tree_dist: List[List[float]],
    root_f: int,
    root_g: int,
    mapping: EditMapping,
    pending: List[Tuple[int, int]],
) -> None:
    """Re-run the forest DP for the subtree pair and walk it backwards.

    Composite cells (a subtree distance composed with the surrounding forest)
    are appended to ``pending`` for the caller's worklist instead of being
    followed recursively.
    """
    lml_f, lml_g = tree_f.lml, tree_g.lml
    labels_f, labels_g = tree_f.labels, tree_g.labels
    lf, lg = lml_f[root_f], lml_g[root_g]
    rows = root_f - lf + 2
    cols = root_g - lg + 2

    delete_costs = [cost_model.delete(labels_f[lf + i - 1]) for i in range(1, rows)]
    insert_costs = [cost_model.insert(labels_g[lg + j - 1]) for j in range(1, cols)]

    fd = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + delete_costs[i - 1]
    for j in range(1, cols):
        fd[0][j] = fd[0][j - 1] + insert_costs[j - 1]
    for i in range(1, rows):
        node_f = lf + i - 1
        spans_f = lml_f[node_f] == lf
        for j in range(1, cols):
            node_g = lg + j - 1
            if spans_f and lml_g[node_g] == lg:
                fd[i][j] = min(
                    fd[i - 1][j] + delete_costs[i - 1],
                    fd[i][j - 1] + insert_costs[j - 1],
                    fd[i - 1][j - 1] + cost_model.rename(labels_f[node_f], labels_g[node_g]),
                )
            else:
                fd[i][j] = min(
                    fd[i - 1][j] + delete_costs[i - 1],
                    fd[i][j - 1] + insert_costs[j - 1],
                    fd[lml_f[node_f] - lf][lml_g[node_g] - lg] + tree_dist[node_f][node_g],
                )

    # The backtrace compares candidates with *exact* float equality: each
    # cell was stored as the minimum of exactly these candidate expressions,
    # and recomputing a candidate here repeats the identical arithmetic, so
    # the chosen predecessor compares bit-equal.  A tolerance would be not
    # only unnecessary but wrong — an absolute epsilon mis-selects branches
    # whenever operation costs are at or below it (e.g. 1e-12-scale models)
    # and can over-match for large-magnitude costs where distinct sums sit
    # closer than the tolerance.
    i, j = rows - 1, cols - 1
    while i > 0 or j > 0:
        if i > 0 and fd[i][j] == fd[i - 1][j] + delete_costs[i - 1]:
            i -= 1
            continue
        if j > 0 and fd[i][j] == fd[i][j - 1] + insert_costs[j - 1]:
            j -= 1
            continue
        node_f = lf + i - 1
        node_g = lg + j - 1
        spans_f = lml_f[node_f] == lf
        spans_g = lml_g[node_g] == lg
        if spans_f and spans_g:
            mapping.matches.append((node_f, node_g))
            i -= 1
            j -= 1
        else:
            # The cell was obtained by composing the subtree distance of
            # (node_f, node_g) with the remaining forest: schedule that
            # subtree pair for backtracing and jump over it.
            pending.append((node_f, node_g))
            i = lml_f[node_f] - lf
            j = lml_g[node_g] - lg


def mapping_cost(
    mapping: EditMapping, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
) -> float:
    """Recompute the cost of a mapping from its operations (for validation)."""
    cm = resolve_cost_model(cost_model)
    total = 0.0
    for v in mapping.deletions:
        total += cm.delete(tree_f.labels[v])
    for w in mapping.insertions:
        total += cm.insert(tree_g.labels[w])
    for v, w in mapping.matches:
        total += cm.rename(tree_f.labels[v], tree_g.labels[w])
    return total
