"""Name-based registry of tree edit distance algorithms.

The experiments, the CLI, and the public API refer to algorithms by name
(``"rted"``, ``"zhang-l"``, ...).  The registry maps those names to factory
functions so that new algorithms (or configured GTED variants) can be plugged
in without touching the call sites.

Factories may accept an ``engine`` keyword (see
:func:`repro.algorithms.base.resolve_engine`) selecting the execution
backend: ``engine="auto"`` is each name's production default (the iterative
``spf`` executor for every GTED/RTED variant, the dedicated Zhang–Shasha
tables for ``zhang-l``/``zhang-r``), while ``engine="spf"`` /
``engine="recursive"`` force the iterative single-path executor or the
recursive cross-check oracle for the algorithm's strategy.  Unknown engine
names raise :class:`~repro.exceptions.UnknownEngineError` — there is no
silent fallback — and names with a single implementation (e.g. ``simple``)
reject explicit engine selection the same way.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

from ..exceptions import UnknownAlgorithmError, UnknownEngineError
from .base import ENGINE_AUTO, ENGINE_NATIVE, ENGINE_RECURSIVE, TEDAlgorithm, resolve_engine
from .workspace import TedWorkspace, WorkspaceTED
from .demaine import DemaineTED
from .gted import GTED
from .klein import KleinTED
from .rted import RTED
from .simple import SimpleTED
from .strategies import (
    HeavyFStrategy,
    HeavyGStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    LeftGStrategy,
    RightFStrategy,
    RightGStrategy,
)
from .zhang_shasha import ZhangShashaRightTED, ZhangShashaTED


def _zhang_l(engine: str = ENGINE_AUTO, workspace=None) -> TEDAlgorithm:
    if engine == ENGINE_AUTO:
        return ZhangShashaTED()
    return GTED(LeftFStrategy(), name=f"Zhang-L[{engine}]", engine=engine, workspace=workspace)


def _zhang_r(engine: str = ENGINE_AUTO, workspace=None) -> TEDAlgorithm:
    if engine == ENGINE_AUTO:
        return ZhangShashaRightTED()
    return GTED(RightFStrategy(), name=f"Zhang-R[{engine}]", engine=engine, workspace=workspace)


def _klein(engine: str = ENGINE_AUTO, workspace=None) -> TEDAlgorithm:
    if engine == ENGINE_AUTO:
        return KleinTED()
    return GTED(HeavyFStrategy(), name=f"Klein-H[{engine}]", engine=engine, workspace=workspace)


def _demaine(engine: str = ENGINE_AUTO, workspace=None) -> TEDAlgorithm:
    if engine == ENGINE_AUTO:
        return DemaineTED()
    return GTED(
        HeavyLargerStrategy(), name=f"Demaine-H[{engine}]", engine=engine, workspace=workspace
    )


_FACTORIES: Dict[str, Callable[..., TEDAlgorithm]] = {
    "rted": lambda engine=ENGINE_AUTO, workspace=None: RTED(
        engine=engine, workspace=workspace
    ),
    "zhang-l": _zhang_l,
    "zhang-r": _zhang_r,
    "klein-h": _klein,
    "demaine-h": _demaine,
    "simple": SimpleTED,
    # GTED variants that decompose the right-hand tree; mostly of interest for
    # experimentation with the strategy space.
    "gted-left-g": lambda engine=ENGINE_AUTO, workspace=None: GTED(
        LeftGStrategy(), name="GTED(left-G)", engine=engine, workspace=workspace
    ),
    "gted-right-g": lambda engine=ENGINE_AUTO, workspace=None: GTED(
        RightGStrategy(), name="GTED(right-G)", engine=engine, workspace=workspace
    ),
    "gted-heavy-g": lambda engine=ENGINE_AUTO, workspace=None: GTED(
        HeavyGStrategy(), name="GTED(heavy-G)", engine=engine, workspace=workspace
    ),
}

_ALIASES: Dict[str, str] = {
    "zhang": "zhang-l",
    "zhang-shasha": "zhang-l",
    "zs": "zhang-l",
    "klein": "klein-h",
    "demaine": "demaine-h",
    "robust": "rted",
    "apted": "rted",
    "reference": "simple",
    "oracle": "simple",
}

#: The five algorithms compared throughout the paper's experiments, in the
#: order used by the figures and tables.
PAPER_ALGORITHMS: List[str] = ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]


def available_algorithms() -> List[str]:
    """Sorted list of canonical algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(
    name: str, engine: Optional[str] = None, workspace=None
) -> TEDAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name or alias.

    ``engine`` selects the execution backend for names that support several
    (``"auto"``, ``"recursive"``, ``"spf"``, ``"native"``); ``None`` is
    equivalent to ``"auto"`` and always valid.  ``"native"`` is the ``spf``
    executor with the optional compiled backend
    (:mod:`repro.algorithms.native`) opted in: it implies a workspace (one
    is created when none is passed, so the compiled small-pair kernel has
    its dispatch layer) and silently degrades to the stock NumPy/Python
    kernels when no compiled provider is available or ``RTED_NO_NATIVE=1``
    is set — the engine name itself is always valid.

    ``workspace`` (a :class:`~repro.algorithms.workspace.TedWorkspace`)
    enables the amortized batch path: factories that support it receive the
    workspace for their ``spf`` contexts, and the returned algorithm is
    wrapped in :class:`~repro.algorithms.workspace.WorkspaceTED`, whose
    unit-cost small-pair fast path short-circuits matching pairs.  The
    ``recursive`` engine and the ``simple`` oracle are exempt — they stay
    pure reference implementations.

    Every algorithm the registry produces supports τ-bounded computation,
    ``compute(..., cutoff=τ)`` (see
    :meth:`~repro.algorithms.base.TEDAlgorithm.compute`): exact sub-cutoff
    results, :class:`~repro.algorithms.base.BoundedResult` sentinels
    otherwise — including the workspace fast path and both engines (the
    oracles never abort mid-computation; they apply the final check only).
    """
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    factory = _FACTORIES.get(key)
    if factory is None:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    # Validate the engine *before* instantiating anything so an unknown
    # selector always surfaces as UnknownEngineError, never as a silently
    # ignored keyword.
    resolved = resolve_engine(engine)
    parameters = inspect.signature(factory).parameters
    if resolved == ENGINE_RECURSIVE or key == "simple":
        workspace = None  # oracles never run amortized
    elif (
        resolved == ENGINE_NATIVE
        and workspace is None
        and "workspace" in parameters
    ):
        # The compiled small-pair path dispatches through the workspace
        # layer, so ``native`` implies one.
        workspace = TedWorkspace()
    if "engine" in parameters:
        if workspace is not None and "workspace" in parameters:
            algorithm = factory(engine=resolved, workspace=workspace)
        else:
            algorithm = factory(engine=resolved)
    else:
        if resolved != ENGINE_AUTO:
            raise UnknownEngineError(
                f"algorithm {name!r} has a single implementation; "
                f"engine selection is not supported (got engine={engine!r})"
            )
        algorithm = factory()
    if workspace is not None:
        algorithm = WorkspaceTED(
            algorithm, workspace, use_native=resolved == ENGINE_NATIVE
        )
    return algorithm


def register_algorithm(name: str, factory: Callable[..., TEDAlgorithm]) -> None:
    """Register a custom algorithm factory under ``name`` (lower-cased).

    The factory may be zero-argument or accept an ``engine`` keyword; only
    factories with an ``engine`` parameter participate in engine selection.
    """
    _FACTORIES[name.strip().lower()] = factory
