"""Name-based registry of tree edit distance algorithms.

The experiments, the CLI, and the public API refer to algorithms by name
(``"rted"``, ``"zhang-l"``, ...).  The registry maps those names to factory
functions so that new algorithms (or configured GTED variants) can be plugged
in without touching the call sites.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..exceptions import UnknownAlgorithmError
from .base import TEDAlgorithm
from .demaine import DemaineTED
from .gted import GTED
from .klein import KleinTED
from .rted import RTED
from .simple import SimpleTED
from .strategies import (
    HeavyGStrategy,
    LeftGStrategy,
    RightGStrategy,
)
from .zhang_shasha import ZhangShashaRightTED, ZhangShashaTED

_FACTORIES: Dict[str, Callable[[], TEDAlgorithm]] = {
    "rted": RTED,
    "zhang-l": ZhangShashaTED,
    "zhang-r": ZhangShashaRightTED,
    "klein-h": KleinTED,
    "demaine-h": DemaineTED,
    "simple": SimpleTED,
    # GTED variants that decompose the right-hand tree; mostly of interest for
    # experimentation with the strategy space.
    "gted-left-g": lambda: GTED(LeftGStrategy(), name="GTED(left-G)"),
    "gted-right-g": lambda: GTED(RightGStrategy(), name="GTED(right-G)"),
    "gted-heavy-g": lambda: GTED(HeavyGStrategy(), name="GTED(heavy-G)"),
}

_ALIASES: Dict[str, str] = {
    "zhang": "zhang-l",
    "zhang-shasha": "zhang-l",
    "zs": "zhang-l",
    "klein": "klein-h",
    "demaine": "demaine-h",
    "robust": "rted",
    "apted": "rted",
    "reference": "simple",
    "oracle": "simple",
}

#: The five algorithms compared throughout the paper's experiments, in the
#: order used by the figures and tables.
PAPER_ALGORITHMS: List[str] = ["zhang-l", "zhang-r", "klein-h", "demaine-h", "rted"]


def available_algorithms() -> List[str]:
    """Sorted list of canonical algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str) -> TEDAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name or alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    factory = _FACTORIES.get(key)
    if factory is None:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return factory()


def register_algorithm(name: str, factory: Callable[[], TEDAlgorithm]) -> None:
    """Register a custom algorithm factory under ``name`` (lower-cased)."""
    _FACTORIES[name.strip().lower()] = factory
