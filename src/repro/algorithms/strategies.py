"""Path strategies (Definition 4 of the paper).

A *path strategy* maps every pair of subtrees ``(F_v, G_w)`` to a root-leaf
path in one of the two subtrees.  An *LRH strategy* only uses left, right and
heavy paths.  The strategies of the published algorithms and the optimal
strategy computed by Algorithm 2 are all expressed through the small
:class:`PathChoice` / :class:`Strategy` interface below, which is what the
generic decomposition engine (:mod:`repro.algorithms.forest_engine`) and GTED
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..exceptions import StrategyError
from ..trees.tree import HEAVY, LEFT, PATH_KINDS, RIGHT, Tree

#: Which input tree the chosen path belongs to.
SIDE_F = "F"
SIDE_G = "G"


@dataclass(frozen=True)
class PathChoice:
    """A root-leaf path choice: the owning tree (``F`` or ``G``) and path kind."""

    side: str
    kind: str

    def __post_init__(self) -> None:
        if self.side not in (SIDE_F, SIDE_G):
            raise StrategyError(f"invalid side {self.side!r}; expected 'F' or 'G'")
        if self.kind not in PATH_KINDS:
            raise StrategyError(f"invalid path kind {self.kind!r}; expected one of {PATH_KINDS}")


class Strategy:
    """Base class for path strategies.

    ``choose`` receives the two host trees and the postorder ids of the
    subtree roots of the current pair and returns a :class:`PathChoice`.
    """

    #: Human-readable strategy identifier.
    name: str = "abstract"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LeftFStrategy(Strategy):
    """Zhang-L: always decompose the left-hand tree along its left path."""

    name = "left-F"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_F, LEFT)


class RightFStrategy(Strategy):
    """Zhang-R: always decompose the left-hand tree along its right path."""

    name = "right-F"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_F, RIGHT)


class HeavyFStrategy(Strategy):
    """Klein-H: always decompose the left-hand tree along its heavy path."""

    name = "heavy-F"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_F, HEAVY)


class LeftGStrategy(Strategy):
    """Always decompose the right-hand tree along its left path."""

    name = "left-G"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_G, LEFT)


class RightGStrategy(Strategy):
    """Always decompose the right-hand tree along its right path."""

    name = "right-G"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_G, RIGHT)


class HeavyGStrategy(Strategy):
    """Always decompose the right-hand tree along its heavy path."""

    name = "heavy-G"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        return PathChoice(SIDE_G, HEAVY)


class HeavyLargerStrategy(Strategy):
    """Demaine-H: decompose the larger of the two subtrees along its heavy path."""

    name = "heavy-larger"

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        if tree_f.sizes[v] >= tree_g.sizes[w]:
            return PathChoice(SIDE_F, HEAVY)
        return PathChoice(SIDE_G, HEAVY)


class PrecomputedStrategy(Strategy):
    """A strategy backed by an explicit ``|F| × |G|`` array of path choices.

    This is the form produced by Algorithm 2 (OptStrategy): entry ``(v, w)``
    holds the optimal path for the pair of subtrees rooted at ``v`` and ``w``.
    """

    name = "precomputed"

    def __init__(self, choices: Sequence[Sequence[PathChoice]], name: str = "precomputed") -> None:
        self._choices = choices
        self.name = name

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        try:
            choice = self._choices[v][w]
        except IndexError as exc:
            raise StrategyError(f"no strategy entry for subtree pair ({v}, {w})") from exc
        if choice is None:
            raise StrategyError(f"strategy entry for subtree pair ({v}, {w}) is empty")
        return choice

    def as_matrix(self) -> Sequence[Sequence[PathChoice]]:
        """The raw choice matrix (row = node of F, column = node of G)."""
        return self._choices


#: The six fixed single-path strategies, in the tie-breaking order used by the
#: cost formula (heavy-F, heavy-G, left-F, left-G, right-F, right-G).  The
#: list position doubles as the integer *path-choice code* used by
#: :class:`EncodedStrategy` and the flat-array Algorithm 2.
ALL_FIXED_CHOICES: List[PathChoice] = [
    PathChoice(SIDE_F, HEAVY),
    PathChoice(SIDE_G, HEAVY),
    PathChoice(SIDE_F, LEFT),
    PathChoice(SIDE_G, LEFT),
    PathChoice(SIDE_F, RIGHT),
    PathChoice(SIDE_G, RIGHT),
]


class EncodedStrategy(Strategy):
    """A strategy backed by a flat ``|F| × |G|`` matrix of integer codes.

    Entry ``(v, w)`` is an index into :data:`ALL_FIXED_CHOICES`.  This is the
    form Algorithm 2 produces natively: one small int per subtree pair
    instead of a :class:`PathChoice` object, which keeps the ``O(n^2)``
    strategy matrix allocation-free under NumPy and cache-friendly in pure
    Python.  ``choose`` decodes through the shared six-entry choice table, so
    consumers still receive ordinary :class:`PathChoice` instances.
    """

    name = "encoded"

    def __init__(self, codes: Sequence[Sequence[int]], name: str = "encoded") -> None:
        self._codes = codes
        self.name = name

    def choose(self, tree_f: Tree, tree_g: Tree, v: int, w: int) -> PathChoice:
        try:
            code = self._codes[v][w]
        except IndexError as exc:
            raise StrategyError(f"no strategy entry for subtree pair ({v}, {w})") from exc
        try:
            return ALL_FIXED_CHOICES[code]
        except (IndexError, TypeError) as exc:
            raise StrategyError(
                f"invalid path-choice code {code!r} for subtree pair ({v}, {w})"
            ) from exc

    def as_codes(self) -> Sequence[Sequence[int]]:
        """The raw code matrix (row = node of F, column = node of G)."""
        return self._codes

    def as_matrix(self) -> List[List[PathChoice]]:
        """The decoded :class:`PathChoice` matrix (materialized on demand)."""
        return [[ALL_FIXED_CHOICES[code] for code in row] for row in self._codes]


def fixed_strategy_for(choice: PathChoice) -> Strategy:
    """Return the constant strategy that always answers ``choice``."""
    mapping = {
        (SIDE_F, LEFT): LeftFStrategy,
        (SIDE_F, RIGHT): RightFStrategy,
        (SIDE_F, HEAVY): HeavyFStrategy,
        (SIDE_G, LEFT): LeftGStrategy,
        (SIDE_G, RIGHT): RightGStrategy,
        (SIDE_G, HEAVY): HeavyGStrategy,
    }
    return mapping[(choice.side, choice.kind)]()
