"""Common result type and interface for tree edit distance algorithms.

Every algorithm in :mod:`repro.algorithms` implements :class:`TEDAlgorithm`:
``compute`` returns a :class:`TEDResult` carrying the distance together with
the measurements the paper's experiments need (number of relevant
subproblems, strategy-computation time, distance-computation time), and
``distance`` is a convenience wrapper returning only the number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..costs import UNIT_COST, CostModel, UnitCostModel
from ..exceptions import UnknownEngineError
from ..trees.tree import Tree

#: Execution-engine identifiers.  ``auto`` picks each algorithm's production
#: default — the iterative ``spf`` executor for every GTED/RTED variant, the
#: dedicated Zhang–Shasha tables for ``zhang-l``/``zhang-r``; ``spf`` forces
#: the iterative executor that dispatches *every* strategy step (left, right
#: and heavy) to the single-path functions of :mod:`repro.algorithms.spf`;
#: ``recursive`` forces the strategy-driven
#: :class:`~repro.algorithms.forest_engine.DecompositionEngine`, kept as the
#: cross-check oracle (see ``DESIGN.md``).
ENGINE_AUTO = "auto"
ENGINE_RECURSIVE = "recursive"
ENGINE_SPF = "spf"
#: ``native`` runs the iterative ``spf`` executor with the optional compiled
#: backend (:mod:`repro.algorithms.native`) layered on top: small unit-cost
#: pairs and the unit-mode region sweep go through a Numba ``@njit`` (or
#: system-compiler) kernel when one is available, and fall back to the
#: pure-Python/NumPy paths — bit-identically — when none is (no provider
#: installed, or ``RTED_NO_NATIVE=1``).  ``auto`` never selects it: the
#: compiled backend is opt-in, so default runs stay reproducible on machines
#: without any provider.
ENGINE_NATIVE = "native"

ENGINES = (ENGINE_AUTO, ENGINE_RECURSIVE, ENGINE_SPF, ENGINE_NATIVE)


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine selector (``None`` → ``auto``) or raise.

    Raises
    ------
    UnknownEngineError
        If ``engine`` is not one of :data:`ENGINES`.
    """
    if engine is None:
        return ENGINE_AUTO
    key = str(engine).strip().lower()
    if key not in ENGINES:
        raise UnknownEngineError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
        )
    return key


@dataclass
class TEDResult:
    """Outcome of a tree edit distance computation.

    Attributes
    ----------
    distance:
        The tree edit distance under the supplied cost model.
    algorithm:
        Name of the algorithm that produced the result.
    subproblems:
        Number of relevant subproblems (distinct forest-pair distances) the
        algorithm evaluated; the unit in which the paper measures work.
    strategy_time:
        Seconds spent computing the decomposition strategy (0 for algorithms
        with a hard-coded strategy).
    distance_time:
        Seconds spent in the distance computation proper.
    n_f, n_g:
        Sizes of the two input trees.
    """

    distance: float
    algorithm: str
    subproblems: int = 0
    strategy_time: float = 0.0
    distance_time: float = 0.0
    n_f: int = 0
    n_g: int = 0
    extra: dict = field(default_factory=dict)

    #: Discriminator shared with :class:`BoundedResult`: ``False`` means the
    #: exact distance is available in :attr:`distance`.
    bounded = False

    @property
    def total_time(self) -> float:
        """Strategy time plus distance time."""
        return self.strategy_time + self.distance_time


@dataclass
class BoundedResult:
    """Sentinel outcome of a cutoff-bounded computation: ``distance ≥ cutoff``.

    Returned by ``compute(..., cutoff=τ)`` instead of a :class:`TEDResult`
    whenever the exact distance is *not* below the cutoff.  It deliberately
    has no ``distance`` attribute — the exact distance was (possibly) never
    computed, and any consumer reading a distance off a bounded result would
    be using a wrong number; use :attr:`lower_bound` instead.

    Attributes
    ----------
    lower_bound:
        The bound that proves ``distance ≥ cutoff``.  Always satisfies
        ``cutoff ≤ lower_bound ≤ distance``; when the computation ran to
        completion (``aborted=False``) it *is* the exact distance.
    cutoff:
        The cutoff the computation was bounded by.
    aborted:
        ``True`` when the computation was cut short (pre-check or mid-kernel
        early abort); ``False`` when the full computation ran and merely
        landed at or above the cutoff (the final check).
    """

    lower_bound: float
    cutoff: float
    algorithm: str
    aborted: bool = True
    subproblems: int = 0
    strategy_time: float = 0.0
    distance_time: float = 0.0
    n_f: int = 0
    n_g: int = 0
    extra: dict = field(default_factory=dict)

    #: Discriminator shared with :class:`TEDResult`.
    bounded = True

    @property
    def total_time(self) -> float:
        """Strategy time plus distance time."""
        return self.strategy_time + self.distance_time


class CutoffExceeded(Exception):
    """Internal control-flow signal: a bounded kernel proved ``d ≥ cutoff``.

    Raised from the row kernels / fast paths and caught at the ``compute``
    layer, where it is converted into a :class:`BoundedResult`; it never
    escapes the public API.  ``lower_bound`` carries the proving bound;
    ``subproblems`` the forest-distance cells evaluated before the abort
    (kernels that track a count attach it on the way out, so aborted
    sentinels report their work in the same currency as completed runs).
    """

    def __init__(self, lower_bound: float) -> None:
        super().__init__(lower_bound)
        self.lower_bound = float(lower_bound)
        self.subproblems = 0


#: Relative slack absorbing float round-off in the bounded-computation lower
#: bounds.  The abort machinery compares ``band · k`` style products against
#: the cutoff, while the DP *accumulates* the same costs term by term — and a
#: float sum of ``k`` non-dyadic terms can round up to ``k·u`` relatively
#: below (or above) the single multiply (``u = 2⁻⁵³``; e.g. ten additions of
#: 0.1 give 0.9999999999999999 while ``0.1 · 10 == 1.0``).  Every bound test
#: therefore fires only at ``bound · (1 − slack) ≥ cutoff``, with the slack
#: chosen far above ``k·u`` for any tree this library can process (covers
#: ``k ≤ 2²⁷`` summands), so a pair whose *float* distance is an ulp below
#: the cutoff is never classified as bounded.  The exact
#: :class:`~repro.costs.UnitCostModel` needs no slack: its arithmetic is
#: integer-valued float64 throughout and therefore exact.
CUTOFF_SLACK = 2.0 ** -26


def cutoff_slack(cost_model: CostModel) -> float:
    """The relative bound slack for ``cost_model`` (see :data:`CUTOFF_SLACK`)."""
    return 0.0 if type(cost_model) is UnitCostModel else CUTOFF_SLACK


def cutoff_band(cost_model: CostModel) -> Optional[float]:
    """Per-operation cost floor enabling mid-kernel aborts, or ``None``.

    The sound mid-row abort test adds ``band · |remaining_F − remaining_G|``
    to the running row minimum (see ``DESIGN.md``, *Bounded verification*);
    models without a provable positive :meth:`CostModel.min_operation_cost`
    disable mid-row aborts entirely (only the final check applies).
    """
    floor = cost_model.min_operation_cost()
    if floor is None or floor <= 0:
        return None
    return float(floor)


def cutoff_precheck(
    tree_f: Tree, tree_g: Tree, cost_model: CostModel, cutoff: float
) -> Optional[float]:
    """Size-difference pre-check: a proving bound ``≥ cutoff``, or ``None``.

    ``TED ≥ c · ||F| − |G||`` for any per-operation cost floor ``c``; the
    trivial bound 0 covers non-positive cutoffs (every distance is ≥ 0).
    The returned bound is pre-shrunk by the model's round-off slack (see
    :data:`CUTOFF_SLACK`) so it never exceeds the float-accumulated DP
    distance.
    """
    band = cutoff_band(cost_model)
    bound = 0.0 if band is None else band * abs(tree_f.n - tree_g.n)
    bound *= 1.0 - cutoff_slack(cost_model)
    return bound if bound >= cutoff else None


def precheck_bounded(
    tree_f: Tree,
    tree_g: Tree,
    cost_model: CostModel,
    cutoff: Optional[float],
    algorithm: str,
    watch: "Stopwatch",
    extra: Optional[dict] = None,
) -> Optional[BoundedResult]:
    """The size pre-check as a ready :class:`BoundedResult`, or ``None``.

    Shared by every ``compute(..., cutoff=τ)`` implementation so the
    pre-check block is written once: when :func:`cutoff_precheck` proves
    ``d ≥ cutoff``, the returned sentinel carries that bound with
    ``aborted=True`` and zero subproblems (no DP ever ran).
    """
    if cutoff is None:
        return None
    proof = cutoff_precheck(tree_f, tree_g, cost_model, cutoff)
    if proof is None:
        return None
    return BoundedResult(
        lower_bound=proof,
        cutoff=cutoff,
        algorithm=algorithm,
        aborted=True,
        distance_time=watch.elapsed(),
        n_f=tree_f.n,
        n_g=tree_g.n,
        extra=extra if extra is not None else {},
    )


def check_row_cutoff(
    row,
    cols: int,
    rem_f: int,
    cutoff: float,
    band: float,
    lo: int = 0,
    hi: Optional[int] = None,
    exact_values: bool = True,
    slack: float = 0.0,
) -> None:
    """The sound per-row abort test of a bounded final table region.

    After a row of the final region — whose cells are exact distances
    between prefix forests of the two bounded (sub)trees — the pair's
    distance satisfies ``d ≥ min_j (fd[i][j] + band · |rem_f − rem_g(j)|)``
    with ``rem_f``/``rem_g(j) = cols − 1 − j`` the node counts *beyond* the
    prefixes: restrict an optimal mapping to the row's prefix forest (the
    restriction is a valid forest mapping whose cost appears in ``d``) and
    charge the at least ``|rem_f − rem_g|`` unmatched remaining nodes at the
    per-operation cost floor ``band``.  When the minimum reaches the cutoff,
    ``d ≥ cutoff`` is proven and :class:`CutoffExceeded` carries it out;
    when ``d < cutoff`` the minimum — a lower bound on ``d`` — is below the
    cutoff too, so the check can never fire on a sub-cutoff pair and those
    results stay bit-identical to the unbounded kernels.

    ``lo``/``hi`` restrict the scan to a banded row's computed window (plus
    the always-exact column 0); any sub-cutoff witness cell necessarily
    lies in the band, so scanning only it keeps the test sound.  Banded
    callers pass ``exact_values=False``: their in-band values at or above
    the cutoff may be *inflated*, so the fire decision stays sound (the
    witness of any sub-cutoff pair is bit-exact) but the row minimum is not
    a certified lower bound — the cutoff itself is reported instead.
    ``slack`` (non-unit cost models) shrinks the tested bound so float
    round-off in the DP's accumulated sums can never make the check fire on
    a pair whose *float* distance is below the cutoff — see
    :data:`CUTOFF_SLACK`.
    """
    if hi is None:
        hi = cols - 1
    # O(1) probe before the O(cols) scan: the diagonal cell (equal remaining
    # sizes, zero band term) upper-bounds the row minimum, so a sub-cutoff
    # probe proves the scan cannot fire.  On similar pairs — the ones that
    # never abort — this keeps the per-row overhead at a single comparison.
    diag = cols - 1 - rem_f
    if lo <= diag <= hi and row[diag] < cutoff:
        return
    best = float("inf")
    if lo > 0:
        best = row[0] + band * abs(rem_f - (cols - 1))
    for j in range(lo, hi + 1):
        t = row[j] + band * abs(rem_f - (cols - 1 - j))
        if t < best:
            best = t
    if slack:
        best *= 1.0 - slack
    if best >= cutoff:
        raise CutoffExceeded(best if exact_values else cutoff)


class TEDAlgorithm:
    """Base class for tree edit distance algorithms.

    Subclasses set :attr:`name` and implement :meth:`compute`.
    """

    #: Human-readable algorithm identifier (e.g. ``"RTED"`` or ``"Zhang-L"``).
    name: str = "abstract"

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
    ) -> TEDResult:
        """Compute the tree edit distance between ``tree_f`` and ``tree_g``.

        With ``cutoff=τ`` the computation is *bounded*: the exact
        :class:`TEDResult` is returned when ``distance < τ`` (bit-identical
        to the unbounded computation), and a :class:`BoundedResult` sentinel
        proving ``distance ≥ τ`` otherwise — possibly without ever finishing
        the distance computation.  See ``DESIGN.md``, *Bounded verification*.
        """
        raise NotImplementedError

    def distance(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> float:
        """Convenience wrapper returning only the distance value."""
        return self.compute(tree_f, tree_g, cost_model=cost_model).distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def resolve_cost_model(cost_model: Optional[CostModel]) -> CostModel:
    """Return ``cost_model`` or the shared unit cost model when ``None``."""
    return cost_model if cost_model is not None else UNIT_COST


class Stopwatch:
    """Tiny helper measuring wall-clock durations of labelled phases."""

    def __init__(self) -> None:
        self._start: float = 0.0

    def start(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start
