"""Common result type and interface for tree edit distance algorithms.

Every algorithm in :mod:`repro.algorithms` implements :class:`TEDAlgorithm`:
``compute`` returns a :class:`TEDResult` carrying the distance together with
the measurements the paper's experiments need (number of relevant
subproblems, strategy-computation time, distance-computation time), and
``distance`` is a convenience wrapper returning only the number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..costs import UNIT_COST, CostModel
from ..exceptions import UnknownEngineError
from ..trees.tree import Tree

#: Execution-engine identifiers.  ``auto`` picks each algorithm's production
#: default — the iterative ``spf`` executor for every GTED/RTED variant, the
#: dedicated Zhang–Shasha tables for ``zhang-l``/``zhang-r``; ``spf`` forces
#: the iterative executor that dispatches *every* strategy step (left, right
#: and heavy) to the single-path functions of :mod:`repro.algorithms.spf`;
#: ``recursive`` forces the strategy-driven
#: :class:`~repro.algorithms.forest_engine.DecompositionEngine`, kept as the
#: cross-check oracle (see ``DESIGN.md``).
ENGINE_AUTO = "auto"
ENGINE_RECURSIVE = "recursive"
ENGINE_SPF = "spf"

ENGINES = (ENGINE_AUTO, ENGINE_RECURSIVE, ENGINE_SPF)


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an engine selector (``None`` → ``auto``) or raise.

    Raises
    ------
    UnknownEngineError
        If ``engine`` is not one of :data:`ENGINES`.
    """
    if engine is None:
        return ENGINE_AUTO
    key = str(engine).strip().lower()
    if key not in ENGINES:
        raise UnknownEngineError(
            f"unknown engine {engine!r}; available: {', '.join(ENGINES)}"
        )
    return key


@dataclass
class TEDResult:
    """Outcome of a tree edit distance computation.

    Attributes
    ----------
    distance:
        The tree edit distance under the supplied cost model.
    algorithm:
        Name of the algorithm that produced the result.
    subproblems:
        Number of relevant subproblems (distinct forest-pair distances) the
        algorithm evaluated; the unit in which the paper measures work.
    strategy_time:
        Seconds spent computing the decomposition strategy (0 for algorithms
        with a hard-coded strategy).
    distance_time:
        Seconds spent in the distance computation proper.
    n_f, n_g:
        Sizes of the two input trees.
    """

    distance: float
    algorithm: str
    subproblems: int = 0
    strategy_time: float = 0.0
    distance_time: float = 0.0
    n_f: int = 0
    n_g: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Strategy time plus distance time."""
        return self.strategy_time + self.distance_time


class TEDAlgorithm:
    """Base class for tree edit distance algorithms.

    Subclasses set :attr:`name` and implement :meth:`compute`.
    """

    #: Human-readable algorithm identifier (e.g. ``"RTED"`` or ``"Zhang-L"``).
    name: str = "abstract"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        """Compute the tree edit distance between ``tree_f`` and ``tree_g``."""
        raise NotImplementedError

    def distance(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> float:
        """Convenience wrapper returning only the distance value."""
        return self.compute(tree_f, tree_g, cost_model=cost_model).distance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def resolve_cost_model(cost_model: Optional[CostModel]) -> CostModel:
    """Return ``cost_model`` or the shared unit cost model when ``None``."""
    return cost_model if cost_model is not None else UNIT_COST


class Stopwatch:
    """Tiny helper measuring wall-clock durations of labelled phases."""

    def __init__(self) -> None:
        self._start: float = 0.0

    def start(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start
