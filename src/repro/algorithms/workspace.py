"""Amortized execution layer: reusable workspaces and corpus-level interning.

At corpus scale (similarity joins, one-vs-many queries, batch verification)
the exact TED spends much of its time *outside* the forest-distance
recurrence: every per-pair context rebuilds the coordinate frames, evaluates
the cost-model callables into per-node arrays and dense rename matrices, and
allocates a fresh NaN-initialized distance matrix.  All of that work depends
only on a *single tree* (frames, cost arrays), on the *label alphabet*
(rename tables) or on nothing at all (matrix buffers) — so a batch of pairs
over a corpus can pay for it once instead of once per pair.

:class:`TedWorkspace` is that shared state:

* **per-tree caches** — :class:`~repro.algorithms.spf._Frame` coordinate
  views, per-frame delete/insert cost arrays, postorder node-cost arrays,
  heavy-path equivalence flags and boundary-grid frames, all keyed on tree
  identity so repeated trees (self-joins, one-vs-many) never recompute them;
* **corpus-level label interning** — a shared :class:`LabelInterner` turns
  labels into dense integer codes; delete/insert/rename costs collapse into
  alphabet-sized tables evaluated once per (interner, cost model), and
  per-pair rename matrices become integer-code gathers instead of Python
  cost-model calls;
* **a pooled matrix allocator** — size-classed float64 buffers recycled
  across pairs, so the dense ``n × m`` distance matrix stops being a per-pair
  allocation;
* **a unit-cost fast path** — under the exact
  :class:`~repro.costs.UnitCostModel` the rename matrix is never built at all
  (kernels compare code arrays directly) and small pairs run through a flat
  single-function keyroot program (:meth:`TedWorkspace.compute_small`) that
  skips the strategy executor entirely.

Soundness / invalidation rule
-----------------------------
Every cached cost quantity (cost arrays, grid frames, the alphabet tables)
is derived from the workspace's cost model, so a workspace is **permanently
bound** to the cost model it was created with: :meth:`TedWorkspace.matches`
is the guard, :class:`WorkspaceTED` silently bypasses the workspace for
non-matching models (falling back to a fresh per-pair context — correct,
just not amortized), and the batch layer raises
:class:`~repro.exceptions.WorkspaceError` when an explicitly supplied
workspace disagrees with the join's cost model.  To switch cost models,
create a new workspace; the label interner (which is cost-independent) can be
shared between them.  Cost models must be pure functions of their label
arguments — the same assumption the per-pair rename-matrix interning in
:func:`repro.algorithms.spf_numpy.rename_matrix` already makes.

Bit-identity
------------
Workspace reuse never changes numerics: cached arrays hold exactly the
values a fresh context would recompute, kernel selection is unchanged, and
the unit-cost specializations only ever produce integer-valued float64
arithmetic (which every kernel evaluates exactly), so batch results are
bit-identical to fresh-context runs — the property-based test suite asserts
this with exact equality.
"""

from __future__ import annotations

from math import ceil, inf, nan
from typing import Dict, List, Optional, Tuple

from ..costs import CostModel, UnitCostModel
from ..exceptions import WorkspaceError
from ..runtime import active_deadline, as_deadline, deadline_scope, env_int
from ..trees.tree import LEFT, RIGHT, Tree
from .base import (
    BoundedResult,
    CutoffExceeded,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    check_row_cutoff,
    resolve_cost_model,
)
from .spf import _Frame, _GridFrame, _resolve_use_numpy

try:  # Optional accelerator, mirroring repro.algorithms.spf's import split.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


class LabelInterner:
    """A growable corpus-level label dictionary: label → dense integer code.

    One interner can serve any number of trees, corpora and workspaces; codes
    are stable for the interner's lifetime (the dictionary only grows), so
    per-tree code arrays and alphabet-sized cost tables keyed on an interner
    stay valid as new trees arrive.  Trees with unhashable labels cannot be
    interned; :meth:`codes_postorder` reports them as ``None`` and callers
    fall back to the label-based paths.
    """

    def __init__(self) -> None:
        self._code_of: Dict[object, int] = {}
        self.labels: List[object] = []
        #: Cached postorder code arrays keyed on tree identity.  The tree is
        #: kept in the value so its ``id()`` cannot be recycled while cached.
        self._tree_codes: Dict[int, Tuple[Tree, Optional[List[int]]]] = {}

    def __len__(self) -> int:
        return len(self.labels)

    def code(self, label: object) -> int:
        """The (possibly new) integer code of ``label``.

        Raises ``TypeError`` for unhashable labels *and* for labels whose
        equality is non-reflexive (``label != label``, e.g. a NaN): dict
        lookup would equate such a label with itself by identity while the
        cost models compare with ``==``, so code equality would no longer
        agree with label equality and the unit-cost kernels would charge the
        wrong rename cost.  Callers treat the exception as "interning
        unavailable" and fall back to the label-based paths.
        """
        try:
            reflexive = bool(label == label)
        except Exception:  # e.g. array-valued comparisons
            reflexive = False
        if not reflexive:
            raise TypeError("cannot intern a label with non-reflexive equality")
        code = self._code_of.get(label)
        if code is None:
            code = self._code_of.setdefault(label, len(self._code_of))
            if code == len(self.labels):
                self.labels.append(label)
        return code

    #: Bound on the per-tree code-array cache; beyond it the cache resets (a
    #: pure cache — only amortization is lost, the code dictionary itself
    #: never shrinks, so codes stay stable).
    _MAX_CACHED_TREES = 4096

    def codes_postorder(self, tree: Tree) -> Optional[List[int]]:
        """Per-node label codes in postorder, or ``None`` for unhashable labels."""
        cached = self._tree_codes.get(id(tree))
        if cached is not None:
            return cached[1]
        if len(self._tree_codes) >= self._MAX_CACHED_TREES:
            self._tree_codes.clear()
        try:
            codes: Optional[List[int]] = [self.code(label) for label in tree.labels]
        except TypeError:
            codes = None
        self._tree_codes[id(tree)] = (tree, codes)
        return codes

    def forget_tree(self, tree: Tree) -> None:
        """Drop ``tree``'s cached code array (removal hygiene for live corpora).

        The code *dictionary* is untouched — codes stay stable for the
        interner's lifetime — but keeping the per-tree cache entry would pin
        a removed tree in memory for as long as the interner lives.  Called
        by :meth:`~repro.join.corpus.TreeCorpus.remove_trees`; a no-op for
        trees that were never interned.
        """
        self._tree_codes.pop(id(tree), None)


class WorkspaceStats:
    """Counters describing how much work the workspace amortized."""

    __slots__ = (
        "frame_hits",
        "frame_misses",
        "matrices_pooled",
        "matrices_allocated",
        "small_pair_runs",
        "batch_lanes",
        "native_runs",
        "bypasses",
    )

    def __init__(self) -> None:
        self.frame_hits = 0
        self.frame_misses = 0
        self.matrices_pooled = 0
        self.matrices_allocated = 0
        self.small_pair_runs = 0
        self.batch_lanes = 0
        self.native_runs = 0
        self.bypasses = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


#: Largest alphabet for which the dense rename table is built; beyond it the
#: K×K table would dominate the pairwise matrices it replaces and the
#: per-pair interning of :func:`repro.algorithms.spf_numpy.rename_matrix`
#: takes over.
MAX_DENSE_ALPHABET = 2048

#: Largest tree size (both sides) routed through the flat unit-cost
#: small-pair kernel.  Above it the region kernels (with their NumPy row
#: sweeps) win; below it the executor/task machinery dominates the actual DP.
#: Override with ``RTED_SMALL_PAIR_CUTOFF`` (mirroring ``RTED_MIN_VECTOR_COLS``)
#: on hardware where the crossover sits elsewhere; the default is set from
#: the sweep mode of ``benchmarks/bench_batch_kernel.py``.
SMALL_PAIR_CUTOFF = env_int("RTED_SMALL_PAIR_CUTOFF", 64, minimum=1)


class TedWorkspace:
    """Reusable cross-pair state for batch tree edit distance computation.

    Parameters
    ----------
    cost_model:
        The cost model this workspace is bound to (``None`` → unit costs).
        See the module docstring for the invalidation rule.
    interner:
        Optional shared :class:`LabelInterner` (e.g.
        :meth:`repro.join.corpus.TreeCorpus.interner`); a private one is
        created when omitted.
    use_numpy:
        Kernel selection, identical semantics to
        :class:`~repro.algorithms.spf.SinglePathContext`.
    small_pair_cutoff:
        Largest tree size handled by the unit-cost small-pair kernel.

    A workspace is not thread-safe; share it across pairs, not across
    threads.  Memory is proportional to the number of distinct trees touched
    (a few O(n) arrays per tree), bounded by a generation reset: once
    :data:`_MAX_CACHED_TREES` distinct trees are cached the per-tree caches
    are dropped wholesale and repopulate from the current working set (the
    interner's code *dictionary* is never reset, so codes stay stable in
    long-lived services).  :meth:`clear` drops everything explicitly.
    """

    _MAX_GRID_FRAMES = 64
    _MAX_POOLED_BUFFERS = 8
    _MAX_CACHED_TREES = 4096

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        interner: Optional[LabelInterner] = None,
        use_numpy: Optional[bool] = None,
        small_pair_cutoff: int = SMALL_PAIR_CUTOFF,
    ) -> None:
        self.cost_model = resolve_cost_model(cost_model)
        self.unit_cost = type(self.cost_model) is UnitCostModel
        self.interner = interner if interner is not None else LabelInterner()
        self.use_numpy = _resolve_use_numpy(use_numpy)
        self.small_pair_cutoff = small_pair_cutoff
        self.stats = WorkspaceStats()

        # Per-tree caches, keyed on id(tree); every value tuple starts with
        # the tree itself so the id cannot be recycled while cached.
        self._frames: Dict[Tuple[int, str], Tuple[Tree, _Frame]] = {}
        self._frame_costs: Dict[Tuple[int, str, str, bool], Tuple[Tree, object]] = {}
        self._frame_codes: Dict[Tuple[int, str, bool], Tuple[Tree, object]] = {}
        self._node_costs: Dict[Tuple[int, str], Tuple[Tree, List[float]]] = {}
        self._kind_equiv: Dict[int, Tuple[Tree, Tuple[List[bool], List[bool]]]] = {}
        self._grids: Dict[Tuple[int, int, str], Tuple[Tree, _GridFrame]] = {}
        self._small: Dict[int, Tuple[Tree, Optional[tuple]]] = {}
        #: Distinct trees currently covered by the caches (generation bound).
        self._seen_trees: Dict[int, Tree] = {}

        # Alphabet-sized cost tables (lazily built, grown with the interner).
        self._delete_table = None
        self._insert_table = None
        self._rename_table = None

        # Pooled float64 buffers for dense distance matrices, keyed by
        # power-of-two capacity class.
        self._matrix_pool: Dict[int, List[object]] = {}
        # Reusable flat distance buffer + forest-distance rows for the
        # small-pair kernel.
        self._small_D: List[float] = []
        self._small_fd: List[List[float]] = []

    # ------------------------------------------------------------------ #
    # Cost-model binding
    # ------------------------------------------------------------------ #
    def matches(self, cost_model: Optional[CostModel]) -> bool:
        """``True`` when ``cost_model`` resolves to this workspace's model."""
        resolved = resolve_cost_model(cost_model)
        if resolved is self.cost_model:
            return True
        return self.unit_cost and type(resolved) is UnitCostModel

    def require(self, cost_model: Optional[CostModel]) -> None:
        """Raise :class:`WorkspaceError` unless :meth:`matches` holds."""
        if not self.matches(cost_model):
            raise WorkspaceError(
                "workspace is bound to a different cost model; cached cost "
                "tables are only valid for the model the workspace was "
                "created with — create a new TedWorkspace for the new model"
            )

    # ------------------------------------------------------------------ #
    # Per-tree caches (the SinglePathContext delegation targets)
    # ------------------------------------------------------------------ #
    def _admit(self, tree: Tree) -> None:
        """Generation reset: drop the per-tree caches once they cover
        :data:`_MAX_CACHED_TREES` distinct trees, so a long-lived workspace
        (one-vs-many services) cannot grow without bound.  Purely a cache
        reset — in-flight contexts keep their own references, and the next
        access repopulates from the current working set."""
        if id(tree) not in self._seen_trees:
            if len(self._seen_trees) >= self._MAX_CACHED_TREES:
                self._frames.clear()
                self._frame_costs.clear()
                self._frame_codes.clear()
                self._node_costs.clear()
                self._kind_equiv.clear()
                self._grids.clear()
                self._small.clear()
                self._seen_trees.clear()
            self._seen_trees[id(tree)] = tree

    def frame(self, tree: Tree, kind: str) -> _Frame:
        """Cached coordinate frame for ``(tree, kind)``."""
        self._admit(tree)
        key = (id(tree), kind)
        cached = self._frames.get(key)
        if cached is not None:
            self.stats.frame_hits += 1
            return cached[1]
        self.stats.frame_misses += 1
        frame = _Frame(tree, kind)
        self._frames[key] = (tree, frame)
        return frame

    def frame_cost_array(
        self, tree: Tree, kind: str, operation: str, as_numpy: bool
    ):
        """Cached per-frame-id node costs (``"delete"`` or ``"insert"``)."""
        key = (id(tree), kind, operation, as_numpy)
        cached = self._frame_costs.get(key)
        if cached is not None:
            return cached[1]
        frame = self.frame(tree, kind)
        # Intern this tree's labels *before* fetching the table, so the table
        # covers any codes the tree just added to the alphabet.
        codes = self.frame_codes(tree, kind, as_numpy=False)
        table = self._cost_table(operation)
        if table is not None and codes is not None:
            costs: object = [table[c] for c in codes]
        else:
            fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
            costs = [fn(label) for label in frame.labels]
        if as_numpy:
            costs = _np.asarray(costs, dtype=_np.float64)
        self._frame_costs[key] = (tree, costs)
        return costs

    def frame_codes(self, tree: Tree, kind: str, as_numpy: bool):
        """Interned label codes in frame order, or ``None`` (unhashable labels)."""
        key = (id(tree), kind, as_numpy)
        cached = self._frame_codes.get(key)
        if cached is not None:
            return cached[1]
        post_codes = self.interner.codes_postorder(tree)
        if post_codes is None:
            codes: object = None
        elif kind == LEFT:
            codes = list(post_codes)
        else:
            codes = [post_codes[p] for p in tree.post_of_rpost()]
        if codes is not None and as_numpy:
            codes = _np.asarray(codes, dtype=_np.intp)
        self._frame_codes[key] = (tree, codes)
        return codes

    def node_costs(self, tree: Tree, operation: str) -> List[float]:
        """Cached per-node removal costs in plain postorder (inner paths)."""
        self._admit(tree)
        key = (id(tree), operation)
        cached = self._node_costs.get(key)
        if cached is not None:
            return cached[1]
        fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
        costs = [fn(label) for label in tree.labels]
        self._node_costs[key] = (tree, costs)
        return costs

    def kind_equivalences(self, tree: Tree) -> Tuple[List[bool], List[bool]]:
        """Cached heavy≡left / heavy≡right per-node flags (see spf)."""
        self._admit(tree)
        cached = self._kind_equiv.get(id(tree))
        if cached is not None:
            return cached[1]
        n = tree.n
        eq_left = [True] * n
        eq_right = [True] * n
        heavy = tree.heavy_child
        children = tree.children
        for v in range(n):
            kids = children[v]
            if kids:
                h = heavy[v]
                eq_left[v] = h == kids[0] and eq_left[h]
                eq_right[v] = h == kids[-1] and eq_right[h]
        result = (eq_left, eq_right)
        self._kind_equiv[id(tree)] = (tree, result)
        return result

    def grid_frame(self, tree: Tree, root: int, operation: str) -> _GridFrame:
        """Cached boundary grid for ``(tree, root)``; LRU-bounded."""
        self._admit(tree)
        key = (id(tree), root, operation)
        cached = self._grids.pop(key, None)
        if cached is None:
            removal = self.cost_model.delete if operation == "delete" else self.cost_model.insert
            cached = (tree, _GridFrame(tree, root, removal))
            if len(self._grids) >= self._MAX_GRID_FRAMES:
                self._grids.pop(next(iter(self._grids)))
        self._grids[key] = cached
        return cached[1]

    # ------------------------------------------------------------------ #
    # Alphabet-sized cost tables
    # ------------------------------------------------------------------ #
    def _cost_table(self, operation: str) -> Optional[List[float]]:
        """Per-code delete/insert costs for the current alphabet."""
        size = len(self.interner)
        if size == 0 or size > MAX_DENSE_ALPHABET:
            return None
        table = self._delete_table if operation == "delete" else self._insert_table
        if table is None or len(table) < size:
            fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
            table = [fn(label) for label in self.interner.labels]
            if operation == "delete":
                self._delete_table = table
            else:
                self._insert_table = table
        return table

    def rename_table(self):
        """Dense ``K × K`` rename-cost table over the interned alphabet.

        ``table[code_a, code_b] == rename(label_a, label_b)``; rebuilt (and
        only then) when the alphabet has grown past the built size.  Returns
        ``None`` when NumPy is unavailable, for oversized alphabets, and for
        unit-cost workspaces (whose kernels compare code arrays instead).
        """
        if self.unit_cost or _np is None:
            return None
        size = len(self.interner)
        if size == 0 or size > MAX_DENSE_ALPHABET:
            return None
        table = self._rename_table
        if table is None or table.shape[0] < size:
            rename = self.cost_model.rename
            labels = self.interner.labels
            table = _np.empty((size, size), dtype=_np.float64)
            for i, label_a in enumerate(labels):
                row = table[i]
                for j, label_b in enumerate(labels):
                    row[j] = rename(label_a, label_b)
            self._rename_table = table
        return table

    # ------------------------------------------------------------------ #
    # Pooled distance matrices
    # ------------------------------------------------------------------ #
    def acquire_matrix(self, n: int, m: int):
        """A NaN-filled ``n × m`` float64 matrix backed by a pooled buffer."""
        needed = n * m
        capacity = 1
        while capacity < needed:
            capacity <<= 1
        bucket = self._matrix_pool.get(capacity)
        if bucket:
            buffer = bucket.pop()
            self.stats.matrices_pooled += 1
        else:
            buffer = _np.empty(capacity, dtype=_np.float64)
            self.stats.matrices_allocated += 1
        matrix = buffer[:needed].reshape(n, m)
        matrix.fill(nan)
        return matrix

    def release_matrix(self, matrix) -> None:
        """Return a matrix obtained from :meth:`acquire_matrix` to the pool."""
        buffer = matrix
        while buffer.base is not None:
            buffer = buffer.base
        bucket = self._matrix_pool.setdefault(buffer.size, [])
        if len(bucket) < self._MAX_POOLED_BUFFERS:
            bucket.append(buffer)

    # ------------------------------------------------------------------ #
    # Unit-cost small-pair fast path
    # ------------------------------------------------------------------ #
    def _small_arrays(self, tree: Tree) -> Optional[tuple]:
        self._admit(tree)
        cached = self._small.get(id(tree))
        if cached is not None:
            return cached[1]
        codes = self.interner.codes_postorder(tree)
        arrays = None if codes is None else (tree.lml, tree.keyroots_left(), codes)
        self._small[id(tree)] = (tree, arrays)
        return arrays

    def compute_small(
        self, tree_f: Tree, tree_g: Tree, cutoff: Optional[float] = None
    ) -> Optional[Tuple[float, int]]:
        """Exact unit-cost TED for a small pair, or ``None`` when inapplicable.

        A flat left-path keyroot program (the Zhang–Shasha recurrence) over
        cached per-tree arrays and reused buffers: no context, no executor,
        no per-region dispatch.  Only unit-cost workspaces qualify — there
        every intermediate value is an integer-valued float64, so the result
        is bit-identical to every other kernel — and only pairs whose trees
        both fit :attr:`small_pair_cutoff`.  Returns ``(distance, cells)``
        with ``cells`` the number of forest-distance cells evaluated (the
        relevant subproblems of the executed left-path program).

        With ``cutoff`` the run is *τ-bounded* (``DESIGN.md``, *Bounded
        verification*): the size pre-check raises
        :class:`~repro.algorithms.base.CutoffExceeded` immediately, every
        region is restricted to its ``|i − j| < cutoff`` band (out-of-band
        cells provably hold ``≥ cutoff`` and are read as ``+inf``), the
        final region runs the per-row abort, and a banded result landing at
        or above the cutoff raises with the cutoff as the proving bound.
        Sub-cutoff results are bit-identical to unbounded runs — every cell
        whose true value is below the cutoff lies in the band and its
        minimum-winning candidate chain repeats the identical arithmetic.
        """
        if not self.unit_cost:
            return None
        n, m = tree_f.n, tree_g.n
        if n > self.small_pair_cutoff or m > self.small_pair_cutoff:
            return None
        if cutoff is not None and abs(n - m) >= cutoff:
            raise CutoffExceeded(float(abs(n - m)))
        arrays_f = self._small_arrays(tree_f)
        arrays_g = self._small_arrays(tree_g)
        if arrays_f is None or arrays_g is None:
            return None
        lml_f, keyroots_f, codes_f = arrays_f
        lml_g, keyroots_g, codes_g = arrays_g
        self.stats.small_pair_runs += 1
        # Unit-cost band half-width: |i − j| > band_w ⇔ the cell's forest
        # sizes differ by ≥ cutoff operations ⇔ its value is ≥ cutoff.  The
        # size pre-check above guarantees the final corner stays in-band.
        band_w = None if cutoff is None else max(0, ceil(cutoff) - 1)

        D = self._small_D
        if len(D) < n * m:
            D.extend([0.0] * (n * m - len(D)))
        fd = self._small_fd
        while len(fd) < n + 1:
            fd.append([0.0] * (self.small_pair_cutoff + 1))

        return self._small_pair_regions(
            n, m, cutoff, band_w, lml_f, keyroots_f, codes_f,
            lml_g, keyroots_g, codes_g, D, fd, active_deadline(),
        )

    def compute_small_native(
        self, tree_f: Tree, tree_g: Tree, cutoff: Optional[float] = None
    ) -> Optional[Tuple[float, int]]:
        """:meth:`compute_small` through the compiled backend.

        Same contract and bit-identical results (the backend ports the same
        integer-valued float64 program); returns ``None`` whenever the pair
        is inapplicable *or* no compiled provider is available, so callers
        chain straight into the pure-Python kernel.  The dispatch order —
        unit-cost gate, size gate, bounded size pre-check *before* the code
        gate — replicates :meth:`compute_small` exactly.
        """
        if not self.unit_cost:
            return None
        n, m = tree_f.n, tree_g.n
        if n > self.small_pair_cutoff or m > self.small_pair_cutoff:
            return None
        if cutoff is not None and abs(n - m) >= cutoff:
            raise CutoffExceeded(float(abs(n - m)))
        from .native import native_available, native_small_pair

        if not native_available():
            return None
        arrays_f = self._small_arrays(tree_f)
        arrays_g = self._small_arrays(tree_g)
        if arrays_f is None or arrays_g is None:
            return None
        out = native_small_pair(arrays_f, n, arrays_g, m, cutoff)
        if out is None:
            return None
        self.stats.small_pair_runs += 1
        self.stats.native_runs += 1
        value, cells, aborted = out
        if aborted:
            exceeded = CutoffExceeded(value)
            exceeded.subproblems = cells
            raise exceeded
        return value, cells

    def _small_pair_regions(
        self, n, m, cutoff, band_w, lml_f, keyroots_f, codes_f,
        lml_g, keyroots_g, codes_g, D, fd, deadline=None,
    ) -> Tuple[float, int]:
        """The keyroot-region sweep of :meth:`compute_small` (both modes).

        Aborts re-raise with the completed regions' cell count attached, so
        aborted sentinels report work in the same currency as finished runs.
        """
        cells = 0
        for kf in keyroots_f:
            lf = lml_f[kf]
            rows = kf - lf + 2
            for kg in keyroots_g:
                # Keyroots ascend, so the whole-tree region runs last; only
                # its rows are whole-tree prefix distances, making the row
                # abort sound there (unit band 1).
                final = cutoff is not None and kf == n - 1 and kg == m - 1
                lg = lml_g[kg]
                cols = kg - lg + 2
                row = fd[0]
                for j in range(cols):
                    row[j] = float(j)
                if band_w is None:
                    for i in range(1, rows):
                        if deadline is not None:
                            deadline.tick()
                        node_f = lf + i - 1
                        spans_f = lml_f[node_f] == lf
                        code_f = codes_f[node_f]
                        offset = node_f * m
                        prev = fd[i - 1]
                        row = fd[i]
                        row[0] = float(i)
                        split_row = fd[lml_f[node_f] - lf]
                        for j in range(1, cols):
                            node_g = lg + j - 1
                            best = prev[j] + 1.0
                            candidate = row[j - 1] + 1.0
                            if candidate < best:
                                best = candidate
                            if spans_f and lml_g[node_g] == lg:
                                candidate = prev[j - 1] + (
                                    0.0 if code_f == codes_g[node_g] else 1.0
                                )
                                if candidate < best:
                                    best = candidate
                                row[j] = best
                                D[offset + node_g] = best
                            else:
                                candidate = split_row[lml_g[node_g] - lg] + D[offset + node_g]
                                if candidate < best:
                                    best = candidate
                                row[j] = best
                    cells += (rows - 1) * (cols - 1)
                    continue
                # τ-bounded sweep: each row only fills its |i − j| ≤ band_w
                # window; out-of-band values are ≥ cutoff by the size
                # argument, so reading them as +inf only inflates cells that
                # are themselves ≥ cutoff (sub-cutoff cells and their
                # winning candidate chains stay in-band and bit-identical).
                # The reused buffers hold stale garbage outside the window,
                # hence the inf sentinels flanking each row and the explicit
                # band predicates on split/subtree reads.
                for i in range(1, rows):
                    if deadline is not None:
                        deadline.tick()
                    lo = i - band_w
                    if lo < 1:
                        lo = 1
                    hi = i + band_w
                    if hi > cols - 1:
                        hi = cols - 1
                    if lo > hi:
                        # The band left the table; every later row is
                        # farther out still, so the region is finished.
                        break
                    node_f = lf + i - 1
                    spans_f = lml_f[node_f] == lf
                    code_f = codes_f[node_f]
                    offset = node_f * m
                    prev = fd[i - 1]
                    row = fd[i]
                    row[0] = float(i)
                    if lo > 1:
                        row[lo - 1] = inf
                    si = lml_f[node_f] - lf
                    split_row = fd[si]
                    rem_f_node = node_f - lml_f[node_f]
                    for j in range(lo, hi + 1):
                        node_g = lg + j - 1
                        best = prev[j] + 1.0
                        candidate = row[j - 1] + 1.0
                        if candidate < best:
                            best = candidate
                        if spans_f and lml_g[node_g] == lg:
                            candidate = prev[j - 1] + (
                                0.0 if code_f == codes_g[node_g] else 1.0
                            )
                            if candidate < best:
                                best = candidate
                            row[j] = best
                            D[offset + node_g] = best
                        else:
                            sc = lml_g[node_g] - lg
                            if si == 0 or sc == 0 or (si - band_w <= sc <= si + band_w):
                                candidate = split_row[sc]
                            else:
                                candidate = inf
                            # The subtree pair's spanning cell was written
                            # iff it was in-band in its own region.
                            if abs(rem_f_node - (node_g - lml_g[node_g])) <= band_w:
                                candidate += D[offset + node_g]
                            else:
                                candidate = inf
                            if candidate < best:
                                best = candidate
                            row[j] = best
                    if hi + 1 <= cols - 1:
                        row[hi + 1] = inf
                    cells += hi - lo + 1
                    if final:
                        try:
                            check_row_cutoff(
                                row, cols, rows - 1 - i, cutoff, 1.0, lo, hi,
                                exact_values=False,
                            )
                        except CutoffExceeded as exceeded:
                            exceeded.subproblems = cells
                            raise
        distance = D[(n - 1) * m + m - 1]
        if cutoff is not None and distance >= cutoff:
            # Banded values at or above the cutoff may be inflated; the
            # cutoff itself is the certified lower bound.
            exceeded = CutoffExceeded(cutoff)
            exceeded.subproblems = cells
            raise exceeded
        return distance, cells

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every cache (per-tree artifacts, tables, pooled buffers)."""
        self._frames.clear()
        self._frame_costs.clear()
        self._frame_codes.clear()
        self._node_costs.clear()
        self._kind_equiv.clear()
        self._grids.clear()
        self._small.clear()
        self._seen_trees.clear()
        self._delete_table = None
        self._insert_table = None
        self._rename_table = None
        self._matrix_pool.clear()
        self._small_D = []
        self._small_fd = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TedWorkspace(cost_model={self.cost_model!r}, "
            f"alphabet={len(self.interner)}, trees={len(self._frames)})"
        )


class WorkspaceTED(TEDAlgorithm):
    """Wrap any algorithm with a workspace-accelerated batch fast path.

    ``compute`` consults the workspace first: matching unit-cost small pairs
    run through :meth:`TedWorkspace.compute_small` (reporting the executed
    left-path program's subproblem count and ``extra["workspace"]``);
    everything else — large pairs, fractional cost models, unhashable labels
    — delegates to the wrapped algorithm, which itself uses workspace-backed
    contexts when it supports them (RTED/GTED on the ``spf`` engine).  A
    cost model the workspace is not bound to bypasses it entirely, so the
    wrapper is always exact.
    """

    def __init__(
        self, inner: TEDAlgorithm, workspace: TedWorkspace, use_native: bool = False
    ) -> None:
        self.inner = inner
        self.workspace = workspace
        #: ``engine="native"``: matching small pairs try the compiled
        #: backend first (bit-identical; silently skipped when no provider
        #: is available, per the graceful-fallback rule).
        self.use_native = bool(use_native)
        self.name = inner.name

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        # The scope makes the deadline ambient (:mod:`repro.runtime`) so the
        # small-pair kernel and the wrapped algorithm's contexts pick it up
        # without needing a ``deadline`` keyword of their own.
        with deadline_scope(as_deadline(deadline)):
            return self._compute(tree_f, tree_g, cost_model, cutoff)

    def _compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel],
        cutoff: Optional[float],
    ) -> TEDResult:
        workspace = self.workspace
        if workspace.matches(cost_model):
            watch = Stopwatch()
            watch.start()
            try:
                small = None
                if self.use_native:
                    small = workspace.compute_small_native(
                        tree_f, tree_g, cutoff=cutoff
                    )
                if small is None:
                    small = workspace.compute_small(tree_f, tree_g, cutoff=cutoff)
            except CutoffExceeded as exceeded:
                return BoundedResult(
                    lower_bound=exceeded.lower_bound,
                    cutoff=cutoff,
                    algorithm=self.name,
                    aborted=True,
                    subproblems=exceeded.subproblems,
                    distance_time=watch.elapsed(),
                    n_f=tree_f.n,
                    n_g=tree_g.n,
                    extra={"workspace": "small-pair-unit"},
                )
            if small is not None:
                # A bounded run that was not cut short is exact and below
                # the cutoff — compute_small raises for everything else.
                distance, cells = small
                return TEDResult(
                    distance=distance,
                    algorithm=self.name,
                    subproblems=cells,
                    distance_time=watch.elapsed(),
                    n_f=tree_f.n,
                    n_g=tree_g.n,
                    extra={"workspace": "small-pair-unit"},
                )
        else:
            workspace.stats.bypasses += 1
        if cutoff is None:
            # Back-compat: registered factories may produce algorithms that
            # predate the ``cutoff`` keyword; only bounded calls require it.
            return self.inner.compute(tree_f, tree_g, cost_model=cost_model)
        return self.inner.compute(tree_f, tree_g, cost_model=cost_model, cutoff=cutoff)
