"""Independent reference implementation of the tree edit distance.

This module is the correctness oracle of the library: a direct, memoized
transcription of the recursive formula in Figure 2 of the paper, written
without any of the machinery the optimized algorithms share (no
:class:`~repro.trees.forest.ForestView`, no strategies, no path functions).
Every other algorithm is validated against it on randomized inputs.

The decomposition always removes the *leftmost* root node, which corresponds
to one fixed (and valid) instantiation of the recursion; the distance value is
independent of that choice.  The number of subproblems is exponentially worse
than the optimized algorithms in the worst case, so the oracle is only meant
for small trees (tens of nodes).
"""

from __future__ import annotations

import sys
from typing import Dict, Optional, Tuple

from ..costs import CostModel
from ..runtime import as_deadline, deadline_scope
from ..trees.tree import Tree
from .base import BoundedResult, Stopwatch, TEDAlgorithm, TEDResult, resolve_cost_model


class SimpleTED(TEDAlgorithm):
    """Plain memoized recursion over forest pairs (correctness oracle).

    Bounded calls (``cutoff=τ``) run the oracle to completion and apply the
    final check only — as a pure reference implementation it never aborts
    mid-computation.
    """

    name = "Simple"

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        cm = resolve_cost_model(cost_model)
        watch = Stopwatch()
        watch.start()

        # Forests are tuples of postorder ids of their component roots.
        memo: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], float] = {}

        labels_f, labels_g = tree_f.labels, tree_g.labels
        children_f, children_g = tree_f.children, tree_g.children

        delete_cost = [0.0] * tree_f.n
        for v in range(tree_f.n):
            delete_cost[v] = cm.delete(labels_f[v]) + sum(
                delete_cost[c] for c in children_f[v]
            )
        insert_cost = [0.0] * tree_g.n
        for w in range(tree_g.n):
            insert_cost[w] = cm.insert(labels_g[w]) + sum(
                insert_cost[c] for c in children_g[w]
            )

        def forest_delete(roots: Tuple[int, ...]) -> float:
            return sum(delete_cost[r] for r in roots)

        def forest_insert(roots: Tuple[int, ...]) -> float:
            return sum(insert_cost[r] for r in roots)

        def dist(rf: Tuple[int, ...], rg: Tuple[int, ...]) -> float:
            if dl is not None:
                dl.tick()
            if not rf and not rg:
                return 0.0
            if not rg:
                return forest_delete(rf)
            if not rf:
                return forest_insert(rg)
            key = (rf, rg)
            cached = memo.get(key)
            if cached is not None:
                return cached

            v, w = rf[0], rg[0]
            rf_minus_v = tuple(children_f[v]) + rf[1:]
            rg_minus_w = tuple(children_g[w]) + rg[1:]

            best = dist(rf_minus_v, rg) + cm.delete(labels_f[v])
            candidate = dist(rf, rg_minus_w) + cm.insert(labels_g[w])
            if candidate < best:
                best = candidate
            if len(rf) == 1 and len(rg) == 1:
                candidate = dist(rf_minus_v, rg_minus_w) + cm.rename(labels_f[v], labels_g[w])
            else:
                candidate = dist((v,), (w,)) + dist(rf[1:], rg[1:])
            if candidate < best:
                best = candidate

            memo[key] = best
            return best

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 20 * (tree_f.n + tree_g.n)))
        try:
            # ``deadline_scope`` yields the effective deadline: the explicit
            # one, or the ambient one a batch/serving caller installed.
            with deadline_scope(as_deadline(deadline)) as dl:
                value = dist((tree_f.root,), (tree_g.root,))
        finally:
            sys.setrecursionlimit(old_limit)

        if cutoff is not None and value >= cutoff:
            return BoundedResult(
                lower_bound=value,
                cutoff=cutoff,
                algorithm=self.name,
                aborted=False,
                subproblems=len(memo),
                distance_time=watch.elapsed(),
                n_f=tree_f.n,
                n_g=tree_g.n,
            )
        return TEDResult(
            distance=value,
            algorithm=self.name,
            subproblems=len(memo),
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
        )


def simple_ted(tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None) -> float:
    """Functional shortcut for :class:`SimpleTED`."""
    return SimpleTED().distance(tree_f, tree_g, cost_model=cost_model)
