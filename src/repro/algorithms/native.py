"""Optional compiled backend for the unit-cost TED kernels (``engine=native``).

The batch kernel (:mod:`repro.algorithms.batch_kernel`) removes per-pair
*dispatch* overhead, but a 12-node pair still spends its time in a few
hundred interpreted/vectorized DP-cell updates.  This module ports the exact
small-pair left-path keyroot program (:meth:`TedWorkspace.compute_small` /
``_small_pair_regions``, both modes) and the unit-mode region sweep of
:func:`repro.algorithms.spf_numpy._region` to compiled code, through two
interchangeable **providers**:

``numba``
    ``@njit``-compiled ports, lazily imported and compiled on first use.
    Covers the batched small-pair kernel *and* the region sweep.
``cc``
    A self-contained C translation unit compiled on demand with the system
    compiler (``$CC`` / ``cc`` / ``gcc`` / ``clang``) and loaded through
    :mod:`ctypes` — no third-party dependency at all.  Covers the batched
    small-pair kernel; the region sweep stays on the NumPy path.

Provider selection is automatic (``numba`` preferred, then ``cc``) and every
entry point degrades gracefully: when no provider is available — or the
``RTED_NO_NATIVE=1`` kill-switch is set — callers receive ``None`` and fall
back to the pure-Python/NumPy kernels, bit-identically.  ``engine="native"``
therefore *always* resolves (``UnknownEngineError`` semantics are untouched);
it just runs unaccelerated where no compiler exists.

Bit-identity: both providers execute the same integer-valued float64
arithmetic as the interpreted kernels — every add is by 1.0, every min is
exact — and the bounded mode ports the banded sweep, the per-row abort test
and the band cell accounting statement by statement, so values, subproblem
counts and abort flags are equal, not just close.  The property suite
asserts exact equality whenever a provider is importable.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from typing import Optional, Sequence, Tuple

try:  # Optional accelerator, mirroring repro.algorithms.workspace.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None


#: Environment kill-switch: a truthy value (``1``/``true``/``yes``/``on``)
#: disables every compiled provider (CI base legs set it to pin the fallback
#: path).  Parsed with warn-and-fallback semantics — an unrecognized word
#: warns and leaves the providers enabled instead of silently killing them.
KILL_SWITCH = "RTED_NO_NATIVE"


def _killed() -> bool:
    from ..runtime import env_flag

    return env_flag(KILL_SWITCH, default=False)


# --------------------------------------------------------------------------- #
# The C provider
# --------------------------------------------------------------------------- #
#: The complete C translation unit: a batched port of
#: ``TedWorkspace._small_pair_regions`` (unbounded and banded sweeps).  Lanes
#: are post-precheck — the ``|n − m| ≥ cutoff`` case never reaches the
#: kernel — and per-lane outputs mirror the scalar contract: the exact
#: distance, the evaluated cell count, and an abort flag whose value field
#: carries the proving bound (the cutoff, exactly like ``CutoffExceeded``).
_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

void ted_small_batch(
    const int64_t* lml_a, const int64_t* codes_a, const int64_t* kr_a,
    const int64_t* noff_a, const int64_t* koff_a, const int64_t* kcnt_a,
    const int64_t* sizes_a,
    const int64_t* lml_b, const int64_t* codes_b, const int64_t* kr_b,
    const int64_t* noff_b, const int64_t* koff_b, const int64_t* kcnt_b,
    const int64_t* sizes_b,
    const int64_t* fi, const int64_t* gi, int64_t npairs,
    int64_t has_cutoff, double cutoff,
    double* D, double* fd, int64_t fd_stride,
    double* out_val, int64_t* out_cells, uint8_t* out_ab)
{
    const double INF = HUGE_VAL;
    int64_t band_w = 0;
    if (has_cutoff) {
        band_w = (int64_t) ceil(cutoff) - 1;
        if (band_w < 0) band_w = 0;
    }
    for (int64_t p = 0; p < npairs; p++) {
        int64_t ta = fi[p], tb = gi[p];
        const int64_t* lml_f = lml_a + noff_a[ta];
        const int64_t* codes_f = codes_a + noff_a[ta];
        const int64_t* krf = kr_a + koff_a[ta];
        int64_t nkf = kcnt_a[ta];
        int64_t n = sizes_a[ta];
        const int64_t* lml_g = lml_b + noff_b[tb];
        const int64_t* codes_g = codes_b + noff_b[tb];
        const int64_t* krg = kr_b + koff_b[tb];
        int64_t nkg = kcnt_b[tb];
        int64_t m = sizes_b[tb];

        int64_t cells = 0;
        int aborted = 0;

        for (int64_t a = 0; a < nkf && !aborted; a++) {
            int64_t kf = krf[a];
            int64_t lf = lml_f[kf];
            int64_t rows = kf - lf + 2;
            for (int64_t b = 0; b < nkg && !aborted; b++) {
                int64_t kg = krg[b];
                int64_t lg = lml_g[kg];
                int64_t cols = kg - lg + 2;
                int final_region = has_cutoff && kf == n - 1 && kg == m - 1;
                double* row = fd;
                for (int64_t j = 0; j < cols; j++) row[j] = (double) j;
                if (!has_cutoff) {
                    for (int64_t i = 1; i < rows; i++) {
                        int64_t node_f = lf + i - 1;
                        int spans_f = lml_f[node_f] == lf;
                        int64_t code_f = codes_f[node_f];
                        int64_t offset = node_f * m;
                        double* prev = fd + (i - 1) * fd_stride;
                        double* cur = fd + i * fd_stride;
                        double* split_row = fd + (lml_f[node_f] - lf) * fd_stride;
                        cur[0] = (double) i;
                        for (int64_t j = 1; j < cols; j++) {
                            int64_t node_g = lg + j - 1;
                            double best = prev[j] + 1.0;
                            double cand = cur[j - 1] + 1.0;
                            if (cand < best) best = cand;
                            if (spans_f && lml_g[node_g] == lg) {
                                cand = prev[j - 1]
                                    + (code_f == codes_g[node_g] ? 0.0 : 1.0);
                                if (cand < best) best = cand;
                                cur[j] = best;
                                D[offset + node_g] = best;
                            } else {
                                cand = split_row[lml_g[node_g] - lg]
                                    + D[offset + node_g];
                                if (cand < best) best = cand;
                                cur[j] = best;
                            }
                        }
                    }
                    cells += (rows - 1) * (cols - 1);
                    continue;
                }
                /* tau-bounded banded sweep (workspace._small_pair_regions) */
                for (int64_t i = 1; i < rows; i++) {
                    int64_t lo = i - band_w;
                    if (lo < 1) lo = 1;
                    int64_t hi = i + band_w;
                    if (hi > cols - 1) hi = cols - 1;
                    if (lo > hi) break;
                    int64_t node_f = lf + i - 1;
                    int spans_f = lml_f[node_f] == lf;
                    int64_t code_f = codes_f[node_f];
                    int64_t offset = node_f * m;
                    double* prev = fd + (i - 1) * fd_stride;
                    double* cur = fd + i * fd_stride;
                    cur[0] = (double) i;
                    if (lo > 1) cur[lo - 1] = INF;
                    int64_t si = lml_f[node_f] - lf;
                    double* split_row = fd + si * fd_stride;
                    int64_t rem_f_node = node_f - lml_f[node_f];
                    for (int64_t j = lo; j <= hi; j++) {
                        int64_t node_g = lg + j - 1;
                        double best = prev[j] + 1.0;
                        double cand = cur[j - 1] + 1.0;
                        if (cand < best) best = cand;
                        if (spans_f && lml_g[node_g] == lg) {
                            cand = prev[j - 1]
                                + (code_f == codes_g[node_g] ? 0.0 : 1.0);
                            if (cand < best) best = cand;
                            cur[j] = best;
                            D[offset + node_g] = best;
                        } else {
                            int64_t sc = lml_g[node_g] - lg;
                            if (si == 0 || sc == 0
                                || (si - band_w <= sc && sc <= si + band_w))
                                cand = split_row[sc];
                            else
                                cand = INF;
                            int64_t rem_g_node = node_g - lml_g[node_g];
                            int64_t dr = rem_f_node - rem_g_node;
                            if (dr < 0) dr = -dr;
                            if (dr <= band_w)
                                cand += D[offset + node_g];
                            else
                                cand = INF;
                            if (cand < best) best = cand;
                            cur[j] = best;
                        }
                    }
                    if (hi + 1 <= cols - 1) cur[hi + 1] = INF;
                    cells += hi - lo + 1;
                    if (final_region) {
                        /* base.check_row_cutoff(row, cols, rows-1-i, cutoff,
                         * band=1, lo, hi, exact_values=False) */
                        int64_t rem_f = rows - 1 - i;
                        int64_t diag = cols - 1 - rem_f;
                        if (lo <= diag && diag <= hi && cur[diag] < cutoff)
                            continue;
                        double best = INF;
                        if (lo > 0) {
                            int64_t d0 = rem_f - (cols - 1);
                            if (d0 < 0) d0 = -d0;
                            best = cur[0] + (double) d0;
                        }
                        for (int64_t j = lo; j <= hi; j++) {
                            int64_t dj = rem_f - (cols - 1 - j);
                            if (dj < 0) dj = -dj;
                            double t = cur[j] + (double) dj;
                            if (t < best) best = t;
                        }
                        if (best >= cutoff) {
                            aborted = 1;
                            break;
                        }
                    }
                }
            }
        }
        if (aborted) {
            out_val[p] = cutoff;
            out_cells[p] = cells;
            out_ab[p] = 1;
            continue;
        }
        double distance = D[(n - 1) * m + m - 1];
        if (has_cutoff && distance >= cutoff) {
            out_val[p] = cutoff;
            out_cells[p] = cells;
            out_ab[p] = 1;
            continue;
        }
        out_val[p] = distance;
        out_cells[p] = cells;
        out_ab[p] = 0;
    }
}
"""


def _find_compiler() -> Optional[str]:
    explicit = os.environ.get("CC")
    if explicit:
        resolved = shutil.which(explicit)
        if resolved:
            return resolved
    for name in ("cc", "gcc", "clang"):
        resolved = shutil.which(name)
        if resolved:
            return resolved
    return None


#: How long a recorded compile failure suppresses further compiler
#: invocations (seconds).  Long enough that a broken toolchain costs one
#: ``cc`` call per session rather than one per TED call; short enough that
#: a fixed toolchain is picked up without manual cache clearing.
_FAILURE_MARKER_TTL = 600.0


def _atomic_write(path: str, data: str) -> None:
    """Write ``path`` via temp file + atomic rename (no torn reads ever)."""
    directory = os.path.dirname(path)
    with tempfile.NamedTemporaryFile(
        "w", dir=directory, suffix=".tmp", delete=False
    ) as tmp:
        tmp.write(data)
        tmp_path = tmp.name
    os.replace(tmp_path, path)


def _read_failure_marker(marker_path: str) -> Optional[str]:
    """The recorded failure reason, or ``None`` if absent/expired."""
    try:
        age = time.time() - os.path.getmtime(marker_path)
        if age > _FAILURE_MARKER_TTL:
            os.unlink(marker_path)
            return None
        with open(marker_path) as handle:
            return handle.read().strip() or "compile failed"
    except OSError:
        return None


def _compile_cc_library():
    """Compile :data:`_C_SOURCE` and return the loaded ctypes library.

    The shared object is cached in the temp directory keyed by a source
    hash, so repeated processes (multiprocessing workers, test runs) reuse
    one compilation; the build itself is a single ~0.3 s compiler call.
    Both the ``.c`` source and the ``.so`` are written via temp file +
    atomic rename, so concurrent first calls (a worker pool warming up)
    can never observe a torn file.  A failed compile is *negative-cached*
    in a ``.failed`` marker next to the library for
    :data:`_FAILURE_MARKER_TTL` seconds — a broken toolchain degrades to
    the interpreted kernels without re-invoking ``cc`` on every probe.
    Any failure — no compiler, sandboxed temp dir, broken toolchain —
    propagates to the provider probe, which records the backend as
    unavailable.
    """
    import ctypes

    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler on PATH")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(tempfile.gettempdir(), "rted-native")
    os.makedirs(cache_dir, exist_ok=True)
    lib_path = os.path.join(cache_dir, f"ted_native_{digest}.so")
    marker_path = lib_path + ".failed"
    if not os.path.exists(lib_path):
        failure = _read_failure_marker(marker_path)
        if failure is not None:
            raise RuntimeError(f"compile previously failed (cached): {failure}")
        src_path = os.path.join(cache_dir, f"ted_native_{digest}.c")
        _atomic_write(src_path, _C_SOURCE)
        with tempfile.NamedTemporaryFile(
            dir=cache_dir, suffix=".so", delete=False
        ) as tmp:
            tmp_path = tmp.name
        try:
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, src_path, "-lm"],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)  # atomic vs. concurrent builders
        except BaseException as exc:
            reason = f"{type(exc).__name__}: {exc}"
            stderr = getattr(exc, "stderr", None)
            if stderr:
                if isinstance(stderr, bytes):
                    stderr = stderr.decode(errors="replace")
                reason = f"{reason}\n{stderr}"
            try:
                _atomic_write(marker_path, reason)
            except OSError:  # pragma: no cover - read-only cache dir
                pass
            raise
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
    try:
        os.unlink(marker_path)  # stale marker from a since-fixed toolchain
    except OSError:
        pass
    lib = ctypes.CDLL(lib_path)
    i64 = ctypes.c_int64
    pi64 = ctypes.POINTER(i64)
    pf64 = ctypes.POINTER(ctypes.c_double)
    pu8 = ctypes.POINTER(ctypes.c_uint8)
    lib.ted_small_batch.restype = None
    lib.ted_small_batch.argtypes = (
        [pi64] * 7 + [pi64] * 7 + [pi64, pi64, i64, i64, ctypes.c_double]
        + [pf64, pf64, i64, pf64, pi64, pu8]
    )
    return lib


# --------------------------------------------------------------------------- #
# The Numba provider
# --------------------------------------------------------------------------- #
def _batch_kernel_source(
    lml_a, codes_a, kr_a, noff_a, koff_a, kcnt_a, sizes_a,
    lml_b, codes_b, kr_b, noff_b, koff_b, kcnt_b, sizes_b,
    fi, gi, has_cutoff, cutoff, D, fd, out_val, out_cells, out_ab,
):  # pragma: no cover - compiled (and exercised) only when numba is present
    """The ``@njit`` twin of the C kernel (``fd`` is a 2-D scratch here)."""
    INF = _np.inf
    band_w = 0
    if has_cutoff:
        band_w = int(_np.ceil(cutoff)) - 1
        if band_w < 0:
            band_w = 0
    for p in range(fi.shape[0]):
        ta = fi[p]
        tb = gi[p]
        na = noff_a[ta]
        nb = noff_b[tb]
        ka = koff_a[ta]
        kb = koff_b[tb]
        nkf = kcnt_a[ta]
        nkg = kcnt_b[tb]
        n = sizes_a[ta]
        m = sizes_b[tb]
        cells = 0
        aborted = False
        for a in range(nkf):
            if aborted:
                break
            kf = kr_a[ka + a]
            lf = lml_a[na + kf]
            rows = kf - lf + 2
            for b in range(nkg):
                if aborted:
                    break
                kg = kr_b[kb + b]
                lg = lml_b[nb + kg]
                cols = kg - lg + 2
                final_region = has_cutoff and kf == n - 1 and kg == m - 1
                for j in range(cols):
                    fd[0, j] = float(j)
                if not has_cutoff:
                    for i in range(1, rows):
                        node_f = lf + i - 1
                        spans_f = lml_a[na + node_f] == lf
                        code_f = codes_a[na + node_f]
                        offset = node_f * m
                        si = lml_a[na + node_f] - lf
                        fd[i, 0] = float(i)
                        for j in range(1, cols):
                            node_g = lg + j - 1
                            best = fd[i - 1, j] + 1.0
                            cand = fd[i, j - 1] + 1.0
                            if cand < best:
                                best = cand
                            if spans_f and lml_b[nb + node_g] == lg:
                                if code_f == codes_b[nb + node_g]:
                                    cand = fd[i - 1, j - 1]
                                else:
                                    cand = fd[i - 1, j - 1] + 1.0
                                if cand < best:
                                    best = cand
                                fd[i, j] = best
                                D[offset + node_g] = best
                            else:
                                cand = (
                                    fd[si, lml_b[nb + node_g] - lg]
                                    + D[offset + node_g]
                                )
                                if cand < best:
                                    best = cand
                                fd[i, j] = best
                    cells += (rows - 1) * (cols - 1)
                    continue
                for i in range(1, rows):
                    lo = i - band_w
                    if lo < 1:
                        lo = 1
                    hi = i + band_w
                    if hi > cols - 1:
                        hi = cols - 1
                    if lo > hi:
                        break
                    node_f = lf + i - 1
                    spans_f = lml_a[na + node_f] == lf
                    code_f = codes_a[na + node_f]
                    offset = node_f * m
                    fd[i, 0] = float(i)
                    if lo > 1:
                        fd[i, lo - 1] = INF
                    si = lml_a[na + node_f] - lf
                    rem_f_node = node_f - lml_a[na + node_f]
                    for j in range(lo, hi + 1):
                        node_g = lg + j - 1
                        best = fd[i - 1, j] + 1.0
                        cand = fd[i, j - 1] + 1.0
                        if cand < best:
                            best = cand
                        if spans_f and lml_b[nb + node_g] == lg:
                            if code_f == codes_b[nb + node_g]:
                                cand = fd[i - 1, j - 1]
                            else:
                                cand = fd[i - 1, j - 1] + 1.0
                            if cand < best:
                                best = cand
                            fd[i, j] = best
                            D[offset + node_g] = best
                        else:
                            sc = lml_b[nb + node_g] - lg
                            if si == 0 or sc == 0 or (
                                si - band_w <= sc and sc <= si + band_w
                            ):
                                cand = fd[si, sc]
                            else:
                                cand = INF
                            rem_g_node = node_g - lml_b[nb + node_g]
                            dr = rem_f_node - rem_g_node
                            if dr < 0:
                                dr = -dr
                            if dr <= band_w:
                                cand = cand + D[offset + node_g]
                            else:
                                cand = INF
                            if cand < best:
                                best = cand
                            fd[i, j] = best
                    if hi + 1 <= cols - 1:
                        fd[i, hi + 1] = INF
                    cells += hi - lo + 1
                    if final_region:
                        rem_f = rows - 1 - i
                        diag = cols - 1 - rem_f
                        if lo <= diag and diag <= hi and fd[i, diag] < cutoff:
                            continue
                        best = INF
                        if lo > 0:
                            d0 = rem_f - (cols - 1)
                            if d0 < 0:
                                d0 = -d0
                            best = fd[i, 0] + float(d0)
                        for j in range(lo, hi + 1):
                            dj = rem_f - (cols - 1 - j)
                            if dj < 0:
                                dj = -dj
                            t = fd[i, j] + float(dj)
                            if t < best:
                                best = t
                        if best >= cutoff:
                            aborted = True
                            break
        if aborted:
            out_val[p] = cutoff
            out_cells[p] = cells
            out_ab[p] = 1
            continue
        distance = D[(n - 1) * m + (m - 1)]
        if has_cutoff and distance >= cutoff:
            out_val[p] = cutoff
            out_cells[p] = cells
            out_ab[p] = 1
            continue
        out_val[p] = distance
        out_cells[p] = cells
        out_ab[p] = 0


def _region_unit_source(
    lml_f, lml_g, codes_f, codes_g, to_post_f, to_post_g, base,
    kf, kg, armed, cutoff, band, slack,
):  # pragma: no cover - compiled (and exercised) only when numba is present
    """``@njit`` twin of :func:`spf_numpy._region`'s unit-cost hot loop.

    ``base`` is the (possibly transposed) tree-distance matrix in *frame
    post* coordinates; ``to_post_*`` map frame ids to rows/columns.  Returns
    ``(cells, bound)`` — ``bound < 0`` means no abort, otherwise the caller
    raises ``CutoffExceeded(bound)`` (the region's cells are dropped, just
    like the interpreted kernel that raises mid-region).
    """
    lf = lml_f[kf]
    lg = lml_g[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2
    fd = _np.empty((rows, cols), dtype=_np.float64)
    for j in range(cols):
        fd[0, j] = float(j)
    for i in range(1, rows):
        node_f = lf + i - 1
        spans_f = lml_f[node_f] == lf
        code_f = codes_f[node_f]
        si = lml_f[node_f] - lf
        row_post = to_post_f[node_f]
        fd[i, 0] = float(i)
        for j in range(1, cols):
            node_g = lg + j - 1
            best = fd[i - 1, j] + 1.0
            cand = fd[i, j - 1] + 1.0
            if cand < best:
                best = cand
            if spans_f and lml_g[node_g] == lg:
                if code_f == codes_g[node_g]:
                    cand = fd[i - 1, j - 1]
                else:
                    cand = fd[i - 1, j - 1] + 1.0
                if cand < best:
                    best = cand
                fd[i, j] = best
                base[row_post, to_post_g[node_g]] = best
            else:
                cand = (
                    fd[si, lml_g[node_g] - lg]
                    + base[row_post, to_post_g[node_g]]
                )
                if cand < best:
                    best = cand
                fd[i, j] = best
        if armed:
            rem_f = rows - 1 - i
            diag = cols - 1 - rem_f
            if 0 <= diag < cols and fd[i, diag] < cutoff:
                continue
            bound = _np.inf
            for j in range(cols):
                rem_g = cols - 1 - j
                dr = float(rem_f - rem_g)
                if dr < 0.0:
                    dr = -dr
                t = fd[i, j] + band * dr
                if t < bound:
                    bound = t
            bound *= 1.0 - slack
            if bound >= cutoff:
                return (rows - 1) * (cols - 1), bound
    return (rows - 1) * (cols - 1), -1.0


# --------------------------------------------------------------------------- #
# Provider discovery (cached; the kill-switch is re-read on every call)
# --------------------------------------------------------------------------- #
_PROVIDER: Optional[str] = None
_PROBED = False
_CC_LIB = None
_NUMBA_BATCH = None
_NUMBA_REGION = None


def _probe() -> Optional[str]:
    global _PROVIDER, _PROBED, _CC_LIB, _NUMBA_BATCH, _NUMBA_REGION
    if _PROBED:
        return _PROVIDER
    _PROBED = True
    _PROVIDER = None
    if _np is None:
        return None
    try:  # pragma: no cover - numba is optional in the base environment
        import numba

        _NUMBA_BATCH = numba.njit(cache=False)(_batch_kernel_source)
        _NUMBA_REGION = numba.njit(cache=False)(_region_unit_source)
        _PROVIDER = "numba"
        return _PROVIDER
    except Exception:
        _NUMBA_BATCH = None
        _NUMBA_REGION = None
    try:
        _CC_LIB = _compile_cc_library()
        _PROVIDER = "cc"
    except Exception:
        _CC_LIB = None
    return _PROVIDER


def native_provider() -> Optional[str]:
    """The active compiled provider (``"numba"`` / ``"cc"``) or ``None``."""
    if _killed():
        return None
    return _probe()


def native_available() -> bool:
    """Whether any compiled provider is usable (and not killed by env)."""
    return native_provider() is not None


def _reset_provider_cache() -> None:
    """Testing hook: forget the probe result (e.g. around env changes)."""
    global _PROBED, _PROVIDER, _CC_LIB, _NUMBA_BATCH, _NUMBA_REGION
    _PROBED = False
    _PROVIDER = None
    _CC_LIB = None
    _NUMBA_BATCH = None
    _NUMBA_REGION = None


atexit.register(_reset_provider_cache)


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def native_batch(pack_a, pack_b, fi, gi, cutoff: Optional[float] = None):
    """Batched small-pair TED over :class:`CorpusPack` lanes, compiled.

    Same contract as :func:`repro.algorithms.batch_kernel.run_batch` —
    eligible, post-precheck lanes in, ``(values, cells, aborted)`` out,
    bit-identical to the scalar kernel — or ``None`` when no provider is
    available (callers fall back to the NumPy lockstep kernel).
    """
    provider = native_provider()
    if provider is None:
        return None
    fi = _np.ascontiguousarray(fi, dtype=_np.int64)
    gi = _np.ascontiguousarray(gi, dtype=_np.int64)
    npairs = fi.size
    values = _np.empty(npairs, dtype=_np.float64)
    cells = _np.zeros(npairs, dtype=_np.int64)
    aborted_u8 = _np.zeros(npairs, dtype=_np.uint8)
    if npairs == 0:
        return values, cells, aborted_u8.astype(bool)
    max_n = int(pack_a.sizes[fi].max())
    max_m = int(pack_b.sizes[gi].max())
    has_cutoff = cutoff is not None
    cut = float(cutoff) if has_cutoff else -1.0
    D = _np.zeros(max_n * max_m, dtype=_np.float64)
    arrays_a = (
        pack_a.lml_flat, pack_a.codes_flat, pack_a.kroots,
        pack_a.node_off, pack_a.kr_off, pack_a.kr_count, pack_a.sizes,
    )
    arrays_b = (
        pack_b.lml_flat, pack_b.codes_flat, pack_b.kroots,
        pack_b.node_off, pack_b.kr_off, pack_b.kr_count, pack_b.sizes,
    )
    if provider == "numba":  # pragma: no cover - exercised on the numba CI leg
        fd = _np.zeros((max_n + 1, max_m + 1), dtype=_np.float64)
        _NUMBA_BATCH(
            *[_np.ascontiguousarray(x, dtype=_np.int64) for x in arrays_a],
            *[_np.ascontiguousarray(x, dtype=_np.int64) for x in arrays_b],
            fi, gi, has_cutoff, cut, D, fd, values, cells, aborted_u8,
        )
        return values, cells, aborted_u8.astype(bool)
    import ctypes

    fd = _np.zeros((max_n + 1) * (max_m + 1), dtype=_np.float64)
    pi64 = ctypes.POINTER(ctypes.c_int64)
    pf64 = ctypes.POINTER(ctypes.c_double)
    pu8 = ctypes.POINTER(ctypes.c_uint8)

    def _ip(arr):
        return _np.ascontiguousarray(arr, dtype=_np.int64).ctypes.data_as(pi64)

    _CC_LIB.ted_small_batch(
        *[_ip(x) for x in arrays_a],
        *[_ip(x) for x in arrays_b],
        fi.ctypes.data_as(pi64), gi.ctypes.data_as(pi64), npairs,
        1 if has_cutoff else 0, cut,
        D.ctypes.data_as(pf64), fd.ctypes.data_as(pf64), max_m + 1,
        values.ctypes.data_as(pf64), cells.ctypes.data_as(pi64),
        aborted_u8.ctypes.data_as(pu8),
    )
    return values, cells, aborted_u8.astype(bool)


def native_small_pair(
    arrays_f: Tuple[Sequence[int], Sequence[int], Sequence[int]],
    n: int,
    arrays_g: Tuple[Sequence[int], Sequence[int], Sequence[int]],
    m: int,
    cutoff: Optional[float] = None,
) -> Optional[Tuple[float, int, bool]]:
    """One pair through the compiled batch kernel (``engine=native``).

    ``arrays_*`` are the ``(lml, keyroots, codes)`` triples of
    ``TedWorkspace._small_arrays``.  Returns ``(value, cells, aborted)`` or
    ``None`` when no provider is available.  The per-call array packing
    costs a few µs — still several times cheaper than the interpreted
    kernel it replaces; corpus batches amortize it via :func:`native_batch`.
    """
    if native_provider() is None:
        return None
    lml_f, kr_f, codes_f = arrays_f
    lml_g, kr_g, codes_g = arrays_g

    class _OnePack:
        pass

    pa = _OnePack()
    pa.lml_flat = _np.asarray(lml_f, dtype=_np.int64)
    pa.codes_flat = _np.asarray(codes_f, dtype=_np.int64)
    pa.kroots = _np.asarray(kr_f, dtype=_np.int64)
    pa.node_off = _np.zeros(1, dtype=_np.int64)
    pa.kr_off = _np.zeros(1, dtype=_np.int64)
    pa.kr_count = _np.asarray([len(kr_f)], dtype=_np.int64)
    pa.sizes = _np.asarray([n], dtype=_np.int64)
    pb = _OnePack()
    pb.lml_flat = _np.asarray(lml_g, dtype=_np.int64)
    pb.codes_flat = _np.asarray(codes_g, dtype=_np.int64)
    pb.kroots = _np.asarray(kr_g, dtype=_np.int64)
    pb.node_off = _np.zeros(1, dtype=_np.int64)
    pb.kr_off = _np.zeros(1, dtype=_np.int64)
    pb.kr_count = _np.asarray([len(kr_g)], dtype=_np.int64)
    pb.sizes = _np.asarray([m], dtype=_np.int64)
    out = native_batch(pa, pb, [0], [0], cutoff=cutoff)
    if out is None:
        return None
    values, cells, aborted = out
    return float(values[0]), int(cells[0]), bool(aborted[0])


def native_region_kernel():
    """The compiled unit-mode region sweep, or ``None``.

    Only the ``numba`` provider implements it (the C provider is scoped to
    the batched small-pair kernel); :func:`repro.algorithms.spf_numpy.run_regions`
    falls back to its vectorized/scalar row sweeps otherwise.  The returned
    callable has the signature of :func:`_region_unit_source` and returns
    ``(cells, bound)``.
    """
    if native_provider() != "numba":
        return None
    return _NUMBA_REGION  # pragma: no cover - exercised on the numba CI leg
