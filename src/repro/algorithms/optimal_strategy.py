"""OptStrategy — the optimal LRH strategy in ``O(n^2)`` time (Algorithm 2).

Given two trees ``F`` and ``G``, Algorithm 2 of the paper computes, for every
pair of subtrees ``(F_v, G_w)``, the root-leaf path (left, right or heavy, in
either tree) that minimizes the number of relevant subproblems GTED must
evaluate, together with that minimum count.  The key idea is to maintain the
*cost sums over relevant subtrees* incrementally instead of recomputing them,
which brings the strategy computation down from ``O(n^3)`` (the baseline
algorithm of Section 6.1, implemented in
:mod:`repro.counting.cost_formula`) to ``O(n^2)``.

The strategy matrix is stored as flat integers — entry ``(v, w)`` is an index
into :data:`~repro.algorithms.strategies.ALL_FIXED_CHOICES` — and the cost
matrix as flat ints, never as ``|F| × |G|`` objects.  Three implementations
share that layout:

* :func:`_optimal_strategy_numpy` — the production path: per-``v`` row
  updates are NumPy vector operations, and the sequential child→parent cost
  flow inside a row is batched by *height level* of ``G`` (all nodes of one
  height are independent given the levels below).
* :func:`_optimal_strategy_python` — the flat-int scalar fallback, used when
  NumPy is unavailable or when ``G`` is so deep that level batching
  degenerates.
* :func:`optimal_strategy_objects` — the legacy object-matrix
  implementation, kept verbatim as the cross-check oracle and the baseline
  of ``benchmarks/bench_spf.py``'s Algorithm 2 comparison.

The module exposes:

* :func:`optimal_strategy` — the full Algorithm 2, returning an
  :class:`OptimalStrategyResult` with the encoded strategy matrix and the
  optimal subproblem count;
* :attr:`OptimalStrategyResult.strategy` — an
  :class:`~repro.algorithms.strategies.EncodedStrategy` ready to be passed
  to GTED / the executors.
"""

from __future__ import annotations

from typing import List, Sequence

from ..runtime import active_deadline
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree
from .strategies import ALL_FIXED_CHOICES, EncodedStrategy, PathChoice

try:  # NumPy is an optional accelerator, mirroring the SPF kernel split.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Candidate order used for tie-breaking; matches the listing order of the
#: cost formula in Figure 5 (heavy-F, heavy-G, left-F, left-G, right-F,
#: right-G).  The first candidate attaining the minimum wins.  Identical to
#: :data:`~repro.algorithms.strategies.ALL_FIXED_CHOICES`, whose positions
#: are the integer codes stored in the strategy matrix.
_CANDIDATE_CHOICES = tuple(ALL_FIXED_CHOICES)

#: Per-block fixed overhead (ufunc dispatch, temporaries) of the vectorized
#: implementation relative to per-pair scalar work: vectorize only when the
#: level-pair block count is at least this many times smaller than the pair
#: count, else fall back to the flat scalar loop (deep, path-like trees).
_BLOCK_OVERHEAD_FACTOR = 64


class OptimalStrategyResult:
    """Result of Algorithm 2.

    Attributes
    ----------
    choice_codes:
        ``|F| × |G|`` matrix of small ints; entry ``(v, w)`` indexes
        :data:`~repro.algorithms.strategies.ALL_FIXED_CHOICES` and encodes
        the optimal path for the subtree pair rooted at ``(v, w)``.
    cost:
        Number of relevant subproblems of the optimal strategy for the whole
        tree pair (the value of the cost formula at the roots).
    costs:
        ``|F| × |G|`` matrix with the optimal cost of every subtree pair.
    """

    __slots__ = ("choice_codes", "cost", "costs", "_choices")

    def __init__(self, choice_codes, cost: int, costs, choices=None) -> None:
        self.choice_codes = choice_codes
        self.cost = int(cost)
        self.costs = costs
        self._choices = choices

    @property
    def choices(self) -> List[List[PathChoice]]:
        """The decoded :class:`PathChoice` matrix, materialized on demand."""
        if self._choices is None:
            self._choices = [
                [_CANDIDATE_CHOICES[code] for code in row] for row in self.choice_codes
            ]
        return self._choices

    @property
    def strategy(self) -> EncodedStrategy:
        """The strategy matrix wrapped for consumption by GTED."""
        return EncodedStrategy(self.choice_codes, name="optimal")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptimalStrategyResult(cost={self.cost})"


def _shared_factors(tree_f: Tree, tree_g: Tree):
    """The per-node factors of the six products in the cost formula."""
    return (
        tree_f.full_decomposition_sizes(),
        tree_g.full_decomposition_sizes(),
        tree_f.left_decomposition_sizes(),
        tree_g.left_decomposition_sizes(),
        tree_f.right_decomposition_sizes(),
        tree_g.right_decomposition_sizes(),
    )


def optimal_strategy(tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
    """Compute the optimal LRH strategy for ``(tree_f, tree_g)`` (Algorithm 2).

    Runs in ``O(|F| · |G|)`` time and space; dispatches to the vectorized
    NumPy implementation when available and worthwhile, and to the flat-int
    pure-Python loop otherwise.  Both produce bit-identical results (the
    test-suite cross-checks them and the legacy object-matrix oracle).
    """
    if _np is not None and tree_f.n >= 2 and tree_g.n >= 2:
        heights_f = _node_heights(tree_f)
        heights_g = _node_heights(tree_g)
        blocks = (max(heights_f) + 1) * (max(heights_g) + 1)
        # Level-pair blocking degenerates on deep, path-like inputs (blocks
        # shrink towards single pairs); the flat scalar loop wins there.
        if blocks * _BLOCK_OVERHEAD_FACTOR <= tree_f.n * tree_g.n:
            return _optimal_strategy_numpy(tree_f, tree_g, heights_f, heights_g)
    return _optimal_strategy_python(tree_f, tree_g)


def optimal_strategy_cost(tree_f: Tree, tree_g: Tree) -> int:
    """Number of relevant subproblems of the optimal LRH strategy.

    Convenience wrapper around :func:`optimal_strategy` for callers (counters,
    experiments) that only need the cost value.
    """
    return optimal_strategy(tree_f, tree_g).cost


def _node_heights(tree: Tree) -> List[int]:
    """Height of every node (leaves are 0), in postorder."""
    heights = [0] * tree.n
    children = tree.children
    for v in range(tree.n):
        kids = children[v]
        if kids:
            heights[v] = 1 + max(heights[c] for c in kids)
    return heights


# --------------------------------------------------------------------------- #
# Pure-Python flat-int implementation
# --------------------------------------------------------------------------- #
def _optimal_strategy_python(tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
    """Algorithm 2 over flat int rows — no PathChoice objects anywhere."""
    n_f, n_g = tree_f.n, tree_g.n

    sizes_f, sizes_g = tree_f.sizes, tree_g.sizes
    parents_f, parents_g = tree_f.parents, tree_g.parents

    full_f, full_g, left_f, left_g, right_f, right_g = _shared_factors(tree_f, tree_g)

    on_left_f = tree_f.on_parent_path_all(LEFT)
    on_right_f = tree_f.on_parent_path_all(RIGHT)
    on_heavy_f = tree_f.on_parent_path_all(HEAVY)
    on_left_g = tree_g.on_parent_path_all(LEFT)
    on_right_g = tree_g.on_parent_path_all(RIGHT)
    on_heavy_g = tree_g.on_parent_path_all(HEAVY)

    # Cost sums over the relevant subtrees of F_v w.r.t. each path kind,
    # indexed [v][w]; and the symmetric per-v sums for G_w, indexed [w].
    left_sums_f = [[0] * n_g for _ in range(n_f)]
    right_sums_f = [[0] * n_g for _ in range(n_f)]
    heavy_sums_f = [[0] * n_g for _ in range(n_f)]

    choice_codes: List[List[int]] = [[0] * n_g for _ in range(n_f)]
    costs: List[List[int]] = [[0] * n_g for _ in range(n_f)]

    deadline = active_deadline()
    for v in range(n_f):
        if deadline is not None:
            # One v-row is O(n_g) scalar work; weight the tick accordingly.
            deadline.tick(n_g)
        size_v = sizes_f[v]
        full_v = full_f[v]
        left_v = left_f[v]
        right_v = right_f[v]
        parent_v = parents_f[v]
        row_left_v = left_sums_f[v]
        row_right_v = right_sums_f[v]
        row_heavy_v = heavy_sums_f[v]
        row_codes = choice_codes[v]
        row_costs = costs[v]

        # Per-v cost sums for the relevant subtrees of G's subtrees; children
        # of w are processed before w because the inner loop is in postorder.
        left_sums_g = [0] * n_g
        right_sums_g = [0] * n_g
        heavy_sums_g = [0] * n_g

        for w in range(n_g):
            size_w = sizes_g[w]

            best_cost = size_v * full_g[w] + row_heavy_v[w]  # γ_H(F_v)
            best_index = 0
            cand = size_w * full_v + heavy_sums_g[w]  # γ_H(G_w)
            if cand < best_cost:
                best_cost, best_index = cand, 1
            cand = size_v * left_g[w] + row_left_v[w]  # γ_L(F_v)
            if cand < best_cost:
                best_cost, best_index = cand, 2
            cand = size_w * left_v + left_sums_g[w]  # γ_L(G_w)
            if cand < best_cost:
                best_cost, best_index = cand, 3
            cand = size_v * right_g[w] + row_right_v[w]  # γ_R(F_v)
            if cand < best_cost:
                best_cost, best_index = cand, 4
            cand = size_w * right_v + right_sums_g[w]  # γ_R(G_w)
            if cand < best_cost:
                best_cost, best_index = cand, 5

            row_codes[w] = best_index
            row_costs[w] = best_cost

            if parent_v != -1:
                left_sums_f[parent_v][w] += row_left_v[w] if on_left_f[v] else best_cost
                right_sums_f[parent_v][w] += row_right_v[w] if on_right_f[v] else best_cost
                heavy_sums_f[parent_v][w] += row_heavy_v[w] if on_heavy_f[v] else best_cost

            parent_w = parents_g[w]
            if parent_w != -1:
                left_sums_g[parent_w] += left_sums_g[w] if on_left_g[w] else best_cost
                right_sums_g[parent_w] += right_sums_g[w] if on_right_g[w] else best_cost
                heavy_sums_g[parent_w] += heavy_sums_g[w] if on_heavy_g[w] else best_cost

    return OptimalStrategyResult(
        choice_codes=choice_codes,
        cost=costs[n_f - 1][n_g - 1],
        costs=costs,
    )


# --------------------------------------------------------------------------- #
# Vectorized implementation
# --------------------------------------------------------------------------- #
def _optimal_strategy_numpy(
    tree_f: Tree, tree_g: Tree, heights_f: Sequence[int], heights_g: Sequence[int]
) -> OptimalStrategyResult:
    """Algorithm 2 with 2D-blocked vectorized updates.

    The sequential structure of Algorithm 2 is the child→parent flow of the
    cost sums — within a row (over ``G``) *and* across rows (over ``F``).
    Both flows cross *height levels* strictly upward, so pairs of levels
    ``(level of F, level of G)`` can be processed as whole blocks: for each
    block, the six candidate matrices are single vector expressions, the
    winner is one ``argmin`` over the stacked block (first minimum = the
    cost formula's tie-breaking order), and the block's contributions are
    scatter-added onto the parent rows/columns of the six running-sum
    matrices.  Block order (G level ascending, F level ascending inside)
    guarantees every child pair is final before its parents read it.
    """
    np = _np
    n_f, n_g = tree_f.n, tree_g.n

    sizes_f = np.asarray(tree_f.sizes, dtype=np.int64)
    sizes_g = np.asarray(tree_g.sizes, dtype=np.int64)
    full_f, full_g, left_f, left_g, right_f, right_g = _shared_factors(tree_f, tree_g)
    full_f = np.asarray(full_f, dtype=np.int64)
    full_g = np.asarray(full_g, dtype=np.int64)
    left_f = np.asarray(left_f, dtype=np.int64)
    left_g = np.asarray(left_g, dtype=np.int64)
    right_f = np.asarray(right_f, dtype=np.int64)
    right_g = np.asarray(right_g, dtype=np.int64)

    on_left_f = np.asarray(tree_f.on_parent_path_all(LEFT))
    on_right_f = np.asarray(tree_f.on_parent_path_all(RIGHT))
    on_heavy_f = np.asarray(tree_f.on_parent_path_all(HEAVY))
    on_left_g = np.asarray(tree_g.on_parent_path_all(LEFT))
    on_right_g = np.asarray(tree_g.on_parent_path_all(RIGHT))
    on_heavy_g = np.asarray(tree_g.on_parent_path_all(HEAVY))

    hf = np.asarray(heights_f, dtype=np.intp)
    hg = np.asarray(heights_g, dtype=np.intp)

    on_f = (on_heavy_f, on_left_f, on_right_f)
    on_g = (on_heavy_g, on_left_g, on_right_g)
    factors_f = (full_f, left_f, right_f)
    factors_g = (full_g, left_g, right_g)

    def level_data(tree, heights, sizes, factors, on_path, axis):
        """Everything a level contributes to every block it participates in.

        Per level: node ids (broadcast-shaped for its axis), the stacked
        per-kind factor/path-membership arrays, the node sizes, and the
        concatenated child ids + reduceat offsets for gathering the
        children's contributions (``None`` for the leaf level).
        """
        levels = []
        for h in range(int(heights.max()) + 1):
            idx = np.nonzero(heights == h)[0]
            if axis == 0:  # F: rows
                idx_b = idx[:, None]
                fac = np.stack([f[idx] for f in factors])[:, :, None]
                on = np.stack([f[idx] for f in on_path])[:, :, None]
                size = sizes[idx][:, None]
            else:  # G: columns
                idx_b = idx[None, :]
                fac = np.stack([f[idx] for f in factors])[:, None, :]
                on = np.stack([f[idx] for f in on_path])[:, None, :]
                size = sizes[idx][None, :]
            kids_b = offsets = None
            if h > 0:
                kids = [tree.children[int(v)] for v in idx]
                offsets = np.zeros(len(kids), dtype=np.intp)
                np.cumsum([len(k) for k in kids[:-1]], out=offsets[1:])
                flat = np.concatenate(kids).astype(np.intp)
                kids_b = flat[:, None] if axis == 0 else flat[None, :]
            levels.append((idx_b, size, fac, on, kids_b, offsets))
        return levels

    levels_f = level_data(tree_f, hf, sizes_f, factors_f, on_f, axis=0)
    levels_g = level_data(tree_g, hg, sizes_g, factors_g, on_g, axis=1)

    # Contribution stacks, indexed [kind][v][w] (kind = heavy/left/right):
    # entry (v, w) is what the pair contributes to its parent's cost sum —
    # its own sum when the node continues the parent's path, its optimal
    # cost otherwise.  Parents *gather* these over their children (one
    # reduceat per side), which replaces Algorithm 2's per-pair scatter
    # updates.
    contrib_f = np.zeros((3, n_f, n_g), dtype=np.int64)
    contrib_g = np.zeros((3, n_f, n_g), dtype=np.int64)

    choice_codes = np.zeros((n_f, n_g), dtype=np.int8)
    costs = np.zeros((n_f, n_g), dtype=np.int64)
    zero = np.zeros((3, 1, 1), dtype=np.int64)  # broadcastable leaf-level sums

    deadline = active_deadline()
    for col, size_col, fac_col, on_col, kids_g, seg_g in levels_g:
        for row, size_row, fac_row, on_row, kids_f, seg_f in levels_f:
            if deadline is not None:
                # One level-pair block is a batch of whole-row vector ops.
                deadline.tick(len(row) * len(col))
            # Cost sums over relevant subtrees, all three kinds at once:
            # gathered from the children's contribution rows/columns.
            if kids_f is None:
                sums_f = zero
            else:
                sums_f = np.add.reduceat(contrib_f[:, kids_f, col], seg_f, axis=1)
            if kids_g is None:
                sums_g = zero
            else:
                sums_g = np.add.reduceat(contrib_g[:, row, kids_g], seg_g, axis=2)

            # The six candidates, interleaved in the tie-breaking order of
            # the cost formula (heavy-F, heavy-G, left-F, left-G, right-F,
            # right-G); np.argmin keeps the first minimum.
            shape = np.broadcast_shapes(size_row.shape, size_col.shape)
            cand = np.empty((6,) + shape, dtype=np.int64)
            np.add(size_row * fac_col, sums_f, out=cand[0::2])
            np.add(size_col * fac_row, sums_g, out=cand[1::2])
            codes = np.argmin(cand, axis=0)
            best = np.min(cand, axis=0)

            choice_codes[row, col] = codes
            costs[row, col] = best

            # Contributions this block hands up to both parents.
            contrib_f[:, row, col] = np.where(on_row, sums_f, best)
            contrib_g[:, row, col] = np.where(on_col, sums_g, best)

    return OptimalStrategyResult(
        choice_codes=choice_codes,
        cost=int(costs[n_f - 1, n_g - 1]),
        costs=costs,
    )


# --------------------------------------------------------------------------- #
# Legacy object-matrix implementation (oracle / benchmark baseline)
# --------------------------------------------------------------------------- #
def optimal_strategy_objects(tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
    """Algorithm 2 building ``|F| × |G|`` matrices of :class:`PathChoice`.

    This is the pre-vectorization implementation, preserved unchanged as the
    cross-check oracle for the flat-array versions and as the baseline of the
    Algorithm 2 benchmark — its per-pair tuple construction and object-matrix
    stores are precisely the overhead the rewrite removes.
    """
    n_f, n_g = tree_f.n, tree_g.n

    sizes_f, sizes_g = tree_f.sizes, tree_g.sizes
    parents_f, parents_g = tree_f.parents, tree_g.parents

    full_f, full_g, left_f, left_g, right_f, right_g = _shared_factors(tree_f, tree_g)

    on_left_f = [tree_f.on_parent_path(v, LEFT) for v in range(n_f)]
    on_right_f = [tree_f.on_parent_path(v, RIGHT) for v in range(n_f)]
    on_heavy_f = [tree_f.on_parent_path(v, HEAVY) for v in range(n_f)]
    on_left_g = [tree_g.on_parent_path(w, LEFT) for w in range(n_g)]
    on_right_g = [tree_g.on_parent_path(w, RIGHT) for w in range(n_g)]
    on_heavy_g = [tree_g.on_parent_path(w, HEAVY) for w in range(n_g)]

    left_sums_f = [[0] * n_g for _ in range(n_f)]
    right_sums_f = [[0] * n_g for _ in range(n_f)]
    heavy_sums_f = [[0] * n_g for _ in range(n_f)]

    choices: List[List[PathChoice]] = [[None] * n_g for _ in range(n_f)]  # type: ignore[list-item]
    codes: List[List[int]] = [[0] * n_g for _ in range(n_f)]
    costs: List[List[int]] = [[0] * n_g for _ in range(n_f)]

    for v in range(n_f):
        size_v = sizes_f[v]
        full_v = full_f[v]
        left_v = left_f[v]
        right_v = right_f[v]
        parent_v = parents_f[v]
        row_left_v = left_sums_f[v]
        row_right_v = right_sums_f[v]
        row_heavy_v = heavy_sums_f[v]
        row_choices = choices[v]
        row_codes = codes[v]
        row_costs = costs[v]

        left_sums_g = [0] * n_g
        right_sums_g = [0] * n_g
        heavy_sums_g = [0] * n_g

        for w in range(n_g):
            size_w = sizes_g[w]

            candidates = (
                size_v * full_g[w] + row_heavy_v[w],  # γ_H(F_v)
                size_w * full_v + heavy_sums_g[w],  # γ_H(G_w)
                size_v * left_g[w] + row_left_v[w],  # γ_L(F_v)
                size_w * left_v + left_sums_g[w],  # γ_L(G_w)
                size_v * right_g[w] + row_right_v[w],  # γ_R(F_v)
                size_w * right_v + right_sums_g[w],  # γ_R(G_w)
            )
            best_index = 0
            best_cost = candidates[0]
            for index in range(1, 6):
                if candidates[index] < best_cost:
                    best_cost = candidates[index]
                    best_index = index

            row_choices[w] = _CANDIDATE_CHOICES[best_index]
            row_codes[w] = best_index
            row_costs[w] = best_cost

            if parent_v != -1:
                left_sums_f[parent_v][w] += row_left_v[w] if on_left_f[v] else best_cost
                right_sums_f[parent_v][w] += row_right_v[w] if on_right_f[v] else best_cost
                heavy_sums_f[parent_v][w] += row_heavy_v[w] if on_heavy_f[v] else best_cost

            parent_w = parents_g[w]
            if parent_w != -1:
                left_sums_g[parent_w] += left_sums_g[w] if on_left_g[w] else best_cost
                right_sums_g[parent_w] += right_sums_g[w] if on_right_g[w] else best_cost
                heavy_sums_g[parent_w] += heavy_sums_g[w] if on_heavy_g[w] else best_cost

    return OptimalStrategyResult(
        choice_codes=codes,
        cost=costs[n_f - 1][n_g - 1],
        costs=costs,
        choices=choices,
    )
