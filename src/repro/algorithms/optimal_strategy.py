"""OptStrategy — the optimal LRH strategy in ``O(n^2)`` time (Algorithm 2).

Given two trees ``F`` and ``G``, Algorithm 2 of the paper computes, for every
pair of subtrees ``(F_v, G_w)``, the root-leaf path (left, right or heavy, in
either tree) that minimizes the number of relevant subproblems GTED must
evaluate, together with that minimum count.  The key idea is to maintain the
*cost sums over relevant subtrees* incrementally instead of recomputing them,
which brings the strategy computation down from ``O(n^3)`` (the baseline
algorithm of Section 6.1, implemented in
:mod:`repro.counting.cost_formula`) to ``O(n^2)``.

The module exposes:

* :func:`optimal_strategy` — the full Algorithm 2, returning an
  :class:`OptimalStrategyResult` with the strategy matrix and the optimal
  subproblem count;
* :class:`OptimalStrategyResult.strategy` — a
  :class:`~repro.algorithms.strategies.PrecomputedStrategy` ready to be passed
  to GTED / the decomposition engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..trees.tree import HEAVY, LEFT, RIGHT, Tree
from .strategies import SIDE_F, SIDE_G, PathChoice, PrecomputedStrategy

#: Candidate order used for tie-breaking; matches the listing order of the
#: cost formula in Figure 5 (heavy-F, heavy-G, left-F, left-G, right-F,
#: right-G).  The first candidate attaining the minimum wins.
_CANDIDATE_CHOICES = (
    PathChoice(SIDE_F, HEAVY),
    PathChoice(SIDE_G, HEAVY),
    PathChoice(SIDE_F, LEFT),
    PathChoice(SIDE_G, LEFT),
    PathChoice(SIDE_F, RIGHT),
    PathChoice(SIDE_G, RIGHT),
)


@dataclass
class OptimalStrategyResult:
    """Result of Algorithm 2.

    Attributes
    ----------
    choices:
        ``|F| × |G|`` matrix of :class:`PathChoice`; entry ``(v, w)`` is the
        optimal path for the subtree pair rooted at ``(v, w)``.
    cost:
        Number of relevant subproblems of the optimal strategy for the whole
        tree pair (the value of the cost formula at the roots).
    costs:
        ``|F| × |G|`` matrix with the optimal cost of every subtree pair.
    """

    choices: List[List[PathChoice]]
    cost: int
    costs: List[List[int]]

    @property
    def strategy(self) -> PrecomputedStrategy:
        """The strategy matrix wrapped for consumption by GTED."""
        return PrecomputedStrategy(self.choices, name="optimal")


def optimal_strategy(tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
    """Compute the optimal LRH strategy for ``(tree_f, tree_g)`` (Algorithm 2).

    Runs in ``O(|F| · |G|)`` time and space.
    """
    n_f, n_g = tree_f.n, tree_g.n

    sizes_f, sizes_g = tree_f.sizes, tree_g.sizes
    parents_f, parents_g = tree_f.parents, tree_g.parents

    # Precomputed factors of the six products in the cost formula (Lemmas 1-3).
    full_f = tree_f.full_decomposition_sizes()
    full_g = tree_g.full_decomposition_sizes()
    left_f = tree_f.left_decomposition_sizes()
    left_g = tree_g.left_decomposition_sizes()
    right_f = tree_f.right_decomposition_sizes()
    right_g = tree_g.right_decomposition_sizes()

    # Membership of a node in its parent's left / right / heavy path.
    on_left_f = [tree_f.on_parent_path(v, LEFT) for v in range(n_f)]
    on_right_f = [tree_f.on_parent_path(v, RIGHT) for v in range(n_f)]
    on_heavy_f = [tree_f.on_parent_path(v, HEAVY) for v in range(n_f)]
    on_left_g = [tree_g.on_parent_path(w, LEFT) for w in range(n_g)]
    on_right_g = [tree_g.on_parent_path(w, RIGHT) for w in range(n_g)]
    on_heavy_g = [tree_g.on_parent_path(w, HEAVY) for w in range(n_g)]

    # Cost sums over the relevant subtrees of F_v w.r.t. each path kind,
    # indexed [v][w]; and the symmetric per-v sums for G_w, indexed [w].
    left_sums_f = [[0] * n_g for _ in range(n_f)]
    right_sums_f = [[0] * n_g for _ in range(n_f)]
    heavy_sums_f = [[0] * n_g for _ in range(n_f)]

    choices: List[List[PathChoice]] = [[None] * n_g for _ in range(n_f)]  # type: ignore[list-item]
    costs: List[List[int]] = [[0] * n_g for _ in range(n_f)]

    for v in range(n_f):
        size_v = sizes_f[v]
        full_v = full_f[v]
        left_v = left_f[v]
        right_v = right_f[v]
        parent_v = parents_f[v]
        row_left_v = left_sums_f[v]
        row_right_v = right_sums_f[v]
        row_heavy_v = heavy_sums_f[v]
        row_choices = choices[v]
        row_costs = costs[v]

        # Per-v cost sums for the relevant subtrees of G's subtrees; children
        # of w are processed before w because the inner loop is in postorder.
        left_sums_g = [0] * n_g
        right_sums_g = [0] * n_g
        heavy_sums_g = [0] * n_g

        for w in range(n_g):
            size_w = sizes_g[w]

            candidates = (
                size_v * full_g[w] + row_heavy_v[w],      # γ_H(F_v)
                size_w * full_v + heavy_sums_g[w],        # γ_H(G_w)
                size_v * left_g[w] + row_left_v[w],       # γ_L(F_v)
                size_w * left_v + left_sums_g[w],         # γ_L(G_w)
                size_v * right_g[w] + row_right_v[w],     # γ_R(F_v)
                size_w * right_v + right_sums_g[w],       # γ_R(G_w)
            )
            best_index = 0
            best_cost = candidates[0]
            for index in range(1, 6):
                if candidates[index] < best_cost:
                    best_cost = candidates[index]
                    best_index = index

            row_choices[w] = _CANDIDATE_CHOICES[best_index]
            row_costs[w] = best_cost

            if parent_v != -1:
                left_sums_f[parent_v][w] += row_left_v[w] if on_left_f[v] else best_cost
                right_sums_f[parent_v][w] += row_right_v[w] if on_right_f[v] else best_cost
                heavy_sums_f[parent_v][w] += row_heavy_v[w] if on_heavy_f[v] else best_cost

            parent_w = parents_g[w]
            if parent_w != -1:
                left_sums_g[parent_w] += left_sums_g[w] if on_left_g[w] else best_cost
                right_sums_g[parent_w] += right_sums_g[w] if on_right_g[w] else best_cost
                heavy_sums_g[parent_w] += heavy_sums_g[w] if on_heavy_g[w] else best_cost

    return OptimalStrategyResult(
        choices=choices,
        cost=costs[n_f - 1][n_g - 1],
        costs=costs,
    )


def optimal_strategy_cost(tree_f: Tree, tree_g: Tree) -> int:
    """Number of relevant subproblems of the optimal LRH strategy.

    Convenience wrapper around :func:`optimal_strategy` for callers (counters,
    experiments) that only need the cost value.
    """
    return optimal_strategy(tree_f, tree_g).cost
