"""GTED — the general tree edit distance algorithm (Algorithm 1).

GTED computes the tree edit distance for *any* path strategy.  In this
reproduction the recursive decomposition and the single-path functions are
realized by the strategy-driven :class:`~repro.algorithms.forest_engine.
DecompositionEngine` (see ``DESIGN.md`` for the substitution rationale), so
``GTED(strategy)`` is the algorithm object that wires a strategy, a cost
model, and the engine together and reports the paper's measurements.
"""

from __future__ import annotations

from typing import Optional

from ..costs import CostModel
from ..trees.tree import Tree
from .base import Stopwatch, TEDAlgorithm, TEDResult
from .forest_engine import DecompositionEngine
from .strategies import Strategy


class GTED(TEDAlgorithm):
    """General tree edit distance algorithm parameterized by a path strategy.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.algorithms.strategies.Strategy`; fixed strategies
        reproduce the published algorithms, a
        :class:`~repro.algorithms.strategies.PrecomputedStrategy` from
        Algorithm 2 reproduces RTED.
    name:
        Optional display name; defaults to ``"GTED(<strategy>)"``.
    """

    def __init__(self, strategy: Strategy, name: Optional[str] = None) -> None:
        self.strategy = strategy
        self.name = name if name is not None else f"GTED({strategy.name})"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        watch = Stopwatch()
        watch.start()
        engine = DecompositionEngine(tree_f, tree_g, self.strategy, cost_model=cost_model)
        distance = engine.distance()
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=engine.subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
        )
