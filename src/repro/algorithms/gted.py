"""GTED — the general tree edit distance algorithm (Algorithm 1).

GTED computes the tree edit distance for *any* path strategy.  Two
interchangeable execution engines realize the recursive decomposition and the
single-path functions (see ``DESIGN.md`` for the architecture):

* ``engine="recursive"`` — the strategy-driven
  :class:`~repro.algorithms.forest_engine.DecompositionEngine`, a direct,
  hash-memoized transcription of the paper's recursion.  It is the reference
  implementation and the only engine that executes *heavy* paths natively.
* ``engine="spf"`` — the iterative :class:`StrategyExecutor` below, which
  walks the strategy's decomposition tree with an explicit stack and runs
  every left/right step through the array-based single-path functions
  ``Δ_L`` / ``Δ_R`` of :mod:`repro.algorithms.spf` (heavy steps fall back to
  the recursive engine).  It is much faster on left/right-dominated
  strategies and frees those phases from the interpreter recursion limit.

``GTED(strategy)`` wires a strategy, a cost model, and an engine together and
reports the paper's measurements.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..costs import CostModel
from ..trees.tree import HEAVY, Tree
from .base import (
    ENGINE_AUTO,
    ENGINE_RECURSIVE,
    ENGINE_SPF,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    resolve_engine,
)
from .forest_engine import DecompositionEngine
from .spf import SinglePathContext
from .strategies import SIDE_F, PathChoice, Strategy


class StrategyExecutor:
    """Iterative GTED driver over a path strategy (the ``spf`` engine).

    Walks the decomposition tree of Algorithm 1 with an explicit stack: every
    subtree pair whose strategy choice is a left or right path becomes a
    *spine* run of the matching single-path function, preceded by sub-tasks
    for the relevant subtrees hanging off that path.  Pairs mapped to a heavy
    path are delegated to the recursive reference engine, which fills the
    same dense distance matrix so both worlds compose freely.

    Invariant (shared with :class:`~repro.algorithms.spf.SinglePathContext`):
    once a pair ``(v, w)`` is done, ``D[x][y]`` is final for every
    ``x ∈ F_v, y ∈ G_w`` — exactly what an enclosing single-path run needs.
    """

    def __init__(
        self,
        tree_f: Tree,
        tree_g: Tree,
        strategy: Strategy,
        cost_model: Optional[CostModel] = None,
        use_numpy: Optional[bool] = None,
    ) -> None:
        self.tree_f = tree_f
        self.tree_g = tree_g
        self.strategy = strategy
        self.context = SinglePathContext(
            tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy
        )
        self._cost_model = cost_model
        self._fallback: Optional[DecompositionEngine] = None
        #: Relevant subproblems evaluated (SPF table cells + fallback memo entries).
        self.subproblems = 0

    def distance(self) -> float:
        """Tree edit distance between the two whole trees."""
        tree_f, tree_g = self.tree_f, self.tree_g
        stack: List[Tuple[int, int, Optional[PathChoice]]] = [(tree_f.root, tree_g.root, None)]
        done: Set[Tuple[int, int]] = set()
        scheduled: Set[Tuple[int, int]] = set()

        while stack:
            v, w, choice = stack.pop()
            if choice is not None:
                # Phase 2 of a task: the off-path blocks are complete, run the
                # single-path function along the chosen spine.
                self.context.run(choice.side, choice.kind, v, w, spine_only=True)
                done.add((v, w))
                continue
            if (v, w) in done or (v, w) in scheduled:
                continue

            choice = self.strategy.choose(tree_f, tree_g, v, w)
            if choice.kind == HEAVY:
                self._fallback_block(v, w)
                done.add((v, w))
                continue

            scheduled.add((v, w))
            stack.append((v, w, choice))
            if choice.side == SIDE_F:
                for root in tree_f.relevant_subtrees(v, choice.kind):
                    if (root, w) not in done:
                        stack.append((root, w, None))
            else:
                for root in tree_g.relevant_subtrees(w, choice.kind):
                    if (v, root) not in done:
                        stack.append((v, root, None))

        self.subproblems = self.context.cells
        if self._fallback is not None:
            self.subproblems += self._fallback.subproblems
        return float(self.context.D[tree_f.root][tree_g.root])

    def _fallback_block(self, v: int, w: int) -> None:
        """Fill the whole ``F_v × G_w`` distance block with the recursive engine.

        Heavy paths have no iterative single-path function yet, and an
        enclosing spine run may read any subtree pair of the block, so the
        reference engine computes them all.  A single engine instance is kept
        so its memo table is shared across fallback blocks.
        """
        if self._fallback is None:
            self._fallback = DecompositionEngine(
                self.tree_f, self.tree_g, self.strategy, cost_model=self._cost_model
            )
        engine = self._fallback
        D = self.context.D
        for x in self.tree_f.subtree_nodes(v):
            row = D[x]
            for y in self.tree_g.subtree_nodes(w):
                row[y] = engine.subtree_distance(x, y)


class GTED(TEDAlgorithm):
    """General tree edit distance algorithm parameterized by a path strategy.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.algorithms.strategies.Strategy`; fixed strategies
        reproduce the published algorithms, a
        :class:`~repro.algorithms.strategies.PrecomputedStrategy` from
        Algorithm 2 reproduces RTED.
    name:
        Optional display name; defaults to ``"GTED(<strategy>)"``.
    engine:
        Execution engine: ``"recursive"`` (the reference decomposition
        engine, also the ``"auto"`` default) or ``"spf"`` (iterative
        single-path executor, fastest for left/right-dominated strategies).
    """

    def __init__(
        self, strategy: Strategy, name: Optional[str] = None, engine: str = ENGINE_AUTO
    ) -> None:
        self.strategy = strategy
        self.engine = resolve_engine(engine)
        self.name = name if name is not None else f"GTED({strategy.name})"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        engine = ENGINE_RECURSIVE if self.engine == ENGINE_AUTO else self.engine
        watch = Stopwatch()
        watch.start()
        if engine == ENGINE_SPF:
            executor = StrategyExecutor(tree_f, tree_g, self.strategy, cost_model=cost_model)
            distance = executor.distance()
            subproblems = executor.subproblems
        else:
            recursive = DecompositionEngine(
                tree_f, tree_g, self.strategy, cost_model=cost_model
            )
            distance = recursive.distance()
            subproblems = recursive.subproblems
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
            extra={"engine": engine},
        )
