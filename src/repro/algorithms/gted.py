"""GTED — the general tree edit distance algorithm (Algorithm 1).

GTED computes the tree edit distance for *any* path strategy.  Two
interchangeable execution engines realize the recursive decomposition and the
single-path functions (see ``DESIGN.md`` for the architecture):

* ``engine="spf"`` (also the ``"auto"`` default) — the iterative
  :class:`StrategyExecutor` below, which walks the strategy's decomposition
  tree with an explicit stack and runs *every* strategy step — left, right
  and heavy — through the array-based single-path functions ``Δ_L`` / ``Δ_R``
  / ``Δ_A`` of :mod:`repro.algorithms.spf`.  No recursion is involved
  anywhere, so the interpreter recursion limit is never touched and
  arbitrarily deep trees are handled.
* ``engine="recursive"`` — the strategy-driven
  :class:`~repro.algorithms.forest_engine.DecompositionEngine`, a direct,
  hash-memoized transcription of the paper's recursion.  It is the reference
  oracle the tests cross-check against and is never entered by the default
  execution path.

``GTED(strategy)`` wires a strategy, a cost model, and an engine together and
reports the paper's measurements.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..costs import CostModel
from ..runtime import as_deadline, deadline_scope
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree
from .base import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_RECURSIVE,
    ENGINE_SPF,
    BoundedResult,
    CutoffExceeded,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    precheck_bounded,
    resolve_cost_model,
    resolve_engine,
)
from .spf import SinglePathContext
from .strategies import SIDE_F, PathChoice, Strategy

#: The inner-path program evaluates a ``(m+1)²`` boundary grid over the
#: non-decomposed subtree, while the paper's cost model charges a heavy step
#: ``|A(G_w)|`` — the number of subforests the full decomposition actually
#: reaches.  The two agree within a small constant for bushy trees, but for
#: path-degenerate subtrees ``|A|`` collapses to ``O(m)`` and the grid would
#: overcount quadratically.  When the mismatch exceeds this factor the
#: executor reroutes the step to the cheaper keyroot kind on the same side —
#: the distance is exact for *every* strategy, so this only trades one
#: decomposition order for a cheaper one on shapes the grid handles poorly.
GRID_OVERCOUNT_FACTOR = 16


class StrategyExecutor:
    """Iterative GTED driver over a path strategy (the ``spf`` engine).

    Walks the decomposition tree of Algorithm 1 with an explicit stack: every
    subtree pair becomes a *spine* run of the single-path function matching
    the strategy's choice — ``Δ_L`` / ``Δ_R`` in keyroot coordinates for
    left/right paths, the chain/grid program ``Δ_A`` for heavy paths —
    preceded by sub-tasks for the relevant subtrees hanging off that path.

    Invariant (shared with :class:`~repro.algorithms.spf.SinglePathContext`):
    once a pair ``(v, w)`` is done, ``D[x][y]`` is final for every
    ``x ∈ F_v, y ∈ G_w`` — exactly what an enclosing single-path run needs,
    regardless of the path kinds involved.
    """

    def __init__(
        self,
        tree_f: Tree,
        tree_g: Tree,
        strategy: Strategy,
        cost_model: Optional[CostModel] = None,
        use_numpy: Optional[bool] = None,
        workspace=None,
        cutoff: Optional[float] = None,
        use_native: bool = False,
    ) -> None:
        self.tree_f = tree_f
        self.tree_g = tree_g
        self.strategy = strategy
        self.context = SinglePathContext(
            tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy, workspace=workspace,
            cutoff=cutoff, cutoff_pair=(tree_f.root, tree_g.root),
            use_native=use_native,
        )
        #: Relevant subproblems evaluated, in the paper's currency: keyroot
        #: table cells for left/right steps, chain-steps × |A(other)| for
        #: heavy steps (the terms of the cost formula of Figure 5).
        self.subproblems = 0
        #: Heavy steps rerouted by the grid-overcount guard (see
        #: :data:`GRID_OVERCOUNT_FACTOR`); non-zero only on path-degenerate
        #: shapes, and a visible marker that the executed decomposition
        #: deviated from the strategy's literal choice there.
        self.rerouted_steps = 0

    def distance(self) -> float:
        """Tree edit distance between the two whole trees."""
        tree_f, tree_g = self.tree_f, self.tree_g
        stack: List[Tuple[int, int, Optional[PathChoice]]] = [(tree_f.root, tree_g.root, None)]
        done: Set[Tuple[int, int]] = set()
        scheduled: Set[Tuple[int, int]] = set()

        while stack:
            v, w, choice = stack.pop()
            if choice is not None:
                # Phase 2 of a task: the off-path blocks are complete, run the
                # single-path function along the chosen spine.
                self.context.run(choice.side, choice.kind, v, w, spine_only=True)
                done.add((v, w))
                continue
            if (v, w) in done or (v, w) in scheduled:
                continue

            choice = self._executable_choice(
                self.strategy.choose(tree_f, tree_g, v, w), v, w
            )
            scheduled.add((v, w))
            stack.append((v, w, choice))
            if choice.side == SIDE_F:
                for root in tree_f.relevant_subtrees(v, choice.kind):
                    if (root, w) not in done:
                        stack.append((root, w, None))
            else:
                for root in tree_g.relevant_subtrees(w, choice.kind):
                    if (v, root) not in done:
                        stack.append((v, root, None))

        self.subproblems = self.context.cells
        return float(self.context.D[tree_f.root][tree_g.root])

    def _executable_choice(self, choice: PathChoice, v: int, w: int) -> PathChoice:
        """Guard heavy steps against pathological boundary-grid blowup.

        See :data:`GRID_OVERCOUNT_FACTOR`.  Heavy steps whose grid cost is
        within a small factor of the paper's cost model execute unchanged;
        only steps whose other-side subtree is path-degenerate (tiny
        ``|A|``) are rerouted to the cheaper of the two keyroot kinds on the
        same side.
        """
        if choice.kind != HEAVY:
            return choice
        if choice.side == SIDE_F:
            dec_tree, dec_root = self.tree_f, v
            oth_tree, oth_root = self.tree_g, w
        else:
            dec_tree, dec_root = self.tree_g, w
            oth_tree, oth_root = self.tree_f, v
        m = oth_tree.sizes[oth_root]
        if (m + 1) ** 2 <= GRID_OVERCOUNT_FACTOR * oth_tree.full_decomposition_sizes()[oth_root]:
            return choice
        left_cost = (
            dec_tree.left_decomposition_sizes()[dec_root]
            * oth_tree.left_decomposition_sizes()[oth_root]
        )
        right_cost = (
            dec_tree.right_decomposition_sizes()[dec_root]
            * oth_tree.right_decomposition_sizes()[oth_root]
        )
        self.rerouted_steps += 1
        return PathChoice(choice.side, LEFT if left_cost <= right_cost else RIGHT)


def run_engine(
    engine: str,
    tree_f: Tree,
    tree_g: Tree,
    strategy: Strategy,
    cost_model: Optional[CostModel],
    extra: dict,
    workspace=None,
    cutoff: Optional[float] = None,
) -> Tuple[Optional[float], int, Optional[Tuple[float, bool]]]:
    """Execute a strategy on the resolved engine (shared by GTED and RTED).

    Returns ``(distance, subproblems, bound)`` and records engine
    diagnostics (``rerouted_steps`` for the iterative executor) into
    ``extra``.  ``bound`` is ``None`` for an exact sub-cutoff (or unbounded)
    result; otherwise it is ``(lower_bound, aborted)`` proving
    ``distance ≥ cutoff`` — ``aborted`` tells whether the kernels cut the
    computation short or the full distance merely landed at/above the cutoff
    — and ``distance`` is ``None``.  The optional
    :class:`~repro.algorithms.workspace.TedWorkspace` feeds the iterative
    executor's context from cross-pair caches (the recursive oracle never
    uses it); its pooled distance matrix is released once the final distance
    has been read, abort or not.
    """
    if engine == ENGINE_RECURSIVE:
        # The recursive oracle never aborts mid-computation; bounded calls
        # run it to completion and apply the final check only.
        from .forest_engine import DecompositionEngine

        recursive = DecompositionEngine(tree_f, tree_g, strategy, cost_model=cost_model)
        distance, subproblems = recursive.distance(), recursive.subproblems
    else:
        # ``native`` runs the same iterative executor with the compiled
        # region sweep opted in (absent providers fall back silently).
        executor = StrategyExecutor(
            tree_f, tree_g, strategy, cost_model=cost_model, workspace=workspace,
            cutoff=cutoff, use_native=engine == ENGINE_NATIVE,
        )
        try:
            distance = executor.distance()
        except CutoffExceeded as exceeded:
            extra["rerouted_steps"] = executor.rerouted_steps
            return None, executor.context.cells, (exceeded.lower_bound, True)
        finally:
            executor.context.release()
        extra["rerouted_steps"] = executor.rerouted_steps
        subproblems = executor.subproblems
    if cutoff is not None and distance >= cutoff:
        return None, subproblems, (distance, False)
    return distance, subproblems, None


class GTED(TEDAlgorithm):
    """General tree edit distance algorithm parameterized by a path strategy.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.algorithms.strategies.Strategy`; fixed strategies
        reproduce the published algorithms, a strategy produced by
        Algorithm 2 reproduces RTED.  Note that on path-degenerate shapes the
        ``spf`` executor may reroute individual heavy steps to an equivalent
        left/right decomposition (reported as ``extra["rerouted_steps"]``,
        see :data:`GRID_OVERCOUNT_FACTOR`); the distance is exact for every
        strategy, but callers studying an algorithm's *work profile* should
        use the exact counters in :mod:`repro.counting` or
        ``engine="recursive"``, which always follows the literal strategy.
    name:
        Optional display name; defaults to ``"GTED(<strategy>)"``.
    engine:
        Execution engine: ``"spf"`` (iterative single-path executor, also the
        ``"auto"`` default) or ``"recursive"`` (the reference decomposition
        engine, kept as a cross-check oracle).
    workspace:
        Optional :class:`~repro.algorithms.workspace.TedWorkspace` whose
        cross-pair caches (frames, cost arrays, interned rename tables,
        pooled matrices) feed the ``spf`` engine's contexts.  Ignored by the
        recursive oracle, and bypassed per call when the supplied cost model
        does not match the workspace's.
    """

    def __init__(
        self,
        strategy: Strategy,
        name: Optional[str] = None,
        engine: str = ENGINE_AUTO,
        workspace=None,
    ) -> None:
        self.strategy = strategy
        self.engine = resolve_engine(engine)
        self.workspace = workspace
        self.name = name if name is not None else f"GTED({strategy.name})"

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        with deadline_scope(as_deadline(deadline)):
            return self._compute(tree_f, tree_g, cost_model, cutoff)

    def _compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel],
        cutoff: Optional[float],
    ) -> TEDResult:
        engine = ENGINE_SPF if self.engine == ENGINE_AUTO else self.engine
        watch = Stopwatch()
        watch.start()
        extra = {"engine": engine}
        pre = precheck_bounded(
            tree_f, tree_g, resolve_cost_model(cost_model), cutoff, self.name,
            watch, extra,
        )
        if pre is not None:
            return pre
        distance, subproblems, bound = run_engine(
            engine, tree_f, tree_g, self.strategy, cost_model, extra,
            workspace=self.workspace, cutoff=cutoff,
        )
        if bound is not None:
            return BoundedResult(
                lower_bound=bound[0],
                cutoff=cutoff,
                algorithm=self.name,
                aborted=bound[1],
                subproblems=subproblems,
                distance_time=watch.elapsed(),
                n_f=tree_f.n,
                n_g=tree_g.n,
                extra=extra,
            )
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
            extra=extra,
        )
