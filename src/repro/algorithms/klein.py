"""Klein's algorithm (``Klein-H``): heavy-path decomposition of the left tree.

Klein [ESA 1998] decomposes the left-hand tree along heavy paths, which in the
paper's framework is the fixed LRH strategy mapping every subtree pair
``(F_v, G_w)`` to ``γ_H(F_v)``.  Its worst-case subproblem count is
``O(n^3 log n)``.
"""

from __future__ import annotations

from typing import Optional

from ..costs import CostModel
from ..trees.tree import Tree
from .base import TEDAlgorithm, TEDResult
from .gted import GTED
from .strategies import HeavyFStrategy


class KleinTED(TEDAlgorithm):
    """Klein's heavy-path algorithm expressed as GTED with a fixed strategy."""

    name = "Klein-H"

    def __init__(self) -> None:
        self._gted = GTED(HeavyFStrategy(), name=self.name)

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        return self._gted.compute(
            tree_f, tree_g, cost_model=cost_model, cutoff=cutoff, deadline=deadline
        )
