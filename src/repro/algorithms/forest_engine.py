"""Generic strategy-driven decomposition engine.

This engine executes *any* path strategy (Definition 4) by following the
path-coloring rule of Section 4.2 of the paper:

* whenever both current forests are single trees whose roots are not on the
  active root-leaf path, the strategy is consulted and a new path is chosen
  in one of the two subtrees;
* at every recursive step the leftmost root nodes are removed if the leftmost
  root of the path-owning forest is *not* on the path, and the rightmost root
  nodes are removed otherwise (this reproduces Definition 3's relevant
  subforests);
* the recursive formula of Figure 2 is evaluated with memoization on pairs of
  relevant subforests.

The engine stands in for the paper's single-path functions ``Δ_L``, ``Δ_R``
and ``Δ_I``: it computes exactly the distances those functions would compute,
while keeping the decomposition order dictated by the strategy.  Its memory is
``O(#subproblems)`` hash-map entries rather than the paper's ``O(n^2)``
matrices — a documented substitution (see ``DESIGN.md``) that preserves the
quantity the paper studies (which subproblems a strategy induces) at the cost
of constant-factor overhead.

Because the recursive formula is correct for *either* direction choice at
every step, the distance returned by the engine is exact for every strategy;
only the amount of work depends on the strategy.

Since the iterative single-path layer (:mod:`repro.algorithms.spf`,
``engine="spf"``) gained the inner-path program ``Δ_A``, this engine is a
*pure cross-check oracle*: every path class — left, right and heavy — runs
recursion-free in the SPF layer, and no production path (``engine="auto"``
or ``"spf"`` anywhere in the library) enters this module.  Only an explicit
``engine="recursive"`` request executes it.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ..costs import CostModel
from ..runtime import active_deadline
from ..trees.tree import Tree
from .base import resolve_cost_model
from .strategies import SIDE_F, Strategy

ForestKey = Tuple[int, ...]

#: Hard ceiling for the temporary recursion-limit bump below.  The recursive
#: engine needs stack headroom proportional to the forest sizes it decomposes;
#: pairs that would require more than this are out of the engine's league and
#: should run on the iterative ``spf`` engine instead (which needs none).
MAX_RECURSION_LIMIT = 50_000


@contextmanager
def _recursion_headroom(nodes: int) -> Iterator[None]:
    """Temporarily raise the interpreter recursion limit for ``nodes`` work.

    This is the single place in the *distance engines* that mutates
    ``sys.setrecursionlimit``; it is only entered by
    :meth:`DecompositionEngine.subtree_distance`, i.e. when the recursive
    reference/fallback engine runs — the SPF execution paths never need it.
    The bump is capped at :data:`MAX_RECURSION_LIMIT` and always restored.
    (Some peripheral subsystems — serializers, bounds, counting, rendering —
    still bump the limit locally for their own recursions; those are
    independent of the distance core.)
    """
    old_limit = sys.getrecursionlimit()
    needed = min(MAX_RECURSION_LIMIT, 20_000 + 30 * nodes)
    if needed <= old_limit:
        yield
        return
    sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(old_limit)


class DecompositionEngine:
    """Evaluates the TED recursion under a given path strategy.

    Parameters
    ----------
    tree_f, tree_g:
        The two input trees.
    strategy:
        The path strategy steering the decomposition.
    cost_model:
        Edit-operation costs; defaults to the unit cost model.
    """

    def __init__(
        self,
        tree_f: Tree,
        tree_g: Tree,
        strategy: Strategy,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.tree_f = tree_f
        self.tree_g = tree_g
        self.strategy = strategy
        self.cost_model = resolve_cost_model(cost_model)

        self._memo: Dict[Tuple[ForestKey, ForestKey], float] = {}
        #: Number of distinct (non-trivial) forest-pair subproblems evaluated.
        self.subproblems = 0
        #: Ambient cooperative deadline, captured once (see repro.runtime);
        #: ticked per fresh subproblem in the recursion.
        self._deadline = active_deadline()

        cm = self.cost_model
        labels_f, labels_g = tree_f.labels, tree_g.labels
        children_f, children_g = tree_f.children, tree_g.children

        # Cumulative delete / insert costs of complete subtrees, used for the
        # forest-vs-empty base cases.
        self._delete_subtree = [0.0] * tree_f.n
        for v in range(tree_f.n):
            self._delete_subtree[v] = cm.delete(labels_f[v]) + sum(
                self._delete_subtree[c] for c in children_f[v]
            )
        self._insert_subtree = [0.0] * tree_g.n
        for w in range(tree_g.n):
            self._insert_subtree[w] = cm.insert(labels_g[w]) + sum(
                self._insert_subtree[c] for c in children_g[w]
            )

        self._delete_node = [cm.delete(labels_f[v]) for v in range(tree_f.n)]
        self._insert_node = [cm.insert(labels_g[w]) for w in range(tree_g.n)]

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def distance(self) -> float:
        """Tree edit distance between the two whole trees."""
        return self.subtree_distance(self.tree_f.root, self.tree_g.root)

    def subtree_distance(self, v: int, w: int) -> float:
        """Edit distance between the subtree of F rooted at ``v`` and of G at ``w``."""
        with _recursion_headroom(self.tree_f.sizes[v] + self.tree_g.sizes[w]):
            return self._dist((v,), (w,), None, frozenset())

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def _dist(
        self,
        roots_f: ForestKey,
        roots_g: ForestKey,
        path_side: Optional[str],
        path_nodes: frozenset,
    ) -> float:
        if not roots_f and not roots_g:
            return 0.0
        if not roots_g:
            return sum(self._delete_subtree[r] for r in roots_f)
        if not roots_f:
            return sum(self._insert_subtree[r] for r in roots_g)

        key = (roots_f, roots_g)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        self.subproblems += 1
        deadline = self._deadline
        if deadline is not None:
            deadline.tick()

        f_is_tree = len(roots_f) == 1
        g_is_tree = len(roots_g) == 1

        # Consult the strategy only for pairs of trees whose roots are "white"
        # (not on the active path), per the coloring rule of Section 4.2.
        if f_is_tree and g_is_tree:
            active_root = roots_f[0] if path_side == SIDE_F else roots_g[0]
            if path_side is None or active_root not in path_nodes:
                choice = self.strategy.choose(self.tree_f, self.tree_g, roots_f[0], roots_g[0])
                path_side = choice.side
                if path_side == SIDE_F:
                    path_nodes = self.tree_f.path_set(roots_f[0], choice.kind)
                else:
                    path_nodes = self.tree_g.path_set(roots_g[0], choice.kind)

        # Direction: remove rightmost roots while the leftmost root of the
        # path-owning forest lies on the path, otherwise remove leftmost roots
        # (Definition 3).  When the owning forest is a single tree rooted on
        # the path, the root is removed either way; the direction is chosen to
        # be consistent with the *next* step of the phase (look at whether the
        # path continues into the leftmost child), so that the other tree is
        # decomposed from a single side per phase, exactly as the single-path
        # functions Δ_L / Δ_R / Δ_I do.
        owning_roots = roots_f if path_side == SIDE_F else roots_g
        owning_tree = self.tree_f if path_side == SIDE_F else self.tree_g
        if len(owning_roots) == 1 and owning_roots[0] in path_nodes:
            children_of_root = owning_tree.children[owning_roots[0]]
            remove_right = not children_of_root or children_of_root[0] in path_nodes
        else:
            remove_right = bool(owning_roots) and owning_roots[0] in path_nodes

        children_f = self.tree_f.children
        children_g = self.tree_g.children

        if remove_right:
            v = roots_f[-1]
            w = roots_g[-1]
            roots_f_minus_node = roots_f[:-1] + tuple(children_f[v])
            roots_g_minus_node = roots_g[:-1] + tuple(children_g[w])
            roots_f_minus_subtree = roots_f[:-1]
            roots_g_minus_subtree = roots_g[:-1]
        else:
            v = roots_f[0]
            w = roots_g[0]
            roots_f_minus_node = tuple(children_f[v]) + roots_f[1:]
            roots_g_minus_node = tuple(children_g[w]) + roots_g[1:]
            roots_f_minus_subtree = roots_f[1:]
            roots_g_minus_subtree = roots_g[1:]

        best = self._dist(roots_f_minus_node, roots_g, path_side, path_nodes) + self._delete_node[v]
        candidate = (
            self._dist(roots_f, roots_g_minus_node, path_side, path_nodes) + self._insert_node[w]
        )
        if candidate < best:
            best = candidate

        if f_is_tree and g_is_tree:
            candidate = self._dist(
                roots_f_minus_node, roots_g_minus_node, path_side, path_nodes
            ) + self.cost_model.rename(self.tree_f.labels[v], self.tree_g.labels[w])
        else:
            candidate = self._dist((v,), (w,), path_side, path_nodes) + self._dist(
                roots_f_minus_subtree, roots_g_minus_subtree, path_side, path_nodes
            )
        if candidate < best:
            best = candidate

        self._memo[key] = best
        return best
