"""Zhang & Shasha's tree edit distance algorithm (left and right variants).

This is the classic ``O(n^2)``-space dynamic program [Zhang & Shasha, SIAM
J. Comput. 1989], which in the paper's framework corresponds to the fixed LRH
strategy that maps every subtree pair to the *left* path of the left-hand
tree (``Zhang-L``).  The mirror variant (``Zhang-R``) maps every pair to the
right path and is implemented here by running the left-path algorithm on
mirrored trees, which yields the same distance.

The implementation follows the textbook formulation: for every pair of
*keyroots* a forest-distance table is filled, and distances between pairs of
subtrees are stored in a persistent ``n × m`` tree-distance matrix.  The
number of forest-distance cells evaluated — the algorithm's relevant
subproblems — is reported in the result.
"""

from __future__ import annotations

from math import ceil
from typing import List, Optional

from ..costs import CostModel
from ..runtime import active_deadline, as_deadline, deadline_scope
from ..trees.tree import Tree
from .base import (
    BoundedResult,
    CutoffExceeded,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    check_row_cutoff,
    cutoff_band,
    cutoff_slack,
    precheck_bounded,
    resolve_cost_model,
)


class _ZhangShashaBase(TEDAlgorithm):
    """Shared compute/bounding scaffold of the two dedicated ZS variants."""

    def _trees(self, tree_f: Tree, tree_g: Tree):
        raise NotImplementedError

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        with deadline_scope(as_deadline(deadline)):
            return self._compute(tree_f, tree_g, cost_model, cutoff)

    def _compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel],
        cutoff: Optional[float],
    ) -> TEDResult:
        cm = resolve_cost_model(cost_model)
        watch = Stopwatch()
        watch.start()
        pre = precheck_bounded(tree_f, tree_g, cm, cutoff, self.name, watch)
        if pre is not None:
            return pre
        run_f, run_g = self._trees(tree_f, tree_g)
        try:
            distance, subproblems, _ = zhang_shasha_distance(run_f, run_g, cm, cutoff=cutoff)
        except CutoffExceeded as exceeded:
            return BoundedResult(
                lower_bound=exceeded.lower_bound,
                cutoff=cutoff,
                algorithm=self.name,
                aborted=True,
                subproblems=exceeded.subproblems,
                distance_time=watch.elapsed(),
                n_f=tree_f.n,
                n_g=tree_g.n,
            )
        if cutoff is not None and distance >= cutoff:
            return BoundedResult(
                lower_bound=distance,
                cutoff=cutoff,
                algorithm=self.name,
                aborted=False,
                subproblems=subproblems,
                distance_time=watch.elapsed(),
                n_f=tree_f.n,
                n_g=tree_g.n,
            )
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
        )


class ZhangShashaTED(_ZhangShashaBase):
    """Zhang & Shasha's algorithm using left paths (``Zhang-L``)."""

    name = "Zhang-L"

    def _trees(self, tree_f: Tree, tree_g: Tree):
        return tree_f, tree_g


class ZhangShashaRightTED(_ZhangShashaBase):
    """The mirror variant of Zhang & Shasha using right paths (``Zhang-R``)."""

    name = "Zhang-R"

    def _trees(self, tree_f: Tree, tree_g: Tree):
        # Mirroring both trees turns right-path decomposition into left-path
        # decomposition without changing the distance (the edit operations are
        # symmetric under reversal of sibling order).
        return tree_f.mirrored(), tree_g.mirrored()


def zhang_shasha_distance(
    tree_f: Tree, tree_g: Tree, cost_model: CostModel, cutoff: Optional[float] = None
) -> tuple[float, int, List[List[float]]]:
    """Core Zhang–Shasha dynamic program.

    Returns ``(distance, #subproblems, tree_distance_matrix)`` where
    ``tree_distance_matrix[v][w]`` is the edit distance between the subtree of
    ``tree_f`` rooted at ``v`` and the subtree of ``tree_g`` rooted at ``w``
    (both identified by postorder id).  The matrix is reused by the edit
    mapping backtrace.

    ``cutoff`` makes the program *τ-bounded* (``DESIGN.md``, *Bounded
    verification*): every keyroot region is restricted to its
    ``c · |i − j| < cutoff`` band (``c`` the per-operation cost floor;
    out-of-band cells provably hold ``≥ cutoff`` and are read as ``+inf``),
    the final region — whose rows are whole-tree prefix-forest distances —
    runs the per-row early abort, and a banded distance landing at or above
    the cutoff raises :class:`~repro.algorithms.base.CutoffExceeded` with
    the cutoff as the proving bound.  Sub-cutoff distances are bit-identical
    to unbounded runs.  Models without a provable positive cost floor run
    unbounded (callers apply the final check on the exact distance).
    """
    n_f, n_g = tree_f.n, tree_g.n
    labels_f, labels_g = tree_f.labels, tree_g.labels
    lml_f, lml_g = tree_f.lml, tree_g.lml

    delete_costs = [cost_model.delete(labels_f[v]) for v in range(n_f)]
    insert_costs = [cost_model.insert(labels_g[w]) for w in range(n_g)]

    band = cutoff_band(cost_model) if cutoff is not None else None
    if band is None:
        band_w = None
        slack = 0.0
    else:
        # |i − j| > band_w ⇔ the forest sizes differ by enough operations
        # to cost ≥ cutoff on their own — widened by the round-off slack
        # (base.CUTOFF_SLACK) so the float-accumulated DP value of every
        # excluded cell is ≥ cutoff, not just its real-arithmetic value.
        slack = cutoff_slack(cost_model)
        band_w = max(0, ceil(cutoff * (1.0 + slack) / band) - 1)
        if abs(n_f - n_g) > band_w:
            # The final corner would fall outside the band; the size bound
            # already proves d ≥ cutoff.
            raise CutoffExceeded(max(cutoff, band * abs(n_f - n_g) * (1.0 - slack)))

    tree_dist: List[List[float]] = [[0.0] * n_g for _ in range(n_f)]
    subproblems = 0
    deadline = active_deadline()

    try:
        for keyroot_f in tree_f.keyroots_left():
            for keyroot_g in tree_g.keyroots_left():
                # Keyroots ascend, so the whole-tree region runs last.
                final = keyroot_f == n_f - 1 and keyroot_g == n_g - 1
                subproblems += _forest_distance(
                    keyroot_f,
                    keyroot_g,
                    lml_f,
                    lml_g,
                    labels_f,
                    labels_g,
                    delete_costs,
                    insert_costs,
                    cost_model,
                    tree_dist,
                    cut=(cutoff, band, slack) if band is not None and final else None,
                    band_w=band_w,
                    deadline=deadline,
                )
    except CutoffExceeded as exceeded:
        # Report the cells of the completed regions, same currency as
        # finished runs (the aborted region's partial rows are not counted).
        exceeded.subproblems = subproblems
        raise

    distance = tree_dist[n_f - 1][n_g - 1]
    if band_w is not None and distance >= cutoff:
        # Banded values at or above the cutoff may be inflated; the cutoff
        # itself is the certified lower bound.
        exceeded = CutoffExceeded(cutoff)
        exceeded.subproblems = subproblems
        raise exceeded
    return distance, subproblems, tree_dist


def _forest_distance(
    keyroot_f: int,
    keyroot_g: int,
    lml_f,
    lml_g,
    labels_f,
    labels_g,
    delete_costs,
    insert_costs,
    cost_model: CostModel,
    tree_dist: List[List[float]],
    cut=None,
    band_w=None,
    deadline=None,
) -> int:
    """Fill the forest-distance table for one keyroot pair.

    Updates ``tree_dist`` in place for every pair of subtrees whose roots have
    the same leftmost leaves as the keyroots, and returns the number of table
    cells evaluated (the relevant subproblems of this invocation).  ``cut``
    — ``(cutoff, band, slack)``, final region of a bounded run only — arms the
    per-row early abort shared with the spf kernels; ``band_w`` restricts
    every row to its ``|i − j| ≤ band_w`` window (τ-bounded mode), with
    ``+inf`` standing in for out-of-band reads — including ``tree_dist``
    entries of subtree pairs whose spanning cell fell outside the band of
    their own region, which were never written.
    """
    lf, lg = lml_f[keyroot_f], lml_g[keyroot_g]
    rows = keyroot_f - lf + 2
    cols = keyroot_g - lg + 2

    # fd[i][j] = distance between the forest of nodes lf..lf+i-1 of F and the
    # forest of nodes lg..lg+j-1 of G (postorder-contiguous prefixes).
    fd: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + delete_costs[lf + i - 1]
    for j in range(1, cols):
        fd[0][j] = fd[0][j - 1] + insert_costs[lg + j - 1]

    if band_w is None:
        for i in range(1, rows):
            if deadline is not None:
                deadline.tick()
            node_f = lf + i - 1
            f_spans_from_lf = lml_f[node_f] == lf
            for j in range(1, cols):
                node_g = lg + j - 1
                if f_spans_from_lf and lml_g[node_g] == lg:
                    best = min(
                        fd[i - 1][j] + delete_costs[node_f],
                        fd[i][j - 1] + insert_costs[node_g],
                        fd[i - 1][j - 1] + cost_model.rename(labels_f[node_f], labels_g[node_g]),
                    )
                    fd[i][j] = best
                    tree_dist[node_f][node_g] = best
                else:
                    fd[i][j] = min(
                        fd[i - 1][j] + delete_costs[node_f],
                        fd[i][j - 1] + insert_costs[node_g],
                        fd[lml_f[node_f] - lf][lml_g[node_g] - lg] + tree_dist[node_f][node_g],
                    )
        return (rows - 1) * (cols - 1)

    inf = float("inf")
    cells = 0
    for i in range(1, rows):
        if deadline is not None:
            deadline.tick()
        lo = i - band_w
        if lo < 1:
            lo = 1
        hi = i + band_w
        if hi > cols - 1:
            hi = cols - 1
        if lo > hi:
            # The band left the table; every later row is farther out still.
            break
        node_f = lf + i - 1
        f_spans_from_lf = lml_f[node_f] == lf
        si = lml_f[node_f] - lf
        split_row = fd[si]
        rem_f_node = node_f - lml_f[node_f]
        row = fd[i]
        prev = fd[i - 1]
        if lo > 1:
            row[lo - 1] = inf
        for j in range(lo, hi + 1):
            node_g = lg + j - 1
            best = prev[j] + delete_costs[node_f]
            candidate = row[j - 1] + insert_costs[node_g]
            if candidate < best:
                best = candidate
            if f_spans_from_lf and lml_g[node_g] == lg:
                candidate = prev[j - 1] + cost_model.rename(labels_f[node_f], labels_g[node_g])
                if candidate < best:
                    best = candidate
                row[j] = best
                tree_dist[node_f][node_g] = best
            else:
                sc = lml_g[node_g] - lg
                if si == 0 or sc == 0 or (si - band_w <= sc <= si + band_w):
                    candidate = split_row[sc]
                else:
                    candidate = inf
                if abs(rem_f_node - (node_g - lml_g[node_g])) <= band_w:
                    candidate += tree_dist[node_f][node_g]
                else:
                    candidate = inf
                if candidate < best:
                    best = candidate
                row[j] = best
        if hi + 1 <= cols - 1:
            row[hi + 1] = inf
        cells += hi - lo + 1
        if cut is not None:
            check_row_cutoff(
                row, cols, rows - 1 - i, cut[0], cut[1], lo, hi,
                exact_values=False, slack=cut[2],
            )

    return cells


def zhang_shasha(tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None) -> float:
    """Functional shortcut returning only the Zhang–Shasha distance."""
    return ZhangShashaTED().distance(tree_f, tree_g, cost_model=cost_model)
