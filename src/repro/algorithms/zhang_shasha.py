"""Zhang & Shasha's tree edit distance algorithm (left and right variants).

This is the classic ``O(n^2)``-space dynamic program [Zhang & Shasha, SIAM
J. Comput. 1989], which in the paper's framework corresponds to the fixed LRH
strategy that maps every subtree pair to the *left* path of the left-hand
tree (``Zhang-L``).  The mirror variant (``Zhang-R``) maps every pair to the
right path and is implemented here by running the left-path algorithm on
mirrored trees, which yields the same distance.

The implementation follows the textbook formulation: for every pair of
*keyroots* a forest-distance table is filled, and distances between pairs of
subtrees are stored in a persistent ``n × m`` tree-distance matrix.  The
number of forest-distance cells evaluated — the algorithm's relevant
subproblems — is reported in the result.
"""

from __future__ import annotations

from typing import List, Optional

from ..costs import CostModel
from ..trees.tree import Tree
from .base import Stopwatch, TEDAlgorithm, TEDResult, resolve_cost_model


class ZhangShashaTED(TEDAlgorithm):
    """Zhang & Shasha's algorithm using left paths (``Zhang-L``)."""

    name = "Zhang-L"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        cm = resolve_cost_model(cost_model)
        watch = Stopwatch()
        watch.start()
        distance, subproblems, _ = zhang_shasha_distance(tree_f, tree_g, cm)
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
        )


class ZhangShashaRightTED(TEDAlgorithm):
    """The mirror variant of Zhang & Shasha using right paths (``Zhang-R``)."""

    name = "Zhang-R"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        cm = resolve_cost_model(cost_model)
        watch = Stopwatch()
        watch.start()
        # Mirroring both trees turns right-path decomposition into left-path
        # decomposition without changing the distance (the edit operations are
        # symmetric under reversal of sibling order).
        distance, subproblems, _ = zhang_shasha_distance(
            tree_f.mirrored(), tree_g.mirrored(), cm
        )
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            distance_time=watch.elapsed(),
            n_f=tree_f.n,
            n_g=tree_g.n,
        )


def zhang_shasha_distance(
    tree_f: Tree, tree_g: Tree, cost_model: CostModel
) -> tuple[float, int, List[List[float]]]:
    """Core Zhang–Shasha dynamic program.

    Returns ``(distance, #subproblems, tree_distance_matrix)`` where
    ``tree_distance_matrix[v][w]`` is the edit distance between the subtree of
    ``tree_f`` rooted at ``v`` and the subtree of ``tree_g`` rooted at ``w``
    (both identified by postorder id).  The matrix is reused by the edit
    mapping backtrace.
    """
    n_f, n_g = tree_f.n, tree_g.n
    labels_f, labels_g = tree_f.labels, tree_g.labels
    lml_f, lml_g = tree_f.lml, tree_g.lml

    delete_costs = [cost_model.delete(labels_f[v]) for v in range(n_f)]
    insert_costs = [cost_model.insert(labels_g[w]) for w in range(n_g)]

    tree_dist: List[List[float]] = [[0.0] * n_g for _ in range(n_f)]
    subproblems = 0

    for keyroot_f in tree_f.keyroots_left():
        for keyroot_g in tree_g.keyroots_left():
            subproblems += _forest_distance(
                keyroot_f,
                keyroot_g,
                lml_f,
                lml_g,
                labels_f,
                labels_g,
                delete_costs,
                insert_costs,
                cost_model,
                tree_dist,
            )

    return tree_dist[n_f - 1][n_g - 1], subproblems, tree_dist


def _forest_distance(
    keyroot_f: int,
    keyroot_g: int,
    lml_f,
    lml_g,
    labels_f,
    labels_g,
    delete_costs,
    insert_costs,
    cost_model: CostModel,
    tree_dist: List[List[float]],
) -> int:
    """Fill the forest-distance table for one keyroot pair.

    Updates ``tree_dist`` in place for every pair of subtrees whose roots have
    the same leftmost leaves as the keyroots, and returns the number of table
    cells evaluated (the relevant subproblems of this invocation).
    """
    lf, lg = lml_f[keyroot_f], lml_g[keyroot_g]
    rows = keyroot_f - lf + 2
    cols = keyroot_g - lg + 2

    # fd[i][j] = distance between the forest of nodes lf..lf+i-1 of F and the
    # forest of nodes lg..lg+j-1 of G (postorder-contiguous prefixes).
    fd: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + delete_costs[lf + i - 1]
    for j in range(1, cols):
        fd[0][j] = fd[0][j - 1] + insert_costs[lg + j - 1]

    for i in range(1, rows):
        node_f = lf + i - 1
        f_spans_from_lf = lml_f[node_f] == lf
        for j in range(1, cols):
            node_g = lg + j - 1
            if f_spans_from_lf and lml_g[node_g] == lg:
                best = min(
                    fd[i - 1][j] + delete_costs[node_f],
                    fd[i][j - 1] + insert_costs[node_g],
                    fd[i - 1][j - 1] + cost_model.rename(labels_f[node_f], labels_g[node_g]),
                )
                fd[i][j] = best
                tree_dist[node_f][node_g] = best
            else:
                fd[i][j] = min(
                    fd[i - 1][j] + delete_costs[node_f],
                    fd[i][j - 1] + insert_costs[node_g],
                    fd[lml_f[node_f] - lf][lml_g[node_g] - lg] + tree_dist[node_f][node_g],
                )

    return (rows - 1) * (cols - 1)


def zhang_shasha(tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None) -> float:
    """Functional shortcut returning only the Zhang–Shasha distance."""
    return ZhangShashaTED().distance(tree_f, tree_g, cost_model=cost_model)
