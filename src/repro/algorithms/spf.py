"""Iterative single-path functions Δ_L and Δ_R over flat postorder arrays.

This module is the hot execution core of the library: it evaluates the
Zhang–Shasha-style forest-distance recurrence for *left-path* and *right-path*
decompositions without recursion, without tuple forest keys, and with dense
``O(n·m)`` subtree tables instead of hash-map memoization.  It realizes the
paper's single-path functions ``Δ_L`` and ``Δ_R`` (Figure 6); heavy/inner
paths stay with the recursive reference engine
(:class:`~repro.algorithms.forest_engine.DecompositionEngine`), see
``DESIGN.md`` for the full architecture.

Two interchangeable kernels fill each keyroot-pair table:

* a pure-Python kernel (always available), and
* a NumPy kernel (:mod:`repro.algorithms.spf_numpy`) that sweeps each table
  row with vectorized operations — the running-minimum coupling between
  ``fd[i][j-1]`` and ``fd[i][j]`` is resolved with a prefix-minimum over
  ``t[j] - I[j]`` (``I`` = cumulative insert costs), so a whole row costs a
  handful of ``O(cols)`` array operations.

The right-path variant reuses the left-path recurrence verbatim by switching
to *reverse-postorder* coordinates (``Tree.rpost_of_post``), in which the
mirrored tree's arrays appear without building a mirrored tree.  Both trees,
both path kinds, and both decomposition sides (``F`` or ``G``) are expressed
through the small :class:`_Frame` view below.

Contract shared with the executor (:mod:`repro.algorithms.gted`): after
:meth:`SinglePathContext.run` finishes for a subtree pair ``(v, w)``, the
dense distance matrix ``D`` holds the exact tree edit distance for *every*
pair of subtrees ``(x, y)`` with ``x ∈ F_v`` and ``y ∈ G_w``.
"""

from __future__ import annotations

from math import nan
from typing import Callable, Dict, List, Optional, Tuple

from ..costs import CostModel
from ..trees.tree import LEFT, RIGHT, Tree
from .base import resolve_cost_model
from .strategies import SIDE_F, SIDE_G

try:  # NumPy is an optional accelerator, mirroring repro.counting's split.
    from . import spf_numpy as _np_kernel
except ImportError:  # pragma: no cover - exercised only without numpy
    _np_kernel = None


def numpy_available() -> bool:
    """``True`` when the NumPy kernel can be used."""
    return _np_kernel is not None


def _resolve_use_numpy(use_numpy: Optional[bool]) -> bool:
    if use_numpy is None:
        return numpy_available()
    if use_numpy and not numpy_available():
        raise RuntimeError("NumPy kernel requested but numpy is not importable")
    return bool(use_numpy)


class _Frame:
    """A tree viewed in left-decomposition coordinates.

    For ``kind == LEFT`` the frame ids are plain postorder ids.  For
    ``kind == RIGHT`` they are reverse-postorder ids, i.e. the postorder ids
    of the mirrored tree; in that coordinate system the *rightmost* leaf of a
    node becomes its frame-``lml`` and the right-path recurrence coincides
    with the left-path one.  ``to_post`` maps frame ids back to postorder ids
    for reads/writes of the shared distance matrix.
    """

    __slots__ = ("n", "kind", "tree", "labels", "lml", "sizes", "to_post", "of_post", "np_arrays")

    def __init__(self, tree: Tree, kind: str) -> None:
        self.n = tree.n
        self.kind = kind
        self.tree = tree
        #: Lazily built integer-array mirrors, populated by the NumPy kernel.
        self.np_arrays = None
        if kind == LEFT:
            self.labels: List[object] = list(tree.labels)
            self.lml: List[int] = list(tree.lml)
            self.sizes: List[int] = list(tree.sizes)
            self.to_post: List[int] = list(range(tree.n))
            self.of_post: List[int] = self.to_post
        elif kind == RIGHT:
            rpost = tree.rpost_of_post()
            post = tree.post_of_rpost()
            self.labels = [tree.labels[p] for p in post]
            self.lml = [rpost[tree.rml[p]] for p in post]
            self.sizes = [tree.sizes[p] for p in post]
            self.to_post = list(post)
            self.of_post = list(rpost)
        else:
            raise ValueError(f"single-path functions support left/right paths, not {kind!r}")

    def subtree_keyroots(self, v: int) -> List[int]:
        """Frame ids of the keyroots inside the subtree rooted at frame id ``v``."""
        keyroots = self.tree.subtree_keyroots(self.to_post[v], self.kind)
        if self.kind == LEFT:
            return keyroots
        of_post = self.of_post
        return sorted(of_post[k] for k in keyroots)


class SinglePathContext:
    """Shared state for running single-path functions over one tree pair.

    Owns the dense ``n_f × n_g`` tree-distance matrix ``D`` (postorder ×
    postorder, initialized to NaN so that a contract violation surfaces as a
    NaN distance instead of a silently wrong number), the lazily built
    coordinate frames, per-frame cost arrays, and the relevant-subproblem
    counter ``cells``.

    A context is used directly by :func:`spf_L` / :func:`spf_R` for whole
    subtree pairs, and incrementally by the GTED executor which calls
    :meth:`run` once per strategy step with ``spine_only=True``.
    """

    def __init__(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        use_numpy: Optional[bool] = None,
    ) -> None:
        self.tree_f = tree_f
        self.tree_g = tree_g
        self.cost_model = resolve_cost_model(cost_model)
        self.use_numpy = _resolve_use_numpy(use_numpy)
        #: Number of forest-distance cells evaluated (the relevant subproblems).
        self.cells = 0

        if self.use_numpy:
            self.D = _np_kernel.allocate_matrix(tree_f.n, tree_g.n)
        else:
            self.D = [[nan] * tree_g.n for _ in range(tree_f.n)]

        self._frames: Dict[Tuple[str, str], _Frame] = {}
        self._costs: Dict[Tuple[str, str, str], List[float]] = {}
        self._renames: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------ #
    # Cached per-frame data
    # ------------------------------------------------------------------ #
    def _frame(self, which: str, kind: str) -> _Frame:
        key = (which, kind)
        frame = self._frames.get(key)
        if frame is None:
            tree = self.tree_f if which == SIDE_F else self.tree_g
            frame = _Frame(tree, kind)
            self._frames[key] = frame
        return frame

    def _cost_array(self, which: str, kind: str, operation: str) -> List[float]:
        """Per-frame-id node costs; ``operation`` is ``"delete"`` or ``"insert"``."""
        key = (which, kind, operation)
        costs = self._costs.get(key)
        if costs is None:
            frame = self._frame(which, kind)
            fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
            costs = [fn(label) for label in frame.labels]
            if self.use_numpy:
                costs = _np_kernel.as_array(costs)
            self._costs[key] = costs
        return costs

    def _rename_matrix(self, side: str, kind: str):
        """Dense rename-cost matrix in frame coordinates (NumPy kernel only).

        Row axis is the decomposed tree, column axis the other tree; for
        ``side == SIDE_G`` the stored costs are ``rename(label_F, label_G)``
        with the *original* argument order, so the swapped orientation still
        charges the correct direction-sensitive cost.
        """
        key = (side, kind)
        matrix = self._renames.get(key)
        if matrix is None:
            if side == SIDE_F:
                rows, cols = self._frame(SIDE_F, kind), self._frame(SIDE_G, kind)
                rename = self.cost_model.rename
            else:
                rows, cols = self._frame(SIDE_G, kind), self._frame(SIDE_F, kind)
                rename = lambda a, b: self.cost_model.rename(b, a)  # noqa: E731
            matrix = _np_kernel.rename_matrix(rows.labels, cols.labels, rename)
            self._renames[key] = matrix
        return matrix

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, side: str, kind: str, v: int, w: int, spine_only: bool = False) -> float:
        """Run the single-path function for the subtree pair ``(v, w)``.

        Parameters
        ----------
        side, kind:
            Which tree is decomposed (``"F"`` or ``"G"``) along which path
            (``LEFT`` or ``RIGHT``).
        v, w:
            Postorder ids of the subtree roots in ``tree_f`` / ``tree_g``.
        spine_only:
            When ``False`` (standalone mode) every keyroot of the decomposed
            subtree is processed, which computes the pair from scratch.  When
            ``True`` (executor mode) only the root spine is processed and the
            off-path blocks of ``D`` must already be filled — that is exactly
            the state Algorithm 1 guarantees after its recursive calls.

        Returns the tree edit distance ``d(F_v, G_w)``.
        """
        if kind not in (LEFT, RIGHT):
            raise ValueError(f"single-path functions support left/right paths, not {kind!r}")
        if side == SIDE_F:
            dec_which, oth_which = SIDE_F, SIDE_G
            dec_root, oth_root = v, w
        else:
            dec_which, oth_which = SIDE_G, SIDE_F
            dec_root, oth_root = w, v

        dec = self._frame(dec_which, kind)
        oth = self._frame(oth_which, kind)
        dec_fid = dec.of_post[dec_root]
        oth_fid = oth.of_post[oth_root]

        # Removing a node from the decomposed tree is a *delete* when F is
        # decomposed and an *insert* when G is (and vice versa for the other
        # side), which keeps asymmetric cost models exact.
        del_costs = self._cost_array(dec_which, kind, "delete" if side == SIDE_F else "insert")
        ins_costs = self._cost_array(oth_which, kind, "insert" if side == SIDE_F else "delete")

        dec_keyroots = [dec_fid] if spine_only else dec.subtree_keyroots(dec_fid)
        oth_keyroots = oth.subtree_keyroots(oth_fid)

        if self.use_numpy:
            base = self.D if side == SIDE_F else self.D.T
            rename = self._rename_matrix(side, kind)
            cells = _np_kernel.run_regions(
                dec, oth, dec_keyroots, oth_keyroots, del_costs, ins_costs, rename, base,
                fallback=self._region_kernel_py(side, dec, oth, del_costs, ins_costs),
            )
        else:
            kernel = self._region_kernel_py(side, dec, oth, del_costs, ins_costs)
            cells = 0
            for kf in dec_keyroots:
                for kg in oth_keyroots:
                    cells += kernel(kf, kg)
        self.cells += cells
        return float(self.D[v][w])

    # ------------------------------------------------------------------ #
    # Pure-Python kernel
    # ------------------------------------------------------------------ #
    def _region_kernel_py(
        self,
        side: str,
        dec: _Frame,
        oth: _Frame,
        del_costs: List[float],
        ins_costs: List[float],
    ) -> Callable[[int, int], int]:
        """Bind the pure-Python region kernel to one orientation.

        The returned callable fills a single keyroot-pair table; it is both
        the pure-Python execution path and the small-region fallback of the
        NumPy kernel (whose per-region setup overhead would dominate the many
        tiny tables produced by branchy trees).
        """
        D = self.D
        to_post_dec = dec.to_post
        to_post_oth = oth.to_post
        if side == SIDE_F:
            rename = self.cost_model.rename

            def read_row(node_post: int, col_posts: List[int]) -> List[float]:
                row = D[node_post]
                return [row[p] for p in col_posts]

            def write(node_post: int, col_post: int, value: float) -> None:
                D[node_post][col_post] = value

        else:
            cm_rename = self.cost_model.rename

            def rename(a: object, b: object) -> float:
                return cm_rename(b, a)

            def read_row(node_post: int, col_posts: List[int]) -> List[float]:
                return [D[p][node_post] for p in col_posts]

            def write(node_post: int, col_post: int, value: float) -> None:
                D[col_post][node_post] = value

        def kernel(kf: int, kg: int) -> int:
            return _region_py(
                dec, oth, kf, kg, del_costs, ins_costs, rename,
                to_post_dec, to_post_oth, read_row, write,
            )

        return kernel


def _region_py(
    dec: _Frame,
    oth: _Frame,
    kf: int,
    kg: int,
    del_costs: List[float],
    ins_costs: List[float],
    rename: Callable[[object, object], float],
    to_post_dec: List[int],
    to_post_oth: List[int],
    read_row: Callable[[int, List[int]], List[float]],
    write: Callable[[int, int, float], None],
) -> int:
    """Fill one keyroot-pair forest-distance table (pure-Python kernel).

    The recurrence is the classic Zhang–Shasha one over frame-contiguous
    prefix forests; distances between pairs of complete subtrees are written
    to the shared matrix, and distances of previously completed subtree pairs
    are read back for the forest-split case.
    """
    lml_f, lml_g = dec.lml, oth.lml
    labels_f, labels_g = dec.labels, oth.labels
    lf, lg = lml_f[kf], lml_g[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2

    col_posts = to_post_oth[lg : kg + 1]

    fd: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + del_costs[lf + i - 1]
    first_row = fd[0]
    for j in range(1, cols):
        first_row[j] = first_row[j - 1] + ins_costs[lg + j - 1]

    for i in range(1, rows):
        node_f = lf + i - 1
        spans_f = lml_f[node_f] == lf
        delete_cost = del_costs[node_f]
        label_f = labels_f[node_f]
        node_f_post = to_post_dec[node_f]
        prev = fd[i - 1]
        row = fd[i]
        split_row = fd[lml_f[node_f] - lf]
        dist_row = None if spans_f else read_row(node_f_post, col_posts)
        for j in range(1, cols):
            node_g = lg + j - 1
            best = prev[j] + delete_cost
            candidate = row[j - 1] + ins_costs[node_g]
            if candidate < best:
                best = candidate
            if spans_f and lml_g[node_g] == lg:
                candidate = prev[j - 1] + rename(label_f, labels_g[node_g])
                if candidate < best:
                    best = candidate
                row[j] = best
                write(node_f_post, col_posts[j - 1], best)
            else:
                if dist_row is None:
                    dist_row = read_row(node_f_post, col_posts)
                candidate = split_row[lml_g[node_g] - lg] + dist_row[j - 1]
                if candidate < best:
                    best = candidate
                row[j] = best

    return (rows - 1) * (cols - 1)


# --------------------------------------------------------------------------- #
# Public single-path functions
# --------------------------------------------------------------------------- #
def spf_L(
    tree_f: Tree,
    tree_g: Tree,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
) -> float:
    """Tree edit distance via the iterative left-path single-path function.

    Computes ``d(F_v, G_w)`` (whole trees by default) by decomposing both
    trees along left paths — the strategy of Zhang-L — entirely with
    iterative keyroot tables: no recursion is involved, so arbitrarily deep
    trees are handled without touching the interpreter recursion limit.
    """
    context = SinglePathContext(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy)
    return context.run(SIDE_F, LEFT, tree_f.root if v is None else v, tree_g.root if w is None else w)


def spf_R(
    tree_f: Tree,
    tree_g: Tree,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
) -> float:
    """Tree edit distance via the iterative right-path single-path function.

    The mirror image of :func:`spf_L` (the strategy of Zhang-R), executed in
    reverse-postorder coordinates instead of on mirrored tree copies.
    """
    context = SinglePathContext(tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy)
    return context.run(SIDE_F, RIGHT, tree_f.root if v is None else v, tree_g.root if w is None else w)
