"""Iterative single-path functions Δ_L, Δ_R and Δ_A over flat index arrays.

This module is the hot execution core of the library: it evaluates the
forest-distance recurrence for *all three* path classes of the paper without
recursion, without tuple forest keys, and with dense tables instead of
hash-map memoization.

* ``Δ_L`` / ``Δ_R`` (Figure 6) — the Zhang–Shasha-style keyroot programs for
  left and right paths, over postorder / reverse-postorder coordinates.
* ``Δ_A`` — the general *inner-path* program in the Demaine/Klein style, used
  for heavy paths (and any other root-leaf path): the decomposed subtree's
  relevant subforests form a single removal chain (:class:`_InnerChain`), the
  other subtree's subforests form a boundary grid (:class:`_GridFrame`), and
  each chain position is one grid-sweep row.

The recursive reference engine
(:class:`~repro.algorithms.forest_engine.DecompositionEngine`) is no longer
on any execution path — it survives purely as the cross-check oracle; see
``DESIGN.md`` for the full architecture.

Two interchangeable kernels fill each keyroot-pair table:

* a pure-Python kernel (always available), and
* a NumPy kernel (:mod:`repro.algorithms.spf_numpy`) that sweeps each table
  row with vectorized operations — the running-minimum coupling between
  ``fd[i][j-1]`` and ``fd[i][j]`` is resolved with a prefix-minimum over
  ``t[j] - I[j]`` (``I`` = cumulative insert costs), so a whole row costs a
  handful of ``O(cols)`` array operations.

The right-path variant reuses the left-path recurrence verbatim by switching
to *reverse-postorder* coordinates (``Tree.rpost_of_post``), in which the
mirrored tree's arrays appear without building a mirrored tree.  Both trees,
both path kinds, and both decomposition sides (``F`` or ``G``) are expressed
through the small :class:`_Frame` view below.

Contract shared with the executor (:mod:`repro.algorithms.gted`): after
:meth:`SinglePathContext.run` finishes for a subtree pair ``(v, w)``, the
dense distance matrix ``D`` holds the exact tree edit distance for *every*
pair of subtrees ``(x, y)`` with ``x ∈ F_v`` and ``y ∈ G_w``.
"""

from __future__ import annotations

from math import nan
from typing import Callable, Dict, List, Optional, Tuple

from ..costs import CostModel
from ..runtime import active_deadline
from ..trees.tree import HEAVY, LEFT, RIGHT, Tree
from .base import CutoffExceeded, check_row_cutoff, cutoff_band, cutoff_slack, resolve_cost_model
from .strategies import SIDE_F, SIDE_G

try:  # NumPy is an optional accelerator, mirroring repro.counting's split.
    from . import spf_numpy as _np_kernel
except ImportError:  # pragma: no cover - exercised only without numpy
    _np_kernel = None


def numpy_available() -> bool:
    """``True`` when the NumPy kernel can be used."""
    return _np_kernel is not None


def _resolve_use_numpy(use_numpy: Optional[bool]) -> bool:
    if use_numpy is None:
        return numpy_available()
    if use_numpy and not numpy_available():
        raise RuntimeError("NumPy kernel requested but numpy is not importable")
    return bool(use_numpy)


class _Frame:
    """A tree viewed in left-decomposition coordinates.

    For ``kind == LEFT`` the frame ids are plain postorder ids.  For
    ``kind == RIGHT`` they are reverse-postorder ids, i.e. the postorder ids
    of the mirrored tree; in that coordinate system the *rightmost* leaf of a
    node becomes its frame-``lml`` and the right-path recurrence coincides
    with the left-path one.  ``to_post`` maps frame ids back to postorder ids
    for reads/writes of the shared distance matrix.
    """

    __slots__ = ("n", "kind", "tree", "labels", "lml", "sizes", "to_post", "of_post", "np_arrays")

    def __init__(self, tree: Tree, kind: str) -> None:
        self.n = tree.n
        self.kind = kind
        self.tree = tree
        #: Lazily built integer-array mirrors, populated by the NumPy kernel.
        self.np_arrays = None
        if kind == LEFT:
            self.labels: List[object] = list(tree.labels)
            self.lml: List[int] = list(tree.lml)
            self.sizes: List[int] = list(tree.sizes)
            self.to_post: List[int] = list(range(tree.n))
            self.of_post: List[int] = self.to_post
        elif kind == RIGHT:
            rpost = tree.rpost_of_post()
            post = tree.post_of_rpost()
            self.labels = [tree.labels[p] for p in post]
            self.lml = [rpost[tree.rml[p]] for p in post]
            self.sizes = [tree.sizes[p] for p in post]
            self.to_post = list(post)
            self.of_post = list(rpost)
        else:
            raise ValueError(f"single-path functions support left/right paths, not {kind!r}")

    def subtree_keyroots(self, v: int) -> List[int]:
        """Frame ids of the keyroots inside the subtree rooted at frame id ``v``."""
        keyroots = self.tree.subtree_keyroots(self.to_post[v], self.kind)
        if self.kind == LEFT:
            return keyroots
        of_post = self.of_post
        return sorted(of_post[k] for k in keyroots)


class _InnerChain:
    """The relevant-subforest chain of a subtree along one root-leaf path.

    The relevant subforests of ``F_v`` with respect to a root-leaf path γ form
    a *single* deterministic sequence: Definition 3's direction rule (remove
    the rightmost root while the leftmost root lies on γ, the leftmost root
    otherwise) removes exactly one node per step, so the chain is fully
    described by the removal order.  Concretely, walking γ from ``v`` down to
    its leaf, each path node ``p`` contributes

    1. ``p`` itself (the forest is exactly ``F_p`` at that point, a single
       tree whose root is on the path, so the root is removed),
    2. the subtrees of ``p``'s children left of the path child, consumed one
       node at a time in *preorder* (left removals), then
    3. the subtrees right of the path child, rightmost subtree first, each
       consumed in *reverse postorder* (right removals).

    ``jump[s] = s + |F_{u_s}|`` is the position at which the whole subtree of
    the node removed at ``s`` is gone — the target of the forest-split term of
    the recurrence.  For path nodes ``jump[s] == n`` (the empty forest), since
    everything outside ``F_p`` is already gone when ``p`` is removed.
    """

    __slots__ = ("nodes", "remove_right", "on_path", "jump")

    def __init__(self, tree: Tree, root: int, kind: str) -> None:
        nodes: List[int] = []
        remove_right: List[bool] = []
        on_path: List[bool] = []
        post_of_pre = tree.post_of_pre
        pre_of_post = tree.pre_of_post
        sizes = tree.sizes
        children = tree.children
        for p in tree.root_leaf_path(root, kind):
            nodes.append(p)
            remove_right.append(True)
            on_path.append(True)
            kids = children[p]
            if not kids:
                continue
            path_child = tree.path_child(p, kind)
            pos = kids.index(path_child)
            for c in kids[:pos]:
                first = pre_of_post[c]
                for pre in range(first, first + sizes[c]):
                    nodes.append(post_of_pre[pre])
                    remove_right.append(False)
                    on_path.append(False)
            for c in reversed(kids[pos + 1 :]):
                for u in range(c, c - sizes[c], -1):
                    nodes.append(u)
                    remove_right.append(True)
                    on_path.append(False)
        if len(nodes) != sizes[root]:  # pragma: no cover - structural invariant
            raise AssertionError("single-path chain does not cover the subtree")
        self.nodes = nodes
        self.remove_right = remove_right
        self.on_path = on_path
        self.jump = [s + sizes[u] for s, u in enumerate(nodes)]


class _GridFrame:
    """The *non-decomposed* subtree viewed as a boundary grid.

    Every subforest of ``G_w`` reachable by left/right root removals is the
    node set ``{u : pre(u) ≥ x, post(u) ≤ y - 1}`` for subtree-local preorder
    boundary ``x`` and (shifted) postorder boundary ``y``; left removals
    advance ``x``, right removals lower ``y``.  Several ``(x, y)`` cells may
    denote the same forest (when the boundary node itself is excluded by the
    other boundary); the inner-path tables keep those duplicates and resolve
    them with O(1) copies, which is what makes every lookup constant-time.

    All arrays are subtree-local; ``o_lo`` maps local postorder ids back to
    global ones (the subtree is postorder-contiguous).  ``ins_sum[x][y]`` is
    the total removal cost of the forest at ``(x, y)`` — the value of every
    subproblem whose decomposed-side forest is empty, and the jump row of the
    path-node removal steps.
    """

    __slots__ = (
        "m",
        "o_lo",
        "post_of_pre",
        "pre_of_post",
        "size_pre",
        "size_post",
        "cost_pre",
        "cost_post",
        "labels_post",
        "ins_sum",
        "relevant_cells",
        "np_arrays",
    )

    def __init__(self, tree: Tree, root: int, removal_cost: Callable[[object], float]) -> None:
        m = tree.sizes[root]
        # Canonical cells — those whose two boundary nodes are both inside
        # the forest — biject with the nonempty subforests of the full
        # decomposition A(G_w), so their count is |A(G_w)| of Lemma 1: the
        # per-chain-step subproblem measure of the paper's cost formula.
        self.relevant_cells = tree.full_decomposition_sizes()[root]
        o_lo = root - m + 1
        pre_root = tree.pre_of_post[root]
        global_post_of_pre = tree.post_of_pre
        post_of_pre = [global_post_of_pre[pre_root + x] - o_lo for x in range(m)]
        pre_of_post = [0] * m
        for x, p in enumerate(post_of_pre):
            pre_of_post[p] = x
        self.m = m
        self.o_lo = o_lo
        self.post_of_pre = post_of_pre
        self.pre_of_post = pre_of_post
        self.size_post = [tree.sizes[o_lo + p] for p in range(m)]
        self.size_pre = [self.size_post[p] for p in post_of_pre]
        self.labels_post = [tree.labels[o_lo + p] for p in range(m)]
        self.cost_post = [removal_cost(label) for label in self.labels_post]
        self.cost_pre = [self.cost_post[p] for p in post_of_pre]

        # ins_sum[x][y] = Σ cost over {pre ≥ x, post ≤ y-1}, built bottom-up
        # over x: adding the node with preorder x contributes to every y past
        # its postorder position.
        width = m + 1
        grid: List[List[float]] = [[0.0] * width for _ in range(width)]
        for x in range(m - 1, -1, -1):
            row = list(grid[x + 1])
            cost = self.cost_pre[x]
            for y in range(post_of_pre[x] + 1, width):
                row[y] += cost
            grid[x] = row
        self.ins_sum = grid
        #: Lazily built array mirrors, populated by the NumPy kernel.
        self.np_arrays = None


class SinglePathContext:
    """Shared state for running single-path functions over one tree pair.

    Owns the dense ``n_f × n_g`` tree-distance matrix ``D`` (postorder ×
    postorder, initialized to NaN so that a contract violation surfaces as a
    NaN distance instead of a silently wrong number), the lazily built
    coordinate frames, per-frame cost arrays, and the relevant-subproblem
    counter ``cells``.

    A context is used directly by :func:`spf_L` / :func:`spf_R` for whole
    subtree pairs, and incrementally by the GTED executor which calls
    :meth:`run` once per strategy step with ``spine_only=True``.

    When a :class:`~repro.algorithms.workspace.TedWorkspace` is supplied the
    per-call setup is delegated to its cross-pair caches: coordinate frames,
    cost arrays, grid frames and heavy-path equivalences come from the
    workspace's per-tree caches, the distance matrix is a pooled buffer
    (returned via :meth:`release`), rename matrices become integer-code
    gathers from the workspace's alphabet table, and unit-cost workspaces
    skip rename matrices entirely (the kernels compare code arrays).  A
    workspace bound to a *different* cost model is ignored — the context
    falls back to fresh per-call state, which is always correct.
    """

    def __init__(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        use_numpy: Optional[bool] = None,
        workspace=None,
        cutoff: Optional[float] = None,
        cutoff_pair: Optional[Tuple[int, int]] = None,
        use_native: bool = False,
    ) -> None:
        self.tree_f = tree_f
        self.tree_g = tree_g
        self.cost_model = resolve_cost_model(cost_model)
        #: ``engine="native"``: unit-mode regions may run the compiled
        #: region sweep (numba provider only; resolved lazily on first use
        #: and silently absent otherwise — the graceful-fallback rule).
        self.use_native = bool(use_native)
        self._native_region = False  # not yet probed
        if workspace is not None and not workspace.matches(self.cost_model):
            # Silent fallback to fresh per-call state; the bypass is counted
            # once at the WorkspaceTED layer, not per context.
            workspace = None
        self.workspace = workspace
        self.use_numpy = _resolve_use_numpy(use_numpy)
        #: Number of forest-distance cells evaluated (the relevant subproblems).
        self.cells = 0
        #: Bounded-computation state: ``cutoff_pair`` is the subtree pair
        #: whose distance is the computation's goal (the whole-tree roots for
        #: the executor); only that pair's *final* keyroot region — whose
        #: table spans both whole trees, making the row-abort test sound —
        #: runs the early-abort check.  Mid-row aborts additionally need a
        #: provable per-operation cost floor (``DESIGN.md``, *Bounded
        #: verification*); without one the kernels run unbounded and the
        #: final check happens at the compute layer.
        self.cutoff = None if cutoff is None else float(cutoff)
        self.cutoff_pair = cutoff_pair
        self._cutoff_band = (
            cutoff_band(self.cost_model) if cutoff is not None else None
        )
        self._cutoff_slack = cutoff_slack(self.cost_model)
        #: Ambient cooperative deadline (:mod:`repro.runtime`), captured once
        #: per context; the row kernels test it amortized.  ``None`` on the
        #: (common) deadline-free path — every check is guarded, so the
        #: arithmetic and results are untouched either way.
        self.deadline = active_deadline()

        if self.use_numpy:
            if workspace is not None:
                self.D = workspace.acquire_matrix(tree_f.n, tree_g.n)
            else:
                self.D = _np_kernel.allocate_matrix(tree_f.n, tree_g.n)
        else:
            self.D = [[nan] * tree_g.n for _ in range(tree_f.n)]

        self._frames: Dict[Tuple[str, str], _Frame] = {}
        self._costs: Dict[Tuple[str, str, str], List[float]] = {}
        self._renames: Dict[Tuple[str, str], object] = {}
        self._grids: Dict[Tuple[str, int], _GridFrame] = {}
        self._node_cost_arrays: Dict[Tuple[str, str], List[float]] = {}
        self._kind_equiv: Dict[str, Tuple[List[bool], List[bool]]] = {}

    def release(self) -> None:
        """Return the pooled distance matrix to the workspace (if any).

        After release the matrix must not be read again — the executor calls
        this once the final distance has been extracted.  A no-op for
        contexts without a workspace or without the NumPy matrix.
        """
        if self.workspace is not None and self.use_numpy and self.D is not None:
            self.workspace.release_matrix(self.D)
            self.D = None

    # ------------------------------------------------------------------ #
    # Cached per-frame data
    # ------------------------------------------------------------------ #
    def _frame(self, which: str, kind: str) -> _Frame:
        key = (which, kind)
        frame = self._frames.get(key)
        if frame is None:
            tree = self.tree_f if which == SIDE_F else self.tree_g
            if self.workspace is not None:
                frame = self.workspace.frame(tree, kind)
            else:
                frame = _Frame(tree, kind)
            self._frames[key] = frame
        return frame

    def _cost_array(self, which: str, kind: str, operation: str) -> List[float]:
        """Per-frame-id node costs; ``operation`` is ``"delete"`` or ``"insert"``."""
        key = (which, kind, operation)
        costs = self._costs.get(key)
        if costs is None:
            tree = self.tree_f if which == SIDE_F else self.tree_g
            if self.workspace is not None:
                costs = self.workspace.frame_cost_array(tree, kind, operation, self.use_numpy)
            else:
                frame = self._frame(which, kind)
                fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
                costs = [fn(label) for label in frame.labels]
                if self.use_numpy:
                    costs = _np_kernel.as_array(costs)
            self._costs[key] = costs
        return costs

    def _rename_matrix(self, side: str, kind: str):
        """Dense rename-cost matrix in frame coordinates (NumPy kernel only).

        Row axis is the decomposed tree, column axis the other tree; for
        ``side == SIDE_G`` the stored costs are ``rename(label_F, label_G)``
        with the *original* argument order, so the swapped orientation still
        charges the correct direction-sensitive cost.
        """
        key = (side, kind)
        matrix = self._renames.get(key)
        if matrix is None:
            matrix = self._workspace_rename_matrix(side, kind)
            if matrix is None:
                if side == SIDE_F:
                    rows, cols = self._frame(SIDE_F, kind), self._frame(SIDE_G, kind)
                    rename = self.cost_model.rename
                else:
                    rows, cols = self._frame(SIDE_G, kind), self._frame(SIDE_F, kind)
                    rename = lambda a, b: self.cost_model.rename(b, a)  # noqa: E731
                matrix = _np_kernel.rename_matrix(rows.labels, cols.labels, rename)
            self._renames[key] = matrix
        return matrix

    def _workspace_rename_matrix(self, side: str, kind: str):
        """Rename matrix as an integer-code gather from the workspace's
        alphabet table (``None`` when interning is unavailable) — the same
        values :func:`repro.algorithms.spf_numpy.rename_matrix` would produce
        by calling the cost model, without the per-pair Python calls."""
        workspace = self.workspace
        if workspace is None:
            return None
        # Intern both trees before sizing the table, so the alphabet covers
        # every code about to be gathered.
        codes_f = workspace.frame_codes(self.tree_f, kind, as_numpy=True)
        codes_g = workspace.frame_codes(self.tree_g, kind, as_numpy=True)
        if codes_f is None or codes_g is None:
            return None
        table = workspace.rename_table()
        if table is None:
            return None
        if side == SIDE_F:
            return table[codes_f[:, None], codes_g[None, :]]
        # Swapped orientation: matrix[i, j] = rename(label_F[j], label_G[i]).
        return table[codes_f[None, :], codes_g[:, None]]

    def _node_costs(self, which: str, operation: str) -> List[float]:
        """Per-node removal costs in plain postorder (used by inner paths)."""
        key = (which, operation)
        costs = self._node_cost_arrays.get(key)
        if costs is None:
            tree = self.tree_f if which == SIDE_F else self.tree_g
            if self.workspace is not None:
                costs = self.workspace.node_costs(tree, operation)
            else:
                fn = self.cost_model.delete if operation == "delete" else self.cost_model.insert
                costs = [fn(label) for label in tree.labels]
            self._node_cost_arrays[key] = costs
        return costs

    #: Cached grid frames kept per context; each holds an ``O(m^2)`` grid, so
    #: the cache is bounded (executor task batches reuse the same other-side
    #: subtree many times in a row — see ``_run_fixed_inner``).
    _MAX_GRID_FRAMES = 8

    def _grid_frame(self, which: str, root: int) -> _GridFrame:
        # Removing a node of F is a delete, removing a node of G an
        # insert — the same orientation rule as _node_costs.
        tree = self.tree_f if which == SIDE_F else self.tree_g
        if self.workspace is not None:
            operation = "insert" if which == SIDE_G else "delete"
            return self.workspace.grid_frame(tree, root, operation)
        key = (which, root)
        frame = self._grids.pop(key, None)
        if frame is None:
            removal = self.cost_model.insert if which == SIDE_G else self.cost_model.delete
            frame = _GridFrame(tree, root, removal)
            if len(self._grids) >= self._MAX_GRID_FRAMES:
                self._grids.pop(next(iter(self._grids)))
        # Re-insert on every access so eviction is least-recently-used.
        self._grids[key] = frame
        return frame

    def _heavy_path_equivalences(self, which: str) -> Tuple[List[bool], List[bool]]:
        """Per-node flags: does the heavy path of ``F_v`` equal its left
        (resp. right) path?

        True for every unary chain and for consistently left-/right-leaning
        subtrees.  When it holds, the heavy single-path step *is* a left/right
        step (same path γ, same relevant subtrees), so it can run through the
        much tighter keyroot program instead of the boundary grid.
        """
        cached = self._kind_equiv.get(which)
        if cached is None:
            tree = self.tree_f if which == SIDE_F else self.tree_g
            if self.workspace is not None:
                cached = self.workspace.kind_equivalences(tree)
                self._kind_equiv[which] = cached
                return cached
            n = tree.n
            eq_left = [True] * n
            eq_right = [True] * n
            heavy = tree.heavy_child
            children = tree.children
            for v in range(n):
                kids = children[v]
                if kids:
                    h = heavy[v]
                    eq_left[v] = h == kids[0] and eq_left[h]
                    eq_right[v] = h == kids[-1] and eq_right[h]
            cached = (eq_left, eq_right)
            self._kind_equiv[which] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, side: str, kind: str, v: int, w: int, spine_only: bool = False) -> float:
        """Run the single-path function for the subtree pair ``(v, w)``.

        Parameters
        ----------
        side, kind:
            Which tree is decomposed (``"F"`` or ``"G"``) along which path
            (``LEFT`` or ``RIGHT``).
        v, w:
            Postorder ids of the subtree roots in ``tree_f`` / ``tree_g``.
        spine_only:
            When ``False`` (standalone mode) every keyroot of the decomposed
            subtree is processed, which computes the pair from scratch.  When
            ``True`` (executor mode) only the root spine is processed and the
            off-path blocks of ``D`` must already be filled — that is exactly
            the state Algorithm 1 guarantees after its recursive calls.

        Returns the tree edit distance ``d(F_v, G_w)``.
        """
        if kind == HEAVY:
            return self.run_inner(side, kind, v, w, spine_only=spine_only)
        if kind not in (LEFT, RIGHT):
            raise ValueError(f"single-path functions support left/right/heavy paths, not {kind!r}")
        if side == SIDE_F:
            dec_which, oth_which = SIDE_F, SIDE_G
            dec_root, oth_root = v, w
        else:
            dec_which, oth_which = SIDE_G, SIDE_F
            dec_root, oth_root = w, v

        dec = self._frame(dec_which, kind)
        oth = self._frame(oth_which, kind)
        dec_fid = dec.of_post[dec_root]
        oth_fid = oth.of_post[oth_root]

        # Removing a node from the decomposed tree is a *delete* when F is
        # decomposed and an *insert* when G is (and vice versa for the other
        # side), which keeps asymmetric cost models exact.
        del_costs = self._cost_array(dec_which, kind, "delete" if side == SIDE_F else "insert")
        ins_costs = self._cost_array(oth_which, kind, "insert" if side == SIDE_F else "delete")

        dec_keyroots = [dec_fid] if spine_only else dec.subtree_keyroots(dec_fid)
        oth_keyroots = oth.subtree_keyroots(oth_fid)

        # Early-abort spec for the final keyroot region of the goal pair: the
        # region (dec_fid, oth_fid) spans both subtrees completely, so its
        # rows are prefix-forest distances of the pair being bounded and the
        # row-abort test of DESIGN.md applies.  Only enabled with a provable
        # per-operation cost floor.
        abort = None
        if self._cutoff_band is not None and (v, w) == self.cutoff_pair:
            abort = (dec_fid, oth_fid, self.cutoff, self._cutoff_band, self._cutoff_slack)

        if self.use_numpy:
            base = self.D if side == SIDE_F else self.D.T
            unit_codes = self._unit_codes(dec_which, oth_which, kind, as_numpy=True)
            rename = None if unit_codes is not None else self._rename_matrix(side, kind)
            fallback_codes = self._unit_codes(dec_which, oth_which, kind, as_numpy=False)
            native_region = None
            if self.use_native and unit_codes is not None:
                if self._native_region is False:
                    from .native import native_region_kernel

                    self._native_region = native_region_kernel()
                native_region = self._native_region
            cells = _np_kernel.run_regions(
                dec, oth, dec_keyroots, oth_keyroots, del_costs, ins_costs, rename, base,
                fallback=self._region_kernel_py(
                    side, dec, oth, del_costs, ins_costs, fallback_codes, abort
                ),
                unit_codes=unit_codes,
                abort=abort,
                native_region=native_region,
                deadline=self.deadline,
            )
        else:
            unit_codes = self._unit_codes(dec_which, oth_which, kind, as_numpy=False)
            kernel = self._region_kernel_py(
                side, dec, oth, del_costs, ins_costs, unit_codes, abort
            )
            cells = 0
            deadline = self.deadline
            for kf in dec_keyroots:
                if deadline is not None:
                    deadline.tick()
                for kg in oth_keyroots:
                    cells += kernel(kf, kg)
        self.cells += cells
        return float(self.D[v][w])

    def _unit_codes(self, dec_which: str, oth_which: str, kind: str, as_numpy: bool):
        """Interned frame-order code arrays for the unit-cost kernel paths.

        Only unit-cost workspaces qualify (the specialization folds delete /
        insert costs to 1 and replaces the rename term with a code equality
        compare); returns ``None`` otherwise, which selects the general
        kernels.
        """
        workspace = self.workspace
        if workspace is None or not workspace.unit_cost:
            return None
        dec_tree = self.tree_f if dec_which == SIDE_F else self.tree_g
        oth_tree = self.tree_f if oth_which == SIDE_F else self.tree_g
        dec_codes = workspace.frame_codes(dec_tree, kind, as_numpy=as_numpy)
        oth_codes = workspace.frame_codes(oth_tree, kind, as_numpy=as_numpy)
        if dec_codes is None or oth_codes is None:
            return None
        return (dec_codes, oth_codes)

    # ------------------------------------------------------------------ #
    # Inner (heavy / arbitrary) paths
    # ------------------------------------------------------------------ #
    def run_inner(self, side: str, kind: str, v: int, w: int, spine_only: bool = False) -> float:
        """Run the *inner-path* single-path function Δ_A for the pair ``(v, w)``.

        Unlike :meth:`run`, which requires ``kind`` to be a left or right
        path, this evaluates the chain/grid formulation that works for any
        root-leaf path — in particular heavy paths, for which no keyroot
        coordinate system exists.  With ``spine_only=True`` (executor mode)
        the distance blocks of all off-path subtrees must already be final in
        ``D``; with ``spine_only=False`` the off-path subtree pairs are
        scheduled iteratively first (the recursion-free equivalent of running
        GTED with the constant ``(side, kind)`` strategy).
        """
        if not spine_only:
            return self._run_fixed_inner(side, kind, v, w)
        if side == SIDE_F:
            dec_tree, dec_root, oth_which, oth_root = self.tree_f, v, SIDE_G, w
        else:
            dec_tree, dec_root, oth_which, oth_root = self.tree_g, w, SIDE_F, v
        if kind == HEAVY:
            # When γ_H of the decomposed subtree coincides with its left or
            # right path (unary chains, leaning trees), the spine is a
            # left/right spine: same path, same relevant subtrees, but the
            # keyroot program evaluates |Γ|-many prefix forests of the other
            # tree instead of the full (m+1)² boundary grid.
            eq_left, eq_right = self._heavy_path_equivalences(side)
            if eq_left[dec_root]:
                return self.run(side, LEFT, v, w, spine_only=True)
            if eq_right[dec_root]:
                return self.run(side, RIGHT, v, w, spine_only=True)
        chain = _InnerChain(dec_tree, dec_root, kind)
        frame = self._grid_frame(oth_which, oth_root)
        dec_costs = self._node_costs(side, "delete" if side == SIDE_F else "insert")
        if self.use_numpy and frame.m + 1 >= _np_kernel.MIN_INNER_VECTOR_WIDTH:
            base = self.D if side == SIDE_F else self.D.T
            rename = self.cost_model.rename
            if side == SIDE_G:
                cm_rename = rename
                rename = lambda a, b: cm_rename(b, a)  # noqa: E731
            _np_kernel.inner_spine(
                dec_tree, chain, frame, dec_costs, rename, base,
                deadline=self.deadline,
            )
        else:
            self._inner_spine_py(side, dec_tree, chain, frame, dec_costs)
        # Count subproblems in the paper's currency — one per (chain step,
        # relevant subforest of the other subtree), i.e. the heavy term of
        # the cost formula — not raw grid cells (which include O(1)
        # duplicate copies and unreachable states).
        self.cells += len(chain.nodes) * frame.relevant_cells
        return float(self.D[v][w])

    def _run_fixed_inner(self, side: str, kind: str, v: int, w: int) -> float:
        """Iterative driver for a constant ``(side, kind)`` strategy.

        Walks the decomposition tree of Algorithm 1 for the fixed strategy
        with an explicit stack: the off-path subtrees of each decomposed
        subtree become sub-tasks (the other-side subtree never changes), and
        the spine run happens once every sub-task block is final.
        """
        dec_tree = self.tree_f if side == SIDE_F else self.tree_g
        dec_root = v if side == SIDE_F else w
        stack: List[Tuple[int, bool]] = [(dec_root, False)]
        done: set = set()
        while stack:
            root, ready = stack.pop()
            if ready:
                pair = (root, w) if side == SIDE_F else (v, root)
                self.run_inner(side, kind, pair[0], pair[1], spine_only=True)
                done.add(root)
                continue
            if root in done:
                continue
            stack.append((root, True))
            for sub in dec_tree.relevant_subtrees(root, kind):
                if sub not in done:
                    stack.append((sub, False))
        return float(self.D[v][w])

    def _inner_spine_py(
        self,
        side: str,
        dec_tree: Tree,
        chain: _InnerChain,
        frame: _GridFrame,
        dec_costs: List[float],
    ) -> None:
        """Pure-Python inner-path spine kernel.

        Processes the relevant-subforest chain of the decomposed subtree from
        the empty forest backwards; each chain position owns one boundary-grid
        table over the other subtree's subforests.  Tables are freed as soon
        as their last reader (the preceding position and any forest-split
        jumps targeting them) has been processed, so live memory is
        ``O(d · m²)`` for nesting depth ``d`` of the off-path subtrees.
        """
        D = self.D
        o_lo = frame.o_lo
        m = frame.m
        width = m + 1
        use_np_matrix = self.use_numpy

        if side == SIDE_F:
            def read_d_row(u: int) -> List[float]:
                row = D[u]
                if use_np_matrix:
                    return row[o_lo : o_lo + m].tolist()
                return row[o_lo : o_lo + m]

            def write_d_row(u: int, values: List[float]) -> None:
                # Slice assignment works for both the list and ndarray matrix.
                D[u][o_lo : o_lo + m] = values

            rename = self.cost_model.rename
        else:
            def read_d_row(u: int) -> List[float]:
                if use_np_matrix:
                    return D[o_lo : o_lo + m, u].tolist()
                return [D[o_lo + p][u] for p in range(m)]

            def write_d_row(u: int, values: List[float]) -> None:
                if use_np_matrix:
                    D[o_lo : o_lo + m, u] = values
                else:
                    for p in range(m):
                        D[o_lo + p][u] = values[p]

            cm_rename = self.cost_model.rename

            def rename(a: object, b: object) -> float:
                return cm_rename(b, a)

        nodes = chain.nodes
        remove_right = chain.remove_right
        on_path = chain.on_path
        jump = chain.jump
        n = len(nodes)

        chain_costs = [float(dec_costs[u]) for u in nodes]
        del_sum = [0.0] * (n + 1)
        for s in range(n - 1, -1, -1):
            del_sum[s] = del_sum[s + 1] + chain_costs[s]

        # Reference counts: row j is read by row j-1 (delete term) and by
        # every chain position whose forest-split jump targets it.
        readers = [0] * (n + 1)
        for j in range(1, n):
            readers[j] += 1
        for s in range(n):
            if jump[s] < n:
                readers[jump[s]] += 1

        post_of_pre = frame.post_of_pre
        pre_of_post = frame.pre_of_post
        size_pre = frame.size_pre
        size_post = frame.size_post
        cost_pre = frame.cost_pre
        cost_post = frame.cost_post
        labels_post = frame.labels_post

        deadline = self.deadline
        # Region-granular deadline amortization (see :func:`_region_py`):
        # narrow grids pay one weighted tick per chain position; wide grids —
        # where a tick call is dwarfed by the row's inner loop — also check
        # per row.
        row_deadline = deadline if (deadline is not None and width >= 64) else None
        rows: Dict[int, List[List[float]]] = {n: frame.ins_sum}
        for s in range(n - 1, -1, -1):
            u = nodes[s]
            del_u = chain_costs[s]
            row_next = rows[s + 1]
            base = del_sum[s]
            if deadline is not None:
                deadline.tick(width * width)
            table: List[List[float]] = [None] * width  # type: ignore[list-item]

            if on_path[s]:
                # F-side forest is the single tree rooted at the path node u:
                # direction right, forest-split jumps to the empty forest
                # (ins_sum), tree×tree cells write D and use the rename term.
                ins_sum = frame.ins_sum
                label_u = dec_tree.labels[u]
                rename_row = [rename(label_u, labels_post[p]) for p in range(m)]
                du_path = [nan] * m
                for x in range(m, -1, -1):
                    if row_deadline is not None:
                        row_deadline.tick(width)
                    trow = [0.0] * width
                    nrow = row_next[x]
                    jrow = ins_sum[x]
                    trow[0] = base
                    for y in range(1, width):
                        p = y - 1
                        xp = pre_of_post[p]
                        if xp >= x:
                            best = nrow[y] + del_u
                            cand = trow[y - 1] + cost_post[p]
                            if cand < best:
                                best = cand
                            if xp == x:
                                cand = nrow[y - 1] + rename_row[p]
                            else:
                                cand = du_path[p] + jrow[y - size_post[p]]
                            if cand < best:
                                best = cand
                            trow[y] = best
                            if xp == x:
                                du_path[p] = best
                        else:
                            trow[y] = trow[y - 1]
                    table[x] = trow
                write_d_row(u, du_path)
            elif remove_right[s]:
                # Off-path node removed from the right: the other-side forest
                # also sheds its rightmost root; subtree distances of u are
                # final in D (executor contract).
                du = read_d_row(u)
                jump_row = rows[jump[s]]
                for x in range(width):
                    if row_deadline is not None:
                        row_deadline.tick(width)
                    trow = [0.0] * width
                    nrow = row_next[x]
                    jrow = jump_row[x]
                    trow[0] = base
                    for y in range(1, width):
                        p = y - 1
                        if pre_of_post[p] >= x:
                            best = nrow[y] + del_u
                            cand = trow[y - 1] + cost_post[p]
                            if cand < best:
                                best = cand
                            cand = du[p] + jrow[y - size_post[p]]
                            if cand < best:
                                best = cand
                            trow[y] = best
                        else:
                            trow[y] = trow[y - 1]
                    table[x] = trow
            else:
                # Off-path node removed from the left: both forests shed
                # their leftmost root, so the coupling runs along the
                # preorder boundary x instead of y.
                du = read_d_row(u)
                jump_row = rows[jump[s]]
                table[m] = [base] * width
                for x in range(m - 1, -1, -1):
                    if row_deadline is not None:
                        row_deadline.tick(width)
                    p = post_of_pre[x]
                    cost_x = cost_pre[x]
                    jrow = jump_row[x + size_pre[x]]
                    nrow = row_next[x]
                    below = table[x + 1]
                    dval = du[p]
                    trow = [0.0] * width
                    for y in range(width):
                        if y > p:
                            best = nrow[y] + del_u
                            cand = below[y] + cost_x
                            if cand < best:
                                best = cand
                            cand = dval + jrow[y]
                            if cand < best:
                                best = cand
                            trow[y] = best
                        else:
                            trow[y] = below[y]
                    table[x] = trow

            rows[s] = table
            readers[s + 1] -= 1
            if readers[s + 1] == 0 and s + 1 < n:
                del rows[s + 1]
            j = jump[s]
            if j < n:
                readers[j] -= 1
                if readers[j] == 0:
                    del rows[j]

    # ------------------------------------------------------------------ #
    # Pure-Python kernel
    # ------------------------------------------------------------------ #
    def _region_kernel_py(
        self,
        side: str,
        dec: _Frame,
        oth: _Frame,
        del_costs: List[float],
        ins_costs: List[float],
        unit_codes=None,
        abort: Optional[Tuple[int, int, float, float, float]] = None,
    ) -> Callable[[int, int], int]:
        """Bind the pure-Python region kernel to one orientation.

        The returned callable fills a single keyroot-pair table; it is both
        the pure-Python execution path and the small-region fallback of the
        NumPy kernel (whose per-region setup overhead would dominate the many
        tiny tables produced by branchy trees).  With ``unit_codes`` (a pair
        of frame-order code lists, unit-cost workspaces only) the bound
        kernel is the unit specialization: delete/insert constant-folded to
        1 and the rename term a code equality compare.  ``abort`` — a
        ``(kf, kg, cutoff, band, slack)`` spec — arms the early-abort row
        check for the one region it names.
        """
        D = self.D
        to_post_dec = dec.to_post
        to_post_oth = oth.to_post
        if side == SIDE_F:
            rename = self.cost_model.rename

            def read_row(node_post: int, col_posts: List[int]) -> List[float]:
                row = D[node_post]
                return [row[p] for p in col_posts]

            def write(node_post: int, col_post: int, value: float) -> None:
                D[node_post][col_post] = value

        else:
            cm_rename = self.cost_model.rename

            def rename(a: object, b: object) -> float:
                return cm_rename(b, a)

            def read_row(node_post: int, col_posts: List[int]) -> List[float]:
                return [D[p][node_post] for p in col_posts]

            def write(node_post: int, col_post: int, value: float) -> None:
                D[col_post][node_post] = value

        deadline = self.deadline
        if unit_codes is not None:
            codes_dec, codes_oth = unit_codes

            def kernel(kf: int, kg: int) -> int:
                cut = abort[2:] if abort is not None and (kf, kg) == abort[:2] else None
                return _region_py_unit(
                    dec, oth, kf, kg, codes_dec, codes_oth,
                    to_post_dec, to_post_oth, read_row, write, cut, deadline,
                )

            return kernel

        def kernel(kf: int, kg: int) -> int:
            cut = abort[2:] if abort is not None and (kf, kg) == abort[:2] else None
            return _region_py(
                dec, oth, kf, kg, del_costs, ins_costs, rename,
                to_post_dec, to_post_oth, read_row, write, cut, deadline,
            )

        return kernel


def _region_py(
    dec: _Frame,
    oth: _Frame,
    kf: int,
    kg: int,
    del_costs: List[float],
    ins_costs: List[float],
    rename: Callable[[object, object], float],
    to_post_dec: List[int],
    to_post_oth: List[int],
    read_row: Callable[[int, List[int]], List[float]],
    write: Callable[[int, int, float], None],
    cut: Optional[Tuple[float, float, float]] = None,
    deadline=None,
) -> int:
    """Fill one keyroot-pair forest-distance table (pure-Python kernel).

    The recurrence is the classic Zhang–Shasha one over frame-contiguous
    prefix forests; distances between pairs of complete subtrees are written
    to the shared matrix, and distances of previously completed subtree pairs
    are read back for the forest-split case.  ``cut`` —
    ``(cutoff, band, slack)``, final region of a bounded computation only —
    arms the per-row early
    abort (:func:`repro.algorithms.base.check_row_cutoff`).
    """
    lml_f, lml_g = dec.lml, oth.lml
    labels_f, labels_g = dec.labels, oth.labels
    lf, lg = lml_f[kf], lml_g[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2

    # Deadline amortization: most regions are tiny (a handful of rows), so a
    # per-row tick call would dominate their cost.  Small regions pay one
    # weighted tick at entry; only wide regions — where a tick is dwarfed by
    # the row's inner loop — also check per row.
    row_deadline = None
    if deadline is not None:
        deadline.tick((rows - 1) * (cols - 1))
        if cols >= 64:
            row_deadline = deadline

    col_posts = to_post_oth[lg : kg + 1]

    fd: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = fd[i - 1][0] + del_costs[lf + i - 1]
    first_row = fd[0]
    for j in range(1, cols):
        first_row[j] = first_row[j - 1] + ins_costs[lg + j - 1]

    for i in range(1, rows):
        node_f = lf + i - 1
        spans_f = lml_f[node_f] == lf
        delete_cost = del_costs[node_f]
        label_f = labels_f[node_f]
        node_f_post = to_post_dec[node_f]
        prev = fd[i - 1]
        row = fd[i]
        split_row = fd[lml_f[node_f] - lf]
        dist_row = None if spans_f else read_row(node_f_post, col_posts)
        for j in range(1, cols):
            node_g = lg + j - 1
            best = prev[j] + delete_cost
            candidate = row[j - 1] + ins_costs[node_g]
            if candidate < best:
                best = candidate
            if spans_f and lml_g[node_g] == lg:
                candidate = prev[j - 1] + rename(label_f, labels_g[node_g])
                if candidate < best:
                    best = candidate
                row[j] = best
                write(node_f_post, col_posts[j - 1], best)
            else:
                if dist_row is None:
                    dist_row = read_row(node_f_post, col_posts)
                candidate = split_row[lml_g[node_g] - lg] + dist_row[j - 1]
                if candidate < best:
                    best = candidate
                row[j] = best
        if cut is not None:
            check_row_cutoff(row, cols, rows - 1 - i, cut[0], cut[1], slack=cut[2])
        if row_deadline is not None:
            row_deadline.tick(cols)

    return (rows - 1) * (cols - 1)


def _region_py_unit(
    dec: _Frame,
    oth: _Frame,
    kf: int,
    kg: int,
    codes_dec: List[int],
    codes_oth: List[int],
    to_post_dec: List[int],
    to_post_oth: List[int],
    read_row: Callable[[int, List[int]], List[float]],
    write: Callable[[int, int, float], None],
    cut: Optional[Tuple[float, float, float]] = None,
    deadline=None,
) -> int:
    """Unit-cost specialization of :func:`_region_py`.

    Delete and insert costs are constant-folded to 1 (so the table borders
    are plain index counts) and the rename term is an integer code equality
    compare instead of a cost-model call.  Every intermediate value is an
    integer-valued float64, evaluated exactly, so the produced distances are
    bit-identical to the general kernels under the unit cost model.
    ``cut`` arms the per-row early abort exactly as in :func:`_region_py`.
    """
    lml_f, lml_g = dec.lml, oth.lml
    lf, lg = lml_f[kf], lml_g[kg]
    rows = kf - lf + 2
    cols = kg - lg + 2

    # Same region-granular deadline amortization as :func:`_region_py`.
    row_deadline = None
    if deadline is not None:
        deadline.tick((rows - 1) * (cols - 1))
        if cols >= 64:
            row_deadline = deadline

    col_posts = to_post_oth[lg : kg + 1]

    fd: List[List[float]] = [[0.0] * cols for _ in range(rows)]
    for i in range(1, rows):
        fd[i][0] = float(i)
    first_row = fd[0]
    for j in range(1, cols):
        first_row[j] = float(j)

    for i in range(1, rows):
        node_f = lf + i - 1
        spans_f = lml_f[node_f] == lf
        code_f = codes_dec[node_f]
        node_f_post = to_post_dec[node_f]
        prev = fd[i - 1]
        row = fd[i]
        split_row = fd[lml_f[node_f] - lf]
        dist_row = None if spans_f else read_row(node_f_post, col_posts)
        for j in range(1, cols):
            node_g = lg + j - 1
            best = prev[j] + 1.0
            candidate = row[j - 1] + 1.0
            if candidate < best:
                best = candidate
            if spans_f and lml_g[node_g] == lg:
                candidate = prev[j - 1] + (0.0 if code_f == codes_oth[node_g] else 1.0)
                if candidate < best:
                    best = candidate
                row[j] = best
                write(node_f_post, col_posts[j - 1], best)
            else:
                if dist_row is None:
                    dist_row = read_row(node_f_post, col_posts)
                candidate = split_row[lml_g[node_g] - lg] + dist_row[j - 1]
                if candidate < best:
                    best = candidate
                row[j] = best
        if cut is not None:
            check_row_cutoff(row, cols, rows - 1 - i, cut[0], cut[1], slack=cut[2])
        if row_deadline is not None:
            row_deadline.tick(cols)

    return (rows - 1) * (cols - 1)


# --------------------------------------------------------------------------- #
# Public single-path functions
# --------------------------------------------------------------------------- #
def spf_L(
    tree_f: Tree,
    tree_g: Tree,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
    workspace=None,
) -> float:
    """Tree edit distance via the iterative left-path single-path function.

    Computes ``d(F_v, G_w)`` (whole trees by default) by decomposing both
    trees along left paths — the strategy of Zhang-L — entirely with
    iterative keyroot tables: no recursion is involved, so arbitrarily deep
    trees are handled without touching the interpreter recursion limit.
    """
    context = SinglePathContext(
        tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy, workspace=workspace
    )
    distance = context.run(
        SIDE_F, LEFT, tree_f.root if v is None else v, tree_g.root if w is None else w
    )
    context.release()
    return distance


def spf_R(
    tree_f: Tree,
    tree_g: Tree,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
    workspace=None,
) -> float:
    """Tree edit distance via the iterative right-path single-path function.

    The mirror image of :func:`spf_L` (the strategy of Zhang-R), executed in
    reverse-postorder coordinates instead of on mirrored tree copies.
    """
    context = SinglePathContext(
        tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy, workspace=workspace
    )
    distance = context.run(
        SIDE_F, RIGHT, tree_f.root if v is None else v, tree_g.root if w is None else w
    )
    context.release()
    return distance


def spf_H(
    tree_f: Tree,
    tree_g: Tree,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
    workspace=None,
) -> float:
    """Tree edit distance via the iterative heavy-path single-path function.

    Computes ``d(F_v, G_w)`` by decomposing the left-hand tree along heavy
    paths — the strategy of Klein — entirely iteratively: the off-path
    subtree pairs are scheduled with an explicit stack and each spine runs
    the chain/grid dynamic program of Δ_A, so no recursion is involved and
    arbitrarily deep trees are handled without touching the interpreter
    recursion limit.
    """
    return spf_A(
        tree_f, tree_g, HEAVY, v=v, w=w, cost_model=cost_model,
        use_numpy=use_numpy, workspace=workspace,
    )


def spf_A(
    tree_f: Tree,
    tree_g: Tree,
    kind: str = HEAVY,
    v: Optional[int] = None,
    w: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    use_numpy: Optional[bool] = None,
    workspace=None,
) -> float:
    """Tree edit distance via the general inner-path single-path function.

    ``kind`` may be any path kind (``left``, ``right`` or ``heavy``): the
    chain/grid formulation does not depend on a keyroot coordinate system, so
    the same code executes all three.  For left/right paths this is the
    (slower, fully general) cross-check twin of :func:`spf_L` /
    :func:`spf_R`; for heavy paths it is the production implementation.
    """
    context = SinglePathContext(
        tree_f, tree_g, cost_model=cost_model, use_numpy=use_numpy, workspace=workspace
    )
    distance = context.run_inner(
        SIDE_F, kind, tree_f.root if v is None else v, tree_g.root if w is None else w
    )
    context.release()
    return distance
