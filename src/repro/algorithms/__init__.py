"""Tree edit distance algorithms: RTED, its competitors, and the GTED framework."""

from .base import (
    ENGINE_AUTO,
    ENGINE_NATIVE,
    ENGINE_RECURSIVE,
    ENGINE_SPF,
    ENGINES,
    BoundedResult,
    CutoffExceeded,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    resolve_engine,
)
from .simple import SimpleTED, simple_ted
from .zhang_shasha import ZhangShashaRightTED, ZhangShashaTED, zhang_shasha, zhang_shasha_distance
from .strategies import (
    ALL_FIXED_CHOICES,
    SIDE_F,
    SIDE_G,
    EncodedStrategy,
    HeavyFStrategy,
    HeavyGStrategy,
    HeavyLargerStrategy,
    LeftFStrategy,
    LeftGStrategy,
    PathChoice,
    PrecomputedStrategy,
    RightFStrategy,
    RightGStrategy,
    Strategy,
    fixed_strategy_for,
)
from .optimal_strategy import (
    OptimalStrategyResult,
    optimal_strategy,
    optimal_strategy_cost,
    optimal_strategy_objects,
)
from .forest_engine import DecompositionEngine
from .spf import SinglePathContext, spf_A, spf_H, spf_L, spf_R
from .workspace import LabelInterner, TedWorkspace, WorkspaceTED
from .batch_kernel import (
    CorpusPack,
    build_corpus_pack,
    kernel_available,
    kernel_chunk_entries,
    run_batch,
)
from .native import native_available, native_batch, native_provider, native_small_pair
from .gted import GTED, StrategyExecutor
from .rted import RTED, rted
from .klein import KleinTED
from .demaine import DemaineTED
from .edit_mapping import EditMapping, EditOperation, compute_edit_mapping, mapping_cost
from .registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    make_algorithm,
    register_algorithm,
)

__all__ = [
    "TEDAlgorithm",
    "TEDResult",
    "BoundedResult",
    "CutoffExceeded",
    "Stopwatch",
    "ENGINE_AUTO",
    "ENGINE_NATIVE",
    "ENGINE_RECURSIVE",
    "ENGINE_SPF",
    "ENGINES",
    "resolve_engine",
    "SimpleTED",
    "simple_ted",
    "ZhangShashaTED",
    "ZhangShashaRightTED",
    "zhang_shasha",
    "zhang_shasha_distance",
    "Strategy",
    "PathChoice",
    "PrecomputedStrategy",
    "EncodedStrategy",
    "LeftFStrategy",
    "RightFStrategy",
    "HeavyFStrategy",
    "LeftGStrategy",
    "RightGStrategy",
    "HeavyGStrategy",
    "HeavyLargerStrategy",
    "fixed_strategy_for",
    "ALL_FIXED_CHOICES",
    "SIDE_F",
    "SIDE_G",
    "OptimalStrategyResult",
    "optimal_strategy",
    "optimal_strategy_cost",
    "optimal_strategy_objects",
    "DecompositionEngine",
    "SinglePathContext",
    "spf_A",
    "spf_H",
    "spf_L",
    "spf_R",
    "LabelInterner",
    "TedWorkspace",
    "WorkspaceTED",
    "CorpusPack",
    "build_corpus_pack",
    "kernel_available",
    "kernel_chunk_entries",
    "run_batch",
    "native_available",
    "native_batch",
    "native_provider",
    "native_small_pair",
    "GTED",
    "StrategyExecutor",
    "RTED",
    "rted",
    "KleinTED",
    "DemaineTED",
    "EditMapping",
    "EditOperation",
    "compute_edit_mapping",
    "mapping_cost",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "make_algorithm",
    "register_algorithm",
]
