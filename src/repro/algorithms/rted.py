"""RTED — the robust tree edit distance algorithm (Section 6 of the paper).

RTED first computes the optimal LRH strategy for the two input trees with
Algorithm 2 (:mod:`repro.algorithms.optimal_strategy`, ``O(n^2)`` time and
space) and then runs GTED with that strategy.  Its number of relevant
subproblems is, by construction of the optimal strategy, at most the number
computed by any of the fixed-strategy competitors (Zhang-L/R, Klein-H,
Demaine-H).
"""

from __future__ import annotations

from typing import Optional

from ..costs import CostModel
from ..trees.tree import Tree
from .base import Stopwatch, TEDAlgorithm, TEDResult
from .forest_engine import DecompositionEngine
from .optimal_strategy import OptimalStrategyResult, optimal_strategy


class RTED(TEDAlgorithm):
    """Robust tree edit distance: optimal LRH strategy + GTED."""

    name = "RTED"

    def compute(
        self, tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None
    ) -> TEDResult:
        strategy_watch = Stopwatch()
        strategy_watch.start()
        strategy_result: OptimalStrategyResult = optimal_strategy(tree_f, tree_g)
        strategy_time = strategy_watch.elapsed()

        distance_watch = Stopwatch()
        distance_watch.start()
        engine = DecompositionEngine(
            tree_f, tree_g, strategy_result.strategy, cost_model=cost_model
        )
        distance = engine.distance()
        distance_time = distance_watch.elapsed()

        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=engine.subproblems,
            strategy_time=strategy_time,
            distance_time=distance_time,
            n_f=tree_f.n,
            n_g=tree_g.n,
            extra={
                "optimal_strategy_cost": strategy_result.cost,
            },
        )

    def compute_strategy(self, tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
        """Expose the strategy computation alone (used by Figure 10)."""
        return optimal_strategy(tree_f, tree_g)


def rted(tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None) -> float:
    """Functional shortcut returning only the RTED distance."""
    return RTED().distance(tree_f, tree_g, cost_model=cost_model)
