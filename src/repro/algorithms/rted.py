"""RTED — the robust tree edit distance algorithm (Section 6 of the paper).

RTED first computes the optimal LRH strategy for the two input trees with
Algorithm 2 (:mod:`repro.algorithms.optimal_strategy`, ``O(n^2)`` time and
space) and then runs GTED with that strategy.  Its number of relevant
subproblems is, by construction of the optimal strategy, at most the number
computed by any of the fixed-strategy competitors (Zhang-L/R, Klein-H,
Demaine-H).

Like :class:`~repro.algorithms.gted.GTED`, the distance phase can run on
either execution engine: the iterative ``spf`` executor (the default), which
evaluates every step of the optimal strategy — left, right and heavy — with
array-based single-path functions and never recurses, or the recursive
reference engine kept as a cross-check oracle.
"""

from __future__ import annotations

from typing import Optional

from ..costs import CostModel
from ..runtime import active_deadline, as_deadline, deadline_scope
from ..trees.tree import Tree
from .base import (
    ENGINE_AUTO,
    ENGINE_SPF,
    BoundedResult,
    Stopwatch,
    TEDAlgorithm,
    TEDResult,
    precheck_bounded,
    resolve_cost_model,
    resolve_engine,
)
from .gted import run_engine
from .optimal_strategy import OptimalStrategyResult, optimal_strategy


class RTED(TEDAlgorithm):
    """Robust tree edit distance: optimal LRH strategy + GTED.

    Parameters
    ----------
    engine:
        Execution engine for the distance phase: ``"spf"`` (iterative
        single-path executor, also the ``"auto"`` default) or ``"recursive"``
        (the reference decomposition engine, kept as a cross-check oracle).
    workspace:
        Optional :class:`~repro.algorithms.workspace.TedWorkspace` feeding
        the ``spf`` engine's contexts from cross-pair caches (batch usage);
        ignored by the recursive oracle and bypassed for non-matching cost
        models.
    """

    name = "RTED"

    def __init__(self, engine: str = ENGINE_AUTO, workspace=None) -> None:
        self.engine = resolve_engine(engine)
        self.workspace = workspace

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        with deadline_scope(as_deadline(deadline)):
            return self._compute(tree_f, tree_g, cost_model, cutoff)

    def _compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel],
        cutoff: Optional[float],
    ) -> TEDResult:
        engine = ENGINE_SPF if self.engine == ENGINE_AUTO else self.engine
        extra: dict = {"engine": engine}
        if cutoff is not None:
            # The size pre-check runs before Algorithm 2: a pair the bound
            # already settles skips the strategy computation entirely.
            watch = Stopwatch()
            watch.start()
            pre = precheck_bounded(
                tree_f, tree_g, resolve_cost_model(cost_model), cutoff, self.name,
                watch, extra,
            )
            if pre is not None:
                return pre
        strategy_watch = Stopwatch()
        strategy_watch.start()
        strategy_result: OptimalStrategyResult = optimal_strategy(tree_f, tree_g)
        strategy_time = strategy_watch.elapsed()

        ambient = active_deadline()
        if ambient is not None:
            # The strategy phase is O(n²) and uninstrumented; settle its
            # bill here so an already-blown budget never enters the
            # (potentially much larger) distance phase.
            ambient.check()

        distance_watch = Stopwatch()
        distance_watch.start()
        distance, subproblems, bound = run_engine(
            engine, tree_f, tree_g, strategy_result.strategy, cost_model, extra,
            workspace=self.workspace, cutoff=cutoff,
        )
        distance_time = distance_watch.elapsed()

        extra["optimal_strategy_cost"] = strategy_result.cost
        if bound is not None:
            return BoundedResult(
                lower_bound=bound[0],
                cutoff=cutoff,
                algorithm=self.name,
                aborted=bound[1],
                subproblems=subproblems,
                strategy_time=strategy_time,
                distance_time=distance_time,
                n_f=tree_f.n,
                n_g=tree_g.n,
                extra=extra,
            )
        return TEDResult(
            distance=distance,
            algorithm=self.name,
            subproblems=subproblems,
            strategy_time=strategy_time,
            distance_time=distance_time,
            n_f=tree_f.n,
            n_g=tree_g.n,
            extra=extra,
        )

    def compute_strategy(self, tree_f: Tree, tree_g: Tree) -> OptimalStrategyResult:
        """Expose the strategy computation alone (used by Figure 10)."""
        return optimal_strategy(tree_f, tree_g)


def rted(
    tree_f: Tree, tree_g: Tree, cost_model: Optional[CostModel] = None, engine: str = ENGINE_AUTO
) -> float:
    """Functional shortcut returning only the RTED distance."""
    return RTED(engine=engine).distance(tree_f, tree_g, cost_model=cost_model)
