"""Demaine et al.'s algorithm (``Demaine-H``): heavy paths in the larger tree.

Demaine, Mozes, Rossman and Weimann [ACM TALG 2009] decompose, at every
recursive step, the *larger* of the two subtrees along its heavy path.  In the
paper's framework this is the fixed LRH strategy mapping ``(F_v, G_w)`` to
``γ_H(F_v)`` when ``|F_v| ≥ |G_w|`` and to ``γ_H(G_w)`` otherwise.  The
resulting subproblem count is worst-case optimal, ``O(n^3)``, but the worst
case occurs frequently in practice — the behaviour RTED is designed to avoid.
"""

from __future__ import annotations

from typing import Optional

from ..costs import CostModel
from ..trees.tree import Tree
from .base import TEDAlgorithm, TEDResult
from .gted import GTED
from .strategies import HeavyLargerStrategy


class DemaineTED(TEDAlgorithm):
    """Demaine et al.'s algorithm expressed as GTED with a fixed strategy."""

    name = "Demaine-H"

    def __init__(self) -> None:
        self._gted = GTED(HeavyLargerStrategy(), name=self.name)

    def compute(
        self,
        tree_f: Tree,
        tree_g: Tree,
        cost_model: Optional[CostModel] = None,
        cutoff: Optional[float] = None,
        deadline=None,
    ) -> TEDResult:
        return self._gted.compute(
            tree_f, tree_g, cost_model=cost_model, cutoff=cutoff, deadline=deadline
        )
