"""XML ↔ tree adapter.

XML documents are the motivating data model of the paper (SwissProt and
TreeBank are XML collections).  This module converts XML into ordered labeled
trees and back.  It uses :mod:`xml.etree.ElementTree` from the standard
library for parsing and supports two common modelling choices:

* ``include_text=False`` (default): only element tags become nodes — the
  structural view used for structure-oriented similarity.
* ``include_text=True``: non-empty text content becomes an extra leaf child
  labeled with the text, and attributes become ``@name=value`` leaf children,
  which mirrors the encoding used by XML change-detection tools.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from ..exceptions import ParseError
from ..trees.node import Node
from ..trees.tree import Tree


def xml_to_node(
    xml_text: str,
    include_text: bool = False,
    include_attributes: bool = False,
    strip_namespaces: bool = True,
) -> Node:
    """Convert an XML document string into a :class:`~repro.trees.node.Node`."""
    try:
        element = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ParseError(f"invalid XML: {exc}") from exc
    return _element_to_node(element, include_text, include_attributes, strip_namespaces)


def xml_to_tree(
    xml_text: str,
    include_text: bool = False,
    include_attributes: bool = False,
    strip_namespaces: bool = True,
) -> Tree:
    """Convert an XML document string into an indexed :class:`Tree`."""
    return Tree(
        xml_to_node(
            xml_text,
            include_text=include_text,
            include_attributes=include_attributes,
            strip_namespaces=strip_namespaces,
        )
    )


def _strip_namespace(tag: str) -> str:
    if "}" in tag:
        return tag.rsplit("}", 1)[1]
    return tag


def _element_to_node(
    element: ET.Element,
    include_text: bool,
    include_attributes: bool,
    strip_namespaces: bool,
) -> Node:
    tag = _strip_namespace(element.tag) if strip_namespaces else element.tag
    node = Node(tag)
    if include_attributes:
        for name in sorted(element.attrib):
            node.add_child(Node(f"@{name}={element.attrib[name]}"))
    if include_text and element.text and element.text.strip():
        node.add_child(Node(element.text.strip()))
    for child in element:
        node.add_child(
            _element_to_node(child, include_text, include_attributes, strip_namespaces)
        )
        if include_text and child.tail and child.tail.strip():
            node.add_child(Node(child.tail.strip()))
    return node


def tree_to_xml(tree: Tree | Node) -> str:
    """Serialize a tree back to XML.

    Node labels become element tags; labels that are not valid XML names are
    wrapped in a ``<node label="...">`` element instead.  The conversion is a
    best-effort inverse of :func:`xml_to_tree` for the structural
    (``include_text=False``) view.
    """
    root = tree.to_node() if isinstance(tree, Tree) else tree
    element = _node_to_element(root)
    return ET.tostring(element, encoding="unicode")


def _is_valid_tag(label: str) -> bool:
    if not label:
        return False
    first = label[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(ch.isalnum() or ch in "._-" for ch in label)


def _node_to_element(node: Node) -> ET.Element:
    label = str(node.label)
    if _is_valid_tag(label):
        element = ET.Element(label)
    else:
        element = ET.Element("node", {"label": label})
    for child in node.children:
        element.append(_node_to_element(child))
    return element


def parse_xml_collection(documents: List[str], include_text: bool = False) -> List[Tree]:
    """Convert a list of XML documents into trees, skipping unparseable ones.

    Returns the trees of all well-formed documents; malformed documents are
    silently dropped (mirroring how bulk XML corpora are typically ingested).
    """
    trees: List[Tree] = []
    for document in documents:
        try:
            trees.append(xml_to_tree(document, include_text=include_text))
        except ParseError:
            continue
    return trees
