"""Bracket notation parser and serializer.

Bracket notation is the interchange format used by the reference RTED / APTED
implementations: a tree is written as ``{label{child_1}...{child_k}}``.  For
example ``{a{b}{c{d}}}`` denotes a root ``a`` with children ``b`` and ``c``,
where ``c`` has a single child ``d``.

Labels may contain any characters; literal ``{``, ``}`` and ``\\`` must be
escaped with a backslash.
"""

from __future__ import annotations

from typing import List, Tuple

from ..exceptions import ParseError
from ..trees.node import Node
from ..trees.tree import Tree

_ESCAPE = "\\"
_OPEN = "{"
_CLOSE = "}"


def escape_label(label: str) -> str:
    """Escape the characters that have structural meaning in bracket notation."""
    out = []
    for ch in label:
        if ch in (_OPEN, _CLOSE, _ESCAPE):
            out.append(_ESCAPE)
        out.append(ch)
    return "".join(out)


def unescape_label(label: str) -> str:
    """Inverse of :func:`escape_label`."""
    out = []
    i = 0
    while i < len(label):
        if label[i] == _ESCAPE and i + 1 < len(label):
            out.append(label[i + 1])
            i += 2
        else:
            out.append(label[i])
            i += 1
    return "".join(out)


def parse_bracket_node(text: str) -> Node:
    """Parse bracket notation into a :class:`~repro.trees.node.Node`.

    Raises
    ------
    ParseError
        If the text is not a single well-formed bracket-notation tree.
    """
    text = text.strip()
    if not text:
        raise ParseError("empty input", position=0)
    node, end = _parse_subtree(text, 0)
    if text[end:].strip():
        raise ParseError(f"trailing characters after tree: {text[end:]!r}", position=end)
    return node


def parse_bracket(text: str) -> Tree:
    """Parse bracket notation into an indexed :class:`~repro.trees.tree.Tree`."""
    return Tree(parse_bracket_node(text))


def _parse_label(text: str, pos: int) -> Tuple[str, int]:
    """Consume a (possibly escaped) label starting at ``pos``."""
    label_chars: List[str] = []
    while pos < len(text):
        ch = text[pos]
        if ch == _ESCAPE and pos + 1 < len(text):
            label_chars.append(text[pos + 1])
            pos += 2
            continue
        if ch in (_OPEN, _CLOSE):
            break
        label_chars.append(ch)
        pos += 1
    return "".join(label_chars), pos


def _parse_subtree(text: str, pos: int) -> Tuple[Node, int]:
    """Parse one ``{label{child}...}`` subtree iteratively.

    A stack of currently open nodes replaces recursion so that arbitrarily
    deep trees (e.g. branch/chain shapes) parse at the default interpreter
    recursion limit.
    """
    if pos >= len(text) or text[pos] != _OPEN:
        raise ParseError(f"expected '{{' at position {pos}", position=pos)
    open_nodes: List[Node] = []
    while True:
        if text[pos] == _OPEN:
            label, pos = _parse_label(text, pos + 1)
            node = Node(label)
            if open_nodes:
                open_nodes[-1].add_child(node)
            open_nodes.append(node)
        elif text[pos] == _CLOSE:
            closed = open_nodes.pop()
            pos += 1
            if not open_nodes:
                return closed, pos
        else:
            # Only '{' (next child) or '}' (close) may follow a closed child.
            raise ParseError(f"expected '}}' at position {pos}", position=pos)
        if pos >= len(text):
            raise ParseError(f"expected '}}' at position {pos}", position=pos)


def to_bracket(tree: Tree | Node) -> str:
    """Serialize a tree (or node) to bracket notation.

    Round-trips with :func:`parse_bracket` for string labels:
    ``parse_bracket(to_bracket(t)).structurally_equal(t)`` holds.
    """
    if isinstance(tree, Tree):
        root = tree.to_node()
    else:
        root = tree

    pieces: List[str] = []

    def emit(node: Node) -> None:
        # Iterative emission keeps very deep trees (e.g. the left-branch shape)
        # from exhausting the recursion limit.
        stack: List[Tuple[Node, int]] = [(node, 0)]
        while stack:
            current, child_pos = stack.pop()
            if child_pos == 0:
                pieces.append(_OPEN + escape_label(str(current.label)))
            if child_pos < len(current.children):
                stack.append((current, child_pos + 1))
                stack.append((current.children[child_pos], 0))
            else:
                pieces.append(_CLOSE)

    emit(root)
    return "".join(pieces)


def parse_bracket_collection(text: str) -> List[Tree]:
    """Parse a newline-separated collection of bracket-notation trees.

    Blank lines and lines starting with ``#`` are ignored, which makes the
    format convenient for small on-disk datasets.
    """
    trees: List[Tree] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            trees.append(parse_bracket(line))
        except ParseError as exc:
            raise ParseError(f"line {line_number}: {exc}", position=exc.position) from exc
    return trees


def dump_bracket_collection(trees: List[Tree]) -> str:
    """Serialize a collection of trees, one bracket-notation tree per line."""
    return "\n".join(to_bracket(tree) for tree in trees) + "\n"
