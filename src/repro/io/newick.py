"""Newick parser and serializer for phylogenetic trees.

The TreeFam dataset used in the paper's experiments stores phylogenies in the
Newick format, e.g. ``((A,B)internal,C)root;``.  This module implements the
subset of Newick needed to work with such trees: labels, nested groups, and
optional ``:length`` branch annotations (lengths are parsed and preserved as
part of the label only when ``keep_lengths=True``; by default they are
discarded because the tree edit distance operates on labels).
"""

from __future__ import annotations

from typing import List, Tuple

from ..exceptions import ParseError
from ..trees.node import Node
from ..trees.tree import Tree

_STRUCTURAL = "(),;:"


def parse_newick_node(text: str, keep_lengths: bool = False) -> Node:
    """Parse a Newick string into a :class:`~repro.trees.node.Node`."""
    text = text.strip()
    if not text:
        raise ParseError("empty Newick input", position=0)
    if text.endswith(";"):
        text = text[:-1]
    node, pos = _parse_clade(text, 0, keep_lengths)
    if text[pos:].strip():
        raise ParseError(f"trailing characters after tree: {text[pos:]!r}", position=pos)
    return node


def parse_newick(text: str, keep_lengths: bool = False) -> Tree:
    """Parse a Newick string into an indexed :class:`~repro.trees.tree.Tree`."""
    return Tree(parse_newick_node(text, keep_lengths=keep_lengths))


def _parse_clade(text: str, pos: int, keep_lengths: bool) -> Tuple[Node, int]:
    children: List[Node] = []
    if pos < len(text) and text[pos] == "(":
        pos += 1
        while True:
            child, pos = _parse_clade(text, pos, keep_lengths)
            children.append(child)
            if pos >= len(text):
                raise ParseError("unterminated group: expected ')' or ','", position=pos)
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == ")":
                pos += 1
                break
            raise ParseError(f"unexpected character {text[pos]!r}", position=pos)
    label, pos = _parse_label(text, pos)
    length, pos = _parse_length(text, pos)
    if keep_lengths and length is not None:
        label = f"{label}:{length}" if label else f":{length}"
    node = Node(label if label else "", children)
    return node, pos


def _parse_label(text: str, pos: int) -> Tuple[str, int]:
    if pos < len(text) and text[pos] in ("'", '"'):
        quote = text[pos]
        pos += 1
        chars: List[str] = []
        while pos < len(text) and text[pos] != quote:
            chars.append(text[pos])
            pos += 1
        if pos >= len(text):
            raise ParseError("unterminated quoted label", position=pos)
        return "".join(chars), pos + 1
    chars = []
    while pos < len(text) and text[pos] not in _STRUCTURAL:
        chars.append(text[pos])
        pos += 1
    return "".join(chars).strip(), pos


def _parse_length(text: str, pos: int) -> Tuple[str | None, int]:
    if pos < len(text) and text[pos] == ":":
        pos += 1
        chars: List[str] = []
        while pos < len(text) and text[pos] not in "(),;":
            chars.append(text[pos])
            pos += 1
        return "".join(chars).strip(), pos
    return None, pos


def to_newick(tree: Tree | Node, with_semicolon: bool = True) -> str:
    """Serialize a tree to Newick notation (labels only, no branch lengths)."""
    root = tree.to_node() if isinstance(tree, Tree) else tree

    pieces: List[str] = []

    def emit(node: Node) -> None:
        stack: List[Tuple[Node, int]] = [(node, 0)]
        while stack:
            current, child_pos = stack.pop()
            if child_pos == 0 and current.children:
                pieces.append("(")
            if child_pos < len(current.children):
                if child_pos > 0:
                    pieces.append(",")
                stack.append((current, child_pos + 1))
                stack.append((current.children[child_pos], 0))
            else:
                if current.children:
                    pieces.append(")")
                pieces.append(_quote_if_needed(str(current.label)))

    emit(root)
    if with_semicolon:
        pieces.append(";")
    return "".join(pieces)


def _quote_if_needed(label: str) -> str:
    if any(ch in _STRUCTURAL or ch.isspace() for ch in label):
        return "'" + label.replace("'", "''") + "'"
    return label
