"""JSON import/export for trees.

Two encodings are supported:

* **nested** — ``{"label": ..., "children": [...]}`` objects, readable and
  convenient for configuration files and small examples;
* **arrays** — ``{"labels": [...], "parents": [...]}`` postorder-parallel
  arrays, compact and loss-free for large trees.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..exceptions import ParseError
from ..trees.builders import tree_from_parent_array
from ..trees.node import Node
from ..trees.tree import Tree


def tree_to_nested_dict(tree: Tree | Node) -> Dict[str, Any]:
    """Convert a tree into the nested ``{"label", "children"}`` encoding."""
    root = tree.to_node() if isinstance(tree, Tree) else tree

    def convert(node: Node) -> Dict[str, Any]:
        return {
            "label": node.label,
            "children": [convert(child) for child in node.children],
        }

    return convert(root)


def nested_dict_to_tree(data: Dict[str, Any]) -> Tree:
    """Inverse of :func:`tree_to_nested_dict`."""

    def convert(entry: Dict[str, Any]) -> Node:
        if not isinstance(entry, dict) or "label" not in entry:
            raise ParseError("nested JSON tree entries must be objects with a 'label' key")
        children = entry.get("children", [])
        if not isinstance(children, list):
            raise ParseError("'children' must be a list")
        return Node(entry["label"], [convert(child) for child in children])

    return Tree(convert(data))


def tree_to_arrays_dict(tree: Tree) -> Dict[str, List[Any]]:
    """Convert a tree into the parallel-arrays encoding (postorder)."""
    return {
        "labels": list(tree.labels),
        "parents": list(tree.parents),
    }


def arrays_dict_to_tree(data: Dict[str, Any]) -> Tree:
    """Inverse of :func:`tree_to_arrays_dict`."""
    if "labels" not in data or "parents" not in data:
        raise ParseError("arrays JSON tree must contain 'labels' and 'parents'")
    return tree_from_parent_array(data["labels"], data["parents"])


def dumps(tree: Tree, encoding: str = "nested", **json_kwargs: Any) -> str:
    """Serialize a tree to a JSON string using the requested encoding."""
    if encoding == "nested":
        payload: Dict[str, Any] = tree_to_nested_dict(tree)
    elif encoding == "arrays":
        payload = tree_to_arrays_dict(tree)
    else:
        raise ValueError(f"unknown encoding {encoding!r}; expected 'nested' or 'arrays'")
    payload = {"encoding": encoding, "tree": payload}
    return json.dumps(payload, **json_kwargs)


def loads(text: str) -> Tree:
    """Parse a JSON string produced by :func:`dumps` (either encoding)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "tree" not in payload:
        raise ParseError("expected a JSON object with a 'tree' key")
    encoding = payload.get("encoding", "nested")
    if encoding == "nested":
        return nested_dict_to_tree(payload["tree"])
    if encoding == "arrays":
        return arrays_dict_to_tree(payload["tree"])
    raise ParseError(f"unknown encoding {encoding!r}")
