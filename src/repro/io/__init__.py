"""Serialization: bracket notation, Newick, XML, and JSON adapters."""

from .bracket import (
    dump_bracket_collection,
    parse_bracket,
    parse_bracket_collection,
    parse_bracket_node,
    to_bracket,
)
from .newick import parse_newick, parse_newick_node, to_newick
from .xml import parse_xml_collection, tree_to_xml, xml_to_node, xml_to_tree
from .json_io import (
    arrays_dict_to_tree,
    dumps,
    loads,
    nested_dict_to_tree,
    tree_to_arrays_dict,
    tree_to_nested_dict,
)

__all__ = [
    "parse_bracket",
    "parse_bracket_node",
    "parse_bracket_collection",
    "to_bracket",
    "dump_bracket_collection",
    "parse_newick",
    "parse_newick_node",
    "to_newick",
    "xml_to_tree",
    "xml_to_node",
    "tree_to_xml",
    "parse_xml_collection",
    "dumps",
    "loads",
    "tree_to_nested_dict",
    "nested_dict_to_tree",
    "tree_to_arrays_dict",
    "arrays_dict_to_tree",
]
