"""Query-centric retrieval: top-k and range queries over a tree corpus.

The all-pairs join answers "which pairs of corpus trees are close"; this
module answers the question a retrieval service actually sees — "which
corpus trees are close to *this* query" — sublinearly where possible:

* :meth:`QueryEngine.range_query` (``TED(query, tree) < τ``) is one more
  composition of the planner/filter/refiner pipeline
  (:mod:`repro.join.pipeline`): a candidate source (the metric index when
  the cost model passes the gate, the asymmetric inverted index otherwise),
  the sound filter cascade evaluated query-profile-vs-corpus-profile, and
  the τ-bounded batched refiner.
* :meth:`QueryEngine.knn` has no fixed τ, so it cannot be a static plan:
  it runs **best-first** over the vantage-point tree
  (:mod:`repro.join.metric_index`), maintaining the k best results as a
  shrinking radius ``r`` (the current k-th best distance).  Every subtree
  is enqueued with its triangle-inequality lower bound; a popped bound
  that exceeds ``r`` ends the search.  The radius feeds straight into the
  τ-bounded refiner of PR 5: leaf buckets are filtered by the cascade at
  ``τ_eff`` just above ``r`` and verified with ``cutoff`` just above ``r``,
  so non-competitive candidates abort as soon as ``d > r`` is proven.

Tie-safety: results are ordered lexicographically by ``(distance, index)``
and every prune is strict — a subtree is discarded only when its lower
bound *exceeds* the current radius, cascade/refiner cutoffs sit one ULP
above ``r`` (``math.nextafter``) — so ``knn`` returns exactly the first
``k`` entries of the brute-force ranking, ties included (the property
suite asserts set equality against brute force).

Cost-model soundness: triangle-inequality pruning engages only when
:func:`~repro.join.metric_index.metric_eligible` holds; otherwise the
engine falls back to a linear scan whose only pruning comes from the
orientation-independent operation-count bounds of the cascade (sound for
any model with a positive cost floor, including non-symmetric ones).
Distances are always computed ``query → corpus tree``, so non-symmetric
models return the correctly oriented result set.

Live corpora: the engine serves a **mutating** corpus exactly.  It pins a
:class:`~repro.join.corpus.CorpusSnapshot` (and builds its VP-tree over the
pin); per query it reads the membership drift — parent trees added since
the pin form a *deferred-insert side list* that is refined exactly and
merged by ``(distance, index)``, snapshot results whose trees the parent
removed are dropped during translation to current indices — so kNN/range
results are bit-identical to a fresh engine over the current trees.  Once
the drift exceeds ``staleness_budget`` (a fraction of the pinned size) the
snapshot is refreshed and the index lazily rebuilt.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union
from weakref import WeakKeyDictionary

from ..algorithms.base import TEDAlgorithm, resolve_cost_model
from ..algorithms.workspace import TedWorkspace
from ..costs import CostModel
from ..exceptions import ComputeTimeoutError, QueryError
from ..runtime import active_deadline, as_deadline, deadline_scope
from ..trees.tree import Tree
from .batch import DEFAULT_CHUNK_SIZE, _resolve_algorithm, _supports_cutoff
from .cascade import (
    CascadeContext,
    JoinStats,
    PRUNE,
    default_cascade,
    operations_threshold,
    run_cascade,
)
from .corpus import CorpusSnapshot, TreeCorpus
from .metric_index import DEFAULT_LEAF_SIZE, VPTree, metric_eligible
from .pipeline import BatchRefiner, CandidateSet, Planner, execute_plan

_INF = float("inf")

#: Default staleness budget: a pinned snapshot is refreshed (and the
#: VP-tree lazily rebuilt) once the membership drift — trees added plus
#: trees removed since the pin — exceeds this fraction of the pinned
#: corpus size.  Below the budget, queries stay exact anyway (side-list
#: evaluation + removed-result filtering); the budget only caps how much
#: unindexed side work a query tolerates before paying for a rebuild.
DEFAULT_STALENESS_BUDGET = 0.25

#: Warm-start probe size for best-first kNN: this many size-nearest corpus
#: trees are verified up front to seed a finite radius, so the traversal's
#: vantage evaluations start τ-bounded and near-root subtrees prune
#: immediately instead of after a cold (infinite-radius) descent.
KNN_PROBE = 32

#: Frontier expansion width for best-first kNN: up to this many VP-tree
#: nodes are popped per round and their vantages evaluated in ONE batched
#: refiner call, so vantage distances go through the vectorized small-pair
#: kernel instead of one Python ``compute()`` per node.  The price is a
#: slightly stale radius within a round (a sequential search might have
#: pruned a few of them); results are identical either way.
VANTAGE_BATCH = 8


def _merge_report(stats: "QueryStats", report) -> None:
    """Fold a refiner :class:`ExecutionReport` into the query stats."""
    if report is None:
        return
    stats.retried_chunks += report.retried_chunks
    stats.failed_workers += report.failed_workers
    if report.degraded_to is not None:
        stats.degraded_to = report.degraded_to
    stats.poisoned_pairs += len(report.poisoned_pairs)


def _just_above(value: float) -> float:
    """The smallest float strictly greater than ``value``.

    Used for cascade thresholds and refiner cutoffs during a shrinking-radius
    search: pruning at ``nextafter(r)`` discards only candidates with
    ``d > r``, so distance ties with the current k-th best — which can still
    win on index order — survive to exact comparison.
    """
    return math.nextafter(value, _INF)


@dataclass
class QueryStats(JoinStats):
    """Streaming measurements of one query (a :class:`JoinStats` superset).

    The inherited fields keep their join meanings with "pairs" read as
    "corpus trees" (``pairs_total`` = corpus size, ``exact_computed`` =
    exact TED evaluations including metric-index vantage evaluations —
    the *examined* count a sublinear index is judged by).
    """

    corpus_size: int = 0
    metric_index_used: bool = False
    """Whether the VP-tree drove candidate generation (``False`` under a
    non-metric cost model — the soundness gate — or with the index off)."""

    vp_nodes_visited: int = 0
    vp_pruned_subtrees: int = 0
    """Corpus trees inside subtrees discarded by triangle-inequality bounds
    (never examined individually)."""

    partial: bool = False
    """``True`` when a deadline expired mid-query: the matches are the best
    results found before the budget ran out, explicitly marked — never a
    silently truncated full answer."""

    epoch: int = 0
    """The live corpus's epoch when the query ran."""

    snapshot_epoch: int = 0
    """The epoch of the snapshot the search actually traversed; a gap to
    ``epoch`` means the engine served within its staleness budget (side
    list + removed-result filtering kept the answer exact)."""

    side_candidates: int = 0
    """Deferred-insert side list size (trees added since the pin)."""

    side_evaluated: int = 0
    """Side-list trees submitted to the exact refiner this query."""

    def as_dict(self) -> Dict[str, object]:
        data = super().as_dict()
        data.update(
            {
                "corpus_size": self.corpus_size,
                "metric_index_used": self.metric_index_used,
                "vp_nodes_visited": self.vp_nodes_visited,
                "vp_pruned_subtrees": self.vp_pruned_subtrees,
                "partial": self.partial,
                "epoch": self.epoch,
                "snapshot_epoch": self.snapshot_epoch,
                "side_candidates": self.side_candidates,
                "side_evaluated": self.side_evaluated,
            }
        )
        return data


@dataclass
class QueryResult:
    """Outcome of one :class:`QueryEngine` query."""

    kind: str
    """``"knn"`` or ``"range"``."""

    parameter: float
    """``k`` for kNN, ``τ`` for range queries."""

    matches: List[Tuple[int, float]] = field(default_factory=list)
    """``(corpus index, exact distance)`` sorted by ``(distance, index)``."""

    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def indices(self) -> List[int]:
        """The matched corpus indices (distances stripped, same order)."""
        return [index for index, _ in self.matches]


class _TopK:
    """The k best ``(distance, index)`` results, tie-broken by index.

    A fixed-size max-heap: :meth:`worst` is the current k-th best entry —
    the search radius — and :meth:`offer` replaces it whenever a new result
    precedes it lexicographically.  Offers are idempotent per index (a
    corpus tree examined both by the warm-start probe and by the traversal
    must not occupy two heap slots and push out a distinct result).
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[Tuple[float, int]] = []  # (-distance, -index)
        self._members: set = set()

    def worst(self) -> Tuple[float, int]:
        """The current k-th best ``(distance, index)``; infinite until full."""
        if len(self._heap) < self.k:
            return (_INF, -1)
        neg_d, neg_j = self._heap[0]
        return (-neg_d, -neg_j)

    def offer(self, index: int, distance: float) -> None:
        if index in self._members:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, -index))
            self._members.add(index)
            return
        worst_d, worst_j = self.worst()
        if (distance, index) < (worst_d, worst_j):
            _, evicted_neg_j = heapq.heapreplace(self._heap, (-distance, -index))
            self._members.discard(-evicted_neg_j)
            self._members.add(index)

    def items(self) -> List[Tuple[int, float]]:
        """The results as ``(index, distance)`` sorted by ``(distance, index)``."""
        return sorted(
            ((-neg_j, -neg_d) for neg_d, neg_j in self._heap),
            key=lambda entry: (entry[1], entry[0]),
        )


class _MetricRangeSource:
    """Candidate source backed by a VP-tree traversal (fixed radius τ).

    Emits leaf-bucket members as ordinary candidate pairs (they continue
    through the cascade and the τ-bounded refiner) and vantage points —
    whose exact distances the traversal computed anyway — as prerefined
    entries the executor consumes directly.
    """

    def __init__(self, engine: "QueryEngine", vp: VPTree, query: Tree, stats: QueryStats) -> None:
        self.engine = engine
        self.vp = vp
        self.query = query
        self.stats = stats

    def candidates(self, ctx: CascadeContext) -> CandidateSet:
        tau = ctx.threshold
        stats = self.stats
        vp = self.vp
        pairs: List[Tuple[int, int]] = []
        prerefined: List[Tuple[int, int, float]] = []
        pruned = 0
        stack: List[Tuple[float, int]] = []
        if vp.root >= 0:
            stack.append((0.0, vp.root))
        while stack:
            bound, node_id = stack.pop()
            node = vp.nodes[node_id]
            if bound >= tau:
                # Strict match semantics (TED < τ): a subtree whose lower
                # bound reaches τ cannot contain a match.
                pruned += node.count
                stats.vp_pruned_subtrees += node.count
                continue
            stats.vp_nodes_visited += 1
            if node.bucket is not None:
                pairs.extend((0, j) for j in node.bucket)
                continue
            # d(q, v) ≥ τ + mu proves the whole inside ball non-matching, so
            # the vantage evaluation itself is bounded at τ + mu.
            distance = self.engine._vantage_distance(
                vp.corpus, self.query, node.vantage, tau + node.mu, stats,
                count_exact=False,
            )
            if distance is None:
                pruned += 1 + (vp.nodes[node.inside].count if node.inside >= 0 else 0)
                stats.vp_pruned_subtrees += (
                    vp.nodes[node.inside].count if node.inside >= 0 else 0
                )
                if node.outside >= 0:
                    stack.append((bound, node.outside))
                continue
            prerefined.append((0, node.vantage, distance))
            if node.inside >= 0:
                stack.append((max(bound, distance - node.mu), node.inside))
            if node.outside >= 0:
                stack.append((max(bound, node.mu - distance), node.outside))
        pairs.sort()
        return CandidateSet(pairs=pairs, prerefined=prerefined, pruned=pruned)


class QueryEngine:
    """One-vs-corpus retrieval over a (possibly live) :class:`TreeCorpus`.

    Construction is cheap; expensive artifacts — corpus profiles, the label
    interner, the batch-kernel pack and the vantage-point tree — are built
    lazily on first use and amortized across queries, so a long-lived
    engine answers a query stream the way the ROADMAP's service item needs.
    ``use_metric_index`` requests VP-tree candidate generation; it engages
    only when the cost model passes the metric gate
    (:func:`metric_eligible`), falling back to a linear scan (with the
    sound cascade bounds still pruning) otherwise.  Pass a prebuilt
    ``metric_index`` to share one VP-tree across engines (it must match the
    corpus *and* its current epoch — a stale index is refused outright).

    **Live corpora.**  The engine pins a :class:`CorpusSnapshot` of its
    corpus and searches the pin; mutations between queries never invalidate
    results.  Per query the drift since the pin is consulted: trees added
    after it (the deferred-insert side list) are refined *exactly* and
    merged into the ranking, and snapshot results whose trees were removed
    are dropped while translating to current indices — so kNN/range stay
    bit-identical to a fresh engine over the current trees.  Once the drift
    exceeds ``staleness_budget`` (a fraction of the pinned size, default
    :data:`DEFAULT_STALENESS_BUDGET`) the pin is refreshed and the VP-tree
    lazily rebuilt.

    Execution knobs (``algorithm``, ``engine``, ``workers``, ``chunk_size``,
    ``workspace``, ``batch_kernel``, ``policy``) mirror the batch join and
    apply to every refinement batch, including the PR 7 supervised
    multiprocessing fan-out when ``workers > 1``.
    """

    def __init__(
        self,
        corpus,
        algorithm: Union[str, TEDAlgorithm] = "rted",
        cost_model: Optional[CostModel] = None,
        engine: Optional[str] = None,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        use_cascade: bool = True,
        use_metric_index: bool = True,
        metric_index: Optional[VPTree] = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        seed: int = 0,
        workspace=True,
        batch_kernel: bool = True,
        policy=None,
        staleness_budget: float = DEFAULT_STALENESS_BUDGET,
    ) -> None:
        from .batch import as_corpus

        self.corpus = as_corpus(corpus)
        self.algorithm = algorithm
        self.engine = engine
        self.cost_model = resolve_cost_model(cost_model)
        self.workers = workers
        self.chunk_size = chunk_size
        self.use_cascade = use_cascade
        self.use_metric_index = use_metric_index
        self.leaf_size = leaf_size
        self.seed = seed
        self.batch_kernel = batch_kernel
        self.policy = policy
        if not isinstance(staleness_budget, (int, float)) or staleness_budget < 0:
            raise QueryError(
                f"staleness_budget must be a non-negative fraction, got {staleness_budget!r}"
            )
        self.staleness_budget = float(staleness_budget)
        if workspace is True:
            self._ws: Optional[TedWorkspace] = TedWorkspace(
                self.cost_model, interner=self.corpus.interner()
            )
        elif workspace:
            workspace.require(self.cost_model)
            self._ws = workspace
        else:
            self._ws = None
        self._algo = _resolve_algorithm(algorithm, engine, self._ws)
        self._bounded_ok = _supports_cutoff(self._algo)
        self._planner = Planner(self.cost_model)
        self._snap: Optional[TreeCorpus] = None
        if metric_index is not None:
            target = metric_index.corpus
            pins_corpus = target is self.corpus or (
                isinstance(target, CorpusSnapshot) and target.parent is self.corpus
            )
            if not pins_corpus:
                raise QueryError("metric_index was built over a different corpus")
            built_epoch = getattr(target, "epoch", 0)
            current_epoch = getattr(self.corpus, "epoch", 0)
            if built_epoch != current_epoch:
                raise QueryError(
                    f"metric_index is stale: built at epoch {built_epoch} but the "
                    f"corpus is at epoch {current_epoch} — rebuild it (or let the "
                    "engine build its own)"
                )
            # Pin the epoch the index was built at, so its bucket/vantage ids
            # keep meaning the same trees whatever the corpus does next.
            self._snap = target if isinstance(target, CorpusSnapshot) else (
                self.corpus.snapshot()
            )
        self._vp = metric_index
        self._vp_unavailable = False

    # ------------------------------------------------------------------ #
    # Snapshot pinning
    # ------------------------------------------------------------------ #
    def _pinned(self) -> TreeCorpus:
        """The snapshot this query should search (refreshing past budget).

        Within the staleness budget the old pin (and its VP-tree) keeps
        serving — exactness is preserved by the caller's side-list merge and
        removed-result filtering.  Past it, a fresh snapshot replaces the
        pin and the VP-tree is dropped for lazy rebuild.
        """
        corpus = self.corpus
        if isinstance(corpus, CorpusSnapshot):
            # The engine's corpus is itself a pin: nothing ever drifts.
            self._snap = corpus
            return corpus
        snap = self._snap
        if snap is None:
            snap = corpus.snapshot()
            self._snap = snap
            return snap
        if not snap.is_current():
            added, removed = snap.delta()
            budget = max(1, int(self.staleness_budget * max(1, len(snap))))
            if len(added) + len(removed) > budget:
                self._snap = corpus.snapshot()
                self._vp = None
                self._vp_unavailable = False
        return self._snap

    @property
    def snapshot_epoch(self) -> Optional[int]:
        """The epoch of the currently pinned snapshot (``None`` before the
        first query); the service surfaces this next to the live epoch so
        operators can see engine staleness."""
        snap = self._snap
        return snap.epoch if snap is not None else None

    def _delta(self, snap: TreeCorpus) -> Tuple[List[int], List[int]]:
        """Membership drift of ``snap`` vs the live corpus (empty when the
        engine's corpus *is* the snapshot)."""
        if snap is self.corpus or not isinstance(snap, CorpusSnapshot):
            return [], []
        return snap.delta()

    def _translate(self, items: List[Tuple[int, float]], snap) -> List[Tuple[int, float]]:
        """Snapshot-dense results → current-dense, dropping removed trees."""
        if snap is self.corpus:
            return list(items)
        out: List[Tuple[int, float]] = []
        for j, d in items:
            current = snap.to_parent(j)
            if current is not None:
                out.append((current, d))
        return out

    def _evaluate_side(
        self,
        refiner: BatchRefiner,
        side: List[int],
        cutoff: Optional[float],
        stats: QueryStats,
    ) -> List[Tuple[int, float]]:
        """Exact distances to the deferred-insert side list.

        ``side`` holds *current* corpus indices (trees added after the
        pin); ``refiner`` must be bound to the live corpus.  Results at or
        above ``cutoff`` are proven non-competitive (bounded runs) and
        dropped; everything returned is an exact ``(index, distance)``.
        """
        if cutoff is not None and not math.isfinite(cutoff):
            cutoff = None
        results: List[Tuple[int, float]] = []

        def on_chunk(chunk_results: List[Tuple]) -> None:
            for entry in chunk_results:
                _, j, value, subproblems = entry[:4]
                stats.exact_computed += 1
                stats.total_subproblems += subproblems
                if len(entry) > 4 and entry[4]:
                    stats.aborted_early += 1
                if cutoff is not None and value >= cutoff:
                    # A bounded result (τ-abort or final check): the true
                    # distance is proven ≥ cutoff, i.e. non-competitive.
                    continue
                results.append((j, value))

        report = refiner.refine([(0, j) for j in side], cutoff, on_chunk)
        _merge_report(stats, report)
        stats.side_evaluated += len(side)
        return results

    # ------------------------------------------------------------------ #
    def metric_index(self) -> Optional[VPTree]:
        """The engine's VP-tree, built lazily; ``None`` when ineligible.

        Ineligible means: the index is disabled, the pinned snapshot is
        empty, or the cost model fails the metric gate — in which case
        every query soundly falls back to a linear scan.  The tree is built
        over the *pinned snapshot*, so its node ids stay meaningful across
        corpus mutations; a snapshot refresh drops it for lazy rebuild.
        """
        if not self.use_metric_index:
            return None
        snap = self._pinned()
        if self._vp is None and not self._vp_unavailable:
            if len(snap) == 0 or not metric_eligible(self.cost_model):
                self._vp_unavailable = True
            else:
                self._vp = VPTree.build(
                    snap,
                    algorithm=self.algorithm,
                    cost_model=self.cost_model,
                    engine=self.engine,
                    leaf_size=self.leaf_size,
                    seed=self.seed,
                    workers=self.workers,
                    chunk_size=self.chunk_size,
                    workspace=self._ws if self._ws is not None else False,
                    batch_kernel=self.batch_kernel,
                )
        return self._vp

    def _query_corpus(self, query: Tree) -> TreeCorpus:
        # Sharing the interner keeps the query tree's label codes compatible
        # with the corpus's cached batch-kernel pack, so refinement batches
        # reuse the big pack instead of rebuilding it per query.
        return TreeCorpus([query], interner=self.corpus.interner())

    def _refiner(self, query_corpus: TreeCorpus, corpus: TreeCorpus) -> BatchRefiner:
        return BatchRefiner(
            query_corpus,
            corpus,
            algorithm=self.algorithm,
            cost_model=self.cost_model,
            engine=self.engine,
            workers=self.workers,
            chunk_size=self.chunk_size,
            workspace=self._ws if self._ws is not None else False,
            batch_kernel=self.batch_kernel,
            policy=self.policy,
        )

    def _query_filters(self) -> list:
        if not self.use_cascade:
            return []
        # Accept stages report upper-bound mapping costs, not exact
        # distances — fine for a join's match set, wrong for ranking — so
        # queries always verify exactly.
        return [stage for stage in default_cascade() if not stage.is_accept_stage]

    def _vantage_distance(
        self,
        corpus: TreeCorpus,
        query: Tree,
        index: int,
        cutoff: Optional[float],
        stats: QueryStats,
        count_exact: bool = True,
    ) -> Optional[float]:
        """Exact ``d(query, corpus[index])``, or ``None`` if ``≥ cutoff``.

        ``corpus`` is the collection ``index`` refers to — the pinned
        snapshot a VP-tree was built over, never the drifting live corpus.
        ``count_exact=False`` skips the ``exact_computed`` increment for
        exact results whose consumer counts them itself (the range source
        routes them through the executor as prerefined entries).
        """
        tree = corpus.trees[index]
        if cutoff is None or not math.isfinite(cutoff) or not self._bounded_ok:
            result = self._algo.compute(query, tree, cost_model=self.cost_model)
        else:
            result = self._algo.compute(
                query, tree, cost_model=self.cost_model, cutoff=cutoff
            )
        if getattr(result, "bounded", False):
            stats.exact_computed += 1
            if result.aborted:
                stats.aborted_early += 1
            return None
        if count_exact:
            stats.exact_computed += 1
        return result.distance

    # ------------------------------------------------------------------ #
    def knn(self, query: Tree, k: int, deadline=None) -> QueryResult:
        """The ``k`` nearest corpus trees, exactly (ties broken by index).

        Equivalent to sorting the brute-force distance list by
        ``(distance, index)`` and taking the first ``k`` — the metric index
        and the shrinking-cutoff refinement only change *how much work* that
        takes, never the result (asserted by the property suite).

        ``deadline`` (seconds or a :class:`~repro.runtime.Deadline`) bounds
        the search.  On expiry the engine returns the best results examined
        so far with ``stats.partial = True`` — an explicit marker, never a
        silently truncated exact answer.  An ambient deadline (installed by
        an enclosing service request) applies when the argument is omitted.

        Against a mutated corpus the pinned snapshot is searched for
        ``k + |removed|`` results (so removals can never push a true
        answer out of reach), removed trees are filtered during index
        translation, and the deferred-insert side list is refined exactly
        with a cutoff one ULP above the provisional k-th best — the merged
        ranking equals the brute-force ranking over the *current* trees.
        """
        if k < 0:
            raise QueryError(f"k must be non-negative, got {k}")
        started = time.perf_counter()
        stats = QueryStats()
        snap = self._pinned()
        added, removed = self._delta(snap)
        stats.corpus_size = stats.pairs_total = len(self.corpus)
        stats.epoch = getattr(self.corpus, "epoch", 0)
        stats.snapshot_epoch = snap.epoch
        stats.side_candidates = len(added)
        dl = as_deadline(deadline)
        if dl is None:
            dl = active_deadline()
        top = _TopK(k + len(removed))
        side: List[Tuple[int, float]] = []
        if k > 0 and (len(snap) > 0 or added):
            try:
                with deadline_scope(dl):
                    query_corpus = self._query_corpus(query)
                    profile = query_corpus.profile(0)
                    if len(snap) > 0:
                        refiner = self._refiner(query_corpus, snap)
                        ctx = CascadeContext(
                            threshold=_INF, ops_threshold=_INF, cost_model=self.cost_model
                        )
                        filters = self._query_filters()
                        vp = self.metric_index()
                        if vp is not None:
                            stats.metric_index_used = True
                            self._knn_best_first(
                                vp, query, profile, ctx, filters, refiner, top, stats, snap
                            )
                        else:
                            self._knn_scan(
                                query, profile, ctx, filters, refiner, top, stats, snap
                            )
                    if added:
                        # Provisional k-th best among snapshot survivors caps
                        # the side-list refinement (one ULP above, so ties
                        # stay exact and win or lose on index order).
                        base = self._translate(top.items(), snap)
                        cutoff = (
                            _just_above(base[k - 1][1]) if len(base) >= k else None
                        )
                        side = self._evaluate_side(
                            self._refiner(query_corpus, self.corpus),
                            added,
                            cutoff,
                            stats,
                        )
            except ComputeTimeoutError:
                # The _TopK accumulator already holds every result verified
                # before the budget ran out — return it, explicitly marked.
                stats.partial = True
        merged = self._translate(top.items(), snap) + side
        merged.sort(key=lambda entry: (entry[1], entry[0]))
        matches = merged[:k]
        stats.matches = stats.exact_matched = len(matches)
        stats.total_time = time.perf_counter() - started
        return QueryResult(kind="knn", parameter=float(k), matches=matches, stats=stats)

    def _shrinking_ctx(self, ctx: CascadeContext, radius: float) -> None:
        """Point the cascade context just above the current radius."""
        if radius == _INF:
            ctx.threshold = ctx.ops_threshold = _INF
        else:
            ctx.threshold = _just_above(radius)
            ctx.ops_threshold = operations_threshold(ctx.threshold, self.cost_model)

    def _refine_candidates(
        self,
        top: _TopK,
        candidates: List[int],
        profile,
        ctx: CascadeContext,
        filters: list,
        refiner: BatchRefiner,
        stats: QueryStats,
        corpus: TreeCorpus,
    ) -> None:
        """Filter a candidate block at the current radius, then refine it.

        ``corpus`` is the pinned snapshot the candidate indices refer to.
        The refiner cutoff sits one ULP above the radius, so candidates tied
        with the k-th best still come back exact (and win or lose on index
        order), while everything strictly farther aborts as a bounded run.
        """
        radius, _ = top.worst()
        if filters:
            self._shrinking_ctx(ctx, radius)
            survivors = [
                j
                for j in candidates
                if run_cascade(filters, profile, corpus.profile(j), ctx, stats)
                != PRUNE
            ]
        else:
            survivors = list(candidates)
        if not survivors:
            return
        cutoff = None if radius == _INF else _just_above(radius)

        def on_chunk(chunk_results: List[Tuple]) -> None:
            for entry in chunk_results:
                _, j, value, subproblems = entry[:4]
                stats.exact_computed += 1
                stats.total_subproblems += subproblems
                if len(entry) > 4 and entry[4]:
                    stats.aborted_early += 1
                # Bounded entries carry value ≥ cutoff > current radius, so
                # offer() rejects them without a special case; exact entries
                # compete normally even as the radius keeps shrinking.
                top.offer(j, value)

        report = refiner.refine([(0, j) for j in survivors], cutoff, on_chunk)
        _merge_report(stats, report)

    def _size_order(self, corpus: TreeCorpus, query_size: int) -> List[int]:
        """Corpus indices ordered by size distance to the query (ties by index)."""
        trees = corpus.trees
        return sorted(
            range(len(trees)),
            key=lambda j: (abs(trees[j].n - query_size), j),
        )

    def _knn_best_first(
        self, vp: VPTree, query, profile, ctx, filters, refiner, top: _TopK, stats,
        corpus: TreeCorpus,
    ) -> None:
        """Best-first VP-tree search with a shrinking radius.

        The frontier is a min-heap of ``(lower bound, node)``; popping a
        bound strictly above the radius proves every remaining subtree
        non-competitive (bounds only grow down the heap, the radius only
        shrinks), which ends the search.
        """
        if vp.root < 0:
            return
        # Warm start: verify a small block of size-nearest trees to make the
        # radius finite before any vantage evaluation (trees re-encountered
        # by the traversal are no-ops — offers are idempotent per index).
        probe = self._size_order(corpus, profile.size)[:KNN_PROBE]
        self._refine_candidates(top, probe, profile, ctx, filters, refiner, stats, corpus)
        frontier: List[Tuple[float, int]] = [(0.0, vp.root)]
        while frontier:
            radius, _ = top.worst()
            batch: List[Tuple[float, object]] = []
            bucket_members: List[int] = []
            while frontier and len(batch) < VANTAGE_BATCH:
                bound, node_id = heapq.heappop(frontier)
                if bound > radius:
                    remaining = vp.nodes[node_id].count + sum(
                        vp.nodes[nid].count for _, nid in frontier
                    )
                    stats.vp_pruned_subtrees += remaining
                    frontier = []
                    break
                node = vp.nodes[node_id]
                stats.vp_nodes_visited += 1
                if node.bucket is not None:
                    bucket_members.extend(node.bucket)
                else:
                    batch.append((bound, node))
            if bucket_members:
                self._refine_candidates(
                    top, bucket_members, profile, ctx, filters, refiner, stats, corpus
                )
            if not batch:
                continue
            # One batched (kernel-vectorized) evaluation for every vantage in
            # the round, bounded at the loosest per-node abort threshold: an
            # abort then proves d(q, v) > r + mu for *its* node too, which
            # prunes the inside ball (d ≥ d(q,v) − mu > r) and rules the
            # vantage itself out as a result.
            cutoff = (
                None
                if radius == _INF
                else _just_above(radius + max(node.mu for _, node in batch))
            )
            distances: Dict[int, Optional[float]] = {}

            def on_chunk(chunk_results: List[Tuple]) -> None:
                for entry in chunk_results:
                    _, j, value, subproblems = entry[:4]
                    stats.exact_computed += 1
                    stats.total_subproblems += subproblems
                    if len(entry) > 4 and entry[4]:
                        stats.aborted_early += 1
                        distances[j] = None
                    else:
                        distances[j] = value

            report = refiner.refine(
                [(0, node.vantage) for _, node in batch], cutoff, on_chunk
            )
            _merge_report(stats, report)
            for bound, node in batch:
                if node.vantage not in distances:
                    # The refiner dropped the pair (poisoned under fault
                    # injection): no distance proof either way, so keep both
                    # children alive at the parent bound.
                    if node.inside >= 0:
                        heapq.heappush(frontier, (bound, node.inside))
                    if node.outside >= 0:
                        heapq.heappush(frontier, (bound, node.outside))
                    continue
                distance = distances[node.vantage]
                if distance is None:
                    if node.inside >= 0:
                        stats.vp_pruned_subtrees += vp.nodes[node.inside].count
                    if node.outside >= 0:
                        heapq.heappush(frontier, (bound, node.outside))
                    continue
                top.offer(node.vantage, distance)
                if node.inside >= 0:
                    heapq.heappush(
                        frontier, (max(bound, distance - node.mu), node.inside)
                    )
                if node.outside >= 0:
                    heapq.heappush(
                        frontier, (max(bound, node.mu - distance), node.outside)
                    )

    def _knn_scan(
        self, query, profile, ctx, filters, refiner, top: _TopK, stats,
        corpus: TreeCorpus,
    ) -> None:
        """Linear-scan kNN (the sound fallback for non-metric cost models).

        Examines near-sized trees first so the radius shrinks early, then
        lets the per-block cascade re-filter and the shrinking refiner
        cutoff discard the rest cheaply.  Every corpus tree is considered —
        only the cascade's orientation-independent operation-count bounds
        prune, never the triangle inequality.
        """
        order = self._size_order(corpus, profile.size)
        for start in range(0, len(order), self.chunk_size):
            block = order[start : start + self.chunk_size]
            self._refine_candidates(
                top, block, profile, ctx, filters, refiner, stats, corpus
            )

    # ------------------------------------------------------------------ #
    def range_query(self, query: Tree, threshold: float, deadline=None) -> QueryResult:
        """Every corpus tree with ``TED(query, tree) < threshold``, exactly.

        One planner composition (:meth:`Planner.plan_range`): metric-index
        traversal (when eligible) or the asymmetric inverted index as the
        candidate source, the cascade at τ, the τ-bounded batched refiner.

        ``deadline`` bounds the query like :meth:`knn`: on expiry the
        matches streamed before the budget ran out come back with
        ``stats.partial = True`` (the match list is then a *subset* of the
        full answer, never a wrong superset — refinement only ever appends
        verified matches).

        Against a mutated corpus the plan runs over the pinned snapshot,
        removed trees are filtered during index translation, and trees
        added since the pin are refined exactly at τ and merged — the
        result equals a fresh query over the current trees.
        """
        started = time.perf_counter()
        stats = QueryStats()
        snap = self._pinned()
        added, _removed = self._delta(snap)
        stats.corpus_size = stats.pairs_total = len(self.corpus)
        stats.epoch = getattr(self.corpus, "epoch", 0)
        stats.snapshot_epoch = snap.epoch
        stats.side_candidates = len(added)
        dl = as_deadline(deadline)
        if dl is None:
            dl = active_deadline()
        triples: List[Tuple[int, int, float]] = []
        side: List[Tuple[int, float]] = []
        try:
            with deadline_scope(dl):
                query_corpus = self._query_corpus(query)
                refiner = self._refiner(query_corpus, snap)
                source = None
                vp = self.metric_index() if threshold > 0 else None
                if vp is not None:
                    stats.metric_index_used = True
                    source = _MetricRangeSource(self, vp, query, stats)
                plan = self._planner.plan_range(
                    snap,
                    query_corpus,
                    threshold,
                    refiner,
                    use_cascade=self.use_cascade,
                    source=source,
                )
                # The sink keeps already-verified matches reachable if the
                # deadline aborts the plan mid-refinement.
                execute_plan(plan, stats, started=started, sink=triples)
                if added and threshold > 0:
                    # Strict τ semantics carry over: refine at cutoff=τ and
                    # keep only exact results below it.
                    side = self._evaluate_side(
                        self._refiner(query_corpus, self.corpus),
                        added,
                        float(threshold),
                        stats,
                    )
        except ComputeTimeoutError:
            stats.partial = True
        matches = self._translate(
            [(j, distance) for _, j, distance in triples], snap
        )
        matches.extend(side)
        matches.sort(key=lambda entry: (entry[1], entry[0]))
        stats.matches = len(matches)
        stats.total_time = time.perf_counter() - started
        return QueryResult(
            kind="range", parameter=float(threshold), matches=matches, stats=stats
        )


# --------------------------------------------------------------------------- #
# Engine reuse for the functional API
# --------------------------------------------------------------------------- #
_ENGINE_CACHE: "WeakKeyDictionary[TreeCorpus, Dict[tuple, QueryEngine]]" = (
    WeakKeyDictionary()
)


def query_engine(corpus: TreeCorpus, **kwargs) -> QueryEngine:
    """A (cached) :class:`QueryEngine` for ``corpus`` with these settings.

    Keyed weakly by corpus identity plus the engine settings, so repeated
    :func:`repro.api.knn` / :func:`repro.api.range_query` calls against one
    :class:`TreeCorpus` reuse the engine — and with it the interner, pack
    and lazily built metric index — instead of rebuilding per call.
    """
    key = tuple(sorted(kwargs.items()))
    per_corpus = _ENGINE_CACHE.setdefault(corpus, {})
    engine = per_corpus.get(key)
    if engine is None:
        engine = QueryEngine(corpus, **kwargs)
        per_corpus[key] = engine
    return engine
