"""Supervised execution of chunked batch work with a degradation ladder.

The multiprocessing fan-out of :func:`repro.join.batch.batch_distances` used
to be a bare ``Pool.imap_unordered`` loop: one segfaulting worker (the
runtime-compiled C backend is a real crash surface), one OOM kill, or one
wedged process aborted or hung the entire batch.  This module replaces it
with a supervisor that guarantees an **exact result at every rung**:

1. detect dead workers (``BrokenProcessPool`` — a ``ProcessPoolExecutor``
   notices worker death immediately, unlike ``multiprocessing.Pool`` which
   silently loses the task) and hung chunks (a stall deadline: with
   ``chunk_timeout`` set, the pool is torn down whenever no chunk completes
   for that long);
2. retry failed chunks with capped exponential backoff, resubmitting only
   the work that was lost;
3. walk an explicit **degradation ladder** when a rung keeps failing
   without making progress::

       shm          mp workers + zero-copy shared-memory corpus pack
       local-pack   mp workers, batch kernel, per-worker pack rebuild
       no-kernel    mp workers, per-pair scalar verification
       serial       in-process fallback, pair-at-a-time

   Every rung computes bit-identical result tuples (the test suite asserts
   this), so degradation trades throughput, never correctness;
4. isolate *poisoned* work: a chunk that exhausts its retry budget is re-run
   serially in the parent, pair by pair — a pair that still fails is
   recorded in :attr:`ExecutionReport.poisoned_pairs` instead of sinking the
   batch (strict mode turns that into a
   :class:`~repro.exceptions.BatchExecutionError`).

Worker-side exceptions never cross the process boundary raw: the task
wrapper (``batch._supervised_chunk``) stringifies them, so an unpicklable
exception cannot wedge the pool — only crashes and hangs surface as pool
events, and both are supervised.

Every recovery path is exercised deterministically through
:mod:`repro.join.faults` (``RTED_FAULT_INJECT``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..exceptions import BatchExecutionError, ChunkFailure, ComputeTimeoutError
from ..runtime import env_float, env_int

#: Ladder rung names, fastest first.  ``batch_distances`` assembles the
#: subset that applies to a given batch (e.g. no ``shm`` rung when the pack
#: could not be exported); ``serial`` is always the implicit last resort.
RUNG_SHM = "shm"
RUNG_LOCAL_PACK = "local-pack"
RUNG_NO_KERNEL = "no-kernel"
RUNG_SERIAL = "serial"

#: Poll interval for the completion wait loop (also bounds how stale the
#: stall detector can be).
_POLL_SECONDS = 0.1


@dataclass
class ExecutionPolicy:
    """Retry / timeout / degradation policy of the supervised executor."""

    max_chunk_retries: int = 3
    """Failed attempts a chunk may accumulate before it is pulled from the
    worker pool and handed to the serial fallback."""

    chunk_timeout: Optional[float] = None
    """Stall deadline in seconds: if no chunk completes for this long while
    work is in flight, the pool is presumed hung and torn down (the affected
    chunks are retried).  ``None`` disables hang detection."""

    max_rung_failures: int = 2
    """Consecutive zero-progress pool failures tolerated on one ladder rung
    before degrading to the next; any completed chunk resets the count."""

    backoff_base: float = 0.05
    """First retry delay (seconds); doubles per consecutive failure."""

    backoff_cap: float = 1.0
    """Upper bound on the exponential backoff delay."""

    strict: bool = False
    """Raise :class:`BatchExecutionError` if any pair remains unverifiable
    even at the bottom of the ladder, instead of reporting it poisoned."""

    @classmethod
    def default(cls) -> "ExecutionPolicy":
        """Default policy with ``RTED_CHUNK_TIMEOUT`` / ``RTED_CHUNK_RETRIES``
        environment overrides applied.

        Both are parsed with warn-and-fallback semantics
        (:mod:`repro.runtime`): a malformed value like
        ``RTED_CHUNK_TIMEOUT=abc`` emits a :class:`RuntimeWarning` and keeps
        the built-in default instead of raising.
        """
        policy = cls()
        timeout = env_float("RTED_CHUNK_TIMEOUT", positive=True)
        if timeout is not None:
            policy.chunk_timeout = timeout
        retries = env_int("RTED_CHUNK_RETRIES", minimum=0)
        if retries is not None:
            policy.max_chunk_retries = retries
        return policy


@dataclass(frozen=True)
class PoisonedPair:
    """A pair that failed on every ladder rung, including per-pair serial."""

    i: int
    j: int
    error: str


@dataclass
class ExecutionReport:
    """What the supervisor had to do to complete one batch.

    ``batch_distances(..., exec_report=report)`` fills a caller-provided
    instance; :func:`repro.join.batch.batch_similarity_join` surfaces the
    scalar fields through :class:`~repro.join.cascade.JoinStats`.
    """

    rungs_used: List[str] = field(default_factory=list)
    """Ladder rungs that executed at least one chunk, in order of use."""

    retried_chunks: int = 0
    """Chunk re-submissions (attempts beyond each chunk's first)."""

    failed_workers: int = 0
    """Worker-pool failure events recovered from: crashes
    (``BrokenProcessPool``), hang teardowns, failed pool creation."""

    degraded_to: Optional[str] = None
    """The deepest rung used when more than one was needed, else ``None``."""

    serial_chunks: int = 0
    """Chunks that ended up on the in-process serial fallback."""

    poisoned_pairs: List[PoisonedPair] = field(default_factory=list)
    """Pairs skipped after failing even the per-pair serial re-run."""

    chunk_failures: List[ChunkFailure] = field(default_factory=list)
    """Failure histories of chunks that needed the serial fallback."""


@dataclass
class _ChunkState:
    index: int
    pairs: List[Tuple[int, int]]
    attempts: int = 0
    done: bool = False
    serial_only: bool = False
    failures: List[str] = field(default_factory=list)


def _hard_shutdown(executor) -> None:
    """Best-effort teardown of a (possibly hung or broken) executor.

    ``ProcessPoolExecutor`` exposes no public kill switch, and
    ``shutdown(cancel_futures=True)`` leaves *running* (hung) workers
    alive — so terminate the worker processes directly first.  Touching
    ``_processes`` is unsupported API; every step is individually guarded
    and a failure only means slower teardown, never a wrong result.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    deadline = time.monotonic() + 2.0
    for process in processes:
        try:
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(1.0)
        except Exception:
            pass


def _charge_failure(
    state: _ChunkState,
    reason: str,
    policy: ExecutionPolicy,
    report: ExecutionReport,
) -> None:
    """Record one failed attempt against a chunk (parks it when exhausted)."""
    state.attempts += 1
    state.failures.append(reason)
    report.retried_chunks += 1
    if state.attempts > policy.max_chunk_retries:
        state.serial_only = True


def _drain(
    executor,
    todo: List[_ChunkState],
    workers: int,
    task: Callable,
    on_chunk: Callable[[int, List[Tuple]], None],
    policy: ExecutionPolicy,
    report: ExecutionReport,
    deadline=None,
) -> Tuple[Optional[str], int]:
    """Run ``todo`` chunks on ``executor`` until done or the pool fails.

    Returns ``(failure_reason, completed_count)`` — ``reason`` is ``None``
    when every chunk either completed or was parked for the serial fallback.
    In-chunk errors (the task returned ``("err", ...)``) are retried on the
    same healthy pool; only pool-level events (crash / hang / submit
    failure) abort the drain.

    Submissions are windowed to a few chunks per worker rather than queued
    all at once: a broken pool takes every pending future down with it, so
    a small window means one crash charges a retry attempt to a handful of
    in-flight chunks instead of the entire remaining batch (the chunks
    still queued here are resubmitted free of charge).

    An expired ``deadline`` (:class:`repro.runtime.Deadline`) — checked at
    the same cadence as the stall detector — tears the pool down through the
    hang-teardown path and raises
    :class:`~repro.exceptions.ComputeTimeoutError`.  Any other interruption
    (``KeyboardInterrupt`` included) also hard-kills the workers before
    propagating, so an aborted fan-out never leaves orphan processes behind.
    """
    import concurrent.futures as cf

    completed = 0
    futures = {}
    queue = list(todo)
    window = max(1, workers) * 2

    def _submit_pending() -> Optional[str]:
        while queue and len(futures) < window:
            state = queue.pop(0)
            try:
                futures[
                    executor.submit(task, state.index, state.attempts, state.pairs)
                ] = state
            except Exception as exc:
                queue.insert(0, state)
                return f"submit failed: {type(exc).__name__}: {exc}"
        return None

    def _fail(reason: str) -> Tuple[str, int]:
        # Only the chunks actually riding the broken pool are charged an
        # attempt; queued chunks just go back to the rung loop.
        for state in futures.values():
            if not state.done:
                _charge_failure(state, reason, policy, report)
        _hard_shutdown(executor)
        return reason, completed

    try:
        reason = _submit_pending()
        if reason is not None:
            return _fail(reason)

        last_progress = time.monotonic()
        poll = _POLL_SECONDS
        if policy.chunk_timeout is not None:
            poll = min(poll, max(0.01, policy.chunk_timeout / 4.0))
        while futures:
            done_set, _ = cf.wait(
                set(futures), timeout=poll, return_when=cf.FIRST_COMPLETED
            )
            if deadline is not None and deadline.expired():
                # Reuse the stall-teardown path: kill the pool, then raise —
                # the budget is blown, so no rung retry can help.
                _fail("compute deadline exceeded")
                raise ComputeTimeoutError(
                    "compute deadline exceeded during batch execution"
                )
            if not done_set:
                stalled = (
                    policy.chunk_timeout is not None
                    and time.monotonic() - last_progress > policy.chunk_timeout
                )
                if stalled:
                    in_flight = sorted(state.index for state in futures.values())
                    return _fail(
                        f"chunk timeout: no completion within "
                        f"{policy.chunk_timeout:g}s (chunks {in_flight} in flight)"
                    )
                continue
            last_progress = time.monotonic()
            # Harvest every finished future before acting on a pool failure
            # so completed work is never thrown away with the broken pool.
            pool_failure: Optional[str] = None
            for future in done_set:
                state = futures.pop(future)
                try:
                    status, _chunk_index, payload = future.result()
                except Exception as exc:  # BrokenProcessPool and friends
                    pool_failure = f"worker pool broke: {type(exc).__name__}: {exc}"
                    _charge_failure(state, pool_failure, policy, report)
                    continue
                if status == "ok":
                    state.done = True
                    completed += 1
                    on_chunk(state.index, payload)
                    continue
                # In-chunk error, reported as data: retry on the live pool.
                _charge_failure(state, payload, policy, report)
                if not state.serial_only:
                    queue.append(state)
            if pool_failure is not None:
                for state in futures.values():
                    if not state.done:
                        _charge_failure(state, pool_failure, policy, report)
                _hard_shutdown(executor)
                return pool_failure, completed
            reason = _submit_pending()
            if reason is not None:
                return _fail(reason)
    except ComputeTimeoutError:
        raise  # pool already torn down above
    except BaseException:
        # KeyboardInterrupt, cancellation, or an unexpected bug: never
        # leave worker processes running behind an abandoned drain.
        _hard_shutdown(executor)
        raise
    executor.shutdown(wait=True)
    return None, completed


def _run_rung(
    rung: str,
    states: List[_ChunkState],
    workers: int,
    executor_factory: Callable[[str, int], object],
    task: Callable,
    on_chunk: Callable[[int, List[Tuple]], None],
    policy: ExecutionPolicy,
    report: ExecutionReport,
    deadline=None,
) -> str:
    """Drive one ladder rung to completion or abandonment.

    Returns ``"completed"`` (every chunk done or parked for serial) or
    ``"degrade"`` (the rung failed ``max_rung_failures + 1`` consecutive
    times without completing a single chunk).
    """
    if rung not in report.rungs_used:
        report.rungs_used.append(rung)
    rung_failures = 0
    while True:
        todo = [s for s in states if not s.done and not s.serial_only]
        if not todo:
            return "completed"
        n_workers = max(1, min(workers, len(todo)))
        try:
            executor = executor_factory(rung, n_workers)
        except Exception as exc:
            # Pool creation failing is a rung-wide event (no chunk was ever
            # in flight): count it against the rung, not any chunk.
            reason: Optional[str] = (
                f"pool creation failed: {type(exc).__name__}: {exc}"
            )
            completed = 0
        else:
            reason, completed = _drain(
                executor, todo, n_workers, task, on_chunk, policy, report,
                deadline=deadline,
            )
        if reason is None:
            continue  # loop re-checks: remaining chunks are serial_only
        report.failed_workers += 1
        if completed:
            rung_failures = 0
        rung_failures += 1
        if rung_failures > policy.max_rung_failures:
            return "degrade"
        delay = min(
            policy.backoff_cap, policy.backoff_base * 2.0 ** (rung_failures - 1)
        )
        if delay > 0:
            time.sleep(delay)


def _run_serial_chunk(
    state: _ChunkState,
    serial_pair: Callable[[int, int], Tuple],
    on_chunk: Callable[[int, List[Tuple]], None],
    report: ExecutionReport,
) -> None:
    """Bottom of the ladder: re-run one chunk pair by pair, in process.

    A pair that still fails here is recorded as poisoned — one malformed
    pair can no longer sink the batch.
    """
    chunk_results: List[Tuple] = []
    poisoned_before = len(report.poisoned_pairs)
    for i, j in state.pairs:
        try:
            chunk_results.append(serial_pair(i, j))
        except ComputeTimeoutError:
            # A blown compute budget is a batch-level event, not a poisoned
            # pair — let it propagate to the caller.
            raise
        except Exception as exc:
            report.poisoned_pairs.append(
                PoisonedPair(int(i), int(j), f"{type(exc).__name__}: {exc}")
            )
    state.done = True
    newly_poisoned = report.poisoned_pairs[poisoned_before:]
    if state.failures or newly_poisoned:
        errors = state.failures or [pair.error for pair in newly_poisoned]
        report.chunk_failures.append(
            ChunkFailure(state.index, state.attempts + 1, errors)
        )
    on_chunk(state.index, chunk_results)


def run_supervised(
    chunks: Sequence[Sequence[Tuple[int, int]]],
    workers: int,
    rungs: Sequence[str],
    executor_factory: Callable[[str, int], object],
    task: Callable,
    serial_pair: Callable[[int, int], Tuple],
    on_chunk: Callable[[int, List[Tuple]], None],
    policy: ExecutionPolicy,
    report: ExecutionReport,
    deadline=None,
) -> None:
    """Execute every chunk exactly once, surviving partial failure.

    Parameters
    ----------
    chunks:
        The work items (lists of index pairs), one result callback each.
    workers:
        Worker-process budget per pool.
    rungs:
        Ladder rungs to walk, fastest first (``RUNG_SERIAL`` is always the
        implicit last resort, listed or not).
    executor_factory:
        ``(rung, n_workers) -> ProcessPoolExecutor`` configured for that
        rung (initializer arguments differ per rung).
    task:
        Picklable ``(chunk_index, attempt, pairs) -> ("ok"|"err", index,
        payload)`` callable run in workers; it must catch its own exceptions
        (returning ``"err"``) so only crashes and hangs become pool events.
    serial_pair:
        In-process single-pair fallback; exceptions poison just that pair.
    on_chunk:
        Called exactly once per chunk with its result tuples, in completion
        order (a chunk with poisoned pairs reports the surviving tuples).
    policy, report:
        Retry/timeout/degradation knobs and the output telemetry.

    Raises
    ------
    BatchExecutionError
        Only in ``policy.strict`` mode, when poisoned pairs remain.
    ComputeTimeoutError
        When ``deadline`` (:class:`repro.runtime.Deadline`) expires; the
        worker pool is hard-killed first, so no orphan processes survive.
    """
    states = [_ChunkState(index, list(chunk)) for index, chunk in enumerate(chunks)]
    mp_rungs = [rung for rung in rungs if rung != RUNG_SERIAL]
    for rung in mp_rungs:
        if deadline is not None:
            deadline.check()
        todo = [s for s in states if not s.done and not s.serial_only]
        if not todo:
            break
        outcome = _run_rung(
            rung, states, workers, executor_factory, task, on_chunk, policy,
            report, deadline=deadline,
        )
        if outcome != "degrade":
            break
    remaining = [s for s in states if not s.done]
    if remaining:
        if RUNG_SERIAL not in report.rungs_used:
            report.rungs_used.append(RUNG_SERIAL)
        report.serial_chunks += len(remaining)
        for state in remaining:
            _run_serial_chunk(state, serial_pair, on_chunk, report)
    if len(report.rungs_used) > 1:
        report.degraded_to = report.rungs_used[-1]
    if policy.strict and report.poisoned_pairs:
        sample = ", ".join(
            f"({pair.i}, {pair.j}): {pair.error}"
            for pair in report.poisoned_pairs[:3]
        )
        raise BatchExecutionError(
            f"{len(report.poisoned_pairs)} pair(s) failed on every "
            f"degradation rung (strict mode): {sample}"
        )
