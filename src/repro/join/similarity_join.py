"""Tree similarity joins (the Table 1 experiment and beyond).

A *similarity join* matches the pairs of trees whose edit distance is below a
threshold ``τ``.  The paper's Table 1 performs a self join over a small set of
heterogeneous trees to demonstrate that RTED's advantage grows when the
shapes of the joined trees vary; real applications join large collections of
XML documents or phylogenies.

This module provides:

* :func:`similarity_self_join` / :func:`similarity_join` — the join itself,
  with any algorithm from the registry and an optional lower-bound filter that
  skips exact computations for pairs whose cheap bound already exceeds ``τ``;
* :class:`JoinResult` — matched pairs plus the measurements reported in
  Table 1 (wall-clock time, total number of relevant subproblems).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..algorithms.base import TEDAlgorithm, resolve_cost_model
from ..algorithms.registry import make_algorithm
from ..bounds import combined_lower_bound, cheap_lower_bound
from ..costs import CostModel
from ..trees.tree import Tree
from .cascade import operations_threshold


@dataclass
class JoinResult:
    """Outcome of a similarity join."""

    algorithm: str
    threshold: float
    matches: List[Tuple[int, int, float]] = field(default_factory=list)
    """Matched pairs as ``(index_a, index_b, distance)`` triples."""

    pairs_total: int = 0
    pairs_computed: int = 0
    pairs_filtered: int = 0
    total_subproblems: int = 0
    total_time: float = 0.0

    @property
    def filter_rate(self) -> float:
        """Fraction of candidate pairs eliminated by the lower-bound filter."""
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_filtered / self.pairs_total


def _resolve_algorithm(algorithm: "str | TEDAlgorithm") -> TEDAlgorithm:
    if isinstance(algorithm, TEDAlgorithm):
        return algorithm
    return make_algorithm(algorithm)


def similarity_self_join(
    trees: Sequence[Tree],
    threshold: float,
    algorithm: "str | TEDAlgorithm" = "rted",
    cost_model: Optional[CostModel] = None,
    use_lower_bound_filter: bool = False,
    cheap_filter_only: bool = True,
) -> JoinResult:
    """Self join: match all pairs ``i < j`` with ``TED(trees[i], trees[j]) < threshold``."""
    pairs = list(itertools.combinations(range(len(trees)), 2))
    return _run_join(
        [(i, j, trees[i], trees[j]) for i, j in pairs],
        threshold,
        algorithm,
        cost_model,
        use_lower_bound_filter,
        cheap_filter_only,
    )


def similarity_join(
    collection_a: Sequence[Tree],
    collection_b: Sequence[Tree],
    threshold: float,
    algorithm: "str | TEDAlgorithm" = "rted",
    cost_model: Optional[CostModel] = None,
    use_lower_bound_filter: bool = False,
    cheap_filter_only: bool = True,
) -> JoinResult:
    """Join two collections: match pairs with distance below ``threshold``."""
    pairs = [
        (i, j, tree_a, tree_b)
        for i, tree_a in enumerate(collection_a)
        for j, tree_b in enumerate(collection_b)
    ]
    return _run_join(
        pairs, threshold, algorithm, cost_model, use_lower_bound_filter, cheap_filter_only
    )


def _run_join(
    pairs: List[Tuple[int, int, Tree, Tree]],
    threshold: float,
    algorithm: "str | TEDAlgorithm",
    cost_model: Optional[CostModel],
    use_lower_bound_filter: bool,
    cheap_filter_only: bool,
) -> JoinResult:
    algo = _resolve_algorithm(algorithm)
    result = JoinResult(algorithm=algo.name, threshold=threshold, pairs_total=len(pairs))

    # The lower bounds count edit *operations* (unit costs), so the threshold
    # must be converted into operation-count space before comparing: a model
    # with operations cheaper than 1 would otherwise prune true matches.
    # Models without a provable positive per-operation minimum disable the
    # filter entirely (ops_threshold = inf) — see the soundness rule in
    # DESIGN.md.
    ops_threshold = operations_threshold(threshold, resolve_cost_model(cost_model))

    start = time.perf_counter()
    for index_a, index_b, tree_a, tree_b in pairs:
        if use_lower_bound_filter and ops_threshold != float("inf"):
            if cheap_filter_only:
                bound = float(cheap_lower_bound(tree_a, tree_b))
            else:
                bound = combined_lower_bound(tree_a, tree_b)
            if bound >= ops_threshold:
                result.pairs_filtered += 1
                continue

        ted_result = algo.compute(tree_a, tree_b, cost_model=cost_model)
        result.pairs_computed += 1
        result.total_subproblems += ted_result.subproblems
        if ted_result.distance < threshold:
            result.matches.append((index_a, index_b, ted_result.distance))
    result.total_time = time.perf_counter() - start
    return result


def top_k_closest_pairs(
    trees: Sequence[Tree],
    k: int,
    algorithm: "str | TEDAlgorithm" = "rted",
    cost_model: Optional[CostModel] = None,
) -> List[Tuple[int, int, float]]:
    """The ``k`` pairs with the smallest edit distance (brute-force evaluation).

    A convenience for exploratory analysis of small collections; for the
    threshold-based workloads use the join functions above.
    """
    algo = _resolve_algorithm(algorithm)
    distances = []
    for i, j in itertools.combinations(range(len(trees)), 2):
        distance = algo.distance(trees[i], trees[j], cost_model=cost_model)
        distances.append((i, j, distance))
    distances.sort(key=lambda entry: entry[2])
    return distances[:k]
