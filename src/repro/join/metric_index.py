"""A vantage-point tree over corpus trees, for metric-space retrieval.

TED under a metric-compatible cost model is itself a metric (symmetry plus
the triangle inequality follow from the label-level costs forming a metric
on ``labels ∪ {ε}``; Zhang & Shasha), which unlocks classic metric-space
indexing: pick a *vantage* tree, compute its exact TED to every member of
the partition, split at the median distance ``mu`` into an inside ball
(``d ≤ mu``) and an outside shell (``d > mu``), and recurse.  At query
time the triangle inequality turns one exact distance ``d(q, vantage)``
into a lower bound for a whole subtree — ``d(q, x) ≥ d(q, v) − mu`` inside
the ball, ``d(q, x) ≥ mu − d(q, v)`` outside — so range and nearest
searches visit only the partitions the bound cannot exclude.

**Metric gating (the soundness rule).**  Triangle-inequality pruning is
*unsound* for non-metric cost models: a violated triangle silently drops
true results.  :func:`metric_eligible` therefore requires the cost model to
(a) declare :meth:`~repro.costs.CostModel.is_metric` and (b) prove a
positive :meth:`~repro.costs.CostModel.min_operation_cost` (a zero
infimum admits distance-0 pairs of distinct trees, making TED a
pseudometric and median splits degenerate).  :meth:`VPTree.build` raises
:class:`~repro.exceptions.MetricGateError` on an ineligible model — callers (the
query engine) check the gate first and fall back to a linear scan, which
is always sound.

Construction cost is ``O(N log N)`` exact TEDs, paid once per corpus and
amortized over queries; the distances run through
:func:`~repro.join.batch.batch_distances`, so the batched small-pair
kernels and the amortized workspace apply.  The structure is flat
(nodes in a list, integer child links) and both build and traversal are
iterative — no recursion on corpus-sized inputs, per the repo-wide rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Union

from ..algorithms.base import TEDAlgorithm, resolve_cost_model
from ..costs import CostModel
from ..exceptions import MetricGateError
from .corpus import TreeCorpus

#: Partitions at or below this size become leaf buckets by default: with
#: only a handful of members left, one more vantage evaluation prunes less
#: than it costs compared to letting the filter cascade + batched refiner
#: handle the bucket in one shot.
DEFAULT_LEAF_SIZE = 16


def metric_eligible(cost_model: Optional[CostModel]) -> bool:
    """Whether triangle-inequality pruning is sound under this cost model.

    ``True`` iff the (resolved) model proves metricity *and* a strictly
    positive per-operation cost floor.  Everything else — including models
    that merely fail to implement :meth:`is_metric` — is ineligible, and
    metric-index retrieval must fall back to a linear scan.
    """
    cm = resolve_cost_model(cost_model)
    if not cm.is_metric():
        return False
    floor = cm.min_operation_cost()
    return floor is not None and floor > 0


@dataclass
class VPNode:
    """One vantage-point node (flat layout; children are list indices).

    ``bucket`` is ``None`` for internal nodes; leaf nodes carry the member
    tree ids and have no vantage (``vantage == -1``).  ``count`` is the
    number of corpus trees in the subtree rooted here — traversals use it
    to account for pruned work without walking the pruned subtree.
    """

    vantage: int
    mu: float
    inside: int
    outside: int
    bucket: Optional[List[int]]
    count: int


class VPTree:
    """A vantage-point tree over the trees of one :class:`TreeCorpus`.

    Build with :meth:`build`; traverse via ``nodes`` / ``root`` (the search
    loops live in :mod:`repro.join.query`, which owns the stats and the
    shrinking-radius logic).  The index stores only tree *ids* plus split
    radii — those ids mean the corpus's dense indices **at build time**, so
    the index is valid exactly for the corpus epoch it was built at
    (recorded as :attr:`epoch`).  Build over a
    :class:`~repro.join.corpus.CorpusSnapshot` (the query engine does) to
    keep the ids meaningful across mutations of a live corpus; an engine
    given a prebuilt index whose epoch trails the corpus refuses it.
    """

    def __init__(
        self,
        corpus: TreeCorpus,
        nodes: List[VPNode],
        root: int,
        cost_model: CostModel,
        build_distances: int,
    ) -> None:
        self.corpus = corpus
        self.nodes = nodes
        self.root = root
        self.cost_model = cost_model
        #: Exact TEDs computed during construction (the amortized index cost).
        self.build_distances = build_distances
        #: The corpus epoch the node ids refer to (0 for pre-epoch corpora).
        self.epoch = getattr(corpus, "epoch", 0)

    def __len__(self) -> int:
        return self.nodes[self.root].count if self.root >= 0 else 0

    @classmethod
    def build(
        cls,
        corpus: TreeCorpus,
        algorithm: Union[str, TEDAlgorithm] = "rted",
        cost_model: Optional[CostModel] = None,
        engine: Optional[str] = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        seed: int = 0,
        workers: int = 1,
        chunk_size: int = 256,
        workspace=True,
        batch_kernel: bool = True,
    ) -> "VPTree":
        """Construct the index over every tree of ``corpus``.

        Raises :class:`MetricGateError` when the cost model fails the metric gate
        (see :func:`metric_eligible`) — an unsound index must be impossible
        to build, not merely inadvisable.  ``seed`` makes vantage selection
        deterministic; the exact distances run through
        :func:`~repro.join.batch.batch_distances` with the given execution
        knobs.
        """
        from .batch import batch_distances

        cm = resolve_cost_model(cost_model)
        if not metric_eligible(cm):
            raise MetricGateError(
                "cost model is not provably a metric (is_metric() false or "
                "min_operation_cost() not positive); triangle-inequality "
                "pruning would be unsound — use a linear scan instead"
            )
        rng = random.Random(seed)
        nodes: List[VPNode] = []
        build_distances = 0
        root = -1
        # Iterative build: each stack entry is (member ids, parent node id,
        # is_inside_child); node ids are patched into the parent when created.
        stack: List[tuple] = []
        items = list(range(len(corpus)))
        if items:
            stack.append((items, -1, False))
        while stack:
            members, parent, is_inside = stack.pop()
            node_id = len(nodes)
            if len(members) <= max(1, leaf_size):
                nodes.append(
                    VPNode(
                        vantage=-1,
                        mu=0.0,
                        inside=-1,
                        outside=-1,
                        bucket=sorted(members),
                        count=len(members),
                    )
                )
            else:
                vantage = members[rng.randrange(len(members))]
                rest = [i for i in members if i != vantage]
                pairs = [(vantage, i) for i in rest]
                entries = batch_distances(
                    corpus,
                    None,
                    pairs,
                    algorithm=algorithm,
                    cost_model=cm,
                    engine=engine,
                    workers=workers,
                    chunk_size=chunk_size,
                    workspace=workspace,
                    batch_kernel=batch_kernel,
                )
                build_distances += len(entries)
                dist = {j: d for _, j, d, *_ in entries}
                ordered = sorted(rest, key=lambda i: dist[i])
                mu = dist[ordered[(len(ordered) - 1) // 2]]
                inside = [i for i in rest if dist[i] <= mu]
                outside = [i for i in rest if dist[i] > mu]
                if not inside or not outside:
                    # Degenerate split (many identical distances): a further
                    # recursion could loop forever, so bucket the partition.
                    nodes.append(
                        VPNode(
                            vantage=-1,
                            mu=0.0,
                            inside=-1,
                            outside=-1,
                            bucket=sorted(members),
                            count=len(members),
                        )
                    )
                else:
                    nodes.append(
                        VPNode(
                            vantage=vantage,
                            mu=mu,
                            inside=-1,
                            outside=-1,
                            bucket=None,
                            count=len(members),
                        )
                    )
                    stack.append((inside, node_id, True))
                    stack.append((outside, node_id, False))
            if parent < 0:
                root = node_id
            elif is_inside:
                nodes[parent].inside = node_id
            else:
                nodes[parent].outside = node_id
        return cls(
            corpus=corpus,
            nodes=nodes,
            root=root,
            cost_model=cm,
            build_distances=build_distances,
        )
