"""Corpus-indexed filter artifacts for batch similarity joins.

A join over ``N`` trees evaluates up to ``N·(N−1)/2`` pairs, but every filter
in the bound cascade only consumes *per-tree* quantities: sizes, label
multisets, traversal label strings, binary-branch profiles and pq-gram
profiles.  :class:`TreeCorpus` computes each of these artifacts **once per
tree** and reuses them across all pairs — the per-pair work of the cheap
stages drops to a multiset intersection.

On top of the per-tree profiles the corpus maintains *inverted indexes*
(binary-branch → tree ids, pq-gram → tree ids).  For a selective threshold
the binary-branch index generates candidate pairs directly: the branch
distance satisfies ``BBD(F, G) ≤ 5 · TED_ops(F, G)``, and two trees sharing
no branch have ``BBD = |F| + |G|``, so any pair with
``(|F| + |G|) / 5 ≥ τ_ops`` and an empty branch intersection is pruned
*without ever being materialized*.  The pq-gram index plays the same role for
approximate joins (pq-grams do not lower-bound the TED — see the soundness
rule in ``DESIGN.md``).

**Live corpora (the versioned store).**  A corpus is no longer frozen at
construction: :meth:`TreeCorpus.add_trees` and :meth:`TreeCorpus.remove_trees`
mutate membership while maintaining the inverted indexes *incrementally* —
an add appends postings for the new trees only, a removal tombstones its
slot (postings are filtered lazily and compacted past a dead-entry
threshold; removal never triggers a full rebuild).  Every mutation bumps a
monotonic :attr:`TreeCorpus.epoch`; all derived caches — the dense index
views, ``size_order``, the batch-kernel pack — are keyed on the epoch, so a
mutated corpus can never silently serve stale artifacts.  The invariant the
property suite enforces: after **any** interleaving of adds and removals the
corpus is observably identical (distances, join matches, kNN/range results,
cascade stats) to a fresh :class:`TreeCorpus` built from the same final tree
sequence.

Downstream consumers that need a stable view across queries (the query
engine's VP-tree, long refinement plans) pin a :class:`CorpusSnapshot` — an
epoch-pinned immutable corpus that shares the parent's per-tree profiles and
reports the membership drift (:meth:`CorpusSnapshot.delta`) since the pin.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from typing import (
    Counter as CounterType,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..bounds.binary_branch import binary_branch_profile
from ..bounds.pq_gram import pq_gram_profile
from ..exceptions import CorpusError
from ..trees.tree import Tree


@dataclass
class TreeProfile:
    """Per-tree filter artifacts, computed once and shared by every pair."""

    index: int
    tree: Tree
    size: int
    label_histogram: CounterType[object]
    preorder_labels: List[object]
    postorder_labels: List[object]
    branch_profile: CounterType[Tuple[object, object, object]]
    pq_profile: Optional[CounterType[Tuple[object, ...]]] = field(default=None, repr=False)


class TreeCorpus:
    """A versioned collection of trees with per-tree artifacts and indexes.

    Parameters
    ----------
    trees:
        The trees of the collection (kept in order; pair indices returned by
        the join refer to positions in the *current* live sequence).
    p, q:
        pq-gram shape parameters used when the pq-gram artifacts are
        requested (approximate joins only).

    A corpus is cheap to construct: a tree's profile (sizes, label multiset,
    traversal strings and binary-branch profile — all ``O(n)``) is built on
    its first :meth:`profile` access and cached; only the pq-gram artifacts,
    which no sound stage consumes, are deferred further until
    :meth:`pq_profile` / :meth:`pq_index` is called.

    **Versioning.**  Internally trees live in append-only *slots*; a removal
    tombstones its slot (slot ids are never reused or renumbered, so pinned
    snapshots stay translatable), and the public *dense* indices — what
    ``corpus.trees[i]``, join matches and query results mean — are the live
    slots in ascending slot order.  Every mutation bumps :attr:`epoch`;
    dense views (the ``trees`` tuple, :meth:`branch_index`, :meth:`pq_index`,
    :meth:`size_order`, :meth:`pack`) are rebuilt lazily when their cached
    epoch is stale, and the inverted postings themselves are maintained
    incrementally (appends for adds, tombstone filtering plus threshold
    compaction for removals — never a full reprofile).

    The dense tree sequence is exposed as a tuple, so accidental in-place
    mutation still surfaces as an error at the mutation site
    (``corpus.trees[i] = t`` raises ``TypeError``); membership changes go
    through :meth:`add_trees` / :meth:`remove_trees`.  Consumers that cache
    per-index results must key them on :attr:`epoch` or hold a
    :meth:`snapshot`.

    ``interner`` optionally shares another corpus's label dictionary (see
    :meth:`interner`), so that e.g. a one-tree query corpus produces label
    codes compatible with the main corpus's cached batch-kernel pack.
    """

    #: Dead posting entries tolerated before :meth:`remove_trees` compacts
    #: the inverted indexes in place (also requires dead > live, so small
    #: corpora never churn).  Compaction filters tombstoned slot ids out of
    #: every posting list; slot ids are never renumbered.
    COMPACTION_THRESHOLD = 64

    def __init__(
        self,
        trees: Sequence[Tree],
        p: int = 2,
        q: int = 3,
        interner=None,
    ) -> None:
        # Append-only slot storage: removed slots become None and their ids
        # join the tombstone set; slot ids are stable for the corpus's life.
        self._slots: List[Optional[Tree]] = list(trees)
        self._dead: Set[int] = set()
        self._epoch = 0
        self.p = p
        self.q = q
        self._interner = interner
        # Slot-keyed artifacts: survive mutations untouched.
        self._slot_profiles: Dict[int, TreeProfile] = {}
        self._branch_postings: Optional[Dict[object, List[int]]] = None
        self._pq_postings: Optional[Dict[object, List[int]]] = None
        self._postings_live = 0
        self._postings_dead = 0
        # Per-epoch dense views, rebuilt lazily after a mutation.
        self._view_epoch = -1
        self._view_slots: List[int] = []
        self._view_trees: Tuple[Tree, ...] = ()
        self._dense_of: Dict[int, int] = {}
        self._dense_profiles: List[Optional[TreeProfile]] = []
        self._branch_view: Optional[Dict[object, List[int]]] = None
        self._branch_view_epoch = -1
        self._pq_view: Optional[Dict[object, List[int]]] = None
        self._pq_view_epoch = -1
        self._size_order: Optional[Tuple[List[int], List[int]]] = None
        self._size_order_epoch = -1
        self._pack = None
        self._pack_key: Optional[Tuple[int, int, int]] = None
        self._snapshot_cache: Optional["CorpusSnapshot"] = None
        # Mutation ledger (exposed verbatim by the service's /stats).
        self.adds = 0
        self.removals = 0
        self.trees_added = 0
        self.trees_removed = 0
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # Versioning
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Monotonic version counter; every mutation call bumps it by one.

        All derived caches (dense views, size order, the batch-kernel pack,
        the service's pair-result cache) key on the epoch, so invalidation
        after a mutation is free — stale entries simply never match.
        """
        return self._epoch

    def _refresh_view(self) -> None:
        """Rebuild the dense (live-slot) view if the epoch moved."""
        if self._view_epoch == self._epoch:
            return
        if self._dead:
            dead = self._dead
            live = [s for s in range(len(self._slots)) if s not in dead]
        else:
            live = list(range(len(self._slots)))
        self._view_slots = live
        self._view_trees = tuple(self._slots[s] for s in live)
        self._dense_of = {s: i for i, s in enumerate(live)}
        self._dense_profiles = [None] * len(live)
        self._view_epoch = self._epoch

    def add_trees(self, trees: Iterable[Tree]) -> List[int]:
        """Append trees to the corpus; returns their new dense indices.

        Incremental by construction: new slots are appended, and if the
        inverted indexes were already built their postings are *extended*
        with the new trees only — existing entries are untouched, so the
        cost is proportional to the added trees, not the corpus.  Bumps
        :attr:`epoch`.
        """
        new_trees = list(trees)
        if not new_trees:
            return []
        for tree in new_trees:
            if not isinstance(tree, Tree):
                raise CorpusError(
                    f"add_trees expects Tree objects, got {type(tree).__name__}"
                )
        self._refresh_view()
        first_dense = len(self._view_slots)
        new_slots = []
        for tree in new_trees:
            slot = len(self._slots)
            self._slots.append(tree)
            new_slots.append(slot)
        if self._branch_postings is not None:
            count = 0
            for slot in new_slots:
                for branch in self._slot_profile(slot).branch_profile:
                    self._branch_postings.setdefault(branch, []).append(slot)
                    count += 1
            self._postings_live += count
        if self._pq_postings is not None:
            count = 0
            for slot in new_slots:
                for gram in self._slot_pq_profile(slot):
                    self._pq_postings.setdefault(gram, []).append(slot)
                    count += 1
            self._postings_live += count
        self._epoch += 1
        self.adds += 1
        self.trees_added += len(new_slots)
        return [first_dense + offset for offset in range(len(new_slots))]

    def remove_trees(self, indices: Iterable[int]) -> List[int]:
        """Remove trees by their current dense indices; returns them sorted.

        Removal never rebuilds: each tree's slot is tombstoned, its cached
        profile dropped, and its posting entries counted as dead — the
        postings themselves are filtered lazily by the dense index views and
        compacted in place once dead entries exceed
        ``max(COMPACTION_THRESHOLD, live entries)``.  Bumps :attr:`epoch`.
        Raises :class:`~repro.exceptions.CorpusError` for out-of-range ids.
        """
        self._refresh_view()
        n = len(self._view_slots)
        dense = sorted({int(i) for i in indices})
        if not dense:
            return []
        if dense[0] < 0 or dense[-1] >= n:
            bad = dense[0] if dense[0] < 0 else dense[-1]
            raise CorpusError(
                f"tree index {bad} out of range for a corpus of {n} trees"
            )
        for index in dense:
            slot = self._view_slots[index]
            prof = self._slot_profiles.pop(slot, None)
            if prof is not None:
                if self._branch_postings is not None:
                    entries = len(prof.branch_profile)
                    self._postings_dead += entries
                    self._postings_live -= entries
                if self._pq_postings is not None and prof.pq_profile is not None:
                    entries = len(prof.pq_profile)
                    self._postings_dead += entries
                    self._postings_live -= entries
            tree = self._slots[slot]
            self._slots[slot] = None
            self._dead.add(slot)
            if self._interner is not None and tree is not None:
                forget = getattr(self._interner, "forget_tree", None)
                if forget is not None:
                    forget(tree)
        self._epoch += 1
        self.removals += 1
        self.trees_removed += len(dense)
        self._maybe_compact()
        return dense

    def _maybe_compact(self) -> None:
        """Filter tombstoned slots out of the postings past the threshold."""
        if self._postings_dead <= max(self.COMPACTION_THRESHOLD, self._postings_live):
            return
        dead = self._dead
        for postings in (self._branch_postings, self._pq_postings):
            if postings is None:
                continue
            for key in list(postings):
                live = [s for s in postings[key] if s not in dead]
                if live:
                    postings[key] = live
                else:
                    del postings[key]
        self._postings_dead = 0
        self.compactions += 1

    def snapshot(self) -> "CorpusSnapshot":
        """An immutable view pinned at the current epoch (cached per epoch)."""
        snap = self._snapshot_cache
        if snap is None or snap.epoch != self._epoch:
            snap = CorpusSnapshot(self)
            self._snapshot_cache = snap
        return snap

    def mutation_counters(self) -> Dict[str, int]:
        """The mutation ledger (adds/removals/compactions) as a dict."""
        return {
            "adds": self.adds,
            "removals": self.removals,
            "trees_added": self.trees_added,
            "trees_removed": self.trees_removed,
            "compactions": self.compactions,
        }

    # ------------------------------------------------------------------ #
    @property
    def trees(self) -> Tuple[Tree, ...]:
        """The live trees in dense order (a fresh tuple per epoch)."""
        self._refresh_view()
        return self._view_trees

    def __len__(self) -> int:
        self._refresh_view()
        return len(self._view_slots)

    def __getitem__(self, index: int) -> Tree:
        return self.trees[index]

    def __iter__(self) -> Iterator[Tree]:
        return iter(self.trees)

    # ------------------------------------------------------------------ #
    def _slot_profile(self, slot: int) -> TreeProfile:
        """The slot-keyed profile (``index`` holds the *slot* id)."""
        prof = self._slot_profiles.get(slot)
        if prof is None:
            tree = self._slots[slot]
            prof = TreeProfile(
                index=slot,
                tree=tree,
                size=tree.n,
                label_histogram=Counter(tree.labels),
                preorder_labels=tree.labels_preorder(),
                postorder_labels=tree.labels_postorder(),
                branch_profile=binary_branch_profile(tree),
            )
            self._slot_profiles[slot] = prof
        return prof

    def _slot_pq_profile(self, slot: int) -> CounterType[Tuple[object, ...]]:
        prof = self._slot_profile(slot)
        if prof.pq_profile is None:
            prof.pq_profile = pq_gram_profile(prof.tree, p=self.p, q=self.q)
        return prof.pq_profile

    def profile(self, index: int) -> TreeProfile:
        """The (cached) filter artifacts of the tree at dense ``index``.

        ``profile.index`` always equals the dense index (the cascade and
        pipeline consume it as such); when tombstones shift a slot away from
        its dense position the slot profile is wrapped with the corrected
        index, sharing every expensive artifact with the slot-keyed cache.
        """
        self._refresh_view()
        cached = self._dense_profiles[index]
        if cached is None:
            slot = self._view_slots[index]
            base = self._slot_profile(slot)
            cached = base if base.index == index else replace(base, index=index)
            self._dense_profiles[index] = cached
        return cached

    def profiles(self) -> List[TreeProfile]:
        """Artifacts for every live tree (computing any still missing)."""
        return [self.profile(i) for i in range(len(self))]

    def pq_profile(self, index: int) -> CounterType[Tuple[object, ...]]:
        """The (cached) pq-gram profile of the tree at dense ``index``."""
        self._refresh_view()
        pq = self._slot_pq_profile(self._view_slots[index])
        wrapper = self._dense_profiles[index]
        if wrapper is not None and wrapper.pq_profile is None:
            wrapper.pq_profile = pq
        return pq

    # ------------------------------------------------------------------ #
    # Label interning (the amortized batch verification path)
    # ------------------------------------------------------------------ #
    def interner(self):
        """The corpus's shared label dictionary (lazily created).

        A :class:`~repro.algorithms.workspace.LabelInterner` mapping labels
        to dense integer codes; per-tree code arrays are interned on first
        use and cached on the interner, so every batch over this corpus —
        and every :class:`~repro.algorithms.workspace.TedWorkspace` built
        from it, whatever its cost model — reuses one dictionary.  Trees
        from *other* collections (cross joins, one-vs-many queries) may be
        interned into the same dictionary; it only ever grows, so codes
        stay stable across corpus mutations (``remove_trees`` only drops
        the removed tree's cached code array, never its codes).
        """
        if self._interner is None:
            from ..algorithms.workspace import LabelInterner

            self._interner = LabelInterner()
        return self._interner

    def share_interner(self, interner) -> None:
        """Adopt ``interner`` as this corpus's label dictionary.

        The supported way to set up interner sharing *after* construction
        (e.g. to align an existing corpus with another's cached pack).  The
        pack cache is keyed on the interner's identity, so a pack built
        under the old dictionary — whose label codes the new dictionary need
        not agree with — can never be served again after the switch.
        """
        if interner is None:
            raise CorpusError("share_interner requires a LabelInterner")
        self._interner = interner

    def shares_interner(self, other: "TreeCorpus") -> bool:
        """Whether both corpora already hold the *same* label dictionary.

        True only when the interners exist and are one object (e.g. this
        corpus was built with ``interner=other.interner()``), in which case
        their packs' label codes agree and cached packs can be mixed in one
        batch.  Deliberately side-effect free: it never creates an interner.
        """
        return self._interner is not None and self._interner is other._interner

    def pack(self, small_pair_cutoff: Optional[int] = None):
        """The corpus's (cached) batch-kernel pack, or ``None`` sans NumPy.

        A :class:`~repro.algorithms.batch_kernel.CorpusPack` built over
        :meth:`interner` — the struct-of-arrays input of the batched
        small-pair kernels.  The cache is keyed on **(interner identity,
        small-pair cutoff, epoch)**: a corpus mutation or a late
        :meth:`share_interner` switch invalidates it (a pack whose label
        codes or tree rows no longer match the corpus must never be served),
        while repeated batches at one cutoff within one epoch share a single
        pack, including zero-copy export to worker processes via
        :mod:`repro.join.shared`.
        """
        from ..algorithms.batch_kernel import build_corpus_pack, kernel_available
        from ..algorithms.workspace import SMALL_PAIR_CUTOFF

        if not kernel_available():
            return None
        if small_pair_cutoff is None:
            small_pair_cutoff = SMALL_PAIR_CUTOFF
        small_pair_cutoff = int(small_pair_cutoff)
        key = (id(self.interner()), small_pair_cutoff, self._epoch)
        if self._pack_key != key:
            self._pack = build_corpus_pack(
                self.trees, self.interner(), small_pair_cutoff
            )
            self._pack_key = key
        return self._pack

    # ------------------------------------------------------------------ #
    # Inverted indexes
    # ------------------------------------------------------------------ #
    def _ensure_branch_postings(self) -> Dict[object, List[int]]:
        """The slot-keyed branch postings (built once, then incremental)."""
        if self._branch_postings is None:
            postings: Dict[object, List[int]] = defaultdict(list)
            count = 0
            self._refresh_view()
            for slot in self._view_slots:
                for branch in self._slot_profile(slot).branch_profile:
                    postings[branch].append(slot)
                    count += 1
            self._branch_postings = dict(postings)
            self._postings_live += count
        return self._branch_postings

    def _ensure_pq_postings(self) -> Dict[object, List[int]]:
        """The slot-keyed pq-gram postings (built once, then incremental)."""
        if self._pq_postings is None:
            postings: Dict[object, List[int]] = defaultdict(list)
            count = 0
            self._refresh_view()
            for slot in self._view_slots:
                for gram in self._slot_pq_profile(slot):
                    postings[gram].append(slot)
                    count += 1
            self._pq_postings = dict(postings)
            self._postings_live += count
        return self._pq_postings

    def _dense_postings(
        self, postings: Dict[object, List[int]]
    ) -> Dict[object, List[int]]:
        """Slot-id postings filtered to live slots and mapped to dense ids.

        With no tombstones slot ids *are* dense ids and the postings are
        returned as-is (the view is only guaranteed for the epoch it was
        obtained in); otherwise dead entries are dropped and survivors
        translated — ascending slot order is ascending dense order, so the
        result is exactly what a fresh corpus over the live trees builds.
        """
        self._refresh_view()
        dead = self._dead
        if not dead:
            return postings
        dense_of = self._dense_of
        view: Dict[object, List[int]] = {}
        for key, slots in postings.items():
            live = [dense_of[s] for s in slots if s not in dead]
            if live:
                view[key] = live
        return view

    def branch_index(self) -> Dict[object, List[int]]:
        """Inverted index: binary branch → sorted list of dense tree indices.

        The returned view is valid for the current :attr:`epoch`; it is
        rebuilt (cheaply, from the incrementally maintained postings) after
        a mutation.
        """
        if self._branch_view is None or self._branch_view_epoch != self._epoch:
            self._branch_view = self._dense_postings(self._ensure_branch_postings())
            self._branch_view_epoch = self._epoch
        return self._branch_view

    def pq_index(self) -> Dict[object, List[int]]:
        """Inverted index: pq-gram → sorted list of dense tree indices.

        Epoch-keyed like :meth:`branch_index`.
        """
        if self._pq_view is None or self._pq_view_epoch != self._epoch:
            self._pq_view = self._dense_postings(self._ensure_pq_postings())
            self._pq_view_epoch = self._epoch
        return self._pq_view

    def size_order(self) -> Tuple[List[int], List[int]]:
        """``(indices, sizes)`` of the live trees in ascending size order.

        Cached per epoch; used by one-vs-corpus candidate generation (the
        small-tree sweep) and by query planners that want to examine
        near-sized trees first.
        """
        if self._size_order is None or self._size_order_epoch != self._epoch:
            trees = self.trees
            order = sorted(range(len(trees)), key=lambda i: trees[i].n)
            self._size_order = (order, [trees[i].n for i in order])
            self._size_order_epoch = self._epoch
        return self._size_order

    def query_candidates(
        self, profile: TreeProfile, ops_threshold: float
    ) -> Tuple[Set[int], int]:
        """Sound one-vs-corpus candidate generation from the branch index.

        The asymmetric counterpart of :func:`branch_candidate_pairs`: for a
        *query* profile (typically from a one-tree corpus, not from this
        one) returns ``(candidates, pruned)`` where ``candidates`` is the
        set of corpus tree indices that may still satisfy
        ``TED(query, tree) < τ`` — trees sharing at least one binary branch
        with the query, plus trees small enough to pass with a disjoint
        branch profile — and ``pruned`` counts the corpus trees eliminated
        without ever being examined.  ``ops_threshold`` is the threshold in
        operation-count space (``τ / min_operation_cost``); ``inf``
        disables pruning (every tree is a candidate).

        Soundness: ``BBD(F, G) ≤ 5 · TED_ops`` (Yang et al., SIGMOD 2005)
        and disjoint branch profiles force ``BBD = |F| + |G|``, so a
        disjoint-profile tree can only match when
        ``|F| + |G| < 5 · τ_ops``.
        """
        n = len(self)
        if ops_threshold == float("inf"):
            return set(range(n)), 0
        candidates: Set[int] = set()
        index = self.branch_index()
        for branch in profile.branch_profile:
            postings = index.get(branch)
            if postings:
                candidates.update(postings)
        # Small-tree sweep: trees below the size budget stay candidates even
        # with a fully disjoint branch profile.
        order, sizes = self.size_order()
        limit = bisect_left(sizes, 5.0 * ops_threshold - profile.size)
        candidates.update(order[:limit])
        return candidates, n - len(candidates)


class CorpusSnapshot(TreeCorpus):
    """An epoch-pinned, immutable view of a live :class:`TreeCorpus`.

    A snapshot *is* a corpus (every join/query/pack consumer works on it
    unchanged) whose membership is the parent's live trees at pin time.  It
    shares the parent's label interner and — for trees the parent still
    holds — its per-tree profiles, so pinning is cheap and the expensive
    artifacts stay amortized in one place.  Mutators raise
    :class:`~repro.exceptions.CorpusError`.

    Snapshots make corpus mutation safe for long-lived consumers: the query
    engine pins one (plus the VP-tree built over it) and consults
    :meth:`delta` per query — the *deferred-insert side list* (parent trees
    added since the pin) is evaluated exactly and merged, parent removals
    are filtered from the snapshot's results via :meth:`to_parent`, and once
    the drift exceeds the engine's staleness budget a fresh snapshot (and
    lazily a fresh index) replaces the pin.
    """

    def __init__(self, parent: TreeCorpus) -> None:
        parent._refresh_view()
        super().__init__(
            parent._view_trees, p=parent.p, q=parent.q, interner=parent.interner()
        )
        self._parent = parent
        self._pinned_epoch = parent._epoch
        # Parent slot ids of this snapshot's dense positions, plus the slot
        # watermark: any parent slot >= next_slot was added after the pin.
        self._slot_ids: Tuple[int, ...] = tuple(parent._view_slots)
        self._next_slot = len(parent._slots)

    # -- versioning ----------------------------------------------------- #
    @property
    def epoch(self) -> int:
        """The parent epoch this snapshot pins (the snapshot never moves)."""
        return self._pinned_epoch

    @property
    def parent(self) -> TreeCorpus:
        return self._parent

    def is_current(self) -> bool:
        """Whether the parent has not mutated since the pin."""
        return self._parent._epoch == self._pinned_epoch

    def delta(self) -> Tuple[List[int], List[int]]:
        """Membership drift since the pin: ``(added, removed)``.

        ``added`` are *parent* dense indices of trees inserted after the
        pin (the exact side list a pinned search must additionally
        evaluate); ``removed`` are *snapshot* dense indices whose trees the
        parent has since removed (results naming them must be dropped).
        """
        parent = self._parent
        if parent._epoch == self._pinned_epoch:
            return [], []
        parent._refresh_view()
        next_slot = self._next_slot
        added = [i for i, s in enumerate(parent._view_slots) if s >= next_slot]
        dead = parent._dead
        removed = [i for i, s in enumerate(self._slot_ids) if s in dead]
        return added, removed

    def to_parent(self, index: int) -> Optional[int]:
        """The parent's *current* dense index of snapshot tree ``index``.

        ``None`` when the parent removed the tree after the pin.  Ascending
        snapshot order maps to ascending parent order (both are ascending
        slot order), so translated result lists keep their tie order.
        """
        parent = self._parent
        parent._refresh_view()
        return parent._dense_of.get(self._slot_ids[index])

    def snapshot(self) -> "CorpusSnapshot":
        """A snapshot is its own snapshot (already pinned)."""
        return self

    def add_trees(self, trees: Iterable[Tree]) -> List[int]:
        raise CorpusError(
            "a CorpusSnapshot is immutable; mutate its parent corpus instead"
        )

    def remove_trees(self, indices: Iterable[int]) -> List[int]:
        raise CorpusError(
            "a CorpusSnapshot is immutable; mutate its parent corpus instead"
        )

    # -- artifact sharing with the parent -------------------------------- #
    def _slot_profile(self, slot: int) -> TreeProfile:
        # Snapshot slot ids are 0..n-1 (no tombstones ever); delegate to the
        # parent's slot-keyed cache while the parent still holds the tree,
        # falling back to a locally built profile once the parent dropped it.
        prof = self._slot_profiles.get(slot)
        if prof is not None:
            return prof
        parent = self._parent
        parent_slot = self._slot_ids[slot]
        if parent._slots[parent_slot] is None:
            return super()._slot_profile(slot)
        base = parent._slot_profile(parent_slot)
        prof = base if base.index == slot else replace(base, index=slot)
        self._slot_profiles[slot] = prof
        return prof

    def _slot_pq_profile(self, slot: int) -> CounterType[Tuple[object, ...]]:
        parent = self._parent
        parent_slot = self._slot_ids[slot]
        if parent._slots[parent_slot] is None:
            return super()._slot_pq_profile(slot)
        pq = parent._slot_pq_profile(parent_slot)
        prof = self._slot_profile(slot)
        if prof.pq_profile is None:
            prof.pq_profile = pq
        return pq

    def pack(self, small_pair_cutoff: Optional[int] = None):
        # While the parent has not mutated, the snapshot's pack *is* the
        # parent's (same trees, same interner, same epoch-keyed cache) —
        # one pack serves both.  After a mutation the snapshot builds its
        # own (the parent's new pack no longer matches the pinned trees).
        if self.is_current():
            return self._parent.pack(small_pair_cutoff)
        return super().pack(small_pair_cutoff)


def _small_pairs(
    sizes_a: Sequence[int],
    sizes_b: Optional[Sequence[int]],
    size_budget: float,
) -> Iterator[Tuple[int, int]]:
    """All pairs whose combined size stays below ``size_budget``.

    These are the pairs that can beat the threshold *without* sharing a single
    binary branch (``BBD = |F| + |G| < 5·τ_ops``), so index-based candidate
    generation must keep them even when their posting lists never meet.
    Enumerated via a sorted-size sweep, so the cost is proportional to the
    number of qualifying pairs, not to all pairs.
    """
    if size_budget <= 0:
        return
    if sizes_b is None:
        order = sorted(range(len(sizes_a)), key=lambda i: sizes_a[i])
        ordered = [sizes_a[i] for i in order]
        for pos, i in enumerate(order):
            # partners after `pos` in size order with size < budget - size_i
            limit = bisect_left(ordered, size_budget - ordered[pos], lo=pos + 1)
            for other in range(pos + 1, limit):
                j = order[other]
                yield (min(i, j), max(i, j))
    else:
        order_b = sorted(range(len(sizes_b)), key=lambda j: sizes_b[j])
        ordered_b = [sizes_b[j] for j in order_b]
        for i, size_a in enumerate(sizes_a):
            limit = bisect_left(ordered_b, size_budget - size_a)
            for pos in range(limit):
                yield (i, order_b[pos])


def branch_candidate_pairs(
    corpus_a: TreeCorpus,
    corpus_b: Optional[TreeCorpus],
    ops_threshold: float,
) -> Tuple[Set[Tuple[int, int]], int]:
    """Sound candidate generation from the binary-branch inverted index.

    Returns ``(candidates, pairs_skipped)`` where ``candidates`` is the set of
    pairs that may still satisfy ``TED < τ`` — pairs sharing at least one
    binary branch, plus pairs small enough to pass with a disjoint profile —
    and ``pairs_skipped`` counts the pairs eliminated without being
    materialized.  ``ops_threshold`` is the threshold converted to
    operation-count space (``τ / min_operation_cost``); pass ``inf`` to
    disable pruning (every pair is a candidate).

    Soundness: ``BBD(F, G) ≤ 5 · TED_ops`` (Yang et al., SIGMOD 2005) and
    disjoint profiles force ``BBD = |F| + |G|``.
    """
    if corpus_b is None:
        total = len(corpus_a) * (len(corpus_a) - 1) // 2
    else:
        total = len(corpus_a) * len(corpus_b)

    if ops_threshold == float("inf"):
        if corpus_b is None:
            candidates = {
                (i, j) for i in range(len(corpus_a)) for j in range(i + 1, len(corpus_a))
            }
        else:
            candidates = {
                (i, j) for i in range(len(corpus_a)) for j in range(len(corpus_b))
            }
        return candidates, 0

    candidates: Set[Tuple[int, int]] = set()

    if corpus_b is None:
        index = corpus_a.branch_index()
        # Posting-list self-products cost Σ |postings|²; when the corpus shares
        # branches so widely that this far exceeds the all-pairs count, the
        # index cannot prune enough to pay for itself — fall back to all pairs
        # (the per-pair cascade stages still run).
        if sum(len(p) * len(p) for p in index.values()) > 8 * max(total, 1):
            return (
                {(i, j) for i in range(len(corpus_a)) for j in range(i + 1, len(corpus_a))},
                0,
            )
        for postings in index.values():
            for ai in range(len(postings)):
                for bi in range(ai + 1, len(postings)):
                    candidates.add((postings[ai], postings[bi]))
        sizes = [tree.n for tree in corpus_a.trees]
        candidates.update(_small_pairs(sizes, None, 5.0 * ops_threshold))
    else:
        index_a = corpus_a.branch_index()
        index_b = corpus_b.branch_index()
        # Same blowup guard as the self-join branch: posting-list products
        # cost Σ |postings_a|·|postings_b| over shared branches; when that far
        # exceeds the all-pairs count the index cannot pay for itself.
        product_work = sum(
            len(postings_a) * len(index_b.get(branch, ()))
            for branch, postings_a in index_a.items()
        )
        if product_work > 8 * max(total, 1):
            return (
                {(i, j) for i in range(len(corpus_a)) for j in range(len(corpus_b))},
                0,
            )
        for branch, postings_a in index_a.items():
            postings_b = index_b.get(branch)
            if not postings_b:
                continue
            for i in postings_a:
                for j in postings_b:
                    candidates.add((i, j))
        sizes_a = [tree.n for tree in corpus_a.trees]
        sizes_b = [tree.n for tree in corpus_b.trees]
        candidates.update(_small_pairs(sizes_a, sizes_b, 5.0 * ops_threshold))

    return candidates, total - len(candidates)
