"""Corpus-indexed filter artifacts for batch similarity joins.

A join over ``N`` trees evaluates up to ``N·(N−1)/2`` pairs, but every filter
in the bound cascade only consumes *per-tree* quantities: sizes, label
multisets, traversal label strings, binary-branch profiles and pq-gram
profiles.  :class:`TreeCorpus` computes each of these artifacts **once per
tree** and reuses them across all pairs — the per-pair work of the cheap
stages drops to a multiset intersection.

On top of the per-tree profiles the corpus maintains *inverted indexes*
(binary-branch → tree ids, pq-gram → tree ids).  For a selective threshold
the binary-branch index generates candidate pairs directly: the branch
distance satisfies ``BBD(F, G) ≤ 5 · TED_ops(F, G)``, and two trees sharing
no branch have ``BBD = |F| + |G|``, so any pair with
``(|F| + |G|) / 5 ≥ τ_ops`` and an empty branch intersection is pruned
*without ever being materialized*.  The pq-gram index plays the same role for
approximate joins (pq-grams do not lower-bound the TED — see the soundness
rule in ``DESIGN.md``).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Counter as CounterType, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..bounds.binary_branch import binary_branch_profile
from ..bounds.pq_gram import pq_gram_profile
from ..trees.tree import Tree


@dataclass
class TreeProfile:
    """Per-tree filter artifacts, computed once and shared by every pair."""

    index: int
    tree: Tree
    size: int
    label_histogram: CounterType[object]
    preorder_labels: List[object]
    postorder_labels: List[object]
    branch_profile: CounterType[Tuple[object, object, object]]
    pq_profile: Optional[CounterType[Tuple[object, ...]]] = field(default=None, repr=False)


class TreeCorpus:
    """A collection of trees with per-tree join artifacts and inverted indexes.

    Parameters
    ----------
    trees:
        The trees of the collection (kept in order; pair indices returned by
        the join refer to positions in this sequence).
    p, q:
        pq-gram shape parameters used when the pq-gram artifacts are
        requested (approximate joins only).

    A corpus is cheap to construct: a tree's profile (sizes, label multiset,
    traversal strings and binary-branch profile — all ``O(n)``) is built on
    its first :meth:`profile` access and cached; only the pq-gram artifacts,
    which no sound stage consumes, are deferred further until
    :meth:`pq_profile` / :meth:`pq_index` is called.

    **A corpus is frozen at construction.**  Every derived artifact —
    profiles, inverted indexes, the label interner, the batch-kernel pack
    and any metric index built over the corpus — is cached under the
    assumption that the tree list never changes; a post-construction
    mutation would silently serve stale indexes (wrong join/query results
    with no error).  The tree sequence is therefore stored as a tuple:
    ``corpus.trees[i] = t`` raises ``TypeError``, ``corpus.trees.append``
    raises ``AttributeError`` and rebinding ``corpus.trees`` raises
    ``AttributeError`` — stale-index bugs surface as errors at the mutation
    site.  To change membership, build a new :class:`TreeCorpus`.

    ``interner`` optionally shares another corpus's label dictionary (see
    :meth:`interner`), so that e.g. a one-tree query corpus produces label
    codes compatible with the main corpus's cached batch-kernel pack.
    """

    def __init__(
        self,
        trees: Sequence[Tree],
        p: int = 2,
        q: int = 3,
        interner=None,
    ) -> None:
        self._trees: Tuple[Tree, ...] = tuple(trees)
        self.p = p
        self.q = q
        self._profiles: List[Optional[TreeProfile]] = [None] * len(self._trees)
        self._branch_index: Optional[Dict[object, List[int]]] = None
        self._pq_index: Optional[Dict[object, List[int]]] = None
        self._size_order: Optional[Tuple[List[int], List[int]]] = None
        self._interner = interner
        self._pack = None
        self._pack_cutoff = None

    # ------------------------------------------------------------------ #
    @property
    def trees(self) -> Tuple[Tree, ...]:
        """The corpus's trees, frozen at construction (see the class docs)."""
        return self._trees

    def __len__(self) -> int:
        return len(self.trees)

    def __getitem__(self, index: int) -> Tree:
        return self.trees[index]

    def __iter__(self) -> Iterator[Tree]:
        return iter(self.trees)

    # ------------------------------------------------------------------ #
    def profile(self, index: int) -> TreeProfile:
        """The (cached) filter artifacts of tree ``index``."""
        cached = self._profiles[index]
        if cached is None:
            tree = self.trees[index]
            cached = TreeProfile(
                index=index,
                tree=tree,
                size=tree.n,
                label_histogram=Counter(tree.labels),
                preorder_labels=tree.labels_preorder(),
                postorder_labels=tree.labels_postorder(),
                branch_profile=binary_branch_profile(tree),
            )
            self._profiles[index] = cached
        return cached

    def profiles(self) -> List[TreeProfile]:
        """Artifacts for every tree (computing any that are still missing)."""
        return [self.profile(i) for i in range(len(self.trees))]

    def pq_profile(self, index: int) -> CounterType[Tuple[object, ...]]:
        """The (cached) pq-gram profile of tree ``index``."""
        prof = self.profile(index)
        if prof.pq_profile is None:
            prof.pq_profile = pq_gram_profile(prof.tree, p=self.p, q=self.q)
        return prof.pq_profile

    # ------------------------------------------------------------------ #
    # Label interning (the amortized batch verification path)
    # ------------------------------------------------------------------ #
    def interner(self):
        """The corpus's shared label dictionary (lazily created).

        A :class:`~repro.algorithms.workspace.LabelInterner` mapping labels
        to dense integer codes; per-tree code arrays are interned on first
        use and cached on the interner, so every batch over this corpus —
        and every :class:`~repro.algorithms.workspace.TedWorkspace` built
        from it, whatever its cost model — reuses one dictionary.  Trees
        from *other* collections (cross joins, one-vs-many queries) may be
        interned into the same dictionary; it only ever grows.
        """
        if self._interner is None:
            from ..algorithms.workspace import LabelInterner

            self._interner = LabelInterner()
        return self._interner

    def shares_interner(self, other: "TreeCorpus") -> bool:
        """Whether both corpora already hold the *same* label dictionary.

        True only when the interners exist and are one object (e.g. this
        corpus was built with ``interner=other.interner()``), in which case
        their packs' label codes agree and cached packs can be mixed in one
        batch.  Deliberately side-effect free: it never creates an interner.
        """
        return self._interner is not None and self._interner is other._interner

    def pack(self, small_pair_cutoff: Optional[int] = None):
        """The corpus's (cached) batch-kernel pack, or ``None`` sans NumPy.

        A :class:`~repro.algorithms.batch_kernel.CorpusPack` built over
        :meth:`interner` — the struct-of-arrays input of the batched
        small-pair kernels.  Built once per ``small_pair_cutoff`` (the
        cache holds the most recent cutoff; joins use one cutoff
        throughout) and shared by every batch over this corpus, including
        zero-copy export to worker processes via :mod:`repro.join.shared`.
        """
        from ..algorithms.batch_kernel import build_corpus_pack, kernel_available
        from ..algorithms.workspace import SMALL_PAIR_CUTOFF

        if not kernel_available():
            return None
        if small_pair_cutoff is None:
            small_pair_cutoff = SMALL_PAIR_CUTOFF
        small_pair_cutoff = int(small_pair_cutoff)
        if self._pack is None or self._pack_cutoff != small_pair_cutoff:
            self._pack = build_corpus_pack(
                self.trees, self.interner(), small_pair_cutoff
            )
            self._pack_cutoff = small_pair_cutoff
        return self._pack

    # ------------------------------------------------------------------ #
    # Inverted indexes
    # ------------------------------------------------------------------ #
    def branch_index(self) -> Dict[object, List[int]]:
        """Inverted index: binary branch → sorted list of tree indices."""
        if self._branch_index is None:
            index: Dict[object, List[int]] = defaultdict(list)
            for prof in self.profiles():
                for branch in prof.branch_profile:
                    index[branch].append(prof.index)
            self._branch_index = dict(index)
        return self._branch_index

    def pq_index(self) -> Dict[object, List[int]]:
        """Inverted index: pq-gram → sorted list of tree indices."""
        if self._pq_index is None:
            index: Dict[object, List[int]] = defaultdict(list)
            for i in range(len(self.trees)):
                for gram in self.pq_profile(i):
                    index[gram].append(i)
            self._pq_index = dict(index)
        return self._pq_index

    def size_order(self) -> Tuple[List[int], List[int]]:
        """``(indices, sizes)`` of the corpus trees in ascending size order.

        Cached; used by one-vs-corpus candidate generation (the small-tree
        sweep) and by query planners that want to examine near-sized trees
        first.
        """
        if self._size_order is None:
            order = sorted(range(len(self.trees)), key=lambda i: self.trees[i].n)
            self._size_order = (order, [self.trees[i].n for i in order])
        return self._size_order

    def query_candidates(
        self, profile: TreeProfile, ops_threshold: float
    ) -> Tuple[Set[int], int]:
        """Sound one-vs-corpus candidate generation from the branch index.

        The asymmetric counterpart of :func:`branch_candidate_pairs`: for a
        *query* profile (typically from a one-tree corpus, not from this
        one) returns ``(candidates, pruned)`` where ``candidates`` is the
        set of corpus tree indices that may still satisfy
        ``TED(query, tree) < τ`` — trees sharing at least one binary branch
        with the query, plus trees small enough to pass with a disjoint
        branch profile — and ``pruned`` counts the corpus trees eliminated
        without ever being examined.  ``ops_threshold`` is the threshold in
        operation-count space (``τ / min_operation_cost``); ``inf``
        disables pruning (every tree is a candidate).

        Soundness: ``BBD(F, G) ≤ 5 · TED_ops`` (Yang et al., SIGMOD 2005)
        and disjoint branch profiles force ``BBD = |F| + |G|``, so a
        disjoint-profile tree can only match when
        ``|F| + |G| < 5 · τ_ops``.
        """
        n = len(self.trees)
        if ops_threshold == float("inf"):
            return set(range(n)), 0
        candidates: Set[int] = set()
        index = self.branch_index()
        for branch in profile.branch_profile:
            postings = index.get(branch)
            if postings:
                candidates.update(postings)
        # Small-tree sweep: trees below the size budget stay candidates even
        # with a fully disjoint branch profile.
        order, sizes = self.size_order()
        limit = bisect_left(sizes, 5.0 * ops_threshold - profile.size)
        candidates.update(order[:limit])
        return candidates, n - len(candidates)


def _small_pairs(
    sizes_a: Sequence[int],
    sizes_b: Optional[Sequence[int]],
    size_budget: float,
) -> Iterator[Tuple[int, int]]:
    """All pairs whose combined size stays below ``size_budget``.

    These are the pairs that can beat the threshold *without* sharing a single
    binary branch (``BBD = |F| + |G| < 5·τ_ops``), so index-based candidate
    generation must keep them even when their posting lists never meet.
    Enumerated via a sorted-size sweep, so the cost is proportional to the
    number of qualifying pairs, not to all pairs.
    """
    if size_budget <= 0:
        return
    if sizes_b is None:
        order = sorted(range(len(sizes_a)), key=lambda i: sizes_a[i])
        ordered = [sizes_a[i] for i in order]
        for pos, i in enumerate(order):
            # partners after `pos` in size order with size < budget - size_i
            limit = bisect_left(ordered, size_budget - ordered[pos], lo=pos + 1)
            for other in range(pos + 1, limit):
                j = order[other]
                yield (min(i, j), max(i, j))
    else:
        order_b = sorted(range(len(sizes_b)), key=lambda j: sizes_b[j])
        ordered_b = [sizes_b[j] for j in order_b]
        for i, size_a in enumerate(sizes_a):
            limit = bisect_left(ordered_b, size_budget - size_a)
            for pos in range(limit):
                yield (i, order_b[pos])


def branch_candidate_pairs(
    corpus_a: TreeCorpus,
    corpus_b: Optional[TreeCorpus],
    ops_threshold: float,
) -> Tuple[Set[Tuple[int, int]], int]:
    """Sound candidate generation from the binary-branch inverted index.

    Returns ``(candidates, pairs_skipped)`` where ``candidates`` is the set of
    pairs that may still satisfy ``TED < τ`` — pairs sharing at least one
    binary branch, plus pairs small enough to pass with a disjoint profile —
    and ``pairs_skipped`` counts the pairs eliminated without being
    materialized.  ``ops_threshold`` is the threshold converted to
    operation-count space (``τ / min_operation_cost``); pass ``inf`` to
    disable pruning (every pair is a candidate).

    Soundness: ``BBD(F, G) ≤ 5 · TED_ops`` (Yang et al., SIGMOD 2005) and
    disjoint profiles force ``BBD = |F| + |G|``.
    """
    if corpus_b is None:
        total = len(corpus_a) * (len(corpus_a) - 1) // 2
    else:
        total = len(corpus_a) * len(corpus_b)

    if ops_threshold == float("inf"):
        if corpus_b is None:
            candidates = {
                (i, j) for i in range(len(corpus_a)) for j in range(i + 1, len(corpus_a))
            }
        else:
            candidates = {
                (i, j) for i in range(len(corpus_a)) for j in range(len(corpus_b))
            }
        return candidates, 0

    candidates: Set[Tuple[int, int]] = set()

    if corpus_b is None:
        index = corpus_a.branch_index()
        # Posting-list self-products cost Σ |postings|²; when the corpus shares
        # branches so widely that this far exceeds the all-pairs count, the
        # index cannot prune enough to pay for itself — fall back to all pairs
        # (the per-pair cascade stages still run).
        if sum(len(p) * len(p) for p in index.values()) > 8 * max(total, 1):
            return (
                {(i, j) for i in range(len(corpus_a)) for j in range(i + 1, len(corpus_a))},
                0,
            )
        for postings in index.values():
            for ai in range(len(postings)):
                for bi in range(ai + 1, len(postings)):
                    candidates.add((postings[ai], postings[bi]))
        sizes = [tree.n for tree in corpus_a.trees]
        candidates.update(_small_pairs(sizes, None, 5.0 * ops_threshold))
    else:
        index_a = corpus_a.branch_index()
        index_b = corpus_b.branch_index()
        # Same blowup guard as the self-join branch: posting-list products
        # cost Σ |postings_a|·|postings_b| over shared branches; when that far
        # exceeds the all-pairs count the index cannot pay for itself.
        product_work = sum(
            len(postings_a) * len(index_b.get(branch, ()))
            for branch, postings_a in index_a.items()
        )
        if product_work > 8 * max(total, 1):
            return (
                {(i, j) for i in range(len(corpus_a)) for j in range(len(corpus_b))},
                0,
            )
        for branch, postings_a in index_a.items():
            postings_b = index_b.get(branch)
            if not postings_b:
                continue
            for i in postings_a:
                for j in postings_b:
                    candidates.add((i, j))
        sizes_a = [tree.n for tree in corpus_a.trees]
        sizes_b = [tree.n for tree in corpus_b.trees]
        candidates.update(_small_pairs(sizes_a, sizes_b, 5.0 * ops_threshold))

    return candidates, total - len(candidates)
