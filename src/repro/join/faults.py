"""Deterministic fault injection for the supervised batch executor.

Every recovery path of :mod:`repro.join.supervisor` — worker crashes, hung
chunks, shared-memory attach failures, poisoned pairs — must be testable in
CI without flaky timing games.  This module injects those faults
*deterministically*: each decision hashes a stable key (fault kind, chunk
index, attempt number, pair indices ...) with a seed, so a given spec
reproduces the same fault schedule on every run, while retries (which bump
the attempt number) can deterministically succeed.

Activation
----------
* **Environment**: ``RTED_FAULT_INJECT="worker_crash:0.1;chunk_hang:0.05"``
  (kind:rate pairs separated by ``;``; ``RTED_FAULT_SEED`` selects the
  schedule).  ``chunk_hang`` accepts an optional duration suffix:
  ``chunk_hang:0.1@30`` hangs for 30 s (the supervisor's timeout is expected
  to kill it long before that).
* **Programmatic**: :func:`install_plan` / :func:`use_plan` with a
  :class:`FaultPlan`.  An installed plan overrides the environment;
  ``install_plan(None)`` explicitly disables injection regardless of the
  environment.

The plan active in the batch parent is threaded through the pool
initializer (``_init_worker`` → :func:`mark_worker`), so workers never
re-read the environment and spawn-based platforms behave like fork.

Fault kinds
-----------
``worker_crash``
    ``os._exit(137)`` at chunk start — an OOM-killed / segfaulting worker.
    Keyed on ``(chunk_index, attempt)``; fires only in worker processes.
``chunk_hang``
    Sleep at chunk start (default 600 s) — a wedged worker.  Keyed on
    ``(chunk_index, attempt)``; fires only in worker processes.
``shm_attach_fail``
    Makes :func:`repro.join.shared.attach_pack` report failure, exercising
    the local-rebuild fallback.  Keyed on a per-process attach counter
    (every worker attaches once, so in practice use rate ``1`` to force).
``poison_pair``
    Raises :class:`~repro.exceptions.InjectedFaultError` for the pair on
    *every* rung, including the serial fallback.  Keyed on ``(i, j)`` — a
    poisoned pair stays poisoned across retries, driving the batch all the
    way down to per-pair reporting.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Optional, Tuple

from ..exceptions import FaultInjectionError, InjectedFaultError

#: Environment variables consumed by :func:`active_plan`.
FAULT_ENV = "RTED_FAULT_INJECT"
SEED_ENV = "RTED_FAULT_SEED"

WORKER_CRASH = "worker_crash"
CHUNK_HANG = "chunk_hang"
SHM_ATTACH_FAIL = "shm_attach_fail"
POISON_PAIR = "poison_pair"

#: Every recognized fault kind (unknown kinds in a spec raise).
KINDS = (WORKER_CRASH, CHUNK_HANG, SHM_ATTACH_FAIL, POISON_PAIR)

#: Exit status used by injected crashes (mirrors a SIGKILL-ed worker).
CRASH_EXIT_CODE = 137

#: Default injected hang duration; the supervisor's chunk timeout is meant
#: to tear the worker down long before the sleep completes.
DEFAULT_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable fault schedule.

    ``rates`` maps fault kinds to probabilities in ``[0, 1]``; ``seed``
    selects which keys fire at a given rate.  Decisions are pure functions
    of ``(seed, kind, key)`` — see :meth:`decide` — so a plan is
    reproducible across processes and runs.
    """

    rates: Dict[str, float] = field(default_factory=dict)
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> Optional["FaultPlan"]:
        """Parse a ``kind:rate[;kind:rate...]`` spec (``None`` for empty)."""
        spec = (spec or "").strip()
        if not spec:
            return None
        rates: Dict[str, float] = {}
        hang_seconds = DEFAULT_HANG_SECONDS
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, rate_text = part.partition(":")
            kind = kind.strip()
            if kind not in KINDS:
                raise FaultInjectionError(
                    f"unknown fault kind {kind!r} in {FAULT_ENV} spec "
                    f"(expected one of {', '.join(KINDS)})"
                )
            rate_text = rate_text.strip()
            if kind == CHUNK_HANG and "@" in rate_text:
                rate_text, _, duration_text = rate_text.partition("@")
                try:
                    hang_seconds = float(duration_text)
                except ValueError:
                    raise FaultInjectionError(
                        f"bad hang duration {duration_text!r} in {FAULT_ENV} spec"
                    ) from None
            try:
                rate = float(rate_text)
            except ValueError:
                raise FaultInjectionError(
                    f"bad rate {rate_text!r} for fault {kind!r} in {FAULT_ENV} spec"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"rate for fault {kind!r} must be in [0, 1], got {rate!r}"
                )
            rates[kind] = rate
        if not any(rates.values()):
            return None
        return cls(rates=rates, seed=seed, hang_seconds=hang_seconds)

    def decide(self, kind: str, *key) -> bool:
        """Deterministic Bernoulli draw for ``kind`` at ``key``."""
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}|{kind}|{key!r}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate


@lru_cache(maxsize=8)
def _plan_from_env(spec: str, seed_text: str) -> Optional[FaultPlan]:
    try:
        seed = int(seed_text)
    except ValueError:
        raise FaultInjectionError(f"{SEED_ENV} must be an integer, got {seed_text!r}")
    return FaultPlan.parse(spec, seed=seed)


# Module state: a programmatic override (``_UNSET`` = defer to the
# environment) and whether this process is a supervised worker (the only
# place worker_crash / chunk_hang may fire).
_UNSET = object()
_ACTIVE = _UNSET
_IN_WORKER = False
_ATTACH_COUNTER = 0


def active_plan() -> Optional[FaultPlan]:
    """The fault plan in effect: the installed plan, else the environment."""
    if _ACTIVE is not _UNSET:
        return _ACTIVE
    return _plan_from_env(
        os.environ.get(FAULT_ENV, ""), os.environ.get(SEED_ENV, "0")
    )


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install a programmatic plan (``None`` disables injection entirely)."""
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    """Remove any programmatic plan; the environment applies again."""
    global _ACTIVE
    _ACTIVE = _UNSET


@contextmanager
def use_plan(plan: Optional[FaultPlan]):
    """Context manager around :func:`install_plan` / :func:`clear_plan`."""
    global _ACTIVE
    previous = _ACTIVE
    install_plan(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def mark_worker(plan: Optional[FaultPlan]) -> None:
    """Adopt the parent's plan inside a supervised worker process."""
    global _IN_WORKER
    install_plan(plan)
    _IN_WORKER = True


def fire_worker_faults(chunk_index: int, attempt: int) -> None:
    """Crash or hang the current *worker* process per the active plan.

    No-op in the batch parent — the serial fallback rung must never inherit
    the worker-level failure modes it exists to recover from.
    """
    if not _IN_WORKER:
        return
    plan = active_plan()
    if plan is None:
        return
    if plan.decide(WORKER_CRASH, chunk_index, attempt):
        os._exit(CRASH_EXIT_CODE)
    if plan.decide(CHUNK_HANG, chunk_index, attempt):
        time.sleep(plan.hang_seconds)


def shm_attach_fails() -> bool:
    """Whether the next shared-memory attach should be made to fail."""
    plan = active_plan()
    if plan is None:
        return False
    global _ATTACH_COUNTER
    key = _ATTACH_COUNTER
    _ATTACH_COUNTER += 1
    return plan.decide(SHM_ATTACH_FAIL, key)


def check_pair(i: int, j: int) -> None:
    """Raise :class:`InjectedFaultError` if the pair ``(i, j)`` is poisoned."""
    plan = active_plan()
    if plan is not None and plan.decide(POISON_PAIR, int(i), int(j)):
        raise InjectedFaultError(f"injected poison for pair ({i}, {j})")


def check_pairs(pairs: Iterable[Tuple[int, int]]) -> None:
    """Raise on the first poisoned pair of a chunk (cheap when inactive)."""
    plan = active_plan()
    if plan is None or plan.rates.get(POISON_PAIR, 0.0) <= 0.0:
        return
    for i, j in pairs:
        check_pair(i, j)
