"""Corpus-scale batch distance computation and the v2 similarity join.

The v2 join pipeline (see ``DESIGN.md``, *Batch joins*):

1. **Profile** — build/reuse the per-tree artifacts of the
   :class:`~repro.join.corpus.TreeCorpus` (computed once per tree, not per
   pair).
2. **Candidate generation** — the binary-branch inverted index materializes
   only the pairs that can still match (sound for any cost model with a
   positive :meth:`~repro.costs.CostModel.min_operation_cost`).
3. **Filter cascade** — ordered per-pair stages prune with scaled lower
   bounds and accept early with the top-down upper bound.
4. **Exact verification** — surviving pairs run exact TED with any registry
   algorithm/engine, optionally fanned out over a ``multiprocessing`` pool in
   chunks, with the streaming :class:`~repro.join.cascade.JoinStats` updated
   after every chunk.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..algorithms.base import TEDAlgorithm, resolve_cost_model
from ..algorithms.batch_kernel import (
    build_corpus_pack,
    kernel_available,
    kernel_chunk_entries,
)
from ..algorithms.registry import make_algorithm
from ..algorithms.workspace import TedWorkspace, WorkspaceTED
from ..costs import CostModel
from ..runtime import active_deadline, as_deadline, deadline_scope
from ..trees.tree import Tree
from . import faults
from .supervisor import (
    ExecutionPolicy,
    ExecutionReport,
    RUNG_LOCAL_PACK,
    RUNG_NO_KERNEL,
    RUNG_SERIAL,
    RUNG_SHM,
    run_supervised,
)
from .cascade import FilterStage, JoinStats
from .corpus import TreeCorpus

CorpusLike = Union[TreeCorpus, Sequence[Tree]]

#: Default number of pairs per multiprocessing work item (and per streaming
#: stats update in serial mode).
DEFAULT_CHUNK_SIZE = 256


def as_corpus(trees: CorpusLike) -> TreeCorpus:
    """Wrap a tree sequence in a :class:`TreeCorpus` (no-op for corpora)."""
    if isinstance(trees, TreeCorpus):
        return trees
    return TreeCorpus(trees)


# --------------------------------------------------------------------------- #
# Batch exact distances (serial or multiprocessing fan-out)
# --------------------------------------------------------------------------- #
WorkspaceLike = Union[bool, TedWorkspace, None]


def _make_workspace(
    workspace: WorkspaceLike,
    cost_model: Optional[CostModel],
    corpus_a: Optional[TreeCorpus],
) -> Optional[TedWorkspace]:
    """Resolve the ``workspace`` batch parameter into a usable workspace.

    ``True`` builds one bound to the batch's cost model, sharing the
    corpus's label interner so repeated batches over the same corpus reuse
    the interned code arrays.  ``False``/``None`` disables amortization.  An
    explicit :class:`TedWorkspace` is validated against the batch's cost
    model — the invalidation rule of ``DESIGN.md`` — and used as-is.
    """
    if workspace is None or workspace is False:
        return None
    if workspace is True:
        interner = corpus_a.interner() if corpus_a is not None else None
        return TedWorkspace(cost_model, interner=interner)
    workspace.require(cost_model)
    return workspace


def _kernel_workspace(algo, batch_kernel: bool):
    """The workspace backing the batch kernel, or ``None`` if inapplicable.

    The kernel replaces :meth:`TedWorkspace.compute_small` calls only —
    so it requires the amortized wrapper (``WorkspaceTED``, i.e. a registry
    name on a workspace-capable engine; ``recursive`` and pre-built
    instances never qualify) with a unit-cost workspace, plus NumPy.  Every
    emitted tuple is bit-identical to the per-pair path either way.
    """
    if not batch_kernel or not kernel_available():
        return None
    if not isinstance(algo, WorkspaceTED):
        return None
    workspace = algo.workspace
    if not workspace.unit_cost:
        return None
    return workspace


def _effective_workers(workers: int, n_pairs: int, chunk_size: int) -> int:
    """The worker count :func:`batch_distances` will actually use.

    Batches no larger than one chunk run serially regardless of ``workers``
    (pool startup costs more than the work they contain), and a pool can
    keep at most one worker busy per chunk.
    """
    if workers <= 1 or n_pairs <= chunk_size:
        return 1
    n_chunks = -(-n_pairs // chunk_size)
    return max(1, min(workers, n_chunks))


# Worker-process globals, set once per worker by _init_worker so that trees,
# the algorithm, the cost model and the amortized workspace are set up
# exactly once per worker instead of once per chunk (or per pair) — chunks
# only ever ship index pairs.
_WORKER_STATE: dict = {}


def _init_worker(
    trees_a, trees_b, algorithm, engine, cost_model, use_workspace, cutoff,
    batch_kernel=False, pack_desc_a=None, pack_desc_b=None, fault_plan=None,
) -> None:
    # Adopt the parent's fault-injection plan (usually None) before any
    # other setup, so injected shm-attach failures can hit the pack attach
    # below; this also marks the process as a supervised worker.
    faults.mark_worker(fault_plan)
    _WORKER_STATE["trees_a"] = trees_a
    _WORKER_STATE["trees_b"] = trees_b if trees_b is not None else trees_a
    # Workspaces hold process-local caches, so each worker builds its own
    # (the parent's never crosses the pickle boundary).
    workspace = TedWorkspace(cost_model) if use_workspace else None
    algo = _resolve_algorithm(algorithm, engine, workspace)
    _WORKER_STATE["algorithm"] = algo
    _WORKER_STATE["cost_model"] = cost_model
    _WORKER_STATE["cutoff"] = cutoff
    _WORKER_STATE["bounded_ok"] = _supports_cutoff(algo)
    # Batch-kernel packs: attach the parent's shared-memory export
    # (zero-copy) when descriptors came through; otherwise rebuild locally.
    # Packs for both sides must share one interner so their codes agree —
    # mixed attach/rebuild falls back to rebuilding both.
    pack_a = pack_b = None
    kernel_ws = _kernel_workspace(algo, batch_kernel)
    if kernel_ws is not None:
        if pack_desc_a is not None:
            from .shared import attach_pack

            pack_a = attach_pack(pack_desc_a)
            if pack_a is not None:
                if trees_b is None:
                    pack_b = pack_a
                elif pack_desc_b is not None:
                    pack_b = attach_pack(pack_desc_b)
        if pack_a is None or pack_b is None:
            pack_a = build_corpus_pack(
                trees_a, kernel_ws.interner, kernel_ws.small_pair_cutoff
            )
            pack_b = pack_a if trees_b is None else build_corpus_pack(
                trees_b, kernel_ws.interner, kernel_ws.small_pair_cutoff
            )
    _WORKER_STATE["pack_a"] = pack_a
    _WORKER_STATE["pack_b"] = pack_b
    _WORKER_STATE["kernel_ws"] = kernel_ws


def _supports_cutoff(algo: TEDAlgorithm) -> bool:
    """Whether ``algo.compute`` accepts the ``cutoff`` keyword.

    Every registry algorithm does; pre-built instances predating the
    bounded-computation API may not, and a bounded batch silently falls back
    to unbounded computation for them (the result tuples stay correct —
    the exact distance is its own proving bound, never cut short).
    """
    try:
        parameters = inspect.signature(algo.compute).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        # Fail closed: an uninspectable compute gets the unbounded fallback
        # (always correct) instead of a speculative cutoff keyword.
        return False
    if "cutoff" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _compute_entry(algo, tree_a, tree_b, i, j, cost_model, cutoff, bounded_ok=True):
    """One batch result tuple — 4 fields unbounded, 5 fields with a cutoff.

    With a cutoff, the value field is the exact distance for sub-cutoff
    pairs and the proving lower bound (``≥ cutoff``) otherwise, so the
    consumer's ``value < τ`` match test stays correct either way; the fifth
    field flags computations the bounded kernels cut short.
    ``bounded_ok=False`` (an algorithm without the ``cutoff`` keyword) keeps
    the 5-tuple shape but computes unbounded.
    """
    if cutoff is None:
        result = algo.compute(tree_a, tree_b, cost_model=cost_model)
        return (i, j, result.distance, result.subproblems)
    if not bounded_ok:
        result = algo.compute(tree_a, tree_b, cost_model=cost_model)
        return (i, j, result.distance, result.subproblems, False)
    result = algo.compute(tree_a, tree_b, cost_model=cost_model, cutoff=cutoff)
    if result.bounded:
        return (i, j, result.lower_bound, result.subproblems, result.aborted)
    return (i, j, result.distance, result.subproblems, False)


def _worker_chunk(pairs: List[Tuple[int, int]]) -> List[Tuple]:
    trees_a = _WORKER_STATE["trees_a"]
    trees_b = _WORKER_STATE["trees_b"]
    algo = _WORKER_STATE["algorithm"]
    cost_model = _WORKER_STATE["cost_model"]
    cutoff = _WORKER_STATE["cutoff"]
    bounded_ok = _WORKER_STATE["bounded_ok"]

    def fallback(i, j):
        return _compute_entry(
            algo, trees_a[i], trees_b[j], i, j, cost_model, cutoff, bounded_ok
        )

    pack_a = _WORKER_STATE.get("pack_a")
    if pack_a is not None:
        return kernel_chunk_entries(
            pack_a, _WORKER_STATE["pack_b"], pairs, cutoff, fallback,
            workspace=_WORKER_STATE["kernel_ws"],
            use_native=getattr(algo, "use_native", False),
        )
    return [fallback(i, j) for i, j in pairs]


def _supervised_chunk(chunk_index: int, attempt: int, pairs: List[Tuple[int, int]]):
    """One supervised work item, run inside a pool worker.

    Returns ``("ok", chunk_index, results)`` or ``("err", chunk_index,
    message)`` — exceptions are stringified *here* so an unpicklable
    exception object can never wedge the pool result queue; only real
    crashes and hangs surface as pool-level events, and the supervisor
    handles both.  ``attempt`` exists so deterministic fault injection can
    make a retry succeed where the first attempt crashed.
    """
    faults.fire_worker_faults(chunk_index, attempt)
    try:
        faults.check_pairs(pairs)
        return ("ok", chunk_index, _worker_chunk(pairs))
    except Exception as exc:
        return ("err", chunk_index, f"{type(exc).__name__}: {exc}")


def _resolve_algorithm(
    algorithm: Union[str, TEDAlgorithm],
    engine: Optional[str],
    workspace: Optional[TedWorkspace] = None,
) -> TEDAlgorithm:
    if isinstance(algorithm, TEDAlgorithm):
        # Pre-built instances run exactly as configured — no workspace
        # wrapping, so an explicitly constructed oracle (e.g.
        # RTED(engine="recursive") as a cross-check) is never short-circuited
        # by the fast path.  Pass a registry *name* to get the amortized path.
        return algorithm
    return make_algorithm(algorithm, engine=engine, workspace=workspace)


def _chunked(pairs: List[Tuple[int, int]], size: int) -> Iterable[List[Tuple[int, int]]]:
    for start in range(0, len(pairs), size):
        yield pairs[start : start + size]


def batch_distances(
    trees_a: CorpusLike,
    trees_b: Optional[CorpusLike],
    pairs: Iterable[Tuple[int, int]],
    algorithm: Union[str, TEDAlgorithm] = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    on_chunk: Optional[Callable[[List[Tuple]], None]] = None,
    collect_results: bool = True,
    workspace: WorkspaceLike = True,
    cutoff: Optional[float] = None,
    batch_kernel: bool = True,
    policy: Optional[ExecutionPolicy] = None,
    exec_report: Optional[ExecutionReport] = None,
    deadline=None,
) -> List[Tuple]:
    """Exact TED for many index pairs: ``(i, j) → (i, j, distance, subproblems)``.

    ``trees_b=None`` interprets pairs within ``trees_a`` (self-join indexing).
    ``workers > 1`` fans chunks of pairs out to a ``multiprocessing`` pool —
    trees, algorithm and cost model are pickled once per worker, so the
    per-pair overhead stays small; pass a registry *name* for ``algorithm``
    (instances and custom cost models must be picklable to cross the process
    boundary).  **A batch no larger than one ``chunk_size`` always runs
    serially, even with ``workers > 1``** — pool startup would cost more
    than the single chunk of work it parallelizes; the count a batch will
    actually use is :func:`_effective_workers`, surfaced by the join as
    ``JoinStats.verify_workers``.  ``on_chunk`` is invoked with every
    completed chunk in completion order, enabling streaming consumption of
    a long batch; ``collect_results=False`` then skips accumulating the
    full result list — at millions of pairs the tuples dominate memory —
    and returns ``[]``.

    ``batch_kernel`` (default on) routes small unit-cost pairs through the
    struct-of-arrays batch kernel (:mod:`repro.algorithms.batch_kernel`) —
    one vectorized (or compiled, under ``engine="native"``) program per
    chunk instead of one interpreted run per pair, bit-identical results
    including subproblem counts and bounded aborts.  It engages only where
    the scalar small-pair path would: registry-name algorithms with the
    amortized workspace on a unit cost model; in the multiprocessing
    fan-out the parent additionally exports the corpus pack once into
    ``multiprocessing.shared_memory`` and workers attach zero-copy instead
    of rebuilding it (:mod:`repro.join.shared`; graceful fallback to local
    rebuilds).

    ``workspace`` controls the amortized execution layer (``DESIGN.md``,
    *Amortized batch execution*): ``True`` (default) shares one
    :class:`~repro.algorithms.workspace.TedWorkspace` across all pairs — one
    per worker in the multiprocessing fan-out — so per-tree setup, interned
    cost tables and matrix buffers are paid once instead of once per pair;
    ``False`` restores fresh per-call contexts; an explicit workspace is
    used directly (serial mode) and must match ``cost_model``.  Distances
    are bit-identical either way.  The workspace applies to registry *names*
    only — a pre-built algorithm instance runs exactly as configured, so an
    explicitly constructed oracle is never short-circuited.

    ``cutoff`` switches the batch to *bounded* computation: every pair runs
    ``compute(..., cutoff=cutoff)`` and result tuples gain a fifth field,
    ``(i, j, value, subproblems, aborted)`` — ``value`` is the exact
    distance when it is below the cutoff (bit-identical to the unbounded
    batch) and the proving lower bound (``≥ cutoff``) otherwise, and
    ``aborted`` flags pairs whose computation the bounded kernels cut short.
    Pre-built algorithm instances whose ``compute`` predates the ``cutoff``
    keyword are computed unbounded (same tuple shape, exact distances,
    never aborted).

    The multiprocessing fan-out is **supervised**
    (:mod:`repro.join.supervisor`): dead or hung workers are detected,
    failed chunks are retried with capped backoff, and execution degrades
    along an explicit ladder (shared-memory pack → local pack rebuild → no
    batch kernel → in-process serial) with bit-identical results at every
    rung.  ``policy`` tunes retries/timeouts (default:
    :meth:`ExecutionPolicy.default`, which honors ``RTED_CHUNK_TIMEOUT``
    and ``RTED_CHUNK_RETRIES``); pass an :class:`ExecutionReport` as
    ``exec_report`` to receive the recovery telemetry (retried chunks,
    failed workers, the rung degraded to, poisoned pairs).

    ``deadline`` (seconds or a :class:`~repro.runtime.Deadline`) bounds the
    whole batch: serial chunks honor it through the ambient scope, and the
    supervised fan-out checks it between chunk completions — on expiry the
    worker pool is hard-killed, shared-memory packs are unlinked, and
    :class:`~repro.exceptions.ComputeTimeoutError` propagates.  When omitted,
    an ambient deadline installed by an enclosing ``compute``/service request
    applies automatically.
    """
    corpus_a = as_corpus(trees_a)
    corpus_b = as_corpus(trees_b) if trees_b is not None else None
    pair_list = list(pairs)
    results: List[Tuple[int, int, float, int]] = []
    dl = as_deadline(deadline)
    if dl is None:
        dl = active_deadline()

    if isinstance(workspace, TedWorkspace):
        # Enforce the invalidation rule up front, for every execution mode
        # (workers rebuild their own workspaces, but a mismatched explicit
        # one should fail loudly, not silently go unamortized).
        workspace.require(cost_model)

    if _effective_workers(workers, len(pair_list), chunk_size) <= 1:
        ws = _make_workspace(workspace, cost_model, corpus_a)
        algo = _resolve_algorithm(algorithm, engine, ws)
        bounded_ok = cutoff is None or _supports_cutoff(algo)
        lookup_b = corpus_b.trees if corpus_b is not None else corpus_a.trees

        def fallback(i, j):
            return _compute_entry(
                algo, corpus_a.trees[i], lookup_b[j], i, j, cost_model, cutoff,
                bounded_ok,
            )

        # The batch-kernel fast path applies only to registry names — a
        # pre-built instance runs exactly as configured, per-pair.
        kernel_ws = (
            _kernel_workspace(algo, batch_kernel)
            if isinstance(algorithm, str)
            else None
        )
        pack_a = pack_b = None
        if kernel_ws is not None:
            pack_a = corpus_a.pack(kernel_ws.small_pair_cutoff)
            if pack_a is not None:
                # Cross batches pack side b against side a's interner so the
                # label codes of the two packs agree; when the corpora already
                # share one interner (e.g. a per-query corpus built with
                # interner=corpus.interner()) side b's cached pack qualifies
                # as-is — crucial for queries, where rebuilding the big
                # corpus-side pack per call would dwarf the query itself.
                if corpus_b is None:
                    pack_b = pack_a
                elif corpus_b.shares_interner(corpus_a):
                    pack_b = corpus_b.pack(kernel_ws.small_pair_cutoff)
                else:
                    pack_b = build_corpus_pack(
                        corpus_b.trees, corpus_a.interner(), kernel_ws.small_pair_cutoff
                    )
        with deadline_scope(dl):
            for chunk in _chunked(pair_list, chunk_size):
                if pack_b is not None:
                    chunk_results = kernel_chunk_entries(
                        pack_a, pack_b, chunk, cutoff, fallback,
                        workspace=kernel_ws,
                        use_native=getattr(algo, "use_native", False),
                    )
                else:
                    chunk_results = [fallback(i, j) for i, j in chunk]
                if collect_results:
                    results.extend(chunk_results)
                if on_chunk is not None:
                    on_chunk(chunk_results)
        return results

    # ---- supervised multiprocessing fan-out ----------------------------- #
    if policy is None:
        policy = ExecutionPolicy.default()
    report = exec_report if exec_report is not None else ExecutionReport()

    kernel_eligible = (
        batch_kernel
        and kernel_available()
        and isinstance(algorithm, str)
        and workspace is not False
        and workspace is not None
    )

    # Export the corpus pack(s) into shared memory once so workers attach
    # zero-copy instead of each rebuilding the struct-of-arrays tables.
    # All-or-nothing per side pair: packs must share one interner, so a
    # partial export (cross batch with one exportable side) is discarded
    # and workers rebuild both sides locally.
    pack_desc_a = pack_desc_b = None
    shared_handles = []
    if kernel_eligible:
        probe = (
            workspace
            if isinstance(workspace, TedWorkspace)
            else TedWorkspace(cost_model)
        )
        if probe.unit_cost:
            from .shared import export_pack

            pack_a = corpus_a.pack(probe.small_pair_cutoff)
            exported = (
                export_pack(pack_a, epoch=getattr(corpus_a, "epoch", 0))
                if pack_a is not None
                else None
            )
            if exported is not None:
                handle, pack_desc_a = exported
                shared_handles.append(handle)
                if corpus_b is not None:
                    if corpus_b.shares_interner(corpus_a):
                        pack_b = corpus_b.pack(probe.small_pair_cutoff)
                    else:
                        pack_b = build_corpus_pack(
                            corpus_b.trees, corpus_a.interner(), probe.small_pair_cutoff
                        )
                    exported_b = export_pack(
                        pack_b, epoch=getattr(corpus_b, "epoch", 0)
                    )
                    if exported_b is None:  # pragma: no cover - shm race
                        pack_desc_a = None
                    else:
                        handle_b, pack_desc_b = exported_b
                        shared_handles.append(handle_b)

    # The fault plan active in the parent is threaded explicitly through the
    # pool initializer so workers never re-read the environment.
    plan = faults.active_plan()
    use_ws = workspace is not False and workspace is not None
    trees_b_arg = corpus_b.trees if corpus_b is not None else None

    def _initargs(rung: str) -> tuple:
        desc_a = pack_desc_a if rung == RUNG_SHM else None
        desc_b = pack_desc_b if rung == RUNG_SHM else None
        kernel_on = batch_kernel and rung in (RUNG_SHM, RUNG_LOCAL_PACK)
        return (
            corpus_a.trees, trees_b_arg, algorithm, engine, cost_model,
            use_ws, cutoff, kernel_on, desc_a, desc_b, plan,
        )

    def _executor_factory(rung: str, n_workers: int):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=multiprocessing.get_context(),
            initializer=_init_worker,
            initargs=_initargs(rung),
        )

    rungs = []
    if pack_desc_a is not None:
        rungs.append(RUNG_SHM)
    if kernel_eligible:
        rungs.append(RUNG_LOCAL_PACK)
    rungs.extend((RUNG_NO_KERNEL, RUNG_SERIAL))

    # Lazily-built in-process verifier for the serial rung (most batches
    # never touch it).  Exceptions here poison single pairs, not the batch.
    serial_state: dict = {}

    def _serial_pair(i: int, j: int) -> Tuple:
        if not serial_state:
            ws = _make_workspace(
                workspace if isinstance(workspace, TedWorkspace) else use_ws,
                cost_model, corpus_a,
            )
            algo = _resolve_algorithm(algorithm, engine, ws)
            serial_state["algo"] = algo
            serial_state["bounded_ok"] = cutoff is None or _supports_cutoff(algo)
            serial_state["lookup_b"] = (
                corpus_b.trees if corpus_b is not None else corpus_a.trees
            )
        faults.check_pair(i, j)
        return _compute_entry(
            serial_state["algo"], corpus_a.trees[i], serial_state["lookup_b"][j],
            i, j, cost_model, cutoff, serial_state["bounded_ok"],
        )

    def _consume_chunk(chunk_index: int, chunk_results: List[Tuple]) -> None:
        if collect_results:
            results.extend(chunk_results)
        if on_chunk is not None:
            on_chunk(chunk_results)

    try:
        # The scope covers the in-process serial rung (workers poll no
        # ambient state across the process boundary; the supervisor's own
        # per-completion deadline check governs the pool rungs instead).
        with deadline_scope(dl):
            run_supervised(
                chunks=list(_chunked(pair_list, chunk_size)),
                workers=_effective_workers(workers, len(pair_list), chunk_size),
                rungs=rungs,
                executor_factory=_executor_factory,
                task=_supervised_chunk,
                serial_pair=_serial_pair,
                on_chunk=_consume_chunk,
                policy=policy,
                report=report,
                deadline=dl,
            )
    finally:
        # The parent owns the shared blocks; unlink only after the pools
        # have been torn down (run_supervised shuts each executor down
        # before returning, success or failure).
        for handle in shared_handles:
            handle.close()
    return results


# --------------------------------------------------------------------------- #
# The v2 similarity join
# --------------------------------------------------------------------------- #
@dataclass
class BatchJoinResult:
    """Outcome of a v2 batch similarity join."""

    algorithm: str
    threshold: float
    matches: List[Tuple[int, int, float]] = field(default_factory=list)
    """Matched pairs as ``(index_a, index_b, distance)`` triples.

    For pairs accepted early by the upper-bound stage the distance is the
    top-down upper bound (a valid mapping cost below ``τ``), not the exact
    TED; disable ``early_accept`` to force exact distances everywhere.
    """

    stats: JoinStats = field(default_factory=JoinStats)

    @property
    def match_set(self) -> set:
        """The matched index pairs as a set (distances stripped)."""
        return {(i, j) for i, j, _ in self.matches}


def batch_similarity_join(
    corpus_a: CorpusLike,
    threshold: float,
    corpus_b: Optional[CorpusLike] = None,
    algorithm: Union[str, TEDAlgorithm] = "rted",
    cost_model: Optional[CostModel] = None,
    engine: Optional[str] = None,
    use_cascade: bool = True,
    cascade: Optional[Sequence[FilterStage]] = None,
    use_candidate_index: bool = True,
    early_accept: bool = True,
    approximate: bool = False,
    pq_gram_cutoff: float = 0.8,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    progress: Optional[Callable[[JoinStats], None]] = None,
    workspace: WorkspaceLike = True,
    bounded_verify: bool = True,
    batch_kernel: bool = True,
    policy: Optional[ExecutionPolicy] = None,
    deadline=None,
) -> BatchJoinResult:
    """The corpus-indexed batch similarity join (``TED < threshold``).

    ``corpus_b=None`` performs a self join over ``corpus_a`` (pairs ``i < j``);
    otherwise all cross pairs are joined.  ``use_cascade=False`` disables both
    candidate generation and the filter stages (every pair is verified
    exactly) — the match set is identical either way, which the test suite
    asserts.  ``approximate=True`` appends the pq-gram heuristic stage, which
    may drop matches in exchange for speed (see the soundness rule in
    ``DESIGN.md``).  ``progress``, when given, receives the streaming
    :class:`JoinStats` after candidate generation, after the cascade, and
    after every verified chunk.

    Parameters mirror :func:`batch_distances` for the verification stage
    (``workers``, ``chunk_size``, ``workspace`` — the amortized execution
    layer, on by default and bit-identical to per-call contexts — and
    ``batch_kernel``, the vectorized/compiled small-pair fast path);
    filtering always runs in the parent process because it is cheap
    relative to exact TED.  Note that a survivor set no larger than one
    chunk verifies serially even with ``workers > 1``;
    ``JoinStats.verify_workers`` records the count actually used.

    ``bounded_verify`` (default on) runs the verifier with ``cutoff=τ``: a
    survivor's exact TED computation aborts as soon as ``d ≥ τ`` is proven,
    since the join only needs to know whether the pair is below the
    threshold.  The match set — including every reported match distance — is
    identical with and without bounded verification (the test suite asserts
    this); only ``JoinStats.aborted_early`` and the verify-stage wall clock
    change.  Disable it to record exact distances of non-matching survivors
    via :func:`batch_distances` semantics (the join itself never reports
    them either way).

    The multiprocessing verification stage is supervised (see
    :func:`batch_distances`): dead or hung workers are recovered, failed
    chunks retried, and execution degrades down an exact-result ladder
    rather than aborting the join.  ``policy`` tunes that behavior; the
    recovery telemetry lands in ``JoinStats`` (``retried_chunks``,
    ``failed_workers``, ``degraded_to``, ``poisoned_pairs``).
    """
    from .pipeline import BatchRefiner, Planner, execute_plan

    stats = JoinStats()
    started = time.perf_counter()

    a = as_corpus(corpus_a)
    b = as_corpus(corpus_b) if corpus_b is not None else None
    cm = resolve_cost_model(cost_model)
    algo = _resolve_algorithm(algorithm, engine)

    if b is None:
        stats.pairs_total = len(a) * (len(a) - 1) // 2
    else:
        stats.pairs_total = len(a) * len(b)

    # The join is one composition of the planner/filter/refiner pipeline
    # (repro.join.pipeline) — the same architecture that runs range queries
    # and backs the kNN engine; execute_plan owns the stage loop, streaming
    # stats and the progress cadence.
    refiner = BatchRefiner(
        a,
        b,
        algorithm=algorithm,
        cost_model=cost_model,
        engine=engine,
        workers=workers,
        chunk_size=chunk_size,
        workspace=workspace,
        batch_kernel=batch_kernel,
        policy=policy,
    )
    plan = Planner(cm).plan_join(
        a,
        b,
        threshold,
        refiner,
        use_cascade=use_cascade,
        cascade=cascade,
        use_candidate_index=use_candidate_index,
        early_accept=early_accept,
        approximate=approximate,
        pq_gram_cutoff=pq_gram_cutoff,
        bounded_verify=bounded_verify,
    )
    # The ambient scope covers the whole pipeline — candidate generation,
    # filter cascade, and exact verification (whose batch_distances call
    # inherits it) — so one budget governs the join end to end.
    with deadline_scope(as_deadline(deadline)):
        matches = execute_plan(plan, stats, progress=progress, started=started)

    matches.sort()
    stats.matches = len(matches)
    stats.total_time = time.perf_counter() - started
    return BatchJoinResult(
        algorithm=algo.name, threshold=threshold, matches=matches, stats=stats
    )


def batch_self_join(
    trees: CorpusLike,
    threshold: float,
    **kwargs,
) -> BatchJoinResult:
    """Convenience alias: v2 self join over one collection."""
    return batch_similarity_join(trees, threshold, corpus_b=None, **kwargs)
