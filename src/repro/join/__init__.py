"""Similarity joins over tree collections.

Two layers:

* the **batch subsystem** (v2) — :class:`TreeCorpus` per-tree artifacts, the
  ordered filter cascade with inverted-index candidate generation, and the
  chunked/multiprocessing exact verifier (:func:`batch_similarity_join`,
  :func:`batch_distances`), whose fan-out is supervised: dead/hung workers
  recovered, failed chunks retried, degradation down an exact-result ladder
  (:mod:`repro.join.supervisor`, testable via :mod:`repro.join.faults`);
* the **legacy pairwise API** (:func:`similarity_self_join`,
  :func:`similarity_join`) kept for the Table 1 experiment and small
  collections.
"""

from .batch import (
    BatchJoinResult,
    batch_distances,
    batch_self_join,
    batch_similarity_join,
)
from .cascade import (
    BinaryBranchFilter,
    CascadeContext,
    FilterStage,
    JoinStats,
    LabelFilter,
    PQGramFilter,
    SizeFilter,
    TraversalStringFilter,
    UpperBoundAccept,
    default_cascade,
    operations_threshold,
)
from .corpus import TreeCorpus, TreeProfile, branch_candidate_pairs
from .faults import FaultPlan
from .shared import (
    SharedPackHandle,
    attach_pack,
    export_pack,
    reap_stale,
    shared_available,
)
from .supervisor import (
    ExecutionPolicy,
    ExecutionReport,
    PoisonedPair,
    run_supervised,
)
from .similarity_join import (
    JoinResult,
    similarity_join,
    similarity_self_join,
    top_k_closest_pairs,
)

__all__ = [
    # Batch subsystem (v2)
    "TreeCorpus",
    "TreeProfile",
    "branch_candidate_pairs",
    "SharedPackHandle",
    "attach_pack",
    "export_pack",
    "reap_stale",
    "shared_available",
    # Supervised execution / fault tolerance
    "ExecutionPolicy",
    "ExecutionReport",
    "PoisonedPair",
    "run_supervised",
    "FaultPlan",
    "BatchJoinResult",
    "batch_distances",
    "batch_self_join",
    "batch_similarity_join",
    "JoinStats",
    "FilterStage",
    "CascadeContext",
    "SizeFilter",
    "LabelFilter",
    "TraversalStringFilter",
    "BinaryBranchFilter",
    "PQGramFilter",
    "UpperBoundAccept",
    "default_cascade",
    "operations_threshold",
    # Legacy pairwise API
    "JoinResult",
    "similarity_self_join",
    "similarity_join",
    "top_k_closest_pairs",
]
