"""Similarity joins and query-centric retrieval over tree collections.

Three layers:

* the **retrieval core** — the planner/filter/refiner pipeline
  (:mod:`repro.join.pipeline`) composing candidate sources (inverted
  indexes, the :mod:`repro.join.metric_index` VP-tree), the ordered filter
  cascade and the batched exact refiner; the all-pairs join
  (:func:`batch_similarity_join`) and one-vs-corpus queries
  (:class:`~repro.join.query.QueryEngine` — ``knn`` / ``range_query``) are
  both compositions of it;
* the **batch subsystem** (v2) — :class:`TreeCorpus` per-tree artifacts and
  the chunked/multiprocessing exact verifier (:func:`batch_distances`),
  whose fan-out is supervised: dead/hung workers recovered, failed chunks
  retried, degradation down an exact-result ladder
  (:mod:`repro.join.supervisor`, testable via :mod:`repro.join.faults`);
* the **legacy pairwise API** (:func:`similarity_self_join`,
  :func:`similarity_join`) kept for the Table 1 experiment and small
  collections.
"""

from .batch import (
    BatchJoinResult,
    batch_distances,
    batch_self_join,
    batch_similarity_join,
)
from .metric_index import VPTree, metric_eligible
from .pipeline import (
    AllPairsSource,
    BatchRefiner,
    CandidateSet,
    CandidateSource,
    Filter,
    JoinIndexSource,
    Planner,
    QueryIndexSource,
    Refiner,
    RetrievalPlan,
    execute_plan,
)
from .query import QueryEngine, QueryResult, QueryStats, query_engine
from .cascade import (
    BinaryBranchFilter,
    CascadeContext,
    FilterStage,
    JoinStats,
    LabelFilter,
    PQGramFilter,
    SizeFilter,
    TraversalStringFilter,
    UpperBoundAccept,
    default_cascade,
    operations_threshold,
)
from .corpus import CorpusSnapshot, TreeCorpus, TreeProfile, branch_candidate_pairs
from .faults import FaultPlan
from .shared import (
    SharedPackHandle,
    attach_pack,
    export_pack,
    reap_stale,
    shared_available,
)
from .supervisor import (
    ExecutionPolicy,
    ExecutionReport,
    PoisonedPair,
    run_supervised,
)
from .similarity_join import (
    JoinResult,
    similarity_join,
    similarity_self_join,
    top_k_closest_pairs,
)

__all__ = [
    # Retrieval core (planner / filter / refiner)
    "CandidateSource",
    "Filter",
    "Refiner",
    "CandidateSet",
    "AllPairsSource",
    "JoinIndexSource",
    "QueryIndexSource",
    "BatchRefiner",
    "Planner",
    "RetrievalPlan",
    "execute_plan",
    "VPTree",
    "metric_eligible",
    "QueryEngine",
    "QueryResult",
    "QueryStats",
    "query_engine",
    # Batch subsystem (v2)
    "TreeCorpus",
    "CorpusSnapshot",
    "TreeProfile",
    "branch_candidate_pairs",
    "SharedPackHandle",
    "attach_pack",
    "export_pack",
    "reap_stale",
    "shared_available",
    # Supervised execution / fault tolerance
    "ExecutionPolicy",
    "ExecutionReport",
    "PoisonedPair",
    "run_supervised",
    "FaultPlan",
    "BatchJoinResult",
    "batch_distances",
    "batch_self_join",
    "batch_similarity_join",
    "JoinStats",
    "FilterStage",
    "CascadeContext",
    "SizeFilter",
    "LabelFilter",
    "TraversalStringFilter",
    "BinaryBranchFilter",
    "PQGramFilter",
    "UpperBoundAccept",
    "default_cascade",
    "operations_threshold",
    # Legacy pairwise API
    "JoinResult",
    "similarity_self_join",
    "similarity_join",
    "top_k_closest_pairs",
]
