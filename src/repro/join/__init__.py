"""Similarity joins over tree collections."""

from .similarity_join import (
    JoinResult,
    similarity_join,
    similarity_self_join,
    top_k_closest_pairs,
)

__all__ = [
    "JoinResult",
    "similarity_self_join",
    "similarity_join",
    "top_k_closest_pairs",
]
