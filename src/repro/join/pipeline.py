"""The planner / filter / refiner architecture of the retrieval core.

Before this module existed the retrieval stack was hardwired to one
workload: the symmetric all-pairs similarity join
(:func:`~repro.join.batch.batch_similarity_join`) enumerated candidate
pairs from one corpus, ran them through the filter cascade and verified
survivors exactly.  Query-centric workloads — one-vs-corpus top-k, range
queries — need the same three capabilities wired differently, so the
pipeline is factored into three small protocols:

* :class:`CandidateSource` — produces the pairs that may still satisfy the
  predicate, pruning what it can *without materializing it* (inverted
  indexes, metric-index traversals, or plain enumeration);
* :class:`Filter` — a per-pair stage deciding ``PRUNE`` / ``ACCEPT`` /
  ``CONTINUE`` from cached per-tree profiles (structurally identical to
  :class:`~repro.join.cascade.FilterStage`, which remains the concrete
  base class — the cascade of PR 3 *is* the filter layer);
* :class:`Refiner` — computes exact (optionally τ-bounded) distances for
  the surviving pairs; :class:`BatchRefiner` wraps
  :func:`~repro.join.batch.batch_distances`, so every refinement — join
  verification and query refinement alike — runs through the same
  amortized kernels and the same supervised multiprocessing fan-out.

:class:`Planner` composes the three into a :class:`RetrievalPlan` and
:func:`execute_plan` runs one: candidates → filters → refinement, with
streaming :class:`~repro.join.cascade.JoinStats`.  The legacy all-pairs
join is *one composition* of these pieces (``plan_join``); asymmetric
range queries are another (``plan_range``); the best-first kNN search of
:mod:`repro.join.query` reuses the same sources, filters and refiner under
its own control loop because its threshold shrinks while it runs.

The evaluation path is **asymmetric** throughout: a plan carries two
profile accessors (``profile_a`` for the left side of every pair,
``profile_b`` for the right), so "query profile vs corpus profile" and
"corpus profile vs corpus profile" are the same code path.  Pair
orientation is preserved into the refiner — distances are computed as
``d(tree_a[i], tree_b[j])`` — which keeps non-symmetric cost models
correct for one-vs-corpus queries (side *a* is the query).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

from ..costs import CostModel
from .cascade import (
    ACCEPT,
    CascadeContext,
    FilterStage,
    JoinStats,
    PQGramFilter,
    PRUNE,
    default_cascade,
    operations_threshold,
    run_cascade,
)
from ..runtime import active_deadline
from .corpus import TreeCorpus, TreeProfile, branch_candidate_pairs

PairKey = Tuple[int, int]


# --------------------------------------------------------------------------- #
# Protocols
# --------------------------------------------------------------------------- #
@dataclass
class CandidateSet:
    """What a :class:`CandidateSource` hands to the executor.

    ``pairs`` still need filtering and refinement; ``prerefined`` carries
    pairs whose **exact** distance the source already computed as a side
    effect of candidate generation (e.g. vantage points of a metric-index
    traversal) — the executor consumes the distance instead of recomputing
    it; ``pruned`` counts the pairs eliminated without being materialized.
    """

    pairs: List[PairKey]
    prerefined: List[Tuple[int, int, float]] = field(default_factory=list)
    pruned: int = 0


class CandidateSource(Protocol):
    """Generates the candidate pairs of a retrieval plan."""

    def candidates(self, ctx: CascadeContext) -> CandidateSet: ...


class Filter(Protocol):
    """A per-pair cascade stage (see :class:`~repro.join.cascade.FilterStage`).

    The protocol exists so type annotations don't force the concrete base
    class; every :class:`FilterStage` satisfies it.
    """

    name: str
    requires_ops_threshold: bool
    is_accept_stage: bool

    def apply(self, a: TreeProfile, b: TreeProfile, ctx: CascadeContext) -> str: ...


class Refiner(Protocol):
    """Computes exact (optionally τ-bounded) distances for candidate pairs."""

    def effective_workers(self, n_pairs: int) -> int: ...

    def refine(
        self,
        pairs: Sequence[PairKey],
        cutoff: Optional[float],
        on_chunk: Callable[[List[Tuple]], None],
    ): ...


# --------------------------------------------------------------------------- #
# Candidate sources
# --------------------------------------------------------------------------- #
class AllPairsSource:
    """Every pair: ``i < j`` within one corpus, or the full cross product."""

    def __init__(self, corpus_a: TreeCorpus, corpus_b: Optional[TreeCorpus]) -> None:
        self.corpus_a = corpus_a
        self.corpus_b = corpus_b

    def candidates(self, ctx: CascadeContext) -> CandidateSet:
        n_a = len(self.corpus_a)
        if self.corpus_b is None:
            pairs = [(i, j) for i in range(n_a) for j in range(i + 1, n_a)]
        else:
            pairs = [(i, j) for i in range(n_a) for j in range(len(self.corpus_b))]
        return CandidateSet(pairs=pairs)


class JoinIndexSource:
    """Symmetric candidate generation from the binary-branch inverted index.

    Wraps :func:`~repro.join.corpus.branch_candidate_pairs`; sound for any
    cost model with a positive ``min_operation_cost`` (``ctx.ops_threshold``
    is already in operation-count space, ``inf`` disables pruning).
    """

    def __init__(self, corpus_a: TreeCorpus, corpus_b: Optional[TreeCorpus]) -> None:
        self.corpus_a = corpus_a
        self.corpus_b = corpus_b

    def candidates(self, ctx: CascadeContext) -> CandidateSet:
        found, skipped = branch_candidate_pairs(
            self.corpus_a, self.corpus_b, ctx.ops_threshold
        )
        return CandidateSet(pairs=sorted(found), pruned=skipped)


class QueryIndexSource:
    """Asymmetric one-vs-corpus candidate generation from the branch index.

    Emits ``(0, j)`` pairs — side *a* is a one-tree query corpus — for the
    corpus trees that may still match the query profile
    (:meth:`TreeCorpus.query_candidates`).
    """

    def __init__(self, corpus: TreeCorpus, query_profile: TreeProfile) -> None:
        self.corpus = corpus
        self.query_profile = query_profile

    def candidates(self, ctx: CascadeContext) -> CandidateSet:
        found, skipped = self.corpus.query_candidates(
            self.query_profile, ctx.ops_threshold
        )
        return CandidateSet(pairs=[(0, j) for j in sorted(found)], pruned=skipped)


# --------------------------------------------------------------------------- #
# The batch refiner
# --------------------------------------------------------------------------- #
class BatchRefiner:
    """The exact-distance refiner: a bound :func:`batch_distances` call.

    Binds the two corpora plus every execution knob of the batch layer
    (algorithm, engine, amortized workspace, batch kernel, worker fan-out,
    supervision policy) so plans and query engines can refine pair lists
    without re-threading a dozen parameters.  Refinement inherits all the
    batch-layer guarantees: bit-identical amortized kernels, the shared
    corpus pack, and the PR 7 supervised degradation ladder when
    ``workers > 1``.
    """

    def __init__(
        self,
        corpus_a: TreeCorpus,
        corpus_b: Optional[TreeCorpus],
        algorithm="rted",
        cost_model: Optional[CostModel] = None,
        engine: Optional[str] = None,
        workers: int = 1,
        chunk_size: int = 256,
        workspace=True,
        batch_kernel: bool = True,
        policy=None,
    ) -> None:
        self.corpus_a = corpus_a
        self.corpus_b = corpus_b
        self.algorithm = algorithm
        self.cost_model = cost_model
        self.engine = engine
        self.workers = workers
        self.chunk_size = chunk_size
        self.workspace = workspace
        self.batch_kernel = batch_kernel
        self.policy = policy

    def effective_workers(self, n_pairs: int) -> int:
        from .batch import _effective_workers

        return _effective_workers(self.workers, n_pairs, self.chunk_size)

    def refine(
        self,
        pairs: Sequence[PairKey],
        cutoff: Optional[float],
        on_chunk: Callable[[List[Tuple]], None],
    ):
        """Run the pairs through :func:`batch_distances`, streaming chunks.

        Returns the :class:`~repro.join.supervisor.ExecutionReport` with the
        recovery telemetry of the (supervised) run.
        """
        from .batch import batch_distances
        from .supervisor import ExecutionReport

        report = ExecutionReport()
        batch_distances(
            self.corpus_a,
            self.corpus_b,
            pairs,
            algorithm=self.algorithm,
            cost_model=self.cost_model,
            engine=self.engine,
            workers=self.workers,
            chunk_size=self.chunk_size,
            on_chunk=on_chunk,
            collect_results=False,
            workspace=self.workspace,
            cutoff=cutoff,
            batch_kernel=self.batch_kernel,
            policy=self.policy,
            exec_report=report,
        )
        return report


# --------------------------------------------------------------------------- #
# Plans, the planner and the executor
# --------------------------------------------------------------------------- #
@dataclass
class RetrievalPlan:
    """One composed retrieval pipeline, ready for :func:`execute_plan`.

    ``profile_a(i)`` / ``profile_b(j)`` resolve the two sides of a pair key
    to their cached :class:`TreeProfile` artifacts — symmetric joins pass
    the same corpus accessor twice, queries pass the one-tree query corpus
    on side *a*.  ``refine_cutoff`` is the τ handed to the refiner
    (``None`` → unbounded verification).
    """

    ctx: CascadeContext
    source: CandidateSource
    filters: List[FilterStage]
    refiner: Refiner
    profile_a: Callable[[int], TreeProfile]
    profile_b: Callable[[int], TreeProfile]
    refine_cutoff: Optional[float] = None


class Planner:
    """Builds :class:`RetrievalPlan` compositions for the known workloads.

    The planner owns the workload-independent decisions: converting the
    distance threshold into operation-count space (the cost-model soundness
    rule), choosing the candidate source (inverted index vs plain
    enumeration vs a caller-supplied metric-index traversal), assembling
    the filter stage list, and stripping accept stages when exact distances
    are required.
    """

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model

    def _context(self, threshold: float) -> CascadeContext:
        return CascadeContext(
            threshold=threshold,
            ops_threshold=operations_threshold(threshold, self.cost_model),
            cost_model=self.cost_model,
        )

    def plan_join(
        self,
        corpus_a: TreeCorpus,
        corpus_b: Optional[TreeCorpus],
        threshold: float,
        refiner: Refiner,
        use_cascade: bool = True,
        cascade: Optional[Sequence[FilterStage]] = None,
        use_candidate_index: bool = True,
        early_accept: bool = True,
        approximate: bool = False,
        pq_gram_cutoff: float = 0.8,
        bounded_verify: bool = True,
    ) -> RetrievalPlan:
        """The symmetric all-pairs similarity join as one plan.

        This *is* the legacy :func:`batch_similarity_join` pipeline — the
        join calls this planner, so there is exactly one composition, not a
        legacy path and a refactored one.
        """
        ctx = self._context(threshold)
        if use_cascade and use_candidate_index:
            source: CandidateSource = JoinIndexSource(corpus_a, corpus_b)
        else:
            source = AllPairsSource(corpus_a, corpus_b)
        filters: List[FilterStage] = []
        if use_cascade:
            filters = list(cascade) if cascade is not None else default_cascade()
            if approximate:
                filters.insert(-1, PQGramFilter(corpus_a, corpus_b, cutoff=pq_gram_cutoff))
            if not early_accept:
                filters = [s for s in filters if not s.is_accept_stage]
        profiles_b = corpus_b if corpus_b is not None else corpus_a
        return RetrievalPlan(
            ctx=ctx,
            source=source,
            filters=filters,
            refiner=refiner,
            profile_a=corpus_a.profile,
            profile_b=profiles_b.profile,
            refine_cutoff=threshold if bounded_verify else None,
        )

    def plan_range(
        self,
        corpus: TreeCorpus,
        query_corpus: TreeCorpus,
        threshold: float,
        refiner: Refiner,
        use_cascade: bool = True,
        cascade: Optional[Sequence[FilterStage]] = None,
        early_accept: bool = False,
        source: Optional[CandidateSource] = None,
        bounded_verify: bool = True,
    ) -> RetrievalPlan:
        """A one-vs-corpus range query (``TED(query, tree) < τ``) as a plan.

        ``query_corpus`` is a one-tree corpus wrapping the query (side *a*
        of every pair, so non-symmetric cost models are oriented
        query → corpus tree).  ``source`` overrides the candidate source —
        the query engine passes its metric-index traversal here; the
        default is the asymmetric inverted-index source (or plain
        enumeration with the cascade off).  ``early_accept`` defaults to
        *off* for queries: an accepted pair reports the upper-bound mapping
        cost instead of the exact distance, which is fine for a join's
        match set but wrong for result ranking.
        """
        ctx = self._context(threshold)
        query_profile = query_corpus.profile(0)
        if source is None:
            if use_cascade:
                source = QueryIndexSource(corpus, query_profile)
            else:
                source = AllPairsSource(query_corpus, corpus)
        filters: List[FilterStage] = []
        if use_cascade:
            filters = list(cascade) if cascade is not None else default_cascade()
            if not early_accept:
                filters = [s for s in filters if not s.is_accept_stage]
        return RetrievalPlan(
            ctx=ctx,
            source=source,
            filters=filters,
            refiner=refiner,
            profile_a=query_corpus.profile,
            profile_b=corpus.profile,
            refine_cutoff=threshold if bounded_verify else None,
        )


def execute_plan(
    plan: RetrievalPlan,
    stats: JoinStats,
    progress: Optional[Callable[[JoinStats], None]] = None,
    started: Optional[float] = None,
    sink: Optional[List[Tuple[int, int, float]]] = None,
) -> List[Tuple[int, int, float]]:
    """Run a retrieval plan: candidates → filter cascade → refinement.

    Returns the matched pairs as ``(i, j, distance)`` triples (unsorted —
    early accepts first, then refined matches in chunk completion order)
    and fills ``stats`` exactly as the historical join loop did, including
    the per-stage timings and the ``progress`` callback cadence (after
    candidate generation, after the cascade, after every refined chunk).

    ``sink``, when given, is used as the match accumulator itself — so a
    caller running under a deadline still holds every match streamed before
    a :class:`~repro.exceptions.ComputeTimeoutError` aborted the plan (the
    query engine's explicit partial-result path).
    """
    if started is None:
        started = time.perf_counter()
    ctx = plan.ctx
    # One ambient budget governs the whole plan.  Refinement inherits it
    # through batch_distances; the cascade loop below ticks per candidate
    # pair, since its stages (traversal-string edit distance in particular)
    # do real per-pair work that would otherwise run unchecked.
    dl = active_deadline()

    # ---- candidates ------------------------------------------------------ #
    tick = time.perf_counter()
    generated = plan.source.candidates(ctx)
    candidate_pairs = generated.pairs
    stats.index_pruned = generated.pruned
    stats.candidate_pairs = len(candidate_pairs) + len(generated.prerefined)
    stats.candidate_time = time.perf_counter() - tick
    if progress is not None:
        progress(stats)

    # ---- filter cascade -------------------------------------------------- #
    matches: List[Tuple[int, int, float]] = sink if sink is not None else []
    tick = time.perf_counter()
    for i, j, distance in generated.prerefined:
        # Exact distances computed during candidate generation (metric-index
        # vantage points): consume, don't recompute.
        stats.exact_computed += 1
        if distance < ctx.threshold:
            stats.exact_matched += 1
            matches.append((i, j, distance))
    if plan.filters:
        survivors: List[PairKey] = []
        for i, j in candidate_pairs:
            if dl is not None:
                dl.tick()
            decision = run_cascade(
                plan.filters, plan.profile_a(i), plan.profile_b(j), ctx, stats
            )
            if decision == ACCEPT:
                # The accepting stage certified a mapping below τ and left its
                # cost in ctx.accept_value; report that as the distance.
                matches.append((i, j, ctx.accept_value))
            elif decision != PRUNE:
                survivors.append((i, j))
    else:
        survivors = list(candidate_pairs)
    stats.cascade_time = time.perf_counter() - tick
    if progress is not None:
        progress(stats)

    # ---- refinement ------------------------------------------------------ #
    tick = time.perf_counter()
    stats.verify_workers = plan.refiner.effective_workers(len(survivors))

    def on_chunk(chunk_results: List[Tuple]) -> None:
        for entry in chunk_results:
            i, j, distance, subproblems = entry[:4]
            stats.exact_computed += 1
            stats.total_subproblems += subproblems
            if len(entry) > 4 and entry[4]:
                stats.aborted_early += 1
            # Bounded entries carry a lower bound ≥ τ in the distance field,
            # so the strict match test is correct for both tuple shapes.
            if distance < ctx.threshold:
                stats.exact_matched += 1
                matches.append((i, j, distance))
        stats.matches = len(matches)
        stats.verify_time = time.perf_counter() - tick
        stats.total_time = time.perf_counter() - started
        if progress is not None:
            progress(stats)

    report = plan.refiner.refine(survivors, plan.refine_cutoff, on_chunk)
    if report is not None:
        stats.retried_chunks += report.retried_chunks
        stats.failed_workers += report.failed_workers
        if report.degraded_to is not None:
            stats.degraded_to = report.degraded_to
        stats.poisoned_pairs += len(report.poisoned_pairs)

    stats.matches = len(matches)
    stats.verify_time = time.perf_counter() - tick
    stats.total_time = time.perf_counter() - started
    return matches
