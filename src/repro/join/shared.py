"""Zero-copy sharing of corpus pack arrays across join worker processes.

The multiprocessing paths of :func:`repro.join.batch.batch_distances` ship
the corpus *trees* to each worker once (pickled through the pool init), and
before this module every worker also had to rebuild its own
:class:`~repro.algorithms.batch_kernel.CorpusPack` — an ``O(Σ n)`` packing
pass plus a full duplicate of the struct-of-arrays tables per process.
Here the parent serializes the pack **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` block and workers map
the same physical pages read-only-by-convention, so attaching is ``O(1)``
per worker and the per-tree arrays plus interned label codes exist once in
RAM regardless of worker count.

Lifecycle / ownership
---------------------
* The **parent** calls :func:`export_pack`, keeps the returned
  :class:`SharedPackHandle` alive while the pool runs, and calls
  :meth:`SharedPackHandle.close` (which unlinks) after ``pool.join()``.
  ``atexit`` acts as a safety net for abandoned handles.
* **Workers** call :func:`attach_pack` with the picklable descriptor.  The
  attached pack's arrays are views into the mapped block; the mapping is
  pinned by the pack's ``_shm`` anchor for the pack's lifetime.  Workers
  never unlink.
* Attaching unregisters the segment from the worker-side
  :mod:`multiprocessing.resource_tracker`, otherwise every worker exit
  would try to destroy the parent's segment (the well-known spurious
  "leaked shared_memory" teardown).

Everything degrades gracefully: platforms without ``shared_memory`` (or
sandboxes denying ``/dev/shm``) make :func:`shared_available` return
``False`` and the join falls back to per-worker pack rebuilds, bit-identical
either way.
"""

from __future__ import annotations

import atexit
from typing import Any, Dict, List, Optional, Tuple

try:  # Optional accelerator, mirroring repro.algorithms.workspace.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from ..algorithms.batch_kernel import CorpusPack

try:
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - ancient/embedded platforms
    _shm_mod = None


def shared_available() -> bool:
    """Whether shared-memory pack export can be attempted at all."""
    return _shm_mod is not None and _np is not None


#: Scalar (non-array) pack fields carried inside the descriptor.
_SCALAR_FIELDS = ("n_trees", "small_pair_cutoff", "pad_w")


class SharedPackHandle:
    """Parent-side owner of one exported pack's shared-memory block."""

    __slots__ = ("_shm", "_closed")

    def __init__(self, shm) -> None:
        self._shm = shm
        self._closed = False
        atexit.register(self.close)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Close and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - teardown race
            pass


def export_pack(pack: CorpusPack):
    """Serialize ``pack`` into one shared-memory block.

    Returns ``(handle, descriptor)`` — the parent keeps ``handle`` alive
    while workers run and closes it afterwards; ``descriptor`` is a small
    picklable dict for :func:`attach_pack`.  Returns ``None`` when shared
    memory is unavailable or the export fails (callers fall back to
    rebuilding packs per worker).
    """
    if not shared_available():
        return None
    layout: List[Tuple[str, int, Tuple[int, ...], str]] = []
    offset = 0
    arrays = []
    for field in CorpusPack.ARRAY_FIELDS:
        arr = _np.ascontiguousarray(getattr(pack, field))
        # 8-byte alignment for every field keeps attached views aligned
        # regardless of the dtype mix (bool fields have 1-byte items).
        offset = (offset + 7) & ~7
        layout.append((field, offset, arr.shape, arr.dtype.str))
        arrays.append((offset, arr))
        offset += arr.nbytes
    try:
        shm = _shm_mod.SharedMemory(create=True, size=max(1, offset))
    except (OSError, ValueError):  # pragma: no cover - /dev/shm unavailable
        return None
    try:
        for off, arr in arrays:
            dst = _np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[...] = arr
    except Exception:  # pragma: no cover - defensive: never leak the block
        shm.close()
        shm.unlink()
        raise
    descriptor: Dict[str, Any] = {
        "shm_name": shm.name,
        "layout": layout,
    }
    for field in _SCALAR_FIELDS:
        descriptor[field] = int(getattr(pack, field))
    return SharedPackHandle(shm), descriptor


def attach_pack(descriptor: Dict[str, Any]) -> Optional[CorpusPack]:
    """Rebuild a :class:`CorpusPack` over an exported block, zero-copy.

    Every array field is a view into the mapped segment — nothing is
    copied, and the mapping stays alive exactly as long as the returned
    pack (anchored through its ``_shm`` slot).  Returns ``None`` if the
    segment cannot be attached (parent already gone, platform quirk);
    callers then rebuild the pack locally.
    """
    if not shared_available():
        return None
    # Attaching must not register the segment with the resource tracker:
    # ownership stays with the exporting parent, and (pre-3.13, where
    # ``track=False`` landed) tracked attachments both spam tracker
    # KeyErrors — forked workers share one tracker, so N attach/unregister
    # cycles double-remove one cache entry — and race to destroy the
    # parent's segment on worker exit.  Suppress registration around the
    # attach instead of unregistering after it.
    try:
        from multiprocessing import resource_tracker

        _register = resource_tracker.register

        def _register_skip_shm(name, rtype):  # pragma: no cover - trivial
            if rtype != "shared_memory":
                _register(name, rtype)

        resource_tracker.register = _register_skip_shm
    except Exception:  # pragma: no cover - tracker is platform-dependent
        resource_tracker = None
        _register = None
    try:
        shm = _shm_mod.SharedMemory(name=descriptor["shm_name"])
    except (OSError, FileNotFoundError):  # pragma: no cover - parent raced away
        return None
    finally:
        if _register is not None:
            resource_tracker.register = _register
    fields: Dict[str, Any] = {"_shm": shm}
    for name in _SCALAR_FIELDS:
        fields[name] = descriptor[name]
    for field, offset, shape, dtype in descriptor["layout"]:
        fields[field] = _np.ndarray(
            shape, dtype=_np.dtype(dtype), buffer=shm.buf, offset=offset
        )
    return CorpusPack(**fields)
